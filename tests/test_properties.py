"""Property-based tests (hypothesis) on the core invariants.

The central theorems of the simulator:

* every injected packet is delivered, on every organization, under any
  traffic (no loss, no deadlock at server-class loads);
* flits of a packet never reorder or interleave (delivery implies the
  tail arrived after all other flits of the packet);
* after draining, the network is *quiescent*: every credit returned,
  every VC ownership and proactive claim released (no resource leaks);
* XY routes are minimal and stay inside the mesh.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc.packet import Packet
from repro.noc.routing import turn_node, xy_route
from repro.noc.topology import Direction, MeshTopology
from repro.params import MessageClass, NocKind
from tests.helpers import assert_quiescent, make_network

KINDS = [NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA, NocKind.IDEAL]

traffic_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def traffic_case(draw):
    seed = draw(st.integers(0, 2**16))
    kind = draw(st.sampled_from(KINDS))
    num_packets = draw(st.integers(1, 60))
    spacing = draw(st.integers(0, 2))
    return seed, kind, num_packets, spacing


@traffic_settings
@given(traffic_case())
def test_all_packets_delivered_and_network_quiescent(case):
    seed, kind, num_packets, spacing = case
    rng = random.Random(seed)
    net = make_network(kind, width=4, height=4)
    packets = []
    for _ in range(num_packets):
        src = rng.randrange(16)
        dst = (src + rng.randrange(1, 16)) % 16
        mc = rng.choice(list(MessageClass))
        pkt = Packet(src=src, dst=dst, msg_class=mc, created=net.cycle)
        packets.append(pkt)
        net.send(pkt)
        net.run(spacing)
    net.drain(max_cycles=30000)
    assert all(p.ejected is not None for p in packets)
    assert net.stats.packets_ejected == num_packets
    assert net.stats.flits_ejected == sum(p.size for p in packets)
    assert_quiescent(net)


@traffic_settings
@given(st.integers(0, 2**16), st.integers(1, 30))
def test_pra_with_announces_is_leak_free(seed, num_responses):
    """Announce/send pairs under load: claims must always unwind."""
    rng = random.Random(seed)
    net = make_network(NocKind.MESH_PRA, width=4, height=4)
    pending = []
    sent = 0
    for _ in range(num_responses):
        src = rng.randrange(16)
        dst = (src + rng.randrange(1, 16)) % 16
        pkt = Packet(src=src, dst=dst, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        delay = rng.choice([4, 4, 4, 7])  # some announces are late
        net.announce(pkt, ready_in=4)
        pending.append((net.cycle + delay, pkt))
        if rng.random() < 0.5:
            net.send(Packet(src=dst, dst=src,
                            msg_class=MessageClass.REQUEST,
                            created=net.cycle))
            sent += 1
        net.step()
        ready = [p for t, p in pending if t <= net.cycle]
        for pkt_ready in ready:
            net.send(pkt_ready)
            sent += 1
        pending = [(t, p) for t, p in pending if t > net.cycle]
    for t, pkt in sorted(pending, key=lambda x: x[0]):
        while net.cycle < t:
            net.step()
        net.send(pkt)
        sent += 1
    net.drain(max_cycles=30000)
    assert net.stats.packets_ejected == sent
    assert_quiescent(net)


@given(st.integers(2, 9), st.integers(2, 9), st.integers(0, 80),
       st.integers(0, 80))
@settings(max_examples=60, deadline=None)
def test_xy_route_is_minimal_and_terminates(w, h, a, b):
    topo = MeshTopology(w, h)
    src = a % topo.num_nodes
    dst = b % topo.num_nodes
    route = xy_route(topo, src, dst)
    # Route length = Manhattan distance + the ejection hop.
    assert len(route) == topo.hop_distance(src, dst) + 1
    assert route[0][0] == src
    assert route[-1] == (dst, Direction.LOCAL)
    # Each step moves to the adjacent node in the recorded direction.
    for (node, direction), (next_node, _) in zip(route, route[1:]):
        assert topo.neighbor(node, direction) == next_node
    # X travel strictly precedes Y travel (dimension order).
    dirs = [d for _, d in route[:-1]]
    seen_y = False
    for d in dirs:
        if d in (Direction.NORTH, Direction.SOUTH):
            seen_y = True
        else:
            assert not seen_y, "turned back to X after Y travel"


@given(st.integers(2, 9), st.integers(2, 9), st.integers(0, 80),
       st.integers(0, 80))
@settings(max_examples=60, deadline=None)
def test_turn_node_lies_on_route(w, h, a, b):
    topo = MeshTopology(w, h)
    src, dst = a % topo.num_nodes, b % topo.num_nodes
    turn = turn_node(topo, src, dst)
    nodes = [n for n, _ in xy_route(topo, src, dst)]
    assert turn in nodes


@given(st.integers(2, 9), st.integers(2, 9))
@settings(max_examples=30, deadline=None)
def test_neighbor_symmetry(w, h):
    topo = MeshTopology(w, h)
    for node in range(topo.num_nodes):
        for direction, other in topo.neighbors(node):
            assert topo.neighbor(other, direction.opposite) == node
