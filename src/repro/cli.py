"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [--scale S] [--only fig6,...] [--json PATH]`` — reproduce
  the paper's tables/figures and print them;
* ``simulate WORKLOAD [--noc KIND] [--warmup N] [--measure N] [--seed N]``
  — one full-system run with diagnostics;
* ``sweep [--noc KIND] [--pattern P] [--rates ...]`` — open-loop
  load-latency curves under synthetic traffic;
* ``area`` / ``power`` — the analytic physical models;
* ``params`` — echo the Table I configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.params import ChipParams, NocKind
from repro.harness import (
    figure2,
    figure6,
    figure7,
    figure8,
    figure9,
    get_scale,
    power_analysis,
    render_figure,
    section5b_stats,
    table1,
    zero_load_table,
)
from repro.harness.reporting import render_bars

_FIGURES = {
    "table1": lambda scale: table1(),
    "fig2": figure2,
    "fig6": figure6,
    "fig7": figure7,
    "sec5b": section5b_stats,
    "fig8": lambda scale: figure8(),
    "fig9": figure9,
    "power": power_analysis,
    "zeroload": lambda scale: zero_load_table(),
}

_NOC_KINDS = {k.value: k for k in NocKind}


def _cmd_figures(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    names = args.only.split(",") if args.only else list(_FIGURES)
    collected = {}
    for name in names:
        if name not in _FIGURES:
            print(f"unknown figure {name!r}; choose from {list(_FIGURES)}",
                  file=sys.stderr)
            return 2
        result = _FIGURES[name](scale)
        collected[name] = result
        print(render_bars(result) if args.bars else render_figure(result))
        print()
    if args.json:
        serializable = {
            name: {"title": r["title"], "headers": r["headers"],
                   "rows": [[str(c) for c in row] for row in r["rows"]]}
            for name, r in collected.items()
        }
        with open(args.json, "w") as fh:
            json.dump(serializable, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.perf.system import simulate

    kind = _NOC_KINDS[args.noc]
    sample = simulate(args.workload, kind, warmup=args.warmup,
                      measure=args.measure, seed=args.seed)
    print(f"workload:             {sample.workload}")
    print(f"organization:         {kind.value}")
    print(f"aggregate IPC:        {sample.ipc:.2f}")
    print(f"packets delivered:    {sample.packets}")
    print(f"avg network latency:  {sample.avg_network_latency:.2f} cycles")
    if kind is NocKind.MESH_PRA:
        print(f"control/data packets: {sample.control_per_data:.2f}")
        print(f"lag distribution:     "
              + ", ".join(f"lag{k}={v:.0%}"
                          for k, v in sorted(sample.lag_distribution.items())))
        print(f"blocked fraction:     {sample.pra_blocked_fraction:.3%}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.noc.network import build_network
    from repro.params import NocParams
    from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

    pattern = TrafficPattern(args.pattern)
    kinds = ([_NOC_KINDS[args.noc]] if args.noc
             else list(NocKind))
    rates = [float(r) for r in args.rates.split(",")]
    header = "rate      " + "".join(f"{k.value:>10s}" for k in kinds)
    print(header)
    print("-" * len(header))
    for rate in rates:
        cells = []
        for kind in kinds:
            net = build_network(NocParams(kind=kind))
            SyntheticTraffic(net, pattern, rate, seed=args.seed).run(
                args.cycles
            )
            cells.append(f"{net.stats.avg_network_latency:10.2f}")
        print(f"{rate:<10.4f}" + "".join(cells))
    return 0


def _cmd_area(_args: argparse.Namespace) -> int:
    print(render_figure(figure8()))
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    print(render_figure(power_analysis(scale)))
    return 0


def _cmd_params(_args: argparse.Namespace) -> int:
    print(render_figure(table1()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Near-Ideal Networks-on-Chip for "
                    "Servers' (HPCA 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="reproduce the paper's figures")
    p.add_argument("--scale", default=None,
                   help="smoke | default | full (or REPRO_SCALE)")
    p.add_argument("--only", default=None,
                   help=f"comma list from {list(_FIGURES)}")
    p.add_argument("--json", default=None, help="also dump JSON here")
    p.add_argument("--bars", action="store_true",
                   help="render ASCII bar charts instead of tables")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("simulate", help="one full-system run")
    p.add_argument("workload")
    p.add_argument("--noc", default="mesh+pra", choices=sorted(_NOC_KINDS))
    p.add_argument("--warmup", type=int, default=1000)
    p.add_argument("--measure", type=int, default=5000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("sweep", help="synthetic load-latency sweep")
    p.add_argument("--noc", default=None, choices=sorted(_NOC_KINDS))
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--rates", default="0.002,0.005,0.01,0.02")
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("area", help="Figure 8 area model")
    p.set_defaults(func=_cmd_area)

    p = sub.add_parser("power", help="Section V-E power analysis")
    p.add_argument("--scale", default="smoke")
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser("params", help="echo the Table I configuration")
    p.set_defaults(func=_cmd_params)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
