"""Server workload models (CloudSuite) and synthetic traffic.

CloudSuite itself (full applications on a full-system simulator) is not
reproducible offline; following DESIGN.md's substitution table, each
workload is characterized by the parameters that drive the paper's
effect — instruction/data L1 miss rates, LLC hit ratio, base CPI (the
ILP proxy), and memory-level parallelism — with values drawn from the
CloudSuite characterization literature the paper cites ([2], [3], [7]).
"""

from repro.workloads.profiles import (
    CLOUDSUITE,
    WORKLOAD_NAMES,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern
from repro.workloads.tracegen import AccessTraceGenerator

__all__ = [
    "CLOUDSUITE",
    "WORKLOAD_NAMES",
    "WorkloadProfile",
    "get_profile",
    "SyntheticTraffic",
    "TrafficPattern",
    "AccessTraceGenerator",
]
