"""Routers: the base pipeline and the baseline mesh router.

The baseline mesh router (Table I) is a 1-stage speculative router: a
head flit that arrived by the start of cycle *t* performs routing, VC
allocation, and speculative crossbar allocation during *t*, then crosses
the crossbar and link during *t+1*, becoming allocation-eligible at the
next router at *t+2* — two cycles per hop at zero load.

Switch allocation is packet-granular: once a head flit wins an output
port, the port is held until the packet's tail is sent.  This keeps the
flits of a multi-flit packet contiguous on every link, which (a) matches
the paper's framing of in-network blocking ("the output port is busy
forwarding a multi-flit packet") and (b) makes the release time of a
blocked port deterministic whenever the downstream buffer can absorb the
in-flight packet — the property the Long Stall Detection unit exploits.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Dict, List, Optional, Set, Tuple

from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.ports import OutputPort
from repro.noc.topology import Direction, Port, as_port, port_name
from repro.noc.vc import InputUnit, VirtualChannel
from repro.trace.events import (
    EV_SWITCH_GRANT,
    EV_SWITCH_HOLD,
    EV_SWITCH_RELEASE,
    EV_VC_ALLOC,
)

#: Cycles from a flit's dequeue to the upstream credit increment
#: (one cycle switch+link traversal, one cycle credit wire).
CREDIT_DELAY = 2

#: Sort key for round-robin candidate ordering.
_RR_KEY = attrgetter("rr_key")


class BaseRouter:
    """Shared structure of all router types: input units and ports."""

    def __init__(self, node: int, network):
        self.node = node
        self.network = network
        self.topology = network.topology
        params = network.params.router
        self.num_vcs = params.vcs_per_port
        self.vc_depth = params.flits_per_vc
        self.input_units: Dict[Port, InputUnit] = {}
        self.output_ports: Dict[Port, OutputPort] = {}
        #: Flits currently buffered in this router (early-exit counter).
        self.active_flits = 0
        #: Round-robin state per output port: the (input port, vc index)
        #: key last granted, or None before the first grant.
        #: Advancing relative to the previous *grant* (instead of a
        #: monotonically increasing pointer indexed into a list whose
        #: membership changes every cycle) is what makes arbitration
        #: fair under churning candidate sets.
        self._rr: Dict[Port, Optional[Tuple[int, int]]] = {
            Direction.LOCAL: None
        }

        self.input_units[Direction.LOCAL] = InputUnit(
            Direction.LOCAL, self.num_vcs, self.vc_depth
        )
        # The topology's per-node port set decides this router's degree:
        # 2 on a ring stop, up to 4 on a mesh tile, more on a chiplet
        # gateway or an IO die.  Every listed port has a neighbor.
        for port in self.topology.ports(node):
            self.input_units[port] = InputUnit(
                port, self.num_vcs, self.vc_depth
            )
            self.output_ports[port] = self._make_output_port(port)
            self._rr[port] = None
        # Ejection port toward the NI (wired by the network).
        self.output_ports[Direction.LOCAL] = self._make_output_port(
            Direction.LOCAL
        )
        self._unit_list: List[InputUnit] = list(self.input_units.values())
        #: Direct handles into the topology's route memo (the candidate
        #: scan resolves a route per buffered head flit every cycle).
        self._dir_cache = self.topology._dir_cache
        self._route_base = node * self.topology.num_nodes
        self._rebuild_port_cache()

    def _rebuild_port_cache(self) -> None:
        """Refresh cached port and VC lists (call after adding ports)."""
        order = (Direction.LOCAL,) + tuple(self.topology.ports(self.node))
        #: Router-to-router output ports, in processing order.
        self.cardinal_ports: List[OutputPort] = [
            self.output_ports[p] for p in order
            if p is not Direction.LOCAL and p in self.output_ports
        ]
        #: All output ports in fixed processing order (LOCAL first).
        self.port_list: List[OutputPort] = [
            self.output_ports[p] for p in order if p in self.output_ports
        ]
        #: Every input VC, flattened in fixed unit order (hot-scan list).
        self._vc_list: List[VirtualChannel] = [
            vc for unit in self._unit_list for vc in unit.vcs
        ]

    def _make_output_port(self, direction: Port) -> OutputPort:
        return OutputPort(
            router=self,
            direction=direction,
            network=self.network,
            num_vcs=self.num_vcs,
            vc_depth=self.vc_depth,
        )

    # -- flit reception -----------------------------------------------------

    def receive_flit(self, direction: Port, vc_index: int, flit: Flit) -> None:
        self.input_units[direction].receive(flit, vc_index)
        self.active_flits += 1
        self.network.wake_router(self.node)

    def has_work(self) -> bool:
        """Whether this router must be stepped again next cycle."""
        return self.active_flits > 0

    def route_of(self, packet: Packet) -> Port:
        """Output port the packet takes from this router."""
        direction = self._dir_cache.get(self._route_base + packet.dst)
        if direction is None:
            direction = self.topology.route_port(self.node, packet.dst)
        return direction

    # -- per-cycle processing -----------------------------------------------

    def step(self, now: int) -> None:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    def _pop_and_send(
        self, port: OutputPort, vc: VirtualChannel, now: int,
        charge_credit: bool = True,
    ) -> Flit:
        """Dequeue the front flit of ``vc`` and transmit it on ``port``."""
        flit = vc.pop()
        self.active_flits -= 1
        feeder = vc.unit.feeder_port
        if feeder is not None:
            self.network.schedule_credit(
                now + CREDIT_DELAY, feeder, vc.index
            )
        port.send(flit, now, charge_credit=charge_credit)
        return flit

    def _collect_head_candidates(self) -> Dict[Port, List[VirtualChannel]]:
        """One pass over all input VCs: head flits grouped by the output
        port they request.  Built once per cycle and shared by all
        output ports (and by LSD in the PRA router)."""
        candidates: Dict[Port, List[VirtualChannel]] = {}
        dir_cache = self._dir_cache
        route_base = self._route_base
        for vc in self._vc_list:
            flits = vc.flits
            if not flits:
                continue
            front = flits[0]
            if not front.is_head:
                continue
            direction = dir_cache.get(route_base + front.packet.dst)
            if direction is None:
                direction = self.route_of(front.packet)
            group = candidates.get(direction)
            if group is None:
                candidates[direction] = [vc]
            else:
                group.append(vc)
        return candidates

    def _head_candidates(
        self, direction: Port, used_inputs: Set[Port]
    ) -> List[VirtualChannel]:
        """Input VCs whose front flit is a head routed to ``direction``."""
        return [
            vc
            for vc in self._collect_head_candidates().get(direction, [])
            if vc.unit.direction not in used_inputs
        ]

    def _round_robin_pick(
        self, direction: Port, candidates: List[VirtualChannel]
    ) -> VirtualChannel:
        """Grant the first candidate strictly after the last grantee in
        cyclic (input direction, vc index) order.

        The candidate list's membership changes every cycle, so the
        pointer must be anchored to the previously granted *key*, not an
        index into the list: an index-modulo scheme can starve a VC
        indefinitely when membership oscillates.
        """
        candidates.sort(key=_RR_KEY)
        last = self._rr[direction]
        choice = candidates[0]
        if last is not None:
            for vc in candidates:
                if vc.rr_key > last:
                    choice = vc
                    break
        self._rr[direction] = choice.rr_key
        return choice

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        """Mutable router state; wiring and caches are reconstruction."""
        return {
            "units": [
                [int(direction), [vc.state_dict(ctx) for vc in unit.vcs]]
                for direction, unit in self.input_units.items()
            ],
            "ports": [
                [int(direction), port.state_dict(ctx)]
                for direction, port in self.output_ports.items()
            ],
            "active_flits": self.active_flits,
            "rr": [
                [int(direction), list(key) if key is not None else None]
                for direction, key in self._rr.items()
            ],
        }

    def load_state(self, state: dict, ctx) -> None:
        for direction_value, vc_states in state["units"]:
            unit = self.input_units[as_port(direction_value)]
            for vc, vc_state in zip(unit.vcs, vc_states):
                vc.load_state(vc_state, ctx)
        for direction_value, port_state in state["ports"]:
            self.output_ports[as_port(direction_value)].load_state(
                port_state, ctx
            )
        self.active_flits = state["active_flits"]
        self._rr = {
            as_port(direction_value):
                tuple(key) if key is not None else None
            for direction_value, key in state["rr"]
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(node={self.node})"


class MeshRouter(BaseRouter):
    """The baseline 1-stage speculative mesh router."""

    def step(self, now: int) -> None:
        if self.active_flits == 0:
            return
        faults = self.network.faults
        if faults.enabled and faults.router_stalled(self.node, now):
            return
        used_inputs: Set[Port] = set()
        candidates = self._collect_head_candidates()
        for port in self.port_list:
            if faults.enabled and port.fault_stalled(now):
                continue
            if port.held_by is not None:
                self._advance_held(port, now, used_inputs)
            else:
                direction = port.direction
                group = candidates.get(direction)
                if group:
                    self._try_grant(port, direction, now, used_inputs, group)

    # -- switch traversal of an in-progress packet ---------------------------

    def _advance_held(
        self, port: OutputPort, now: int, used_inputs: Set[Port]
    ) -> None:
        vc = port.active_vc
        if vc is None:
            return
        front = vc.front()
        if front is None or front.packet is not port.held_by:
            self._trace_hold(port, now, "awaiting_flit")
            return  # next flit still in flight from upstream
        if vc.unit.direction in used_inputs:
            self._trace_hold(port, now, "input_busy")
            return
        if not port.has_credit_for(port.held_dst_vc):
            self._trace_hold(port, now, "no_credit")
            return
        used_inputs.add(vc.unit.direction)
        flit = self._pop_and_send(port, vc, now)
        if flit.is_tail:
            port.release()
            tracer = self.network.tracer
            if tracer.enabled:
                tracer.emit(now, EV_SWITCH_RELEASE, pid=flit.packet.pid,
                            node=self.node,
                            direction=port_name(port.direction))

    def _trace_hold(self, port: OutputPort, now: int, reason: str) -> None:
        """Record a held port that could not advance this cycle."""
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                now, EV_SWITCH_HOLD,
                pid=port.held_by.pid if port.held_by is not None else None,
                node=self.node,
                direction=port_name(port.direction),
                reason=reason,
            )

    # -- head-flit allocation (RC + VA + speculative SA in one cycle) --------

    def _try_grant(
        self, port: OutputPort, direction: Port, now: int,
        used_inputs: Set[Port],
        candidates: Optional[List[VirtualChannel]] = None,
    ) -> None:
        if candidates is None:
            candidates = self._head_candidates(direction, used_inputs)
            eligible = [
                vc for vc in candidates
                if self._may_grant(port, vc.front().packet, now)
            ]
        else:
            eligible = [
                vc for vc in candidates
                if vc.unit.direction not in used_inputs
                and self._may_grant(port, vc.front().packet, now)
            ]
        if not eligible:
            return
        vc = self._round_robin_pick(direction, eligible)
        packet = vc.front().packet
        self._grant(port, vc, packet, now, used_inputs)

    def _may_grant(self, port: OutputPort, packet: Packet, now: int) -> bool:
        """VC-allocation check; the PRA router layers reservation rules."""
        return port.can_allocate_vc(packet)

    def _grant(
        self,
        port: OutputPort,
        vc: VirtualChannel,
        packet: Packet,
        now: int,
        used_inputs: Set[Port],
    ) -> None:
        tracer = self.network.tracer
        if not port.is_ejection:
            port.downstream_vc(packet.vc_index).allocated_to = packet
            boundary = self.network.boundary
            if boundary is not None:
                # Sharded runs mirror VC allocations whose downstream
                # router lives in another shard (the write above landed
                # on a local replica; the owner must replay it).
                boundary.note_grant(port, packet, now)
            if tracer.enabled:
                tracer.emit(now, EV_VC_ALLOC, pid=packet.pid, node=self.node,
                            direction=port_name(port.direction),
                            vc=packet.vc_index)
        port.hold(packet, source_vc=vc)
        if tracer.enabled:
            tracer.emit(now, EV_SWITCH_GRANT, pid=packet.pid, node=self.node,
                        direction=port_name(port.direction),
                        input=port_name(vc.unit.direction),
                        input_vc=vc.index)
        used_inputs.add(vc.unit.direction)
        flit = self._pop_and_send(port, vc, now)
        if flit.is_tail:
            port.release()
            if tracer.enabled:
                tracer.emit(now, EV_SWITCH_RELEASE, pid=packet.pid,
                            node=self.node,
                            direction=port_name(port.direction))


class LayeredVcRouter(MeshRouter):
    """A mesh-pipelined router whose VCs are split into escape layers.

    Per-class VCs subdivide into ``vc_layers`` layers; a packet starts
    in layer 0 and is bumped to layer 1 the first time it crosses a
    *layer-advancing* output port (:meth:`_advances_layer`) — the ring's
    dateline link, or a chiplet's inter-chiplet link.  Choosing the
    advancing edges so that each layer's channel graph is acyclic makes
    the layered VC dependency graph acyclic, i.e. deadlock-free; the
    deadlock watchdog verifies this at runtime.

    The current layer rides on ``packet.ring_layer`` (named for its
    first user; it is simply "escape layer").
    """

    #: VC layers per message class (downstream VC = class * layers + layer).
    vc_layers = 2

    def _advances_layer(self, direction: Port) -> bool:
        """Does granting ``direction`` move the packet to layer 1?"""
        raise NotImplementedError

    def _dst_vc_for(self, packet: Packet, direction: Port) -> int:
        """Downstream VC: the packet's class layer, escaped if needed."""
        layer = packet.ring_layer
        if self._advances_layer(direction):
            layer = 1
        return packet.msg_class.value * self.vc_layers + layer

    def _may_grant(self, port: OutputPort, packet: Packet, now: int) -> bool:
        if port.is_ejection:
            return True
        return port.can_allocate_vc(
            packet, self._dst_vc_for(packet, port.direction)
        )

    def _grant(
        self,
        port: OutputPort,
        vc: VirtualChannel,
        packet: Packet,
        now: int,
        used_inputs: Set[Port],
    ) -> None:
        dst_vc: Optional[int] = None
        if not port.is_ejection:
            dst_vc = self._dst_vc_for(packet, port.direction)
            port.downstream_vc(dst_vc).allocated_to = packet
            if self._advances_layer(port.direction):
                packet.ring_layer = 1
        port.hold(packet, source_vc=vc, dst_vc=dst_vc)
        used_inputs.add(vc.unit.direction)
        flit = self._pop_and_send(port, vc, now)
        if flit.is_tail:
            port.release()
