"""Process-level fault injection: kill, hang, or corrupt a worker on
command.

The chaos harness (:mod:`repro.faults`) stresses the *simulated*
network; this module stresses the *simulator* — worker processes die,
hang, and babble exactly where a :class:`ProcessFaultPlan` says, so
every recovery path in :mod:`repro.resilience.supervisor` and the
supervised evaluation grid is deterministically testable.  Like
:class:`repro.faults.FaultSchedule`, a plan is a frozen value object:
the same plan against the same scenario reproduces the same failures
bit for bit, and the ``random`` constructor derives fault placement
from a seed via the shared splitmix64 hash.

Fault scopes:

* ``"shard"`` — fires inside a shard worker when its clock reaches
  ``at`` (gated on the worker's ``incarnation`` so a respawned worker
  does not re-fire a fault meant for its predecessor);
* ``"cell"`` — fires inside an evaluation-grid worker running cell
  ``target`` on attempt ``attempt`` (``None`` = every attempt, the
  poison-cell shape).

Actions: ``"kill"`` (``os._exit`` — models the OOM killer; downgraded
to an exception when the cell runs in the parent process), ``"hang"``
(sleep forever — models a livelocked worker; shard scope only),
``"garbage"`` (reply with a malformed message; shard scope only), and
``"error"`` (raise :class:`ProcessFaultError`; cell scope only).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.faults.schedule import mix01

#: Exit code of a fault-injected worker kill (recognizable in reports).
KILL_EXIT_CODE = 113

_SHARD_ACTIONS = ("kill", "hang", "garbage")
_CELL_ACTIONS = ("kill", "error")


class ProcessFaultError(RuntimeError):
    """An injected (or parent-downgraded) process fault."""


@dataclass(frozen=True)
class ProcFault:
    """One planned process failure."""

    scope: str          # "shard" | "cell"
    target: int         # shard index or cell index
    action: str         # see module docstring
    #: Shard scope: fire once the worker's clock reaches this cycle.
    at: int = 0
    #: Shard scope: which worker incarnation the fault applies to
    #: (0 = the first spawn; ``None`` = every respawn too).
    incarnation: Optional[int] = 0
    #: Cell scope: which attempt fails (0 = the first; ``None`` = every
    #: attempt — a poison cell).
    attempt: Optional[int] = 0

    def __post_init__(self):
        if self.scope not in ("shard", "cell"):
            raise ValueError(f"scope must be 'shard' or 'cell', "
                             f"got {self.scope!r}")
        allowed = _SHARD_ACTIONS if self.scope == "shard" else _CELL_ACTIONS
        if self.action not in allowed:
            raise ValueError(
                f"{self.scope} faults support actions {allowed}, "
                f"got {self.action!r}"
            )
        if self.target < 0:
            raise ValueError(f"target must be >= 0, got {self.target}")
        if self.at < 0:
            raise ValueError(f"at must be >= 0, got {self.at}")


@dataclass(frozen=True)
class ProcessFaultPlan:
    """A reproducible description of every process that will misbehave."""

    faults: Tuple[ProcFault, ...] = ()
    seed: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.faults

    def cell_action(self, index: int, attempt: int) -> Optional[str]:
        """Action for evaluation-grid cell ``index`` on ``attempt``."""
        for fault in self.faults:
            if fault.scope != "cell" or fault.target != index:
                continue
            if fault.attempt is None or fault.attempt == attempt:
                return fault.action
        return None

    @classmethod
    def random(cls, seed: int, shards: int, horizon: int,
               intensity: float = 1.0) -> "ProcessFaultPlan":
        """A seeded plan killing/hanging roughly ``intensity`` workers
        somewhere inside the injection window (chaos-style sweeps)."""
        if shards < 1:
            raise ValueError("shards must be positive")
        if horizon < 10:
            raise ValueError("horizon too short for a fault plan")
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        faults = []
        count = max(1, round(intensity)) if intensity else 0
        for k in range(count):
            shard = int(mix01(seed, 1, k) * shards)
            cycle = int(horizon // 10
                        + mix01(seed, 2, k) * (horizon * 7 // 10))
            action = _SHARD_ACTIONS[int(mix01(seed, 3, k) * 2)]  # kill/hang
            faults.append(ProcFault(scope="shard", target=min(shard,
                                                              shards - 1),
                                    action=action, at=cycle))
        return cls(faults=tuple(faults), seed=seed)


class ShardFaultDriver:
    """Worker-side executor of a plan's shard-scope faults.

    Lives inside one worker process; tracks which faults already fired
    so each fires at most once per incarnation.
    """

    def __init__(self, plan: Optional[ProcessFaultPlan], shard: int,
                 incarnation: int):
        self._armed = []
        if plan is not None:
            for fid, fault in enumerate(plan.faults):
                if fault.scope != "shard" or fault.target != shard:
                    continue
                if fault.incarnation is not None \
                        and fault.incarnation != incarnation:
                    continue
                self._armed.append((fid, fault))
        self._fired = set()

    def poll(self, cycle: int) -> Optional[str]:
        """The action due at ``cycle``, or None; fires each fault once."""
        for fid, fault in self._armed:
            if fid in self._fired or cycle < fault.at:
                continue
            self._fired.add(fid)
            return fault.action
        return None

    @staticmethod
    def execute_kill() -> None:  # pragma: no cover - exits the process
        """Die the way the OOM killer kills: no cleanup, no goodbye."""
        os._exit(KILL_EXIT_CODE)

    @staticmethod
    def execute_hang() -> None:  # pragma: no cover - parent terminates us
        """Go silent forever; the supervisor's heartbeat must notice."""
        while True:
            time.sleep(3600)
