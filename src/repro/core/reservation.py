"""Per-output-port reservation tables (the paper's bit vectors).

Figure 4 of the paper attaches to every output port a set of bit vectors
holding, for several future timeslots, whether the slot is proactively
allocated (*Valid*), which input port and VC the packet comes from
(*Input Select*, *Local VC Select*), and which downstream VC it goes to
(*Downstream VC Select*), shifting left one slot per cycle.

We model the same state as a small absolute-cycle-keyed table with a
bounded horizon.  Entries reference the :class:`~repro.core.plan.PraPlan`
they belong to, so a cancelled plan voids all its entries lazily (the
hardware equivalent: the valid bit is cleared when the expected flit
does not show up, freeing the slot for the local arbiter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.plan import PlanStep, PraPlan
from repro.params import MessageClass


@dataclass
class ReservationEntry:
    """One timeslot's allocation on one output port."""

    plan: PraPlan
    step: PlanStep
    #: Index of the packet flit expected in this slot.
    flit_index: int
    #: True at the router that reads the flit and drives the (multi-hop)
    #: traversal; False at a bypassed router, whose entry only pins its
    #: crossbar and output link for the slot.
    is_driver: bool

    @property
    def live(self) -> bool:
        return not self.plan.cancelled


class ReservationTable:
    """Future-timeslot allocations of a single output port."""

    def __init__(self, horizon: int):
        self.horizon = horizon
        self._slots: Dict[int, ReservationEntry] = {}

    def __len__(self) -> int:
        return len(self._slots)

    # -- queries ------------------------------------------------------------

    def entry_at(self, slot: int) -> Optional[ReservationEntry]:
        """Live entry at ``slot`` (purging a cancelled one)."""
        entry = self._slots.get(slot)
        if entry is None:
            return None
        if not entry.live:
            del self._slots[slot]
            return None
        return entry

    def is_free(self, slot: int) -> bool:
        return self.entry_at(slot) is None

    def window_free(self, first_slot: int, count: int) -> bool:
        """True when ``count`` consecutive slots are unallocated."""
        return all(self.is_free(first_slot + i) for i in range(count))

    def within_horizon(self, now: int, first_slot: int, count: int) -> bool:
        return first_slot + count - 1 <= now + self.horizon

    def has_pending(self, now: int) -> bool:
        """Any live allocation at or after ``now``?"""
        return any(
            slot >= now and entry.live
            for slot, entry in list(self._slots.items())
        )

    def has_pending_multiflit(self, now: int, msg_class: MessageClass) -> bool:
        """The paper's per-class multi-flit interleaving flag: true when
        a multi-flit packet of ``msg_class`` holds future slots here."""
        for slot, entry in list(self._slots.items()):
            if slot < now or not entry.live:
                continue
            packet = entry.plan.packet
            if packet.is_multi_flit and packet.msg_class is msg_class:
                return True
        return False

    # -- updates -------------------------------------------------------------

    def reserve(self, slot: int, entry: ReservationEntry) -> None:
        if slot in self._slots and self._slots[slot].live:
            raise RuntimeError("double-booked reservation slot")
        self._slots[slot] = entry
        entry.plan.table_entries.append((self, slot))

    def pop(self, slot: int) -> Optional[ReservationEntry]:
        """Remove and return the live entry for ``slot``, if any."""
        entry = self.entry_at(slot)
        if entry is not None:
            del self._slots[slot]
        return entry

    def purge_before(self, now: int) -> None:
        """Drop stale slots (shift-left of the bit vectors)."""
        stale = [slot for slot in self._slots if slot < now]
        for slot in stale:
            del self._slots[slot]
