"""The invariant suite: conservation, credits, leaks, and the watchdog.

Four families of checks, all pure observation:

* **Flit conservation** — every packet counted in flight by the stats
  layer is findable in exactly one progression of places (NI queues, VC
  buffers, latches, in-flight events), and no flit object appears
  twice.
* **Credit accounting** — for every (output port, VC): credits +
  reserved claims + downstream occupancy + in-flight arrivals + pending
  credit returns == buffer depth, and nothing is negative.
* **Reservation/claim leaks** — no live reservation-table entry, latch
  claim, input claim, or buffer claim survives past its timeslot or its
  plan's cancellation.
* **Deadlock/livelock watchdog** — if packets are in flight but no flit
  has moved for a whole window, snapshot the blocked-packet wait graph
  and raise a structured report instead of letting the run spin.

Checks read ``table._slots`` directly rather than through ``entry_at``
(which deletes cancelled entries as a side effect): an audit must never
mutate the state it audits.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.noc.network import _CREDIT, _EJECT
from repro.noc.topology import port_name

#: Cap on per-violation detail lists (wait graphs on big meshes).
_DETAIL_CAP = 64


def _shard_scope(net):
    """``(routers, interfaces, live)`` for the part of ``net`` these
    checks may reason about.

    A sharded run (:mod:`repro.shard`) steps only the rows its
    ``net.shard_view`` owns; rows adjacent to the stripe are passive
    replicas whose buffers mirror another shard's real state with a
    bounded timing skew, so audits must not treat them as local truth.
    ``live`` is the packet count physically inside the scope: plain
    ``stats.in_flight`` serially, the shard's resident count (local
    in-flight plus crossings in minus crossings out) when sharded.
    """
    view = getattr(net, "shard_view", None)
    if view is None:
        return net.routers, net.interfaces, net.stats.in_flight
    return (net.routers[view.first:view.last + 1],
            net.interfaces[view.first:view.last + 1],
            view.resident)


class InvariantViolation(RuntimeError):
    """A broken simulator invariant, with a cycle-accurate report."""

    def __init__(self, check: str, cycle: int, message: str,
                 details: Optional[Dict[str, Any]] = None):
        self.check = check
        self.cycle = cycle
        self.message = message
        self.details = details or {}
        super().__init__(f"[{check}] cycle {cycle}: {message}")

    def render(self) -> str:
        lines = [f"[{self.check}] cycle {self.cycle}: {self.message}"]
        for key, value in sorted(self.details.items()):
            if isinstance(value, list):
                lines.append(f"  {key}:")
                for item in value[:_DETAIL_CAP]:
                    lines.append(f"    - {item}")
                if len(value) > _DETAIL_CAP:
                    lines.append(f"    ... ({len(value) - _DETAIL_CAP} more)")
            else:
                lines.append(f"  {key}: {value}")
        return "\n".join(lines)


def wait_graph(net, now: int) -> Dict[str, Any]:
    """Snapshot who is blocked on whom (for the watchdog's report).

    Nodes are packet ids; an edge ``pid -> blocker`` means ``pid``'s
    head flit cannot advance because ``blocker`` holds the switch or
    the downstream VC it needs.  Cycles in this graph are deadlocks;
    an edge-free stall is a livelock or a starved resource.
    """
    routers, interfaces, _ = _shard_scope(net)
    blocked: List[Dict[str, Any]] = []
    edges: List[Tuple[int, int, str]] = []
    for router in routers:
        for unit in router.input_units.values():
            for vc in unit.vcs:
                front = vc.front()
                if front is None:
                    continue
                pkt = front.packet
                where = (f"router {router.node} in "
                         f"{port_name(unit.direction)}/vc{vc.index}")
                if not front.is_head:
                    blocked.append({"pid": pkt.pid, "node": router.node,
                                    "where": where, "reason": "mid_stream"})
                    continue
                direction = router.route_of(pkt)
                port = router.output_ports.get(direction)
                if port is None:
                    reason = "no_route"
                elif port.held_by is not None and port.held_by is not pkt:
                    reason = "switch_held"
                    edges.append((pkt.pid, port.held_by.pid, reason))
                elif not port.can_allocate_vc(pkt):
                    dvc = port.downstream_vc(pkt.vc_index)
                    owner = dvc.allocated_to if dvc is not None else None
                    if owner is not None and owner is not pkt:
                        reason = "vc_busy"
                        edges.append((pkt.pid, owner.pid, reason))
                    else:
                        reason = "no_credit"
                else:
                    reason = "arbitration"
                blocked.append({"pid": pkt.pid, "node": router.node,
                                "where": where, "reason": reason,
                                "wants": port_name(direction)})
        for direction, latch in getattr(router, "_latches", {}).items():
            for flit in latch:
                blocked.append({
                    "pid": flit.packet.pid, "node": router.node,
                    "where": f"router {router.node} latch {port_name(direction)}",
                    "reason": "latched",
                })
    for ni in interfaces:
        port = getattr(ni, "port", None)
        for queue in getattr(ni, "queues", ()):
            if not queue:
                continue
            pkt = queue[0]
            entry = {"pid": pkt.pid, "node": ni.node,
                     "where": f"NI {ni.node} queue", "reason": "ni_queue"}
            if port is not None and port.held_by is not None \
                    and port.held_by is not pkt:
                entry["reason"] = "ni_port_held"
                edges.append((pkt.pid, port.held_by.pid, "ni_port_held"))
            blocked.append(entry)
    # Ideal network: packet-level waiting queues instead of routers.
    for node, queue in enumerate(getattr(net, "_waiting", ())):
        for pkt in queue:
            blocked.append({"pid": pkt.pid, "node": node,
                            "where": f"node {node} (ideal)",
                            "reason": "link_busy"})
    return {
        "cycle": now,
        "blocked": blocked,
        "edges": [{"pid": a, "waits_on": b, "reason": r}
                  for a, b, r in edges],
        "cycles": _dependency_cycles(edges),
    }


def _dependency_cycles(
    edges: List[Tuple[int, int, str]]
) -> List[List[int]]:
    """Simple cycles in the pid -> blocker graph (first edge per pid)."""
    succ: Dict[int, int] = {}
    for a, b, _ in edges:
        succ.setdefault(a, b)
    cycles: List[List[int]] = []
    seen: set = set()
    for start in succ:
        if start in seen:
            continue
        path: List[int] = []
        on_path: Dict[int, int] = {}
        pid = start
        while pid in succ and pid not in seen:
            if pid in on_path:
                cycles.append(path[on_path[pid]:])
                break
            on_path[pid] = len(path)
            path.append(pid)
            pid = succ[pid]
        seen.update(path)
    return cycles


class InvariantSuite:
    """Attachable checker set; observes a network as it runs.

    ``raise_on_violation=True`` (the default) raises the first
    :class:`InvariantViolation` out of ``Network.step``; with ``False``
    violations accumulate in :attr:`violations` (the chaos CLI renders
    them at the end of a run).
    """

    def __init__(
        self,
        audit_period: int = 16,
        watchdog_window: int = 1024,
        watchdog_stride: int = 8,
        raise_on_violation: bool = True,
    ):
        if audit_period < 1 or watchdog_stride < 1:
            raise ValueError("audit periods must be positive")
        if watchdog_window < watchdog_stride:
            raise ValueError("watchdog window shorter than its stride")
        self.audit_period = audit_period
        self.watchdog_window = watchdog_window
        self.watchdog_stride = watchdog_stride
        self.raise_on_violation = raise_on_violation
        self.violations: List[InvariantViolation] = []
        self.audits_run = 0
        self._last_signature: Optional[int] = None
        self._last_progress_cycle = 0
        self._watchdog_fired = False

    def attach(self, network) -> None:
        network.attach(invariants=self)

    @property
    def watchdog_fired(self) -> bool:
        return self._watchdog_fired

    # -- per-cycle hook ---------------------------------------------------

    def on_cycle(self, net, now: int) -> None:
        if now % self.watchdog_stride == 0:
            self._check_progress(net, now)
        if now % self.audit_period == 0:
            self.audit(net, now)

    def on_skip(self, net, start: int, end: int) -> None:
        """Replay ``on_cycle`` for every cycle in ``[start, end)`` of a
        span the network proved idle (event-horizon time skipping).

        Nothing can mutate the network inside the span, so the watchdog
        signature is computed once and a clean audit stands in for all
        later audit boundaries; the per-boundary effects — progress
        bookkeeping, ``audits_run``, watchdog firings, violations — land
        exactly as if every cycle had been stepped, in the same order.
        """
        stride = self.watchdog_stride
        period = self.audit_period
        wd = start + (-start) % stride
        audit = start + (-start) % period
        _, _, in_flight = _shard_scope(net)
        sig = self._progress_signature(net) if in_flight else None
        audit_clean: Optional[bool] = None
        while True:
            boundary = min(wd, audit)
            if boundary >= end:
                break
            # Watchdog before audit at a shared boundary, as on_cycle.
            if boundary == wd:
                if not in_flight:
                    self._last_signature = None
                    self._last_progress_cycle = boundary
                elif sig != self._last_signature:
                    self._last_signature = sig
                    self._last_progress_cycle = boundary
                elif boundary - self._last_progress_cycle \
                        >= self.watchdog_window:
                    # Fires (and re-arms) through the stepped code path.
                    self._check_progress(net, boundary)
                wd += stride
            if boundary == audit:
                if audit_clean:
                    self.audits_run += 1
                else:
                    before = len(self.violations)
                    self.audit(net, boundary)
                    audit_clean = len(self.violations) == before
                audit += period

    # -- the watchdog -----------------------------------------------------

    def _check_progress(self, net, now: int) -> None:
        _, _, live = _shard_scope(net)
        if live == 0:
            self._last_signature = None
            self._last_progress_cycle = now
            return
        sig = self._progress_signature(net)
        if sig != self._last_signature:
            self._last_signature = sig
            self._last_progress_cycle = now
            return
        if now - self._last_progress_cycle >= self.watchdog_window:
            self._watchdog_fired = True
            self._last_progress_cycle = now  # one report per stuck window
            graph = wait_graph(net, now)
            self._fail(
                "watchdog", now,
                f"no flit progress for {self.watchdog_window}+ cycles "
                f"with {live} packets in flight",
                {
                    "in_flight": live,
                    "stalled_since": now - self.watchdog_window,
                    "blocked": graph["blocked"],
                    "edges": graph["edges"],
                    "dependency_cycles": graph["cycles"],
                },
            )

    @staticmethod
    def _progress_signature(net) -> int:
        """Monotone counter that advances iff some flit moved."""
        total = net.stats.packets_injected + net.stats.packets_ejected
        total += getattr(net, "_link_flits", 0)
        for router in net.routers:
            for port in router.output_ports.values():
                total += port.flits_sent
        for ni in net.interfaces:
            port = getattr(ni, "port", None)
            if port is not None:
                total += port.flits_sent
        return total

    # -- the audits -------------------------------------------------------

    def audit(self, net, now: int) -> None:
        """Run every structural audit against the current state."""
        self.audits_run += 1
        if not net.routers:
            return  # the ideal network has no flit-level state to audit
        scope = _shard_scope(net)
        pending = self._pending_events(net)
        self._audit_structure(net, now, scope)
        self._audit_conservation(net, now, pending, scope)
        self._audit_credits(net, now, pending, scope)
        self._audit_reservations(net, now, scope)

    @staticmethod
    def _pending_events(net) -> Dict[str, Any]:
        """Classify queued future events once per audit.

        Buckets are per-kind ``(arrivals, credits, ordered)`` queues;
        credits may additionally ride in the ordered queue (Mesh+PRA),
        so both places are counted.
        """
        arrivals: List[Tuple[Any, Any, int, Any]] = []
        ejects: List[Any] = []
        credits: Dict[Tuple[int, int], int] = {}
        for bucket_arrivals, bucket_credits, ordered in net._events.values():
            arrivals.extend(bucket_arrivals)
            for port, vc_index in bucket_credits:
                key = (id(port), vc_index)
                credits[key] = credits.get(key, 0) + 1
            for event in ordered:
                kind = event[0]
                if kind == _EJECT:
                    ejects.append(event[2])
                elif kind == _CREDIT:
                    key = (id(event[1]), event[2])
                    credits[key] = credits.get(key, 0) + 1
        return {"arrivals": arrivals, "ejects": ejects, "credits": credits}

    def _audit_structure(self, net, now: int, scope) -> None:
        """Per-router flit counters and VC occupancy sanity."""
        routers, _, _ = scope
        for router in routers:
            count = 0
            for unit in router.input_units.values():
                for vc in unit.vcs:
                    occ = len(vc.flits)
                    if occ > vc.capacity:
                        self._fail(
                            "vc_state", now,
                            f"VC over capacity at router {router.node} "
                            f"{port_name(unit.direction)}/vc{vc.index}: "
                            f"{occ}/{vc.capacity}",
                        )
                    pids = {f.packet.pid for f in vc.flits}
                    if len(pids) > 1:
                        self._fail(
                            "vc_state", now,
                            f"interleaved packets in one VC at router "
                            f"{router.node} {port_name(unit.direction)}"
                            f"/vc{vc.index}: pids {sorted(pids)}",
                        )
                    count += occ
            for latch in getattr(router, "_latches", {}).values():
                count += len(latch)
            if count != router.active_flits:
                self._fail(
                    "flit_counter", now,
                    f"router {router.node} active_flits={router.active_flits}"
                    f" but {count} flits buffered",
                )

    def _audit_conservation(self, net, now: int, pending, scope) -> None:
        """Every in-flight packet is findable; no flit exists twice."""
        routers, interfaces, live = scope
        view = getattr(net, "shard_view", None)
        found: Dict[int, str] = {}
        flit_ids: Dict[int, str] = {}

        def see_flit(flit, where: str) -> None:
            key = id(flit)
            if key in flit_ids:
                self._fail(
                    "flit_conservation", now,
                    f"flit {flit.packet.pid}.{flit.index} duplicated: "
                    f"in {flit_ids[key]} and {where}",
                )
            flit_ids[key] = where
            found.setdefault(flit.packet.pid, where)

        for router in routers:
            for unit in router.input_units.values():
                for vc in unit.vcs:
                    for flit in vc.flits:
                        see_flit(flit, f"router {router.node} buffer")
            for latch in getattr(router, "_latches", {}).values():
                for flit in latch:
                    see_flit(flit, f"router {router.node} latch")
        for ni in interfaces:
            for queue in ni.queues:
                for pkt in queue:
                    found.setdefault(pkt.pid, f"NI {ni.node} queue")
        for router, _, _, flit in pending["arrivals"]:
            # Sharded runs keep a local copy of cross-boundary sends so
            # the sender's replica buffers fill; those flits are the
            # receiving shard's to account for.
            if view is not None and not view.owns(router.node):
                continue
            see_flit(flit, f"in flight to router {router.node}")
        for flit in pending["ejects"]:
            see_flit(flit, "in flight to NI")
        expected = live
        if len(found) != expected:
            self._fail(
                "flit_conservation", now,
                f"{expected} packets in flight per stats but "
                f"{len(found)} found in the network",
                {"found": [f"pid {pid}: {where}"
                           for pid, where in sorted(found.items())]},
            )

    def _audit_credits(self, net, now: int, pending, scope) -> None:
        """credits + claims + occupancy + in-flight + returns == depth."""
        routers, interfaces, _ = scope
        in_flight: Dict[Tuple[int, int], int] = {}
        for router, direction, vc_index, _flit in pending["arrivals"]:
            if vc_index < 0:
                continue  # latch landings are not credit-charged
            feeder = router.input_units[direction].feeder_port
            if feeder is not None:
                key = (id(feeder), vc_index)
                in_flight[key] = in_flight.get(key, 0) + 1
        credits_pending = pending["credits"]

        def check_port(port, label: str) -> None:
            if port.is_ejection or port.downstream_unit is None:
                return
            for vc_index, vc in enumerate(port.downstream_unit.vcs):
                key = (id(port), vc_index)
                credits = port.credits[vc_index]
                reserved = port.reserved[vc_index]
                if credits < 0 or reserved < 0:
                    self._fail(
                        "credit_accounting", now,
                        f"negative credit state at {label} vc{vc_index}: "
                        f"credits={credits} reserved={reserved}",
                    )
                total = (credits + reserved + len(vc.flits)
                         + in_flight.get(key, 0)
                         + credits_pending.get(key, 0))
                if total != vc.capacity:
                    self._fail(
                        "credit_accounting", now,
                        f"credit imbalance at {label} vc{vc_index}: "
                        f"credits={credits} reserved={reserved} "
                        f"buffered={len(vc.flits)} "
                        f"in_flight={in_flight.get(key, 0)} "
                        f"returning={credits_pending.get(key, 0)} "
                        f"!= depth {vc.capacity}",
                    )

        for router in routers:
            for port in router.output_ports.values():
                check_port(
                    port,
                    f"router {router.node} port {port_name(port.direction)}",
                )
        for ni in interfaces:
            port = getattr(ni, "port", None)
            if port is not None:
                check_port(port, f"NI {ni.node} port")

    def _audit_reservations(self, net, now: int, scope) -> None:
        """No live timeslot in the past; no claim outliving its plan."""
        routers, _, _ = scope
        for router in routers:
            for port in router.output_ports.values():
                table = getattr(port, "reservations", None)
                if table is None:
                    continue
                for slot, entry in list(table._slots.items()):
                    if slot < now and entry.live:
                        self._fail(
                            "reservation_leak", now,
                            f"live reservation for packet "
                            f"{entry.plan.packet.pid} at router "
                            f"{router.node} port {port_name(port.direction)} "
                            f"was never executed (slot {slot} < {now})",
                        )
            for name in ("_latch_claims", "_input_claims"):
                claims = getattr(router, name, None)
                if claims is None:
                    continue
                for key, plan in list(claims.items()):
                    if plan.cancelled:
                        self._fail(
                            "claim_leak", now,
                            f"cancelled plan for packet {plan.packet.pid} "
                            f"still holds {name[1:]} {key} at router "
                            f"{router.node}",
                        )
            for port in router.output_ports.values():
                if port.is_ejection or port.downstream_unit is None:
                    continue
                for vc_index, reserved in enumerate(port.reserved):
                    if reserved <= 0:
                        continue
                    vc = port.downstream_unit.vcs[vc_index]
                    owner = vc.allocated_to
                    plan = owner.pra_plan if owner is not None else None
                    if (plan is None or plan.cancelled
                            or plan.vc_claim is None
                            or plan.vc_claim[0] is not port):
                        self._fail(
                            "buffer_claim_orphan", now,
                            f"{reserved} buffer credits reserved at router "
                            f"{router.node} port {port_name(port.direction)} "
                            f"vc{vc_index} with no live claiming plan",
                        )

    # -- violation plumbing ----------------------------------------------

    def _fail(self, check: str, cycle: int, message: str,
              details: Optional[Dict[str, Any]] = None) -> None:
        violation = InvariantViolation(check, cycle, message, details)
        self.violations.append(violation)
        if self.raise_on_violation:
            raise violation
