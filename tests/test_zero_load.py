"""Validation of the per-organization timing rules (Table I)."""

import pytest

from repro.harness import zero_load_table
from repro.params import NocKind
from repro.perf.system import simulate


class TestZeroLoadTable:
    @pytest.fixture(scope="class")
    def table(self):
        return zero_load_table(max_hops=7)

    def test_mesh_two_cycles_per_hop(self, table):
        rows = {int(r[0]): r for r in table["rows"]}
        # Column 1 is Mesh; consecutive hop counts add exactly 2 cycles.
        for hops in range(2, 8):
            assert rows[hops][1] - rows[hops - 1][1] == 2

    def test_smart_three_cycles_per_stop(self, table):
        rows = {int(r[0]): r for r in table["rows"]}
        # SMART covers 2 hops per 3-cycle stop: equal-latency hop pairs.
        assert rows[1][2] == rows[2][2]
        assert rows[3][2] == rows[4][2]
        assert rows[3][2] - rows[1][2] == 3

    def test_ideal_two_hops_per_cycle(self, table):
        rows = {int(r[0]): r for r in table["rows"]}
        assert rows[1][4] == rows[2][4]
        assert rows[3][4] - rows[1][4] == 1

    def test_pra_response_tracks_ideal_shape(self, table):
        rows = {int(r[0]): r for r in table["rows"]}
        # The announced response advances two tiles per cycle: going
        # from 5 to 7 hops costs one extra cycle, as on the ideal net.
        assert rows[7][3] - rows[5][3] == 1
        # And it beats the mesh by a widening margin.
        assert (rows[7][1] - rows[7][3]) > (rows[3][1] - rows[3][3])


class TestPerfSampleSerialization:
    def test_to_dict_round_trips_json(self):
        import json

        sample = simulate("MapReduce", NocKind.MESH_PRA, warmup=100,
                          measure=600, seed=1)
        data = sample.to_dict()
        text = json.dumps(data)
        back = json.loads(text)
        assert back["workload"] == "MapReduce"
        assert back["noc"] == "mesh+pra"
        assert back["ipc"] == pytest.approx(sample.ipc)
