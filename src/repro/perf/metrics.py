"""Small metric helpers shared by the harness: geomean, normalization."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's GMean bars)."""
    vals = [v for v in values]
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize_to(values: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Normalize a {name: value} mapping to one entry (e.g. to Mesh)."""
    base = values[baseline_key]
    if base == 0:
        raise ValueError("baseline value is zero")
    return {k: v / base for k, v in values.items()}


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))
