#!/usr/bin/env python3
"""A 64-core server chip running a CloudSuite-style workload.

Assembles the full system of the paper's evaluation — 64 cores with
L1-miss traces, a distributed 8 MB LLC with serial tag/data lookup,
four DDR3 channels, and the chosen NoC — and reports system performance
(aggregate instructions per cycle) for each network organization, plus
the PRA diagnostics of Section V-B.

Run:  python examples/server_chip.py [workload]
      (default workload: "Media Streaming")
"""

import sys

from repro.params import NocKind
from repro.perf.system import simulate
from repro.workloads.profiles import WORKLOAD_NAMES


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "Media Streaming"
    if workload not in WORKLOAD_NAMES:
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"choose from {list(WORKLOAD_NAMES)}")
    print(f"Workload: {workload} (64 cores, 8x8 mesh)\n")
    results = {}
    for kind in (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA,
                 NocKind.IDEAL):
        sample = simulate(workload, kind, warmup=500, measure=3000, seed=1)
        results[kind] = sample
        print(f"  {kind.value:10s} IPC = {sample.ipc:6.2f}   "
              f"avg network latency = {sample.avg_network_latency:5.2f}")
    mesh = results[NocKind.MESH].ipc
    pra = results[NocKind.MESH_PRA]
    print(f"\nNormalized to mesh: "
          + "  ".join(f"{k.value}={results[k].ipc / mesh:.3f}"
                      for k in results))
    print(f"\nMesh+PRA diagnostics (Section V-B):")
    print(f"  control packets per data packet: {pra.control_per_data:.2f}")
    print(f"  lag distribution at drop:        "
          + ", ".join(f"lag{k}={v:.0%}"
                      for k, v in sorted(pra.lag_distribution.items())))
    print(f"  time blocked behind proactive allocations: "
          f"{pra.pra_blocked_fraction:.2%} of network time")


if __name__ == "__main__":
    main()
