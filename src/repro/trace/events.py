"""Typed lifecycle events emitted by the simulator's trace layer.

One :class:`TraceEvent` is one observable step in the life of a data or
control packet.  The kinds cover exactly the decision points the paper's
latency-attribution argument depends on (allocation vs. traversal vs.
blocking, Section III and Figure 7):

===================== =====================================================
kind                  emitted when
===================== =====================================================
``packet_inject``     a packet's head flit wins the NI's local port
``link``              a flit is transmitted over an output port
``vc_alloc``          a head flit is granted a downstream virtual channel
``switch_grant``      a head flit wins packet-granular switch allocation
``switch_hold``       a held port cannot advance this cycle (with reason)
``switch_release``    a tail flit frees its output port
``control_inject``    a control packet enters (or is refused by) the latch
``control_segment``   a control packet finishes one multi-drop segment
``control_drop``      a control packet terminates (with reason and lag)
``reservation_commit``a plan step's timeslots/buffers are committed
``latch_bypass``      a pre-allocated flit is driven along a plan step
``eject``             a packet's tail flit reaches the destination NI
``fault``             the chaos harness injected a fault at a named site
===================== =====================================================

Events are deliberately flat (cycle, kind, pid, node + a small payload
dict) so they serialize to JSONL one line per event and reconstruct
without any simulator state.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

#: Data-packet lifecycle.
EV_PACKET_INJECT = "packet_inject"
EV_LINK = "link"
EV_VC_ALLOC = "vc_alloc"
EV_SWITCH_GRANT = "switch_grant"
EV_SWITCH_HOLD = "switch_hold"
EV_SWITCH_RELEASE = "switch_release"
EV_EJECT = "eject"

#: Control-network lifecycle (Mesh+PRA only).
EV_CONTROL_INJECT = "control_inject"
EV_CONTROL_SEGMENT = "control_segment"
EV_CONTROL_DROP = "control_drop"
EV_RESERVATION_COMMIT = "reservation_commit"
EV_LATCH_BYPASS = "latch_bypass"

#: Injected faults (the chaos harness; carries ``site`` and ``fault``).
EV_FAULT = "fault"

ALL_KINDS = (
    EV_PACKET_INJECT,
    EV_LINK,
    EV_VC_ALLOC,
    EV_SWITCH_GRANT,
    EV_SWITCH_HOLD,
    EV_SWITCH_RELEASE,
    EV_EJECT,
    EV_CONTROL_INJECT,
    EV_CONTROL_SEGMENT,
    EV_CONTROL_DROP,
    EV_RESERVATION_COMMIT,
    EV_LATCH_BYPASS,
    EV_FAULT,
)

#: Kinds that describe the construction and execution of a PRA plan;
#: the subsequence a timeline's ``plan_sequence`` reports.
PLAN_KINDS = (
    EV_CONTROL_SEGMENT,
    EV_RESERVATION_COMMIT,
    EV_LATCH_BYPASS,
)


class TraceEvent:
    """One timestamped observation; ``data`` holds kind-specific fields."""

    __slots__ = ("cycle", "kind", "pid", "node", "data", "seq")

    def __init__(
        self,
        cycle: int,
        kind: str,
        pid: Optional[int] = None,
        node: Optional[int] = None,
        data: Optional[Dict[str, Any]] = None,
        seq: int = 0,
    ):
        self.cycle = cycle
        self.kind = kind
        self.pid = pid
        self.node = node
        self.data = data or {}
        #: Emission order within the run; breaks same-cycle ties so a
        #: reconstructed timeline preserves causal order.
        self.seq = seq

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"cycle": self.cycle, "kind": self.kind,
                               "seq": self.seq}
        if self.pid is not None:
            out["pid"] = self.pid
        if self.node is not None:
            out["node"] = self.node
        if self.data:
            out.update(self.data)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        record = dict(record)
        cycle = record.pop("cycle")
        kind = record.pop("kind")
        seq = record.pop("seq", 0)
        pid = record.pop("pid", None)
        node = record.pop("node", None)
        return cls(cycle, kind, pid=pid, node=node, data=record, seq=seq)

    def __repr__(self) -> str:
        extra = f" {self.data}" if self.data else ""
        return (
            f"TraceEvent(c={self.cycle}, {self.kind}, pid={self.pid}, "
            f"node={self.node}{extra})"
        )


def write_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Dump ``events`` one JSON object per line; returns the count."""
    count = 0
    with open(path, "w") as fh:
        for event in events:
            fh.write(event.to_json())
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[TraceEvent]:
    """Load a JSONL trace back into :class:`TraceEvent` objects."""
    events: List[TraceEvent] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events
