"""Fault-injection unit tests: determinism, each fault class in
isolation, and reservation cleanup under control-packet loss.

The graceful-degradation bar (every fault class, packets still arrive,
resources still drain) is asserted here per class; the randomized
mixed-schedule sweeps live in test_chaos.py.
"""

import pytest

from repro.faults import (
    FaultInjector,
    FaultSchedule,
    LinkStall,
    NULL_FAULTS,
    SegmentBlackout,
    StallWindow,
    mix01,
)
from repro.noc.topology import Direction
from repro.params import NocKind
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern
from tests.helpers import assert_quiescent, make_network

NUM_NODES = 16  # 4x4, the size every test here uses


def run_with_faults(kind, schedule, rate=0.04, cycles=400, seed=2,
                    drain_limit=4000):
    """Drive synthetic traffic under ``schedule``; return (net, injector)."""
    net = make_network(kind)
    injector = FaultInjector(schedule)
    net.attach(faults=injector)
    SyntheticTraffic(
        net, TrafficPattern.UNIFORM_RANDOM, rate, seed=seed
    ).run(cycles)
    while net.stats.in_flight and net.cycle < drain_limit:
        net.step()
    return net, injector


# -- determinism ----------------------------------------------------------


def test_mix01_is_deterministic_and_bounded():
    assert mix01(1, 2, 3) == mix01(1, 2, 3)
    assert mix01(1, 2, 3) != mix01(2, 2, 3)
    assert mix01(1, 2, 3) != mix01(1, 3, 2)
    values = [mix01(7, i) for i in range(1000)]
    assert all(0.0 <= v < 1.0 for v in values)
    # Crude uniformity check: the mean of a uniform sample sits near 0.5.
    assert 0.45 < sum(values) / len(values) < 0.55


def test_random_schedule_is_reproducible():
    a = FaultSchedule.random(5, NUM_NODES, 500)
    b = FaultSchedule.random(5, NUM_NODES, 500)
    assert a == b
    assert FaultSchedule.random(6, NUM_NODES, 500) != a
    assert a.router_stalls and a.link_stalls and a.blackouts


def test_schedule_validation():
    with pytest.raises(ValueError):
        FaultSchedule(control_drop_prob=1.5)
    with pytest.raises(ValueError):
        StallWindow(node=0, start=0, duration=0)
    with pytest.raises(ValueError):
        LinkStall(node=0, direction=Direction.EAST, start=0, duration=-1)
    with pytest.raises(ValueError):
        SegmentBlackout(nodes=frozenset({1}), start=0, duration=0)
    with pytest.raises(ValueError):
        FaultSchedule.random(1, NUM_NODES, horizon=5)
    with pytest.raises(ValueError):
        FaultSchedule.random(1, NUM_NODES, 500, intensity=-1)
    assert FaultSchedule().is_empty
    assert not FaultSchedule.random(1, NUM_NODES, 500).is_empty


def test_null_injector_is_disabled():
    assert NULL_FAULTS.enabled is False
    assert FaultInjector(FaultSchedule()).enabled is True


def test_identical_schedules_replay_identically():
    """Fault decisions hash (seed, site, node, pid, cycle), so a replay
    reproduces bit for bit — provided packet numbering restarts too."""
    from repro.noc.packet import reset_packet_ids

    schedule = FaultSchedule.random(9, NUM_NODES, 400)
    reset_packet_ids()
    net_a, inj_a = run_with_faults(NocKind.MESH_PRA, schedule)
    reset_packet_ids()
    net_b, inj_b = run_with_faults(NocKind.MESH_PRA, schedule)
    assert net_a.stats.summary() == net_b.stats.summary()
    assert inj_a.counts == inj_b.counts


# -- each fault class in isolation ---------------------------------------


def test_total_control_drop_degrades_to_baseline():
    """With every control packet eaten at injection, PRA must behave
    exactly like a plain mesh: no plans, everything still delivered."""
    schedule = FaultSchedule(seed=1, control_drop_prob=1.0)
    net, injector = run_with_faults(NocKind.MESH_PRA, schedule)
    assert injector.counts["control_drop"] > 0
    assert net.stats.pra_planned_packets == 0
    assert net.stats.packets_ejected == net.stats.packets_injected
    assert_quiescent(net)


def test_ack_loss_keeps_committed_prefix_consistent():
    """Total ACK loss truncates every run at its first segment boundary;
    the already committed reservations must still execute and drain."""
    schedule = FaultSchedule(seed=1, ack_loss_prob=1.0)
    net, injector = run_with_faults(NocKind.MESH_PRA, schedule)
    assert injector.counts["ack_loss"] > 0
    assert net.stats.control_drop_reasons["fault_ack_loss"] > 0
    assert net.stats.packets_ejected == net.stats.packets_injected
    assert_quiescent(net)


def test_plan_expiry_refunds_all_claims():
    schedule = FaultSchedule(seed=1, plan_expiry_prob=1.0)
    net, injector = run_with_faults(NocKind.MESH_PRA, schedule)
    assert injector.counts["plan_expired"] > 0
    assert net.stats.packets_ejected == net.stats.packets_injected
    assert_quiescent(net)


def test_segment_drop_never_strands_resources():
    schedule = FaultSchedule(seed=3, segment_drop_prob=0.5)
    net, injector = run_with_faults(NocKind.MESH_PRA, schedule)
    assert injector.counts["control_drop"] > 0
    assert net.stats.control_drop_reasons["fault_drop"] > 0
    assert net.stats.packets_ejected == net.stats.packets_injected
    assert_quiescent(net)


@pytest.mark.parametrize("kind", [NocKind.MESH, NocKind.MESH_PRA])
def test_router_stall_window_recovers(kind):
    schedule = FaultSchedule(router_stalls=(
        StallWindow(node=5, start=50, duration=40),
        StallWindow(node=10, start=80, duration=25),
    ))
    net, _ = run_with_faults(kind, schedule)
    assert net.stats.packets_ejected == net.stats.packets_injected
    assert_quiescent(net)


@pytest.mark.parametrize("kind",
                         [NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA])
def test_link_stall_window_recovers(kind):
    schedule = FaultSchedule(link_stalls=(
        LinkStall(node=5, direction=Direction.EAST, start=50, duration=40),
        LinkStall(node=6, direction=Direction.WEST, start=60, duration=30),
    ))
    net, _ = run_with_faults(kind, schedule)
    assert net.stats.packets_ejected == net.stats.packets_injected
    assert_quiescent(net)


def test_blackout_degrades_control_only():
    """A full control blackout may stop new plans but must not touch
    data delivery."""
    schedule = FaultSchedule(blackouts=(
        SegmentBlackout(nodes=frozenset(range(NUM_NODES)), start=40,
                        duration=80),
    ))
    net, injector = run_with_faults(NocKind.MESH_PRA, schedule, rate=0.05)
    assert injector.counts["control_blackout"] > 0
    assert net.stats.packets_ejected == net.stats.packets_injected
    assert_quiescent(net)


def test_link_stall_refuses_overlapping_reservations():
    """The control network must not commit timeslots onto a link whose
    stall window overlaps them (they would expire unexecuted)."""
    injector = FaultInjector(FaultSchedule(link_stalls=(
        LinkStall(node=3, direction=Direction.EAST, start=100, duration=20),
    )))
    assert injector.link_window_blocked(3, Direction.EAST, 110, 2)
    assert injector.link_window_blocked(3, Direction.EAST, 98, 5)
    assert injector.link_window_blocked(3, Direction.EAST, 119, 1)
    assert not injector.link_window_blocked(3, Direction.EAST, 120, 4)
    assert not injector.link_window_blocked(3, Direction.EAST, 95, 5)
    assert not injector.link_window_blocked(3, Direction.WEST, 110, 2)
    assert not injector.link_window_blocked(4, Direction.EAST, 110, 2)


def test_plan_expiry_lands_strictly_before_start_slot():
    injector = FaultInjector(FaultSchedule(seed=3, plan_expiry_prob=1.0))
    for pid in range(50):
        for start in range(3, 15):
            expire_at = injector.plan_expiry(pid, now=0, start_slot=start)
            assert expire_at is not None
            assert 0 < expire_at < start
    # Too tight a window: cancelling at/after the start slot could
    # strand latched flits, so no expiry is scheduled at all.
    assert injector.plan_expiry(1, now=0, start_slot=1) is None
    assert injector.plan_expiry(1, now=5, start_slot=6) is None
