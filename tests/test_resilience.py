"""Supervised execution: every recovery path, digest-verified.

The resilience layer's correctness oracle is the same one the shard
layer uses: the pinned golden digests.  A supervised sharded run whose
workers were killed, hung, or babbling must still hash to the serial
digest — recovery is only correct if it is invisible in the statistics.
For the evaluation grid the oracle is bit-identical samples: a sweep
with a poison cell or a crashed pool must reproduce the unfaulted
samples for every cell it completes.
"""

from __future__ import annotations

import pytest

from repro.harness import runner
from repro.harness.runner import EvaluationScale, evaluation_grid
from repro.params import NocKind
from repro.resilience import (
    ProcFault,
    ProcessFaultPlan,
    RetryPolicy,
    clear_last_report,
    last_run_report,
)
from repro.shard import GOLDEN_SPEC, run_sharded
from tests.test_golden_determinism import GOLDEN_NETWORK

GOLDEN_MESH = GOLDEN_NETWORK[NocKind.MESH]

#: No backoff sleeps, recovery points every 200 cycles — the recovery
#: paths themselves are what these tests time-bound, not the waits.
FAST = RetryPolicy(max_retries=2, heartbeat_timeout=30.0,
                   quarantine_after=2, backoff_base=0.0,
                   recovery_interval=200)


def _kill(shard: int, at: int, incarnation=0) -> ProcessFaultPlan:
    return ProcessFaultPlan(faults=(
        ProcFault(scope="shard", target=shard, action="kill", at=at,
                  incarnation=incarnation),
    ))


# -- sharded-run recovery ---------------------------------------------------


def test_supervised_clean_run_matches_golden():
    result = run_sharded(GOLDEN_SPEC, 2, backend="process", policy=FAST)
    assert result.digest == GOLDEN_MESH
    assert result.backend == "process"
    assert result.report is not None
    assert result.report.clean
    # 800 injection cycles at a 200-cycle interval: barriers at 200,
    # 400, and 600.
    assert result.report.recovery_points == 3


def test_killed_worker_restored_from_recovery_point():
    """A worker killed mid-run (the OOM-killer shape) is respawned from
    the last cycle-barrier recovery point and the run still reproduces
    the pinned golden digest bit for bit."""
    result = run_sharded(GOLDEN_SPEC, 2, backend="process", policy=FAST,
                         faults=_kill(shard=1, at=300))
    assert result.digest == GOLDEN_MESH
    assert result.backend == "process"
    report = result.report
    assert report.respawns >= 1
    assert report.degraded is None
    assert any(f.kind == "died" for f in report.failures)
    # The diagnosis names the worker and its exit code.
    died = next(f for f in report.failures if f.kind == "died")
    assert died.scope == "shard"
    assert died.target == "1"
    assert "exit code 113" in died.detail


def test_hung_worker_detected_by_heartbeat():
    """A worker that goes silent trips the heartbeat timeout, is
    diagnosed as hung, and the pool recovers from the last barrier."""
    policy = RetryPolicy(max_retries=2, heartbeat_timeout=0.5,
                         backoff_base=0.0, recovery_interval=200)
    plan = ProcessFaultPlan(faults=(
        ProcFault(scope="shard", target=0, action="hang", at=300),
    ))
    result = run_sharded(GOLDEN_SPEC, 2, backend="process", policy=policy,
                         faults=plan)
    assert result.digest == GOLDEN_MESH
    report = result.report
    assert report.respawns >= 1
    assert report.degraded is None
    assert any(f.kind == "hung" for f in report.failures)


def test_garbage_reply_diagnosed_and_recovered():
    plan = ProcessFaultPlan(faults=(
        ProcFault(scope="shard", target=1, action="garbage", at=300),
    ))
    result = run_sharded(GOLDEN_SPEC, 2, backend="process", policy=FAST,
                         faults=plan)
    assert result.digest == GOLDEN_MESH
    assert any(f.kind == "garbage" for f in result.report.failures)
    assert result.report.degraded is None


def test_degrades_to_serial_when_retries_exhaust():
    """A fault that kills the worker on *every* incarnation defeats
    respawning; the supervisor must degrade to a serial continuation
    from the last recovery point — and still hit the golden digest."""
    policy = RetryPolicy(max_retries=1, backoff_base=0.0,
                         recovery_interval=200)
    result = run_sharded(GOLDEN_SPEC, 2, backend="process", policy=policy,
                         faults=_kill(shard=1, at=300, incarnation=None))
    assert result.digest == GOLDEN_MESH
    assert result.backend == "serial-degraded"
    report = result.report
    assert report.degraded is not None
    assert "cycle 200" in report.degraded
    assert len(report.failures) == 2  # attempt 1 retried, attempt 2 gave up


def test_checkpoint_survives_supervised_recovery():
    """checkpoint_at through the supervised backend, with a kill before
    the checkpoint barrier: the merged checkpoint must still restore to
    the golden digest (same contract as test_shard_equivalence)."""
    from repro.checkpoint.snapshot import restore_network
    from repro.shard import summary_digest

    result = run_sharded(GOLDEN_SPEC, 2, backend="process", policy=FAST,
                         checkpoint_at=400, faults=_kill(shard=0, at=300))
    assert result.digest == GOLDEN_MESH
    assert result.checkpoint is not None
    net, traffic = restore_network(result.checkpoint)
    assert net.cycle == 400
    traffic.run(GOLDEN_SPEC.cycles - 400)
    net.drain(max_cycles=GOLDEN_SPEC.drain)
    assert summary_digest(net.stats.summary()) == GOLDEN_MESH


def test_recovery_counters_reach_network_stats():
    """publish() mirrors recovery counters onto grid_stats, where the
    summary surfaces them — but only when nonzero."""
    before = runner.grid_stats.worker_respawns
    result = run_sharded(GOLDEN_SPEC, 2, backend="process", policy=FAST,
                         faults=_kill(shard=1, at=300))
    assert runner.grid_stats.worker_respawns == before + result.report.respawns
    assert "worker_respawns" in runner.grid_stats.summary()
    # The supervised run's own merged stats stay digest-clean: recovery
    # bookkeeping never leaks into the simulation summary.
    assert "worker_respawns" not in result.summary


def test_fault_injection_requires_process_backend():
    with pytest.raises(ValueError, match="process backend"):
        run_sharded(GOLDEN_SPEC, 2, backend="inline",
                    faults=_kill(shard=0, at=100))
    with pytest.raises(ValueError, match="multi-shard"):
        run_sharded(GOLDEN_SPEC, 1, backend="process", policy=FAST,
                    faults=_kill(shard=0, at=100))


# -- evaluation-grid supervision --------------------------------------------

TINY = EvaluationScale("resilience-tiny", warmup=20, measure=80, num_seeds=1)
WORKLOADS = ("Data Serving", "Web Search")
KINDS = (NocKind.MESH, NocKind.IDEAL)
# Cell order is workload-major: Data/mesh, Data/ideal, Web/mesh, Web/ideal.
POISON_INDEX = 1
POISON_LABEL = "Data Serving/ideal seed 1"


@pytest.fixture(scope="module")
def baseline_grid():
    """The unfaulted samples every fault-injected sweep must reproduce."""
    grid = evaluation_grid(workloads=WORKLOADS, kinds=KINDS, scale=TINY,
                           store=None)
    return {key: sample.to_state() for key, sample in grid.items()}


def test_poison_cell_quarantined_sweep_completes(baseline_grid):
    """A cell failing on every attempt is quarantined after
    ``quarantine_after`` failures; the sweep finishes and every other
    cell is bit-identical to the unfaulted baseline."""
    clear_last_report()
    plan = ProcessFaultPlan(faults=(
        ProcFault(scope="cell", target=POISON_INDEX, action="error",
                  attempt=None),
    ))
    grid = evaluation_grid(workloads=WORKLOADS, kinds=KINDS, scale=TINY,
                           store=None, faults=plan, policy=FAST)
    report = last_run_report()
    assert len(report.quarantined) == 1
    assert report.quarantined[0].target == POISON_LABEL
    assert report.quarantined[0].attempts == FAST.quarantine_after
    assert not report.completed
    # The poisoned key is dropped; the other three cells are intact
    # and bit-identical.
    assert ("Data Serving", NocKind.IDEAL) not in grid
    assert len(grid) == len(baseline_grid) - 1
    for key, sample in grid.items():
        assert sample.to_state() == baseline_grid[key]


def test_transient_cell_failure_retries_to_full_grid(baseline_grid):
    """A cell that fails only on its first attempt recovers on retry:
    one retry recorded, nothing quarantined, full grid, identical."""
    clear_last_report()
    plan = ProcessFaultPlan(faults=(
        ProcFault(scope="cell", target=2, action="error", attempt=0),
    ))
    grid = evaluation_grid(workloads=WORKLOADS, kinds=KINDS, scale=TINY,
                           store=None, faults=plan, policy=FAST)
    report = last_run_report()
    assert report.retries == 1
    assert not report.quarantined
    assert report.completed
    assert {key: s.to_state() for key, s in grid.items()} == baseline_grid


def test_grid_pool_rebuilt_after_worker_death(baseline_grid, monkeypatch):
    """A pool worker dying mid-cell (os._exit — BrokenProcessPool in
    the parent) triggers one pool rebuild; outstanding cells are
    resubmitted and the finished grid matches the baseline exactly."""
    monkeypatch.setenv("REPRO_JOBS", "2")
    clear_last_report()
    plan = ProcessFaultPlan(faults=(
        ProcFault(scope="cell", target=0, action="kill", attempt=0),
    ))
    grid = evaluation_grid(workloads=WORKLOADS, kinds=KINDS, scale=TINY,
                           store=None, faults=plan, policy=FAST)
    report = last_run_report()
    assert report.pool_rebuilds == 1
    assert report.degraded is None
    assert any(f.scope == "pool" and f.kind == "died"
               for f in report.failures)
    assert {key: s.to_state() for key, s in grid.items()} == baseline_grid


def test_parallel_poison_cell_quarantines_exactly_one(baseline_grid,
                                                      monkeypatch):
    """The acceptance scenario: a parallel sweep with one poison cell
    AND one killed worker finishes, quarantines exactly the poison
    cell, and reproduces every other sample bit for bit."""
    monkeypatch.setenv("REPRO_JOBS", "2")
    clear_last_report()
    plan = ProcessFaultPlan(faults=(
        ProcFault(scope="cell", target=POISON_INDEX, action="error",
                  attempt=None),
        ProcFault(scope="cell", target=3, action="kill", attempt=0),
    ))
    grid = evaluation_grid(workloads=WORKLOADS, kinds=KINDS, scale=TINY,
                           store=None, faults=plan, policy=FAST)
    report = last_run_report()
    assert [f.target for f in report.quarantined] == [POISON_LABEL]
    assert report.pool_rebuilds >= 1
    assert ("Data Serving", NocKind.IDEAL) not in grid
    for key, sample in grid.items():
        assert sample.to_state() == baseline_grid[key]


def test_faulted_sweeps_bypass_grid_cache(baseline_grid):
    """A fault-injected sweep must neither read nor seed the in-process
    grid cache: a clean sweep right after a poisoned one sees every
    cell again."""
    plan = ProcessFaultPlan(faults=(
        ProcFault(scope="cell", target=POISON_INDEX, action="error",
                  attempt=None),
    ))
    poisoned = evaluation_grid(workloads=WORKLOADS, kinds=KINDS, scale=TINY,
                               store=None, faults=plan, policy=FAST)
    assert len(poisoned) == len(baseline_grid) - 1
    clean = evaluation_grid(workloads=WORKLOADS, kinds=KINDS, scale=TINY,
                            store=None)
    assert {key: s.to_state() for key, s in clean.items()} == baseline_grid


def test_streaming_puts_survive_mid_sweep_crash(tmp_path, monkeypatch):
    """Finished cells stream into the store as they complete, so a
    crash mid-sweep (here: a KeyboardInterrupt after two cells) keeps
    the work already done."""
    from repro.checkpoint.store import CellStore

    store = CellStore(str(tmp_path / "cells"))
    real = runner._simulate_cell
    done = []

    def flaky(cell):
        if len(done) == 2:
            raise KeyboardInterrupt
        sample = real(cell)
        done.append(cell)
        return sample

    monkeypatch.setattr(runner, "_simulate_cell", flaky)
    scale = EvaluationScale("resilience-stream", warmup=20, measure=80,
                            num_seeds=1)
    with pytest.raises(KeyboardInterrupt):
        evaluation_grid(workloads=WORKLOADS, kinds=KINDS, scale=scale,
                        store=store, policy=FAST)
    assert len(store) == 2
    # The persisted cells resume a rerun: only the missing ones run.
    monkeypatch.setattr(runner, "_simulate_cell", real)
    grid = evaluation_grid(workloads=WORKLOADS, kinds=KINDS, scale=scale,
                           store=store, policy=FAST)
    assert len(grid) == len(WORKLOADS) * len(KINDS)
    assert len(store) == len(WORKLOADS) * len(KINDS)


# -- policy and plan validation ---------------------------------------------


def test_retry_policy_from_env(monkeypatch):
    for var in ("REPRO_MAX_RETRIES", "REPRO_HEARTBEAT_TIMEOUT",
                "REPRO_QUARANTINE_AFTER", "REPRO_RETRY_BACKOFF",
                "REPRO_RECOVERY_INTERVAL"):
        monkeypatch.delenv(var, raising=False)
    assert RetryPolicy.from_env() == RetryPolicy()
    monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
    monkeypatch.setenv("REPRO_HEARTBEAT_TIMEOUT", "2.5")
    monkeypatch.setenv("REPRO_QUARANTINE_AFTER", "1")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    monkeypatch.setenv("REPRO_RECOVERY_INTERVAL", "0")
    policy = RetryPolicy.from_env()
    assert policy == RetryPolicy(max_retries=5, heartbeat_timeout=2.5,
                                 quarantine_after=1, backoff_base=0.0,
                                 recovery_interval=None)


@pytest.mark.parametrize("var,raw,match", [
    ("REPRO_MAX_RETRIES", "-1", "REPRO_MAX_RETRIES must be"),
    ("REPRO_MAX_RETRIES", "two", "REPRO_MAX_RETRIES must be"),
    ("REPRO_HEARTBEAT_TIMEOUT", "0", "REPRO_HEARTBEAT_TIMEOUT must be"),
    ("REPRO_QUARANTINE_AFTER", "0", "REPRO_QUARANTINE_AFTER must be"),
    ("REPRO_RETRY_BACKOFF", "-0.1", "REPRO_RETRY_BACKOFF must be"),
    ("REPRO_RECOVERY_INTERVAL", "soon", "REPRO_RECOVERY_INTERVAL must be"),
])
def test_retry_policy_env_validation(monkeypatch, var, raw, match):
    monkeypatch.setenv(var, raw)
    with pytest.raises(ValueError, match=match):
        RetryPolicy.from_env()


def test_retry_policy_backoff_and_barriers():
    policy = RetryPolicy(backoff_base=0.05)
    assert policy.backoff(1) == 0.05
    assert policy.backoff(3) == 0.2
    assert policy.backoff(0) == 0.0
    assert RetryPolicy(recovery_interval=200).barriers(800) == [200, 400, 600]
    # Auto interval: a quarter of the injection window.
    assert RetryPolicy().barriers(800) == [200, 400, 600]
    with pytest.raises(ValueError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError, match="recovery_interval"):
        RetryPolicy(recovery_interval=0)


def test_proc_fault_validation():
    with pytest.raises(ValueError, match="scope must be"):
        ProcFault(scope="node", target=0, action="kill")
    with pytest.raises(ValueError, match="shard faults support"):
        ProcFault(scope="shard", target=0, action="error")
    with pytest.raises(ValueError, match="cell faults support"):
        ProcFault(scope="cell", target=0, action="hang")
    with pytest.raises(ValueError, match="target must be"):
        ProcFault(scope="shard", target=-1, action="kill")


def test_fault_plan_cell_lookup_and_random():
    plan = ProcessFaultPlan(faults=(
        ProcFault(scope="cell", target=2, action="error", attempt=None),
        ProcFault(scope="cell", target=3, action="kill", attempt=1),
    ))
    assert plan.cell_action(2, 0) == "error"
    assert plan.cell_action(2, 7) == "error"
    assert plan.cell_action(3, 1) == "kill"
    assert plan.cell_action(3, 0) is None
    assert plan.cell_action(0, 0) is None
    # Seeded plans are deterministic values.
    assert ProcessFaultPlan.random(7, shards=4, horizon=800) \
        == ProcessFaultPlan.random(7, shards=4, horizon=800)
    for fault in ProcessFaultPlan.random(7, shards=4, horizon=800).faults:
        assert fault.scope == "shard"
        assert 0 <= fault.target < 4
        assert 80 <= fault.at < 720


# -- REPRO_WALL_LIMIT validation (satellite) --------------------------------


@pytest.mark.parametrize("raw", ["junk", "-1", "0"])
def test_wall_limit_rejects_junk(monkeypatch, raw):
    monkeypatch.setenv("REPRO_WALL_LIMIT", raw)
    with pytest.raises(ValueError, match="REPRO_WALL_LIMIT must be"):
        runner._wall_limit()


def test_wall_limit_unset_or_valid(monkeypatch):
    monkeypatch.delenv("REPRO_WALL_LIMIT", raising=False)
    assert runner._wall_limit() is None
    monkeypatch.setenv("REPRO_WALL_LIMIT", "")
    assert runner._wall_limit() is None
    monkeypatch.setenv("REPRO_WALL_LIMIT", "7.25")
    assert runner._wall_limit() == 7.25


def test_cli_exits_2_on_bad_wall_limit(monkeypatch, capsys):
    from repro.cli import main

    # Validation fails fast, before any simulation work starts.
    monkeypatch.setenv("REPRO_WALL_LIMIT", "fast")
    assert main(["bench", "--no-macro"]) == 2
    assert "REPRO_WALL_LIMIT must be" in capsys.readouterr().err
