"""Ablation A1: which PRA trigger carries the win?

The paper credits two windows — the LLC-hit window and in-network
blocking (LSD).  This ablation runs Mesh+PRA with each trigger disabled
to attribute the gain.  Expected: the LLC trigger dominates (responses
are the multi-flit, latency-critical packets), LSD adds on top.
"""

from dataclasses import replace

from repro.harness.reporting import format_table
from repro.params import ChipParams, NocKind, PraParams
from repro.perf.system import simulate

WORKLOAD = "Media Streaming"


def _run(scale, use_llc, use_lsd, use_memory=False):
    base = ChipParams()
    pra = PraParams(use_llc_trigger=use_llc, use_lsd_trigger=use_lsd,
                    use_memory_trigger=use_memory)
    params = replace(base, noc=replace(base.noc, kind=NocKind.MESH_PRA,
                                       pra=pra))
    return simulate(WORKLOAD, NocKind.MESH_PRA, warmup=scale.warmup,
                    measure=scale.measure, seed=1, chip_params=params)


def test_ablation_triggers(benchmark, save_result, scale):
    def run_all():
        mesh = simulate(WORKLOAD, NocKind.MESH, warmup=scale.warmup,
                        measure=scale.measure, seed=1)
        return {
            "mesh": mesh,
            "none": _run(scale, False, False),
            "llc-only": _run(scale, True, False),
            "lsd-only": _run(scale, False, True),
            "both": _run(scale, True, True),
            "both+memory": _run(scale, True, True, use_memory=True),
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    base = results["mesh"].ipc
    rows = [
        [name, s.ipc / base, s.avg_network_latency, s.control_packets]
        for name, s in results.items()
    ]
    save_result(
        "ablation_triggers",
        format_table(["Config", "Perf vs Mesh", "NetLatency", "CtrlPkts"],
                     rows, "Ablation A1: PRA trigger attribution"),
    )
    # Disabling both triggers degenerates to the mesh.
    assert abs(results["none"].ipc / base - 1.0) < 0.03
    assert results["none"].control_packets == 0
    # Each trigger alone helps; both together do not hurt.
    assert results["llc-only"].ipc > results["none"].ipc
    assert results["both"].ipc >= results["lsd-only"].ipc * 0.98
    # The LLC window is the dominant contributor.
    assert results["llc-only"].ipc >= results["lsd-only"].ipc
    # The memory-response extension never hurts.
    assert results["both+memory"].ipc >= results["both"].ipc * 0.98
