"""LLC slices: serial tag + data lookup, the PRA trigger point.

The paper (Section III, citing [9]-[11]) assumes an energy-optimized LLC
with a serial tag lookup (1 cycle) followed by a data lookup (4 cycles);
the whole data-lookup window is available for proactive resource
allocation.  On a hit, the LLC controller notifies the network interface
at tag-lookup completion, which is exactly when this model calls
``network.announce(response, ready_in=data_lookup_cycles)``.

A slice services lookups serially (one SRAM bank per tile): an arriving
request waits for the bank, spends one cycle in the tag array, and on a
hit another four cycles in the data array.  Misses release the bank at
tag-done and go to a memory channel.

Hit/miss can be decided two ways:

* **statistical** (default for paper-scale runs): drawn from the
  workload profile's LLC hit ratio;
* **detailed**: a real :class:`~repro.tile.cache.SetAssociativeCache`
  models the slice contents (used by examples and tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.noc.packet import Packet, packet_pool
from repro.params import MessageClass
from repro.tile.address import block_of
from repro.tile.cache import SetAssociativeCache

if TYPE_CHECKING:  # pragma: no cover
    from repro.tile.chip import Chip

#: Module-wide transaction id counter; a plain int (not itertools.count)
#: so checkpoints can save and restore it.
_next_tid = 0


def _new_tid() -> int:
    global _next_tid
    tid = _next_tid
    _next_tid += 1
    return tid


def peek_next_tid() -> int:
    return _next_tid


def set_next_tid(value: int) -> None:
    global _next_tid
    _next_tid = value


@dataclass
class Transaction:
    """One core-initiated LLC access and its life-cycle timestamps."""

    core_node: int
    addr: int
    is_instruction: bool
    is_write: bool = False
    issued_at: int = 0
    tid: int = field(default_factory=_new_tid)
    #: Filled in as the transaction progresses.
    home: int = -1
    llc_hit: Optional[bool] = None
    completed_at: Optional[int] = None

    @property
    def latency(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    # -- checkpointing ---------------------------------------------------

    def to_state(self) -> dict:
        return {
            "core_node": self.core_node,
            "addr": self.addr,
            "is_instruction": self.is_instruction,
            "is_write": self.is_write,
            "issued_at": self.issued_at,
            "tid": self.tid,
            "home": self.home,
            "llc_hit": self.llc_hit,
            "completed_at": self.completed_at,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Transaction":
        # ``tid`` is passed explicitly, so the id factory is not called.
        return cls(**state)


class LlcSlice:
    """One 128 KB slice of the distributed NUCA LLC."""

    def __init__(
        self,
        node: int,
        chip: "Chip",
        hit_ratio: Optional[float] = None,
        cache: Optional[SetAssociativeCache] = None,
    ):
        if (hit_ratio is None) == (cache is None):
            raise ValueError("provide exactly one of hit_ratio or cache")
        self.node = node
        self.chip = chip
        self.hit_ratio = hit_ratio
        self.cache = cache
        self._busy_until = 0
        self.hits = 0
        self.misses = 0

    @property
    def params(self):
        return self.chip.params.cache

    # -- request handling --------------------------------------------------

    def handle_request(self, txn: Transaction, now: int) -> None:
        """A request arrived (over the NoC or from the local core)."""
        start = max(now, self._busy_until)
        tag_done = start + self.params.tag_lookup_cycles
        hit = self._decide_hit(txn)
        txn.llc_hit = hit
        if hit:
            self.hits += 1
            self._busy_until = tag_done + self.params.data_lookup_cycles
            self.chip.schedule(tag_done, self._tag_hit, txn)
        else:
            self.misses += 1
            self._busy_until = tag_done
            self.chip.schedule(tag_done, self._tag_miss, txn)
        if txn.is_write:
            self._handle_write_coherence(txn)

    def _decide_hit(self, txn: Transaction) -> bool:
        if self.cache is not None:
            return self.cache.lookup(txn.addr, write=txn.is_write)
        return self.chip.rng.random() < self.hit_ratio

    # -- hit path: the PRA window --------------------------------------------

    def _tag_hit(self, txn: Transaction) -> None:
        """Tag lookup done; data will be ready in data_lookup_cycles."""
        data_cycles = self.params.data_lookup_cycles
        if txn.core_node == self.node:
            # Local hit: the response never enters the network.
            now = self.chip.network.cycle
            self.chip.schedule(
                now + data_cycles, self.chip.complete_local, txn
            )
            return
        response = packet_pool.acquire(
            self.node,
            txn.core_node,
            MessageClass.RESPONSE,
            created=self.chip.network.cycle,
            payload=txn,
        )
        # The LLC controller notifies the NI: the PRA LLC-hit trigger.
        self.chip.network.announce(response, ready_in=data_cycles)
        self.chip.schedule(
            self.chip.network.cycle + data_cycles,
            self._send_response,
            response,
        )

    def _send_response(self, response: Packet) -> None:
        response.created = self.chip.network.cycle
        self.chip.network.send(response)

    # -- miss path ---------------------------------------------------------------

    def _tag_miss(self, txn: Transaction) -> None:
        now = self.chip.network.cycle
        channel = self.chip.channel_for(txn.addr)
        response: Optional[Packet] = None
        if txn.core_node != self.node:
            response = Packet(
                src=self.node,
                dst=txn.core_node,
                msg_class=MessageClass.RESPONSE,
                created=now,
                payload=txn,
            )
        # Arguments are passed positionally (not closed over) so the
        # pending completion is checkpointable.
        done = channel.access(now, self._mem_done, txn, response)
        if response is not None and self._memory_trigger_enabled():
            # Extension: the DRAM completion time is deterministic at
            # issue, so the controller can pre-allocate the miss
            # response's path just like a hit's (see PraParams).
            self.chip.network.announce(response, ready_in=done - now)

    def _memory_trigger_enabled(self) -> bool:
        noc = self.chip.params.noc
        return noc.pra.use_memory_trigger

    def _mem_done(self, txn: Transaction,
                  response: Optional[Packet]) -> None:
        if self.cache is not None:
            self.cache.fill(txn.addr, dirty=txn.is_write)
        if response is None:
            self.chip.complete_local(txn)
            return
        response.created = self.chip.network.cycle
        self.chip.network.send(response)

    # -- coherence ------------------------------------------------------------------

    def _handle_write_coherence(self, txn: Transaction) -> None:
        directory = self.chip.directories[self.node]
        to_invalidate = directory.record_write(block_of(txn.addr), txn.core_node)
        for sharer in to_invalidate:
            if sharer == self.node:
                continue
            self.chip.send_coherence(self.node, sharer)

    def record_read_sharer(self, txn: Transaction) -> None:
        self.chip.directories[self.node].record_read(
            block_of(txn.addr), txn.core_node
        )

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        state = {
            "busy_until": self._busy_until,
            "hits": self.hits,
            "misses": self.misses,
        }
        if self.cache is not None:
            state["cache"] = self.cache.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        self._busy_until = state["busy_until"]
        self.hits = state["hits"]
        self.misses = state["misses"]
        if self.cache is not None:
            self.cache.load_state(state["cache"])
