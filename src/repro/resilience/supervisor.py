"""Supervised sharded execution: recover, retry, degrade — never die.

``run_supervised`` wraps the worker-process shard backend in a
supervision loop:

* it takes periodic **recovery points** — cycle barriers at which every
  shard drains its boundary records and snapshots
  (:meth:`ProcessPool.barrier`), so a clean per-shard restart state
  always exists;
* when a worker fails (died / hung / garbage / crashed — every receive
  is heartbeat-polled and diagnosed as a structured
  :class:`~repro.shard.spec.WorkerFailure`), it kills the pool, sleeps
  a bounded exponential backoff, and **respawns** the whole pool from
  the last recovery point (reaching a new recovery point resets the
  retry budget, so only repeated failures without forward progress
  count against ``max_retries``);
* when retries exhaust, it **degrades gracefully**: the per-shard
  recovery snapshots merge into one serial-shaped snapshot
  (:func:`repro.shard.merge.merge_snapshots`), which a single in-parent
  network restores and finishes serially.

Every path replays deterministic work, so the pinned golden digests are
the correctness oracle for recovery itself: a supervised run that was
killed, respawned, or degraded must still hash to the serial digest.
"""

from __future__ import annotations

import time
from collections import deque
from typing import List, Optional, Tuple

from repro.noc.topology import MeshTopology
from repro.resilience.faults import ProcessFaultPlan
from repro.resilience.policy import RetryPolicy
from repro.resilience.report import FailureRecord, RunReport, publish
from repro.shard.engine import ShardResult, _run_serial, summary_digest
from repro.shard.merge import merge_snapshots, merge_stats
from repro.shard.spec import (
    ShardError,
    SyntheticSpec,
    WorkerFailure,
    plan_shards,
)


def _diagnose(exc: ShardError) -> Tuple[str, str]:
    """(target, kind) of a shard-layer failure for the run report."""
    if isinstance(exc, WorkerFailure):
        kind = "error" if exc.kind == "crashed" else exc.kind
        return str(exc.shard), kind
    return "driver", "protocol"


def _merge_recovery(spec: SyntheticSpec, shards: int,
                    pairs: List[Tuple[dict, dict]], barrier: int) -> dict:
    topo = MeshTopology(spec.width, spec.height)
    return merge_snapshots([snap for snap, _ in pairs],
                           topo.row_domains(shards), barrier)


def _degrade(spec: SyntheticSpec, shards: int, reason: Optional[str],
             recovery: Optional[Tuple[int, list]],
             checkpoint_at: Optional[int], checkpoint: Optional[dict],
             report: RunReport) -> ShardResult:
    """Finish the run serially from the last recovery point."""
    if recovery is None:
        # Failed before the first recovery point: the whole run replays
        # serially from cycle 0 (observers stay off — the degraded path
        # optimizes for finishing, not instrumentation).
        report.degraded = "serial replay from cycle 0 (no recovery point)"
        result = _run_serial(spec, "none", checkpoint_at, reason)
        result.backend = "serial-degraded"
        result.report = report
        publish(report)
        return result
    from repro.checkpoint.snapshot import restore_network, snapshot_network

    barrier, pairs = recovery
    merged = _merge_recovery(spec, shards, pairs, barrier)
    net, traffic = restore_network(merged)
    report.degraded = f"serial continuation from recovery point " \
                      f"at cycle {barrier}"
    if checkpoint_at is not None and checkpoint is None \
            and checkpoint_at > barrier:
        traffic.run(checkpoint_at - barrier)
        checkpoint = snapshot_network(net, traffic)
        traffic.run(spec.cycles - checkpoint_at)
    else:
        traffic.run(spec.cycles - barrier)
    net.drain(max_cycles=spec.drain)
    summary = net.stats.summary()
    publish(report)
    return ShardResult(
        digest=summary_digest(summary),
        summary=summary,
        shards=shards,
        backend="serial-degraded",
        fallback_reason=reason,
        checkpoint=checkpoint,
        cycles=net.cycle,
        cycles_skipped=net.cycles_skipped,
        offered=traffic.offered,
        clocks=[net.cycle],
        report=report,
    )


def run_supervised(spec: SyntheticSpec, shards: int,
                   observers: str = "none",
                   checkpoint_at: Optional[int] = None,
                   policy: Optional[RetryPolicy] = None,
                   faults: Optional[ProcessFaultPlan] = None
                   ) -> ShardResult:
    """Run ``spec`` on the worker-process shard backend under
    supervision (crash recovery, bounded retries, graceful degradation).

    Digest-equivalent to :func:`repro.shard.engine.run_sharded` with
    ``backend="process"`` — including when workers are killed, hang, or
    babble mid-run (injected via ``faults`` or otherwise)."""
    from repro.shard.process import ProcessPool

    if policy is None:
        policy = RetryPolicy.from_env()
    if observers not in ("none", "tracing"):
        raise ValueError(
            f"observers must be 'none' or 'tracing', got {observers!r}"
        )
    if faults is not None and faults.is_empty:
        faults = None
    effective, reason = plan_shards(spec.params(), shards)
    if effective == 1:
        if faults is not None:
            raise ValueError(
                "process fault injection needs a multi-shard process "
                f"run; this scenario runs serially ({reason or 'shards=1'})"
            )
        result = _run_serial(spec, observers, checkpoint_at, reason)
        result.report = RunReport(backend="serial")
        publish(result.report)
        return result
    if checkpoint_at is not None \
            and not 0 < checkpoint_at <= spec.cycles:
        raise ValueError(
            f"checkpoint_at must be within the injection phase "
            f"(0, {spec.cycles}], got {checkpoint_at}"
        )

    barriers = set(policy.barriers(spec.cycles))
    if checkpoint_at is not None:
        barriers.add(checkpoint_at)
    pending_barriers = sorted(barriers)

    report = RunReport(backend="process")
    end_inject = spec.cycles
    deadline = spec.cycles + spec.drain
    recovery: Optional[Tuple[int, list]] = None  # (barrier, pairs)
    checkpoint: Optional[dict] = None
    attempt = 0
    incarnation = 0
    states = None
    final_clocks: List[int] = []

    while states is None:
        pool = ProcessPool(
            spec, effective, observers, faults=faults,
            heartbeat=policy.heartbeat_timeout,
            incarnation=incarnation,
            restore=None if recovery is None else recovery[1],
        )
        upcoming = deque(
            b for b in pending_barriers
            if recovery is None or b > recovery[0]
        )
        prev_clocks: Optional[List[int]] = None
        try:
            while True:
                hard_stop = upcoming[0] if upcoming else None
                clocks, flights, produced = pool.round(hard_stop)
                total = sum(flights)
                if hard_stop is not None and produced == 0 \
                        and all(c == hard_stop for c in clocks):
                    pairs = pool.barrier(hard_stop)
                    recovery = (hard_stop, pairs)
                    report.recovery_points += 1
                    attempt = 0  # forward progress refills the budget
                    if checkpoint_at == hard_stop:
                        checkpoint = _merge_recovery(
                            spec, effective, pairs, hard_stop
                        )
                    upcoming.popleft()
                    prev_clocks = None
                    continue
                if hard_stop is None and total == 0 \
                        and all(c >= end_inject for c in clocks):
                    states = pool.stats()
                    final_clocks = list(pool.final_clocks)
                    break
                if total > 0 and all(c >= deadline for c in clocks):
                    raise RuntimeError(
                        f"network failed to drain: {total} packets in "
                        f"flight after {spec.drain} cycles"
                    )
                if produced == 0 and clocks == prev_clocks:
                    raise ShardError(
                        f"sharded run stalled at clocks {clocks}: no "
                        f"boundary traffic and no clock progress"
                    )
                prev_clocks = clocks
            pool.close()
        except ShardError as exc:
            pool.kill()
            attempt += 1
            target, kind = _diagnose(exc)
            report.record_failure(FailureRecord(
                scope="shard", target=target, kind=kind,
                attempts=attempt, detail=str(exc),
            ))
            if attempt > policy.max_retries:
                return _degrade(spec, effective, reason, recovery,
                                checkpoint_at, checkpoint, report)
            backoff = policy.backoff(attempt)
            if backoff:
                time.sleep(backoff)
            incarnation += 1
            report.retries += 1
            report.respawns += 1
        except BaseException:
            pool.kill()
            raise

    stats = merge_stats([state for state, _, _ in states])
    summary = stats.summary()
    publish(report)
    return ShardResult(
        digest=summary_digest(summary),
        summary=summary,
        shards=effective,
        backend="process",
        fallback_reason=reason,
        checkpoint=checkpoint,
        cycles=max(final_clocks),
        cycles_skipped=sum(skipped for _, skipped, _ in states),
        offered=sum(offered for _, _, offered in states),
        clocks=final_clocks,
        report=report,
    )
