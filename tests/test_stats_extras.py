"""Tests for the extended statistics: percentiles, histograms, link use."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.stats import NetworkStats, _percentile
from repro.params import NocKind
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern
from tests.helpers import make_network


class TestPercentiles:
    def test_basic(self):
        assert _percentile([1, 2, 3, 4, 5], 0.0) == 1
        assert _percentile([1, 2, 3, 4, 5], 1.0) == 5
        assert _percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            _percentile([1], 1.5)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=50),
           st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_percentile_is_element_and_monotone(self, values, frac):
        p = _percentile(values, frac)
        assert p in [float(v) for v in values]
        assert _percentile(values, 0.0) <= p <= _percentile(values, 1.0)


class TestHistogram:
    def test_bucketing(self):
        stats = NetworkStats()
        stats.network_latencies = [1, 2, 5, 6, 7, 13]
        hist = stats.latency_histogram(bucket=4)
        assert hist == {0: 2, 4: 3, 12: 1}

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            NetworkStats().latency_histogram(bucket=0)

    def test_percentile_accessor(self):
        stats = NetworkStats()
        stats.network_latencies = list(range(1, 101))
        assert stats.latency_percentile(0.99) >= 98


class TestLinkUtilization:
    def test_idle_network_zero(self):
        net = make_network(NocKind.MESH)
        net.run(10)
        assert net.link_utilization() == 0.0

    def test_grows_with_load(self):
        lo = make_network(NocKind.MESH)
        hi = make_network(NocKind.MESH)
        SyntheticTraffic(lo, TrafficPattern.UNIFORM_RANDOM, 0.005,
                         seed=1).run(800)
        SyntheticTraffic(hi, TrafficPattern.UNIFORM_RANDOM, 0.03,
                         seed=1).run(800)
        assert 0.0 < lo.link_utilization() < hi.link_utilization() < 1.0

    def test_ideal_network_tracks_utilization(self):
        net = make_network(NocKind.IDEAL)
        SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM, 0.02,
                         seed=2).run(500)
        assert net.link_utilization() > 0.0
