"""Packets: the unit of routing, allocation, and (for PRA) reservation.

The paper's PRA pre-allocates resources for *whole packets* (not
individual flits, unlike flit-reservation flow control) so that flits of
a packet are never reordered on a single-cycle multi-hop path.  The
packet object therefore carries the PRA plan produced by a successful
control-packet run (see :mod:`repro.core.control_network`).
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from repro.noc.flit import Flit
from repro.params import MessageClass, PACKET_FLITS

_pid_counter = itertools.count()


def reset_packet_ids() -> None:
    """Restart packet numbering (test isolation helper)."""
    global _pid_counter
    _pid_counter = itertools.count()


class Packet:
    """A message traveling from ``src`` to ``dst``.

    Timestamps (all in cycles):

    * ``created`` — handed to the source network interface,
    * ``injected`` — head flit entered the source router,
    * ``ejected`` — tail flit delivered to the destination NI.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "msg_class",
        "size",
        "vc_index",
        "is_multi_flit",
        "flits",
        "created",
        "injected",
        "ejected",
        "payload",
        "pra_plan",
        "pra_pending",
        "pra_blocked_cycles",
        "hops_taken",
        "ring_layer",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        msg_class: MessageClass,
        size: Optional[int] = None,
        created: int = 0,
        payload: Any = None,
    ):
        if size is None:
            size = PACKET_FLITS[msg_class]
        if size < 1:
            raise ValueError("packet size must be at least one flit")
        self.pid = next(_pid_counter)
        self.src = src
        self.dst = dst
        self.msg_class = msg_class
        self.size = size
        #: Message classes map one-to-one onto VC indices; materialized
        #: here because the hot paths read it constantly.
        self.vc_index = msg_class.value
        self.is_multi_flit = size > 1
        self.created = created
        self.injected: Optional[int] = None
        self.ejected: Optional[int] = None
        self.payload = payload
        #: Active pre-allocated path, set by the PRA control network.
        self.pra_plan: Any = None
        #: True while a control packet is in flight (or a plan is active)
        #: for this packet; suppresses duplicate LSD injections.
        self.pra_pending = False
        #: Cycles this packet spent blocked behind resources that were
        #: proactively allocated to *another* packet (Section V-B stat).
        self.pra_blocked_cycles = 0
        #: Link traversals of the head flit (for stats / energy).
        self.hops_taken = 0
        #: Dateline VC layer on ring interconnects (0 before crossing).
        self.ring_layer = 0

    def __getattr__(self, name: str) -> Any:
        # ``flits`` is materialized on first access: the ideal network
        # moves whole packets and never looks at individual flits, so
        # eager construction would waste a third of its runtime.
        if name == "flits":
            flits: List[Flit] = [Flit(self, i) for i in range(self.size)]
            self.flits = flits
            return flits
        raise AttributeError(name)

    def network_latency(self) -> Optional[int]:
        if self.injected is None or self.ejected is None:
            return None
        return self.ejected - self.injected

    def total_latency(self) -> Optional[int]:
        if self.ejected is None:
            return None
        return self.ejected - self.created

    def __repr__(self) -> str:
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, "
            f"{self.msg_class.name}, {self.size}f)"
        )
