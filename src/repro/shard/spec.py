"""Scenario specification and shard planning for parallel simulation.

A :class:`SyntheticSpec` pins everything a worker process needs to
rebuild its copy of the simulation — network parameters, traffic
pattern, seed, and run length — as a small picklable value.  The same
spec drives the serial reference run, every shard of a sharded run, and
the golden-digest tests, so "serial and sharded are bit-identical" is a
statement about one shared scenario object rather than two hand-kept
copies.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.noc.network import build_network
from repro.params import NocKind, NocParams
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern


class ShardError(RuntimeError):
    """A sharded run hit state it cannot represent or merge."""


class WorkerFailure(ShardError):
    """A shard worker process failed, with a structured diagnosis.

    ``kind`` is one of ``"died"`` (process gone; ``exitcode`` says how),
    ``"hung"`` (alive but silent past the heartbeat timeout),
    ``"garbage"`` (malformed reply on the pipe), or ``"crashed"``
    (the worker itself reported an exception before exiting).
    """

    def __init__(self, shard: int, kind: str, detail: str = "",
                 exitcode: Optional[int] = None,
                 pid: Optional[int] = None):
        message = f"shard {shard} worker {kind}"
        if exitcode is not None:
            message += f" (exit code {exitcode})"
        if pid is not None:
            message += f" (pid {pid})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.shard = shard
        self.kind = kind
        self.detail = detail
        self.exitcode = exitcode
        self.pid = pid


@dataclass(frozen=True)
class SyntheticSpec:
    """A self-contained synthetic-traffic scenario.

    The defaults replicate the golden network scenario of
    ``tests/test_golden_determinism.py`` (8x8 mesh, uniform random at
    rate 0.02, seed 7, 800 injection cycles plus a full drain).
    """

    kind: NocKind = NocKind.MESH
    width: int = 8
    height: int = 8
    #: Topology spec string (see :mod:`repro.noc.topology`).
    topology: str = "mesh"
    pattern: TrafficPattern = TrafficPattern.UNIFORM_RANDOM
    rate: float = 0.02
    seed: int = 7
    cycles: int = 800
    drain: int = 20000

    def params(self) -> NocParams:
        return NocParams(kind=self.kind, mesh_width=self.width,
                         mesh_height=self.height, topology=self.topology)

    def build(self):
        """Fresh ``(network, traffic)`` pair for this scenario."""
        net = build_network(self.params())
        traffic = SyntheticTraffic(net, self.pattern, self.rate,
                                   seed=self.seed)
        return net, traffic


#: The pinned golden scenario (see tests/test_golden_determinism.py).
GOLDEN_SPEC = SyntheticSpec()

#: Dedicated sharding win-meter scenario for ``repro bench``: a 16x16
#: mesh is large enough that per-cycle simulation work dominates the
#: boundary-exchange overhead.
SHARD_BENCH_SPEC = SyntheticSpec(width=16, height=16, rate=0.02,
                                 seed=11, cycles=600, drain=20000)


def plan_shards(params: NocParams,
                requested: int) -> Tuple[int, Optional[str]]:
    """Decide how many shards a scenario actually supports.

    Returns ``(effective, reason)``; ``reason`` is a human-readable
    explanation whenever ``effective`` differs from ``requested``.  Only
    the baseline mesh is sharded for real: SMART, Mesh+PRA, and the
    ideal network all make same-cycle reads across arbitrary distances
    (bypass paths, control broadcasts, zero-load delivery), which a
    row-stripe cut cannot serve conservatively.
    """
    if requested < 1:
        raise ValueError(f"shard count must be positive, got {requested}")
    if requested == 1:
        return 1, None
    if params.kind is not NocKind.MESH:
        return 1, serial_fallback_reason(
            "kind", params.kind.value,
            f"{params.kind.value} makes non-local same-cycle "
            f"reads; only the baseline mesh shards")
    topo_kind = params.topology.split(":", 1)[0]
    if topo_kind == "ring":
        return 1, serial_fallback_reason(
            "topology", "ring",
            "ring wrap links join the first and last row stripe, so no "
            "row cut is conservative; ring runs are serial")
    if topo_kind == "chiplet":
        return 1, serial_fallback_reason(
            "topology", "chiplet",
            "row stripes would cut chiplet sub-meshes and split "
            "gateway/interposer state across workers; chiplet runs "
            "are serial")
    height = params.mesh_height
    if requested > height:
        return height, serial_fallback_reason(
            "clamp", str(height),
            f"clamped to {height}: one row stripe per shard "
            f"is the finest cut of a height-{height} mesh")
    return requested, None


def serial_fallback_reason(cause: str, value: str, detail: str) -> str:
    """Structured fallback reason: ``[cause=value] detail``.

    Every degraded plan (non-mesh kind, ring/chiplet topology, height
    clamp) routes through this one formatter, so drivers and tests can
    parse the cause tag without matching free-form prose.
    """
    return f"[{cause}={value}] {detail}"


def shards_from_env(default: int = 1) -> int:
    """Resolve ``REPRO_SHARDS`` with the shared worker-count validator."""
    from repro.harness.runner import parse_worker_count

    raw = os.environ.get("REPRO_SHARDS")
    if raw is None:
        return default
    return parse_worker_count(raw, "REPRO_SHARDS")
