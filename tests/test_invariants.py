"""Invariant-checker tests: observers stay silent on healthy runs,
scream on corrupted state, and the watchdog turns hangs into reports.
"""

import pytest

from repro.core.plan import PlanStep, PraPlan, SRC_VC
from repro.core.reservation import ReservationEntry
from repro.faults import FaultInjector, FaultSchedule, StallWindow
from repro.invariants import InvariantSuite, InvariantViolation, wait_graph
from repro.noc.packet import Packet
from repro.noc.ring import build_ring
from repro.noc.topology import Direction
from repro.params import MessageClass, NocKind
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern
from tests.helpers import assert_quiescent, make_network


def drain(net, limit=4000):
    while net.stats.in_flight and net.cycle < limit:
        net.step()


# -- healthy runs: checkers are observers, not actors ---------------------


@pytest.mark.parametrize("kind", list(NocKind))
def test_clean_runs_have_zero_violations(kind):
    net = make_network(kind)
    suite = InvariantSuite(audit_period=1)
    net.attach(invariants=suite)
    SyntheticTraffic(
        net, TrafficPattern.UNIFORM_RANDOM, 0.05, seed=4
    ).run(300)
    drain(net)
    assert suite.violations == []
    assert suite.audits_run > 0
    assert not suite.watchdog_fired
    net.attach(invariants=None)
    assert_quiescent(net)


def test_clean_ring_run_has_zero_violations():
    net = build_ring(8)
    suite = InvariantSuite(audit_period=1)
    net.attach(invariants=suite)
    SyntheticTraffic(
        net, TrafficPattern.UNIFORM_RANDOM, 0.05, seed=4
    ).run(300)
    drain(net)
    assert suite.violations == []
    net.attach(invariants=None)
    assert_quiescent(net)


@pytest.mark.parametrize("kind", [NocKind.MESH, NocKind.MESH_PRA])
def test_checkers_do_not_perturb_the_run(kind):
    """Same seed with and without the suite attached must produce
    bit-identical statistics — the audits only read state."""
    def run(with_suite):
        net = make_network(kind)
        if with_suite:
            net.attach(invariants=InvariantSuite(audit_period=1))
        SyntheticTraffic(
            net, TrafficPattern.UNIFORM_RANDOM, 0.06, seed=9
        ).run(400)
        drain(net)
        return net.stats
    observed, bare = run(True), run(False)
    assert observed.summary() == bare.summary()
    assert observed.network_latencies == bare.network_latencies


# -- the watchdog ---------------------------------------------------------


def test_watchdog_reports_a_hung_network():
    """Freeze every router's arbiter forever: injected packets can never
    advance, and the watchdog must turn that hang into a structured
    violation carrying the blocked-packet wait graph."""
    net = make_network(NocKind.MESH)
    net.attach(faults=FaultInjector(FaultSchedule(router_stalls=tuple(
        StallWindow(node=n, start=0, duration=1 << 20) for n in range(16)
    ))))
    suite = InvariantSuite(audit_period=1 << 20, watchdog_window=64,
                           watchdog_stride=8)
    net.attach(invariants=suite)
    for node in range(4):
        net.send(Packet(src=node, dst=15 - node,
                        msg_class=MessageClass.REQUEST, created=0))
    with pytest.raises(InvariantViolation) as exc:
        net.run(600)
    violation = exc.value
    assert violation.check == "watchdog"
    assert suite.watchdog_fired
    assert violation.cycle > 0
    assert violation.details["in_flight"] > 0
    assert violation.details["blocked"], "wait graph must name the stuck flits"


def test_wait_graph_snapshots_blocked_packets():
    net = make_network(NocKind.MESH)
    net.attach(faults=FaultInjector(FaultSchedule(router_stalls=tuple(
        StallWindow(node=n, start=0, duration=1 << 20) for n in range(16)
    ))))
    net.send(Packet(src=0, dst=5, msg_class=MessageClass.REQUEST, created=0))
    net.run(20)
    graph = wait_graph(net, net.cycle)
    assert graph["cycle"] == net.cycle
    assert graph["blocked"]
    assert all({"pid", "node", "where", "reason"} <= set(b)
               for b in graph["blocked"])


# -- corruption detection -------------------------------------------------


def test_credit_tampering_is_detected():
    net = make_network(NocKind.MESH)
    net.run(4)
    suite = InvariantSuite()
    port = net.routers[0].output_ports[Direction.EAST]
    port.credits[0] -= 1
    with pytest.raises(InvariantViolation) as exc:
        suite.audit(net, net.cycle)
    assert exc.value.check == "credit_accounting"
    port.credits[0] += 1
    suite_ok = InvariantSuite()
    suite_ok.audit(net, net.cycle)
    assert suite_ok.violations == []


def test_flit_counter_tampering_is_detected():
    net = make_network(NocKind.MESH)
    net.run(4)
    net.routers[3].active_flits += 2
    suite = InvariantSuite()
    with pytest.raises(InvariantViolation) as exc:
        suite.audit(net, net.cycle)
    assert exc.value.check == "flit_counter"


def test_lost_packet_is_detected():
    """A packet the stats layer thinks is in flight but no buffer holds
    is a conservation violation (the silent-drop failure mode)."""
    net = make_network(NocKind.MESH)
    net.run(4)
    net.stats.packets_injected += 1
    suite = InvariantSuite()
    with pytest.raises(InvariantViolation) as exc:
        suite.audit(net, net.cycle)
    assert exc.value.check == "flit_conservation"


def test_stale_live_reservation_is_detected():
    net = make_network(NocKind.MESH_PRA)
    net.run(8)
    packet = Packet(src=0, dst=5, msg_class=MessageClass.REQUEST, created=0)
    plan = PraPlan(packet, start_slot=2)
    step = PlanStep(driver_node=0, out_dir=Direction.EAST, slot=2, hops=1,
                    source_kind=SRC_VC)
    table = net.routers[0].output_ports[Direction.EAST].reservations
    entry = ReservationEntry(plan=plan, step=step, flit_index=0, is_driver=True)
    # Plant the stale entry directly in the ring, bypassing reserve()'s
    # validation (the corruption this audit exists to catch).
    table._ring[2 % table._size] = (2, entry)
    table._count += 1
    suite = InvariantSuite()
    with pytest.raises(InvariantViolation) as exc:
        suite.audit(net, net.cycle)
    assert exc.value.check == "reservation_leak"


def test_cancelled_plan_claim_is_detected():
    net = make_network(NocKind.MESH_PRA)
    net.run(4)
    packet = Packet(src=0, dst=5, msg_class=MessageClass.REQUEST, created=0)
    plan = PraPlan(packet, start_slot=2)
    plan.cancelled = True
    net.routers[0]._latch_claims[(Direction.EAST, 99)] = plan
    suite = InvariantSuite()
    with pytest.raises(InvariantViolation) as exc:
        suite.audit(net, net.cycle)
    assert exc.value.check == "claim_leak"


def test_collect_mode_accumulates_instead_of_raising():
    net = make_network(NocKind.MESH)
    net.run(4)
    net.routers[0].output_ports[Direction.EAST].credits[0] -= 1
    net.routers[1].active_flits += 1
    suite = InvariantSuite(raise_on_violation=False)
    suite.audit(net, net.cycle)
    checks = {v.check for v in suite.violations}
    assert "credit_accounting" in checks
    assert "flit_counter" in checks
    report = suite.violations[0].render()
    assert "cycle" in report and suite.violations[0].check in report


def test_violation_render_is_structured():
    violation = InvariantViolation(
        "watchdog", 123, "no progress",
        {"in_flight": 2, "blocked": [{"pid": 7, "reason": "switch_held"}]},
    )
    text = violation.render()
    assert "[watchdog] cycle 123: no progress" in text
    assert "in_flight: 2" in text
    assert "pid" in text
