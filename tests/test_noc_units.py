"""Unit tests for the NoC building blocks: flits, VCs, ports, NIs."""

import pytest

from repro.noc.flit import Flit, FlitType
from repro.noc.packet import Packet, reset_packet_ids
from repro.noc.vc import VirtualChannel
from repro.params import MessageClass, NocKind
from tests.helpers import make_network


class TestFlit:
    def test_single_flit_is_head_and_tail(self):
        pkt = Packet(src=0, dst=1, msg_class=MessageClass.REQUEST)
        assert pkt.size == 1
        flit = pkt.flits[0]
        assert flit.kind is FlitType.HEAD_TAIL
        assert flit.is_head and flit.is_tail

    def test_multi_flit_structure(self):
        pkt = Packet(src=0, dst=1, msg_class=MessageClass.RESPONSE)
        kinds = [f.kind for f in pkt.flits]
        assert kinds[0] is FlitType.HEAD
        assert kinds[-1] is FlitType.TAIL
        assert all(k is FlitType.BODY for k in kinds[1:-1])

    def test_bad_index_rejected(self):
        pkt = Packet(src=0, dst=1, msg_class=MessageClass.REQUEST)
        with pytest.raises(ValueError):
            Flit(pkt, 5)


class TestPacket:
    def test_vc_index_matches_class(self):
        for mc in MessageClass:
            pkt = Packet(src=0, dst=1, msg_class=mc)
            assert pkt.vc_index == mc.value

    def test_latencies_none_until_delivered(self):
        pkt = Packet(src=0, dst=1, msg_class=MessageClass.REQUEST)
        assert pkt.network_latency() is None
        assert pkt.total_latency() is None

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, msg_class=MessageClass.REQUEST, size=0)

    def test_ids_monotonic(self):
        reset_packet_ids()
        a = Packet(src=0, dst=1, msg_class=MessageClass.REQUEST)
        b = Packet(src=0, dst=1, msg_class=MessageClass.REQUEST)
        assert b.pid == a.pid + 1


class TestVirtualChannel:
    def _packet(self):
        return Packet(src=0, dst=1, msg_class=MessageClass.RESPONSE)

    def test_fifo_order(self):
        vc = VirtualChannel(0, 5)
        pkt = self._packet()
        for flit in pkt.flits:
            vc.push(flit)
        assert [vc.pop().index for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_overflow_raises(self):
        vc = VirtualChannel(0, 2)
        pkt = self._packet()
        vc.push(pkt.flits[0])
        vc.push(pkt.flits[1])
        with pytest.raises(OverflowError):
            vc.push(pkt.flits[2])

    def test_tail_pop_releases_ownership(self):
        vc = VirtualChannel(0, 5)
        pkt = self._packet()
        vc.allocated_to = pkt
        for flit in pkt.flits:
            vc.push(flit)
        for _ in range(4):
            vc.pop()
            assert vc.allocated_to is pkt
        vc.pop()
        assert vc.allocated_to is None

    def test_chained_claim_hands_over(self):
        vc = VirtualChannel(0, 5)
        first = self._packet()
        second = self._packet()
        vc.allocated_to = first
        vc.next_claim = second
        for flit in first.flits:
            vc.push(flit)
        for _ in range(5):
            vc.pop()
        assert vc.allocated_to is second
        assert vc.next_claim is None

    def test_can_accept_requires_free_and_empty(self):
        vc = VirtualChannel(0, 5)
        pkt = self._packet()
        assert vc.can_accept_packet(pkt)
        vc.allocated_to = pkt
        assert not vc.can_accept_packet(self._packet())


class TestNetworkInterface:
    def test_round_robin_across_classes(self):
        net = make_network(NocKind.MESH)
        a = Packet(src=0, dst=1, msg_class=MessageClass.REQUEST,
                   created=net.cycle)
        b = Packet(src=0, dst=1, msg_class=MessageClass.COHERENCE,
                   created=net.cycle)
        net.send(a)
        net.send(b)
        net.drain(max_cycles=100)
        # Both delivered; no starvation of either class.
        assert a.ejected is not None and b.ejected is not None

    def test_injection_is_packet_granular(self):
        """A response's flits are never interleaved with another
        packet's flits on the local port."""
        net = make_network(NocKind.MESH)
        resp = Packet(src=0, dst=3, msg_class=MessageClass.RESPONSE,
                      created=net.cycle)
        req = Packet(src=0, dst=3, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(resp)
        net.send(req)
        net.drain(max_cycles=200)
        # Whichever packet wins the port first holds it for its full
        # flit count before the other may start.
        first, second = sorted((resp, req), key=lambda p: p.injected)
        assert second.injected >= first.injected + first.size

    def test_queue_counts(self):
        net = make_network(NocKind.MESH)
        ni = net.interfaces[0]
        net.send(Packet(src=0, dst=1, msg_class=MessageClass.REQUEST,
                        created=net.cycle))
        assert ni.queued_packets(MessageClass.REQUEST) == 1
        assert ni.queued_packets(MessageClass.RESPONSE) == 0


class TestEjectionPort:
    def test_local_port_serializes_ejection(self):
        """Two packets to the same destination eject one flit/cycle."""
        net = make_network(NocKind.MESH)
        a = Packet(src=0, dst=5, msg_class=MessageClass.RESPONSE,
                   created=net.cycle)
        b = Packet(src=10, dst=5, msg_class=MessageClass.RESPONSE,
                   created=net.cycle)
        net.send(a)
        net.send(b)
        net.drain(max_cycles=300)
        assert a.ejected != b.ejected
