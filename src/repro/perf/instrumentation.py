"""Latency-attribution instrumentation for Mesh+PRA analysis.

The EXPERIMENTS.md gap analysis needs to know *where* latency goes:
planned vs. unplanned responses, requests, and how far plans carry their
packets.  :class:`PraProbe` attaches non-invasively to a network and
collects exactly that, without perturbing simulation behavior.

Example::

    probe = PraProbe.attach(sim.chip.network)
    sim.run_sample(...)
    report = probe.report()
    print(report.planned_response_latency, report.request_latency)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind


@dataclass
class LatencyReport:
    """Aggregated attribution over the probed interval."""

    planned_responses: int = 0
    unplanned_responses: int = 0
    requests: int = 0
    planned_response_latency: float = 0.0
    unplanned_response_latency: float = 0.0
    request_latency: float = 0.0
    #: Histogram of plan lengths (single-cycle steps) at run end.
    plan_lengths: Dict[int, int] = field(default_factory=dict)

    @property
    def planned_fraction(self) -> float:
        total = self.planned_responses + self.unplanned_responses
        return self.planned_responses / total if total else 0.0

    @property
    def mean_plan_length(self) -> float:
        total = sum(self.plan_lengths.values())
        if not total:
            return 0.0
        return sum(k * v for k, v in self.plan_lengths.items()) / total


class PraProbe:
    """Non-invasive observer of PRA plan construction and delivery."""

    def __init__(self, network: Network):
        self.network = network
        self._planned_pids: Set[int] = set()
        self._plan_lengths: Dict[int, int] = {}
        self._lat: Dict[str, List[int]] = {
            "planned": [], "unplanned": [], "request": [],
        }
        self._installed = False

    @classmethod
    def attach(cls, network: Network) -> "PraProbe":
        probe = cls(network)
        probe.install()
        return probe

    def install(self) -> None:
        if self._installed:
            raise RuntimeError("probe already installed")
        self._installed = True
        self._orig_deliver = self.network._deliver
        self.network._deliver = self._on_deliver  # type: ignore[assignment]
        control = getattr(self.network, "control", None)
        if control is not None:
            self._orig_append = control._append_step

            def traced_append(run, step, _orig=self._orig_append):
                _orig(run, step)
                self._planned_pids.add(run.packet.pid)
                self._plan_lengths[run.packet.pid] = len(run.plan.steps)

            control._append_step = traced_append

    def _on_deliver(self, packet: Packet, now: int) -> None:
        self._orig_deliver(packet, now)
        latency = packet.network_latency()
        if latency is None:
            return
        if packet.msg_class is MessageClass.RESPONSE:
            if packet.pid in self._planned_pids:
                self._lat["planned"].append(latency)
            else:
                self._lat["unplanned"].append(latency)
        elif packet.msg_class is MessageClass.REQUEST:
            self._lat["request"].append(latency)

    def report(self) -> LatencyReport:
        def mean(xs: List[int]) -> float:
            return sum(xs) / len(xs) if xs else 0.0

        lengths: Dict[int, int] = {}
        for pid, steps in self._plan_lengths.items():
            lengths[steps] = lengths.get(steps, 0) + 1
        return LatencyReport(
            planned_responses=len(self._lat["planned"]),
            unplanned_responses=len(self._lat["unplanned"]),
            requests=len(self._lat["request"]),
            planned_response_latency=mean(self._lat["planned"]),
            unplanned_response_latency=mean(self._lat["unplanned"]),
            request_latency=mean(self._lat["request"]),
            plan_lengths=lengths,
        )
