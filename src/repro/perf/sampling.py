"""SimFlex-style statistical sampling.

The paper draws samples over the workload's steady state and reports
performance "computed with 95% confidence and an error of less than 4%".
We reproduce the recipe at reduced scale: several independent samples
(different seeds, i.e. different draws of the workload's steady-state
behavior), aggregated with a Student-t 95% confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.params import ChipParams, NocKind
from repro.perf.metrics import mean, stddev
from repro.perf.system import PerfSample, SystemSimulator
from repro.workloads.profiles import WorkloadProfile

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


def t_critical_95(dof: int) -> float:
    if dof <= 0:
        return float("inf")
    return _T95.get(dof, 1.96)


@dataclass
class SampleStats:
    """Aggregated IPC across independent samples."""

    workload: str
    noc_kind: NocKind
    samples: List[PerfSample]

    @property
    def ipcs(self) -> List[float]:
        return [s.ipc for s in self.samples]

    @property
    def mean_ipc(self) -> float:
        return mean(self.ipcs)

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval on the mean IPC."""
        n = len(self.ipcs)
        if n < 2:
            return 0.0
        return t_critical_95(n - 1) * stddev(self.ipcs) / (n ** 0.5)

    @property
    def relative_error(self) -> float:
        """CI half-width over the mean (the paper targets < 4%)."""
        mu = self.mean_ipc
        return self.ci95 / mu if mu else 0.0


def measure_with_confidence(
    workload: Union[str, WorkloadProfile],
    noc_kind: NocKind,
    num_samples: int = 3,
    warmup: int = 2000,
    measure: int = 10000,
    chip_params: Optional[ChipParams] = None,
    base_seed: int = 0,
) -> SampleStats:
    """Run ``num_samples`` independent measurements and aggregate."""
    samples = []
    for i in range(num_samples):
        sim = SystemSimulator(
            workload, noc_kind, chip_params=chip_params, seed=base_seed + i
        )
        samples.append(sim.run_sample(warmup=warmup, measure=measure))
    name = samples[0].workload if samples else str(workload)
    return SampleStats(workload=name, noc_kind=noc_kind, samples=samples)
