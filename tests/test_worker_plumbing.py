"""Worker-pool plumbing: count validation and budget propagation.

Covers the shared worker-count validator behind ``REPRO_JOBS``,
``REPRO_SHARDS``, and ``--shards`` (bad values must exit 2 with a clear
message, like every other CLI parameter), the resolved counts recorded
in bench reports, and the deliberate ``_cell_wall_limit`` fallback for
processes that never ran the pool initializer.
"""

from __future__ import annotations

import pytest

from repro.harness import runner
from repro.harness.runner import parse_worker_count


def test_parse_worker_count_accepts_literals_and_auto():
    assert parse_worker_count("4", "REPRO_JOBS") == 4
    assert parse_worker_count("1", "--shards") == 1
    # 0 means one worker per CPU.
    assert parse_worker_count("0", "REPRO_JOBS") == (
        runner.os.cpu_count() or 1
    )


@pytest.mark.parametrize("raw", ["banana", "-1", "2.5", "", None])
def test_parse_worker_count_rejects_junk(raw):
    with pytest.raises(ValueError) as excinfo:
        parse_worker_count(raw, "REPRO_SHARDS")
    # The message names the knob and echoes the offending value, the
    # same shape NocParams uses for CLI validation errors.
    assert "REPRO_SHARDS must be a non-negative integer" in str(excinfo.value)
    assert repr(raw) in str(excinfo.value)


def test_cli_exits_2_on_bad_shard_flag(capsys):
    from repro.cli import main

    assert main(["bench", "--no-macro", "--shards", "lots"]) == 2
    assert "--shards must be" in capsys.readouterr().err


def test_cli_exits_2_on_bad_shards_env(monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_SHARDS", "-2")
    # The simulate command resolves shards before any simulation work,
    # so the bad value fails fast with the standard exit code.
    assert main(["simulate", "web"]) == 2
    assert "REPRO_SHARDS must be" in capsys.readouterr().err


def test_simulate_warns_and_falls_back_on_shards(capsys):
    from repro.cli import main

    assert main(["simulate", "web", "--shards", "2",
                 "--warmup", "20", "--measure", "30"]) == 0
    captured = capsys.readouterr()
    assert "do not shard yet" in captured.err
    assert "aggregate IPC" in captured.out


def test_run_macro_records_resolved_jobs(monkeypatch):
    """The macro report must record the *resolved* worker count (an
    int), not the raw environment string — ``REPRO_JOBS=0`` used to be
    reported as the string ``"0"``."""
    from repro.bench.harness import run_macro
    from repro.harness.runner import EvaluationScale

    tiny = EvaluationScale("tiny", warmup=20, measure=80, num_seeds=1)
    monkeypatch.setenv("REPRO_JOBS", "1")
    macro = run_macro(tiny)
    assert macro["jobs"] == 1
    assert isinstance(macro["jobs"], int)


# -- _cell_wall_limit fallback ---------------------------------------------


@pytest.fixture
def reset_worker_wall_limit():
    original = runner._worker_wall_limit
    yield
    runner._worker_wall_limit = original


def test_wall_limit_initializer_wins(monkeypatch, reset_worker_wall_limit):
    """A budget installed by ``_init_worker`` overrides whatever the
    process environment says, including "no limit"."""
    monkeypatch.setenv("REPRO_WALL_LIMIT", "9.0")
    runner._init_worker(True, True, None, 3.5)
    assert runner._cell_wall_limit() == 3.5
    runner._init_worker(True, True, None, None)
    assert runner._cell_wall_limit() is None


def test_wall_limit_fallback_without_initializer(monkeypatch,
                                                 reset_worker_wall_limit):
    """A process that never ran the initializer (the parent, or a
    worker created outside ``_run_cells``) sees the ``_UNSET`` sentinel
    and deliberately falls back to reading ``REPRO_WALL_LIMIT`` from
    its own environment."""
    runner._worker_wall_limit = runner._UNSET
    monkeypatch.setenv("REPRO_WALL_LIMIT", "7.25")
    assert runner._cell_wall_limit() == 7.25
    monkeypatch.delenv("REPRO_WALL_LIMIT")
    assert runner._cell_wall_limit() is None
    # Junk and non-positive budgets fail loudly (the CLI validates the
    # variable up front, so a worker never gets this far with a bad
    # value; see tests/test_resilience.py for the exit-2 path).
    monkeypatch.setenv("REPRO_WALL_LIMIT", "junk")
    with pytest.raises(ValueError, match="REPRO_WALL_LIMIT must be"):
        runner._cell_wall_limit()
    monkeypatch.setenv("REPRO_WALL_LIMIT", "-1")
    with pytest.raises(ValueError, match="REPRO_WALL_LIMIT must be"):
        runner._cell_wall_limit()
