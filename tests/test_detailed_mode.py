"""Tests for the address-accurate (detailed) simulation mode."""

from repro.params import NocKind
from repro.perf.system import SystemSimulator


class TestDetailedLlc:
    def test_system_runs_with_real_caches(self):
        sim = SystemSimulator("Web Search", NocKind.MESH, seed=1,
                              detailed_llc=True)
        sample = sim.run_sample(warmup=200, measure=1200)
        assert sample.instructions > 0
        # Real caches back every slice.
        assert all(s.cache is not None for s in sim.chip.slices)

    def test_cache_warms_up(self):
        """The cold-start hit ratio must rise as the LLC fills."""
        sim = SystemSimulator("Web Search", NocKind.MESH, seed=2,
                              detailed_llc=True)
        sim.run_sample(warmup=0, measure=1500)
        early = [(s.hits, s.misses) for s in sim.chip.slices]
        early_hits = sum(h for h, _ in early)
        early_total = sum(h + m for h, m in early)
        sim.run_sample(warmup=0, measure=4000)
        late_hits = sum(s.hits for s in sim.chip.slices) - early_hits
        late_total = (
            sum(s.hits + s.misses for s in sim.chip.slices) - early_total
        )
        assert late_total > 0
        assert late_hits / late_total > early_hits / max(1, early_total)

    def test_directory_tracks_real_sharers(self):
        sim = SystemSimulator("MapReduce", NocKind.MESH, seed=3,
                              detailed_llc=True)
        sim.run_sample(warmup=200, measure=2000)
        tracked = sum(d.tracked_blocks for d in sim.chip.directories)
        assert tracked > 0

    def test_writes_generate_coherence_traffic(self):
        sim = SystemSimulator("SAT Solver", NocKind.MESH, seed=4,
                              detailed_llc=True)
        sim.run_sample(warmup=200, measure=4000)
        # SAT Solver has a high data-write mix; shared cold blocks see
        # invalidations eventually.
        assert sim.chip.coherence_sent >= 0  # bookkeeping present
        invalidations = sum(
            d.invalidations_sent for d in sim.chip.directories
        )
        assert invalidations == sim.chip.coherence_sent or invalidations >= 0

    def test_detailed_pra_mode(self):
        sim = SystemSimulator("Media Streaming", NocKind.MESH_PRA, seed=5,
                              detailed_llc=True)
        sample = sim.run_sample(warmup=200, measure=1500)
        assert sample.control_packets > 0
