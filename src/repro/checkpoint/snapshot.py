"""Versioned snapshot files: save/restore whole simulations.

A snapshot captures everything needed to continue a run bit-for-bit in a
fresh process: the immutable parameters (to rebuild the object tree),
the mutable ``state_dict`` of every component, the live-object
registries (packets, plans, control runs, transactions), and the global
id counters.  ``tests/test_golden_determinism.py`` pins the resulting
digests, so "restore + continue" and "straight run" are enforced to be
indistinguishable.

File formats, chosen by extension:

* ``.json`` — plain JSON (the canonical format);
* ``.json.gz`` — gzip-compressed JSON;
* ``.npz`` — JSON metadata plus large integer arrays hoisted into numpy
  arrays (smaller and faster for big event queues; requires numpy).
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import typing
from enum import Enum
from typing import Any, Optional, Tuple

from repro.checkpoint.codec import (
    CODE_VERSION,
    RestoreContext,
    SaveContext,
)
from repro.noc.network import Network, build_network
from repro.noc.packet import peek_next_pid, set_next_pid
from repro.params import ChipParams, NocParams
from repro.tile.llc import peek_next_tid, set_next_tid
from repro.workloads.synthetic import SyntheticTraffic

FORMAT = "repro-checkpoint"
FORMAT_VERSION = 1

#: Integer lists at least this long are hoisted into ``.npz`` arrays.
_NPZ_MIN_LEN = 64


# -- parameter (de)serialization ------------------------------------------

def params_state(params: Any) -> dict:
    """Generic frozen-dataclass encoder (enums by value, recursion for
    nested dataclasses)."""
    state = {}
    for f in dataclasses.fields(params):
        value = getattr(params, f.name)
        if dataclasses.is_dataclass(value):
            value = params_state(value)
        elif isinstance(value, Enum):
            value = value.value
        state[f.name] = value
    return state


def params_from_state(cls: type, state: dict) -> Any:
    """Inverse of :func:`params_state`.

    ``typing.get_type_hints`` resolves the stringified annotations that
    ``from __future__ import annotations`` leaves on the dataclasses.
    """
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for f in dataclasses.fields(cls):
        value = state[f.name]
        hint = hints[f.name]
        origin = typing.get_origin(hint)
        if origin is typing.Union:  # Optional[...]
            args = [a for a in typing.get_args(hint) if a is not type(None)]
            hint = args[0] if len(args) == 1 else hint
        if value is None:
            pass
        elif dataclasses.is_dataclass(hint):
            value = params_from_state(hint, value)
        elif isinstance(hint, type) and issubclass(hint, Enum):
            value = hint(value)
        kwargs[f.name] = value
    return cls(**kwargs)


# -- owner registration ----------------------------------------------------

def _register_network_owners(ctx, network: Network) -> None:
    """Both contexts must register the same owner keys — callbacks in
    the event queue serialize as (owner key, method name)."""
    ctx.register_owner(("net",), network)
    control = getattr(network, "control", None)
    if control is not None:
        ctx.register_owner(("control",), control)


def _register_system_owners(ctx, sim) -> None:
    _register_network_owners(ctx, sim.chip.network)
    ctx.register_owner(("chip",), sim.chip)
    ctx.register_owner(("sim",), sim)
    for core in sim.cores:
        ctx.register_owner(("core", core.node), core)
    for llc in sim.chip.slices:
        ctx.register_owner(("slice", llc.node), llc)


def _network_class(network: Network) -> str:
    """Label recorded for humans inspecting snapshots; restore goes
    through ``build_network``, which dispatches on the saved params
    (``kind`` plus the ``topology`` spec) alone."""
    topo = network.params.topology
    if topo == "mesh":
        return network.params.kind.value
    return f"{network.params.kind.value}@{topo.split(':', 1)[0]}"


# -- network snapshots -----------------------------------------------------

def snapshot_network(
    network: Network, traffic: Optional[SyntheticTraffic] = None
) -> dict:
    """Snapshot a bare network (plus an optional synthetic workload)."""
    ctx = SaveContext()
    _register_network_owners(ctx, network)
    body = network.state_dict(ctx)
    snap = {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "code_version": CODE_VERSION,
        "kind": "network",
        "network_class": _network_class(network),
        "params": params_state(network.params),
        "network": body,
        "registries": ctx.finalize(),
        "counters": {
            "next_pid": peek_next_pid(),
            "next_tid": peek_next_tid(),
        },
    }
    if traffic is not None:
        snap["traffic"] = traffic.state_dict()
    return snap


def _check_header(snap: dict, expected_kind: str) -> None:
    if snap.get("format") != FORMAT:
        raise ValueError("not a repro checkpoint file")
    if snap.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported snapshot version {snap.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if snap.get("code_version") != CODE_VERSION:
        raise ValueError(
            f"snapshot was written by code version "
            f"{snap.get('code_version')!r}, this build is {CODE_VERSION!r}"
        )
    if snap.get("kind") != expected_kind:
        raise ValueError(
            f"expected a {expected_kind!r} snapshot, got {snap.get('kind')!r}"
        )


def restore_network(
    snap: dict,
    packets_out: Optional[dict] = None,
) -> Tuple[Network, Optional[SyntheticTraffic]]:
    """Rebuild a network (and its workload, if snapshotted) from a
    snapshot produced by :func:`snapshot_network`.

    ``packets_out``, when given, is filled with the restored
    ``pid -> Packet`` map (the shard layer rebuilds its cross-boundary
    registry from it when a worker restarts from a recovery point).
    """
    _check_header(snap, "network")
    params = params_from_state(NocParams, snap["params"])
    network = build_network(params)
    ctx = RestoreContext(network, snap["registries"])
    _register_network_owners(ctx, network)
    ctx.materialize()
    if packets_out is not None:
        packets_out.update(ctx._packets)
    network.load_state(snap["network"], ctx)
    counters = snap["counters"]
    set_next_pid(counters["next_pid"])
    set_next_tid(counters["next_tid"])
    traffic = None
    if "traffic" in snap:
        traffic = SyntheticTraffic.from_state(network, snap["traffic"])
    return network, traffic


# -- system snapshots ------------------------------------------------------

def snapshot_system(sim) -> dict:
    """Snapshot a full :class:`~repro.perf.system.SystemSimulator`."""
    ctx = SaveContext()
    _register_system_owners(ctx, sim)
    body = sim.state_dict(ctx)
    return {
        "format": FORMAT,
        "version": FORMAT_VERSION,
        "code_version": CODE_VERSION,
        "kind": "system",
        "network_class": _network_class(sim.chip.network),
        "workload": sim.profile.name,
        "noc": sim.noc_kind.value,
        "detailed_llc": sim.chip.slices[0].cache is not None,
        "chip_params": params_state(sim.params),
        "system": body,
        "registries": ctx.finalize(),
        "counters": {
            "next_pid": peek_next_pid(),
            "next_tid": peek_next_tid(),
        },
    }


def restore_system(snap: dict):
    """Rebuild a :class:`~repro.perf.system.SystemSimulator`."""
    from repro.params import NocKind
    from repro.perf.system import SystemSimulator

    _check_header(snap, "system")
    sim = SystemSimulator(
        snap["workload"],
        NocKind(snap["noc"]),
        chip_params=params_from_state(ChipParams, snap["chip_params"]),
        detailed_llc=snap["detailed_llc"],
    )
    ctx = RestoreContext(sim.chip.network, snap["registries"])
    _register_system_owners(ctx, sim)
    ctx.materialize()
    sim.load_state(snap["system"], ctx)
    counters = snap["counters"]
    set_next_pid(counters["next_pid"])
    set_next_tid(counters["next_tid"])
    return sim


# -- digests ---------------------------------------------------------------

def run_digest(sample, stats_summary: dict) -> str:
    """The golden-determinism digest of one system run (matches the form
    pinned in ``tests/test_golden_determinism.py``)."""
    payload = {"sample": sample.to_dict(), "stats": stats_summary}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode()
    ).hexdigest()


# -- file I/O --------------------------------------------------------------

def write_snapshot(snap: dict, path: str) -> None:
    """Write ``snap`` to ``path``; the extension selects the format."""
    if path.endswith(".npz"):
        _write_npz(snap, path)
    elif path.endswith(".json.gz") or path.endswith(".gz"):
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            json.dump(snap, fh)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(snap, fh)


def read_snapshot(path: str) -> dict:
    if path.endswith(".npz"):
        return _read_npz(path)
    if path.endswith(".json.gz") or path.endswith(".gz"):
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            return json.load(fh)
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _require_numpy():
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - env without numpy
        raise RuntimeError(
            "the .npz snapshot format requires numpy; "
            "use a .json or .json.gz path instead"
        ) from exc
    return numpy


def _hoist_arrays(value: Any, arrays: dict, np) -> Any:
    """Replace long all-int lists with ``{"__npz__": key}`` markers."""
    if isinstance(value, dict):
        return {k: _hoist_arrays(v, arrays, np) for k, v in value.items()}
    if isinstance(value, list):
        if len(value) >= _NPZ_MIN_LEN and all(
            type(item) is int for item in value
        ):
            key = f"a{len(arrays)}"
            arrays[key] = np.asarray(value, dtype=np.int64)
            return {"__npz__": key}
        return [_hoist_arrays(item, arrays, np) for item in value]
    return value


def _lower_arrays(value: Any, arrays) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__npz__"}:
            return [int(x) for x in arrays[value["__npz__"]]]
        return {k: _lower_arrays(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_lower_arrays(item, arrays) for item in value]
    return value


def _write_npz(snap: dict, path: str) -> None:
    np = _require_numpy()
    arrays: dict = {}
    meta = _hoist_arrays(snap, arrays, np)
    arrays["__meta__"] = np.array(json.dumps(meta))
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)


def _read_npz(path: str) -> dict:
    np = _require_numpy()
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["__meta__"][()]))
        arrays = {key: data[key] for key in data.files if key != "__meta__"}
    return _lower_arrays(meta, arrays)
