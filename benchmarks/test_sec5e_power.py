"""Section V-E: power analysis.

Paper: NOC power stays below 2 W for every organization while the cores
alone consume in excess of 60 W.
"""

from repro.harness import power_analysis, render_figure
from repro.params import ChipParams


def test_sec5e_power(benchmark, save_result, scale):
    result = benchmark.pedantic(
        lambda: power_analysis(scale), iterations=1, rounds=1
    )
    save_result("sec5e_power", render_figure(result))
    chip = ChipParams()
    for kind, power in result["powers"].items():
        assert power.total_w < 2.0, kind
    assert chip.num_tiles * chip.core.power_w > 60.0
