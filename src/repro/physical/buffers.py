"""Buffer models: flip-flop based, as in DSENT for small buffer counts.

All organizations have few buffers (5 ports x 3 VCs x 5 flits of 128
bits per router), so flip-flop storage is the right model (paper Section
IV-B).  The per-bit cell area is the calibration constant that anchors
the mesh total at the paper's 3.5 mm².
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import ChipParams

#: Flip-flop storage cell (incl. local control overhead), mm² per bit at
#: 32 nm.  Calibration anchor for the Figure 8 totals.
FLIPFLOP_AREA_MM2_PER_BIT = 3.3e-6

#: Dynamic energy per bit written to or read from a flip-flop buffer.
BUFFER_ENERGY_FJ_PER_BIT = 18.0

#: Leakage per buffered bit (flip-flops leak little vs. SRAM arrays).
BUFFER_LEAKAGE_UW_PER_BIT = 0.035


@dataclass(frozen=True)
class BufferModel:
    """Aggregate flit-buffer storage of one router."""

    bits: int

    @property
    def area_mm2(self) -> float:
        return self.bits * FLIPFLOP_AREA_MM2_PER_BIT

    @property
    def leakage_w(self) -> float:
        return self.bits * BUFFER_LEAKAGE_UW_PER_BIT * 1e-6

    def access_energy_j(self, bits: int) -> float:
        return bits * BUFFER_ENERGY_FJ_PER_BIT * 1e-15


def router_vc_buffer_bits(chip: ChipParams) -> int:
    """Standard VC storage of one router (all organizations)."""
    r = chip.noc.router
    return r.num_ports * r.vcs_per_port * r.flits_per_vc * r.link_width_bits


def pra_extra_buffer_bits(chip: ChipParams) -> int:
    """Mesh+PRA additions per router: one latch per input port plus the
    per-output-port reservation bit vectors (Figure 4)."""
    r = chip.noc.router
    latch_bits = r.num_ports * r.link_width_bits
    # Per slot: valid + input select (3b) + local VC select (3b, incl.
    # bypass/latch encodings) + downstream VC select (3b).
    slot_bits = 1 + 3 + 3 + 3
    vector_bits = r.num_ports * chip.noc.pra.reservation_horizon * slot_bits
    return latch_bits + vector_bits
