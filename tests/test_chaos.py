"""Randomized chaos sweeps: seeded mixed-fault schedules across every
organization, with the invariant suite attached and raising.

The graceful-degradation contract: under any schedule the generator
produces, a network either delivers every packet and drains clean, or
the run dies with a structured InvariantViolation — never a silent hang
or a resource leak.
"""

import pytest

from repro.cli import main
from repro.faults import FaultInjector, FaultSchedule, LinkStall, StallWindow
from repro.invariants import InvariantSuite
from repro.noc.ring import build_ring
from repro.noc.topology import Direction
from repro.params import NocKind
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern
from tests.helpers import assert_quiescent, make_network

CYCLES = 500
DRAIN_LIMIT = 5000


def chaos_run(net, fault_seed, rate=0.03, cycles=CYCLES, intensity=1.0):
    """One chaos run with checkers raising; returns the injector."""
    schedule = FaultSchedule.random(
        fault_seed, net.topology.num_nodes, cycles, intensity=intensity
    )
    injector = FaultInjector(schedule)
    net.attach(faults=injector)
    suite = InvariantSuite(audit_period=8)
    net.attach(invariants=suite)
    SyntheticTraffic(
        net, TrafficPattern.UNIFORM_RANDOM, rate, seed=fault_seed + 1
    ).run(cycles)
    while (net.stats.in_flight and net.cycle < DRAIN_LIMIT
           and not suite.watchdog_fired):
        net.step()
    assert suite.violations == []
    assert net.stats.packets_ejected == net.stats.packets_injected, (
        f"{net.stats.in_flight} packets lost under fault seed {fault_seed}: "
        f"{injector.summary()}"
    )
    net.attach(invariants=None)
    assert_quiescent(net)
    return injector


@pytest.mark.parametrize("fault_seed", [3, 11])
@pytest.mark.parametrize(
    "kind", [NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA]
)
def test_chaos_sweep_mesh_organizations(kind, fault_seed):
    chaos_run(make_network(kind), fault_seed)


@pytest.mark.parametrize("fault_seed", [3, 11])
def test_chaos_sweep_ring(fault_seed):
    chaos_run(build_ring(16), fault_seed)


def test_chaos_high_intensity_pra():
    """Crank every probability and window count up 3x on the PRA mesh —
    the organization under test is the one with state to corrupt."""
    injector = chaos_run(make_network(NocKind.MESH_PRA), fault_seed=5,
                         rate=0.05, intensity=3.0)
    counts = injector.counts
    assert counts["control_drop"] > 0 or counts["control_blackout"] > 0


def test_ring_stall_only_schedule():
    net = build_ring(8)
    schedule = FaultSchedule(
        router_stalls=(StallWindow(node=2, start=40, duration=30),),
        link_stalls=(
            LinkStall(node=5, direction=Direction.EAST, start=60,
                      duration=25),
        ),
    )
    net.attach(faults=FaultInjector(schedule))
    suite = InvariantSuite(audit_period=8)
    net.attach(invariants=suite)
    SyntheticTraffic(
        net, TrafficPattern.UNIFORM_RANDOM, 0.04, seed=6
    ).run(400)
    while net.stats.in_flight and net.cycle < DRAIN_LIMIT:
        net.step()
    assert suite.violations == []
    assert net.stats.packets_ejected == net.stats.packets_injected
    net.attach(invariants=None)
    assert_quiescent(net)


# -- the chaos CLI --------------------------------------------------------


def test_chaos_cli_smoke(capsys):
    rc = main(["chaos", "--noc", "mesh_pra", "--mesh", "4x4",
               "--cycles", "300", "--rate", "0.02",
               "--fault-seed", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "all packets delivered, all invariants held" in out
    assert "faults injected" in out


def test_chaos_cli_ring(capsys):
    rc = main(["chaos", "--noc", "ring", "--mesh", "2x4",
               "--cycles", "300", "--rate", "0.02",
               "--fault-seed", "3"])
    assert rc == 0
    assert "organization:         ring" in capsys.readouterr().out


# -- CLI input validation (exit 2, clean message) -------------------------


def test_sweep_rejects_nonpositive_mesh(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--noc", "mesh", "--mesh", "0x4",
              "--rates", "0.005", "--cycles", "100"])
    assert exc.value.code == 2
    assert "mesh dimensions must be positive" in capsys.readouterr().err


def test_sweep_rejects_malformed_mesh(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--mesh", "4", "--rates", "0.005"])
    assert exc.value.code == 2
    assert "expected WxH" in capsys.readouterr().err


def test_sweep_rejects_out_of_range_vcs(capsys):
    rc = main(["sweep", "--noc", "mesh", "--vcs", "99",
               "--rates", "0.005", "--cycles", "100"])
    assert rc == 2
    assert "vcs_per_port" in capsys.readouterr().err


def test_sweep_accepts_custom_mesh_and_vcs(capsys):
    rc = main(["sweep", "--noc", "mesh", "--mesh", "2x2", "--vcs", "4",
               "--rates", "0.01", "--cycles", "200"])
    assert rc == 0
    assert "mesh" in capsys.readouterr().out


def test_chaos_rejects_bad_rate(capsys):
    rc = main(["chaos", "--noc", "mesh", "--rate", "1.5",
               "--cycles", "100"])
    assert rc == 2
    assert "probability" in capsys.readouterr().err
