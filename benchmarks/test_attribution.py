"""Latency attribution: the numbers behind EXPERIMENTS.md's gap analysis.

Splits Mesh+PRA network latency into planned responses, unplanned
responses, and requests, and reports plan coverage and length — the
quantities that explain how much of the mesh-to-ideal gap PRA can
capture in this substrate.
"""

from repro.harness.reporting import format_table
from repro.params import NocKind
from repro.perf.instrumentation import PraProbe
from repro.perf.system import SystemSimulator

WORKLOAD = "Web Search"


def test_attribution(benchmark, save_result, scale):
    def run():
        sim = SystemSimulator(WORKLOAD, NocKind.MESH_PRA, seed=1)
        probe = PraProbe.attach(sim.chip.network)
        sample = sim.run_sample(warmup=scale.warmup, measure=scale.measure)
        mesh = SystemSimulator(WORKLOAD, NocKind.MESH, seed=1)
        mesh_sample = mesh.run_sample(warmup=scale.warmup,
                                      measure=scale.measure)
        ideal = SystemSimulator(WORKLOAD, NocKind.IDEAL, seed=1)
        ideal_sample = ideal.run_sample(warmup=scale.warmup,
                                        measure=scale.measure)
        return probe.report(), sample, mesh_sample, ideal_sample

    report, sample, mesh_sample, ideal_sample = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    rows = [
        ["planned responses", report.planned_responses,
         report.planned_response_latency],
        ["unplanned responses", report.unplanned_responses,
         report.unplanned_response_latency],
        ["requests", report.requests, report.request_latency],
        ["(mesh avg, all)", mesh_sample.packets,
         mesh_sample.avg_network_latency],
        ["(ideal avg, all)", ideal_sample.packets,
         ideal_sample.avg_network_latency],
    ]
    extra = (
        f"plan coverage {report.planned_fraction:.0%}, "
        f"mean plan length {report.mean_plan_length:.2f} steps, "
        f"capture = {(mesh_sample.avg_network_latency - sample.avg_network_latency) / max(1e-9, mesh_sample.avg_network_latency - ideal_sample.avg_network_latency):.2f}"
    )
    save_result(
        "attribution",
        format_table(["Population", "Packets", "Mean latency"], rows,
                     f"Latency attribution ({WORKLOAD})") + "\n" + extra,
    )
    # The structural facts the gap analysis rests on:
    assert report.planned_fraction > 0.5
    assert (report.planned_response_latency
            < report.unplanned_response_latency)
    assert (report.planned_response_latency
            < mesh_sample.avg_network_latency)
    # Requests ride the plain mesh (within noise).
    assert report.request_latency == (
        __import__("pytest").approx(mesh_sample.avg_network_latency,
                                    rel=0.25)
    )
