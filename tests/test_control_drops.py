"""Regression tests for control-network media claims and drop paths.

Covers the transactional multi-drop claim fix (a failed 2-hop segment
must not leak its partner's latch claim), the per-cycle bucketing of the
claim structure, and every ``control_drop_reasons`` bucket including a
plan cancelled while its control packet is still in flight.
"""

import pytest

from repro.core.control_network import (
    DROP_CONTROL_CONFLICT,
    DROP_LAG_ZERO,
    DROP_REACHED_DESTINATION,
    DROP_RESOURCE_BUSY,
)
from repro.noc.packet import Packet
from repro.noc.topology import Direction
from repro.params import MessageClass
from tests.helpers import assert_quiescent
from tests.test_control_network import make_pra

# Timing of the canonical scenario used below: an 8x8 PRA mesh, one
# response announced 0 -> east at cycle 0 with ready_in=4.  The control
# packet is processed at cycle 1 (reserving the first step at node 0)
# and transmits its next multi-drop segment at cycle 3, claiming the
# receivers' input latches at (next node, EAST, 3) and — for a 2-hop
# segment — (via node, EAST, 3).
SEGMENT_CLAIM_CYCLE = 3


def announce_response(net, src, dst, ready_in=4):
    pkt = Packet(src=src, dst=dst, msg_class=MessageClass.RESPONSE,
                 created=net.cycle)
    net.announce(pkt, ready_in=ready_in)
    return pkt


class TestTransactionalMediaClaims:
    """A 2-hop segment's two latch claims commit together or not at all."""

    def test_failed_via_claim_leaks_nothing(self):
        """Regression: with the via latch busy, the segment is dropped
        and the *next-node* latch must remain unclaimed.  A leaked claim
        here drops an unrelated later control packet with a spurious
        conflict at (2, EAST, 3)."""
        net = make_pra()
        pkt = announce_response(net, src=0, dst=4)
        # Occupy the via router's input latch for the transmit cycle.
        assert net.control._claim(1, Direction.EAST, SEGMENT_CLAIM_CYCLE)
        net.run(2)  # segment processed at cycle 1, dropped at transmit
        assert (net.stats.control_drop_reasons[DROP_CONTROL_CONFLICT] == 1)
        assert not net.control.claimed(2, Direction.EAST, SEGMENT_CLAIM_CYCLE)
        assert net.control.claimed(1, Direction.EAST, SEGMENT_CLAIM_CYCLE)
        # The partially planned packet still delivers and unwinds.
        net.run(2)
        net.send(pkt)
        net.drain(max_cycles=500)
        assert pkt.ejected is not None
        assert_quiescent(net)

    def test_failed_next_claim_leaks_nothing(self):
        """The symmetric case: the next node's latch is busy; the via
        node's latch must remain unclaimed."""
        net = make_pra()
        pkt = announce_response(net, src=0, dst=4)
        assert net.control._claim(2, Direction.EAST, SEGMENT_CLAIM_CYCLE)
        net.run(2)
        assert (net.stats.control_drop_reasons[DROP_CONTROL_CONFLICT] == 1)
        assert not net.control.claimed(1, Direction.EAST, SEGMENT_CLAIM_CYCLE)
        net.run(2)
        net.send(pkt)
        net.drain(max_cycles=500)
        assert pkt.ejected is not None
        assert_quiescent(net)


class TestMediaBuckets:
    """Claims live in per-cycle buckets popped as the clock advances."""

    def test_past_cycle_claims_are_unreachable(self):
        net = make_pra()
        control = net.control
        assert control._claim(5, "inject", 6)
        assert control.claimed(5, "inject", 6)
        net.run(8)  # the clock passes cycle 6; its bucket is popped
        assert not control.claimed(5, "inject", 6)
        assert all(cycle >= net.cycle for cycle in control._media)
        # The slot is claimable again (nothing stale blocks it).
        assert control._claim(5, "inject", net.cycle + 2)

    def test_structure_stays_bounded_under_traffic(self):
        """After a busy run the claim table holds only future cycles
        within the reservation horizon — not one entry per historical
        claim."""
        net = make_pra()
        for src in range(8):
            announce_response(net, src=src, dst=src + 16)
            net.run(1)
        net.run(30)
        horizon = 64  # claims never extend past the slot horizon
        assert all(
            net.cycle <= cycle <= net.cycle + horizon
            for cycle in net.control._media
        )


def _no_setup(net):
    return None


def _preclaim_next_latch(net):
    """Force a control conflict at the first transmit segment."""
    net.control._claim(2, Direction.EAST, SEGMENT_CLAIM_CYCLE)
    return None


def _block_landing_vc(net):
    """Make the first step's landing VC unclaimable: resource busy."""
    blocker = Packet(src=1, dst=1, msg_class=MessageClass.RESPONSE,
                     created=0)
    vc = net.routers[0].output_ports[Direction.EAST].downstream_vc(
        blocker.vc_index
    )
    vc.allocated_to = blocker

    def cleanup():
        vc.allocated_to = None

    return cleanup


class TestDropReasons:
    """Every drop path lands in its own ``control_drop_reasons`` bucket."""

    @pytest.mark.parametrize(
        "reason,dst,setup",
        [
            pytest.param(DROP_LAG_ZERO, 63, _no_setup, id="lag_zero"),
            pytest.param(DROP_REACHED_DESTINATION, 2, _no_setup,
                         id="reached_destination"),
            pytest.param(DROP_CONTROL_CONFLICT, 4, _preclaim_next_latch,
                         id="control_conflict"),
            pytest.param(DROP_RESOURCE_BUSY, 1, _block_landing_vc,
                         id="resource_busy"),
        ],
    )
    def test_drop_reason_recorded(self, reason, dst, setup):
        net = make_pra()
        cleanup = setup(net)
        pkt = announce_response(net, src=0, dst=dst)
        net.run(4)
        if cleanup is not None:
            cleanup()
        net.send(pkt)
        net.drain(max_cycles=500)
        assert net.stats.control_drop_reasons[reason] == 1
        assert sum(net.stats.control_drop_reasons.values()) == 1
        assert pkt.ejected is not None
        assert_quiescent(net)

    def test_plan_cancelled_mid_flight(self):
        """A plan torn down while its control packet is still in flight:
        the next segment must drop (resource busy, current lag) instead
        of reserving into a cancelled plan."""
        net = make_pra()
        pkt = announce_response(net, src=0, dst=63)
        net.run(2)  # first segment reserved at cycle 1; next due at 3
        assert pkt.pra_plan is not None and len(pkt.pra_plan.steps) == 1
        pkt.pra_plan.cancel()
        net.run(2)  # the in-flight control packet lands on the cancel
        assert net.stats.control_drop_reasons[DROP_RESOURCE_BUSY] == 1
        # Lag after one segment of the initial 4: recorded at drop.
        assert net.stats.control_lag_at_drop[3] == 1
        net.send(pkt)
        net.drain(max_cycles=500)
        assert pkt.ejected is not None
        assert_quiescent(net)
