"""Figure 6: full-system performance of all four organizations.

Paper shape: Mesh ~= SMART < Mesh+PRA < Ideal for every workload, with
Media Streaming among the largest PRA gains.  See EXPERIMENTS.md for the
paper-vs-measured magnitudes.
"""

from repro.harness import figure6, render_figure
from repro.params import NocKind
from repro.workloads.profiles import WORKLOAD_NAMES


def test_fig6_performance(benchmark, save_result, scale):
    result = benchmark.pedantic(
        lambda: figure6(scale), iterations=1, rounds=1
    )
    save_result("fig6_performance", render_figure(result))
    gmeans = result["gmeans"]
    normalized = result["normalized"]
    # Ordering: PRA beats both realistic baselines, ideal beats all.
    assert gmeans[NocKind.MESH_PRA] > gmeans[NocKind.MESH]
    assert gmeans[NocKind.MESH_PRA] > gmeans[NocKind.SMART]
    assert gmeans[NocKind.IDEAL] > gmeans[NocKind.MESH_PRA]
    # SMART is within a few percent of the mesh.
    assert abs(gmeans[NocKind.SMART] - 1.0) < 0.05
    # PRA helps every workload.
    for workload in WORKLOAD_NAMES:
        assert normalized[workload][NocKind.MESH_PRA] > 1.0
