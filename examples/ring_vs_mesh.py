#!/usr/bin/env python3
"""Why server chips moved from rings to meshes (paper Section II-B).

Measures low-load average network latency of a Xeon-E5-style
bidirectional ring against a mesh as the tile count grows — the ring's
delay depends linearly on the number of interconnected components, the
mesh's on its square root.

Run:  python examples/ring_vs_mesh.py
"""

import random

from repro.noc.network import build_network
from repro.noc.packet import Packet
from repro.noc.ring import build_ring
from repro.params import MessageClass, NocKind, NocParams


def measure(net, nodes, packets=80, seed=11):
    rng = random.Random(seed)
    for _ in range(packets):
        src = rng.randrange(nodes)
        dst = (src + rng.randrange(1, nodes)) % nodes
        net.send(Packet(src=src, dst=dst, msg_class=MessageClass.REQUEST,
                        created=net.cycle))
        net.run(4)
    net.drain(max_cycles=50000)
    return net.stats.avg_network_latency, net.stats.avg_hops


def main() -> None:
    print("Average request latency (cycles) at low load:\n")
    print(f"{'tiles':>6s} {'ring':>8s} {'mesh':>8s} {'ring hops':>10s} "
          f"{'mesh hops':>10s}")
    for nodes, w, h in ((16, 4, 4), (36, 6, 6), (64, 8, 8)):
        ring_lat, ring_hops = measure(build_ring(nodes), nodes)
        mesh = build_network(NocParams(kind=NocKind.MESH, mesh_width=w,
                                       mesh_height=h))
        mesh_lat, mesh_hops = measure(mesh, nodes)
        print(f"{nodes:>6d} {ring_lat:>8.2f} {mesh_lat:>8.2f} "
              f"{ring_hops:>10.2f} {mesh_hops:>10.2f}")
    print("\nThe ring's average distance grows ~N/4; the mesh's ~(2/3)sqrt(N).")
    print("At 64 tiles the ring is no longer viable — hence the tiled mesh,")
    print("and hence this paper's problem: making that mesh near-ideal.")


if __name__ == "__main__":
    main()
