"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures [--scale S] [--only fig6,...] [--json PATH]
  [--cell-store DIR]`` — reproduce the paper's tables/figures and print
  them (with a cell store attached, interrupted grids resume);
* ``simulate [WORKLOAD] [--noc KIND] [--warmup N] [--measure N]
  [--seed N] [--trace PATH] [--checkpoint-every N] [--checkpoint TPL]
  [--restore FILE] [--digest]`` — one full-system run with diagnostics
  (and optionally a JSONL event trace); periodic snapshots make the
  run resumable, and ``--restore`` continues one bit-for-bit;
* ``trace --workload W [--noc KIND] [--cycles N] [--packet PID]
  [--out PATH]`` — run with cycle-level event tracing and reconstruct a
  per-packet timeline (a planned response by default);
* ``sweep [--noc KIND] [--pattern P] [--rates ...]`` — open-loop
  load-latency curves under synthetic traffic;
* ``saturate [--noc KIND] [--pattern P] [--cold]`` — bisect the
  saturation injection rate, warm-started from the analytic queueing
  model's capacity bound (``--cold`` reproduces the legacy scan);
* ``analytic [--validate] [--scale S]`` — print the queueing model's
  predicted grid with zero simulation, or (with ``--validate``) run
  the cycle-accurate grid and fail if the model's error exceeds the
  committed margin;
* ``chaos [--noc KIND] [--fault-seed N] [--intensity X]`` — run a
  seeded fault schedule (dropped control packets, stalled routers and
  links, multi-drop blackouts) with the runtime invariant checkers
  attached; exits non-zero on violations or undelivered packets;
* ``bench [--scale S] [--profile [N]] [--compare A B]`` — self-measure
  simulator throughput (cycles/second per organization plus the
  evaluation-grid wall time), write a ``BENCH_<stamp>.json`` report,
  or diff two reports;
* ``area`` / ``power`` — the analytic physical models;
* ``params`` — echo the Table I configuration.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.params import NocKind
from repro.harness import (
    analytic_validation,
    chiplet_comparison,
    figure2,
    figure6,
    figure7,
    figure8,
    figure9,
    get_scale,
    power_analysis,
    render_figure,
    section5b_stats,
    table1,
    zero_load_table,
)
from repro.harness.reporting import render_bars

_FIGURES = {
    "table1": lambda scale: table1(),
    "fig2": figure2,
    "fig6": figure6,
    "fig7": figure7,
    "sec5b": section5b_stats,
    "fig8": lambda scale: figure8(),
    "fig9": figure9,
    "power": power_analysis,
    "zeroload": lambda scale: zero_load_table(),
    "chiplet": chiplet_comparison,
    "analytic": analytic_validation,
}

#: ``figures`` without ``--only`` runs these; the analytic validation
#: figure is opt-in because it forces a fully *simulated* grid (pruning
#: off) — exactly what ``REPRO_ANALYTIC=prune`` users are avoiding.
_DEFAULT_FIGURES = [name for name in _FIGURES if name != "analytic"]

#: CLI spellings of the NoC kinds: the canonical value plus an
#: underscore alias for the '+' (shell-friendlier, e.g. ``mesh_pra``).
_NOC_KINDS = {k.value: k for k in NocKind}
_NOC_KINDS.update({k.value.replace("+", "_"): k for k in NocKind})

#: Organizations the chaos harness can inject faults into ("ring" is a
#: router-level topology here, not a NocKind; "ideal" has no routers or
#: links to fault, so it is excluded).
_CHAOS_NOCS = sorted(
    {name for name, k in _NOC_KINDS.items() if k is not NocKind.IDEAL}
    | {"ring"}
)


def _parse_mesh(text: str):
    """argparse type for ``--mesh WxH`` (e.g. ``4x4``)."""
    try:
        width_s, _, height_s = text.lower().partition("x")
        width, height = int(width_s), int(height_s)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected WxH (e.g. 8x8), got {text!r}"
        ) from None
    if width < 1 or height < 1:
        raise argparse.ArgumentTypeError(
            f"mesh dimensions must be positive, got {text!r}"
        )
    return width, height


def _add_time_skip_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--no-time-skip", action="store_true",
                   help="disable event-horizon time skipping and step "
                        "every cycle (results are bit-identical either "
                        "way; this is a debugging escape hatch, also "
                        "available as REPRO_NO_TIME_SKIP=1)")
    p.add_argument("--no-fastpath", action="store_true",
                   help="disable build-time router specialization and "
                        "run every router on the generic reference step "
                        "(results are bit-identical either way; also "
                        "available as REPRO_NO_FASTPATH=1)")


def _add_topology_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--topology", default="mesh", metavar="SPEC",
                   help="topology spec: mesh (default), ring, or "
                        "chiplet:CXxCYxWxH[:star][:ilat=N] "
                        "(e.g. chiplet:2x2x4x4)")


def _add_shards_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--shards", type=str, default=None, metavar="N",
                   help="cut the simulated mesh into N row stripes "
                        "stepped by parallel workers (0 = one per CPU; "
                        "also available as REPRO_SHARDS); statistics "
                        "stay bit-identical to a serial run")


def _resolve_shards(args: argparse.Namespace) -> int:
    """``--shards`` wins over ``REPRO_SHARDS``; both share the
    worker-count validator, so bad values exit 2 with the same message
    shape as every other parameter error."""
    from repro.harness.runner import parse_worker_count
    from repro.shard import shards_from_env

    if getattr(args, "shards", None) is not None:
        return parse_worker_count(args.shards, "--shards")
    return shards_from_env(default=1)


def _apply_cell_store(args: argparse.Namespace) -> None:
    """``--cell-store PATH`` persists finished evaluation-grid cells
    there (equivalent to setting ``REPRO_CELL_STORE``), so an
    interrupted grid resumes instead of recomputing."""
    if getattr(args, "cell_store", None):
        from repro.checkpoint import STORE_ENV

        os.environ[STORE_ENV] = args.cell_store


def _validate_wall_limit() -> None:
    """Fail fast (exit 2 via ``main``) on a malformed REPRO_WALL_LIMIT
    instead of deep inside a long sweep."""
    from repro.harness.runner import _wall_limit

    _wall_limit()


def _report_grid_outcome() -> int:
    """Exit code for a finished grid sweep: nonzero when cells were
    quarantined or the run degraded, with the RunReport on stderr."""
    from repro.resilience import last_run_report

    report = last_run_report()
    if report is not None and (report.quarantined or report.degraded):
        print(report.render(), file=sys.stderr)
        return 1
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    _apply_cell_store(args)
    _validate_wall_limit()
    scale = get_scale(args.scale)
    names = args.only.split(",") if args.only else list(_DEFAULT_FIGURES)
    collected = {}
    for name in names:
        if name not in _FIGURES:
            print(f"unknown figure {name!r}; choose from {list(_FIGURES)}",
                  file=sys.stderr)
            return 2
        result = _FIGURES[name](scale)
        collected[name] = result
        print(render_bars(result) if args.bars else render_figure(result))
        print()
    if args.json:
        serializable = {
            name: {"title": r["title"], "headers": r["headers"],
                   "rows": [[str(c) for c in row] for row in r["rows"]]}
            for name, r in collected.items()
        }
        with open(args.json, "w") as fh:
            json.dump(serializable, fh, indent=2)
        print(f"wrote {args.json}")
    return _report_grid_outcome()


def _resolve_workload_arg(name: str) -> Optional[str]:
    """Canonical workload name, or None (with a message) on a typo."""
    from repro.workloads.profiles import resolve_workload

    try:
        return resolve_workload(name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return None


def _drive(sim, warmup: int, measure: int, every: Optional[int],
           path_tpl: str):
    """Run ``sim`` to the absolute cycle ``warmup + measure``, writing a
    snapshot at every multiple of ``every`` strictly before the end.

    Cycles are absolute, so a simulator restored from one of those
    snapshots resumes mid-schedule: already-simulated cycles are not
    repeated, and the measurement interval opened before the snapshot
    (or at ``warmup``, whichever comes first on this process's watch)
    closes exactly where a straight run would close it.
    """
    from repro.checkpoint import snapshot_system, write_snapshot

    sim.start()
    end = warmup + measure

    def run_to(target: int) -> None:
        while sim.chip.cycle < target:
            step = target - sim.chip.cycle
            if every:
                next_ck = (sim.chip.cycle // every + 1) * every
                if next_ck < min(end, target + 1):
                    step = next_ck - sim.chip.cycle
            sim.chip.run(step)
            at = sim.chip.cycle
            if every and at % every == 0 and at < end:
                path = path_tpl.format(cycle=at)
                write_snapshot(snapshot_system(sim), path)
                print(f"checkpoint: cycle {at} -> {path}")

    run_to(warmup)
    if sim._interval_start is None:
        sim.begin_interval()
    run_to(end)
    return sim.end_interval()


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.perf.system import SystemSimulator

    shards = _resolve_shards(args)
    if shards > 1:
        # Full-system runs couple the cores to the NoC every cycle;
        # only the synthetic-traffic scenarios shard today (see
        # `repro bench --shards N` and repro.shard.run_sharded).
        print(f"warning: --shards {shards} ignored: full-system runs "
              f"do not shard yet; running serially", file=sys.stderr)
    if args.restore:
        from repro.checkpoint import read_snapshot, restore_system

        sim = restore_system(read_snapshot(args.restore))
        workload = sim.profile.name
        kind = sim.noc_kind
    else:
        if args.workload is None:
            print("error: a WORKLOAD argument is required unless "
                  "--restore is given", file=sys.stderr)
            return 2
        workload = _resolve_workload_arg(args.workload)
        if workload is None:
            return 2
        kind = _NOC_KINDS[args.noc]
        sim = SystemSimulator(workload, kind, seed=args.seed)
    tracer = None
    if args.trace:
        from repro.trace import RingTracer

        tracer = RingTracer()
        sim.chip.network.attach(tracer=tracer)
    sample = _drive(sim, args.warmup, args.measure,
                    args.checkpoint_every, args.checkpoint)
    if tracer is not None:
        written = tracer.write_jsonl(args.trace)
        print(f"trace:                {written} events -> {args.trace}"
              + (f" ({tracer.dropped} older events evicted)"
                 if tracer.dropped else ""))
    print(f"workload:             {sample.workload}")
    print(f"organization:         {kind.value}")
    print(f"aggregate IPC:        {sample.ipc:.2f}")
    print(f"packets delivered:    {sample.packets}")
    print(f"avg network latency:  {sample.avg_network_latency:.2f} cycles")
    if kind is NocKind.MESH_PRA:
        print(f"control/data packets: {sample.control_per_data:.2f}")
        print(f"lag distribution:     "
              + ", ".join(f"lag{k}={v:.0%}"
                          for k, v in sorted(sample.lag_distribution.items())))
        print(f"blocked fraction:     {sample.pra_blocked_fraction:.3%}")
    if args.digest:
        from repro.checkpoint import run_digest

        digest = run_digest(sample, sim.chip.network.stats.summary())
        print(f"digest:               {digest}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.perf.system import SystemSimulator
    from repro.trace import (
        RingTracer,
        delivered_pids,
        planned_pids,
        reconstruct,
    )
    workload = _resolve_workload_arg(args.workload)
    if workload is None:
        return 2
    kind = _NOC_KINDS[args.noc]
    window = (args.warmup, args.warmup + args.cycles)
    tracer = RingTracer(
        capacity=args.capacity,
        pids=[args.packet] if args.packet is not None else None,
        cycle_window=window,
    )
    sim = SystemSimulator(workload, kind, seed=args.seed)
    sim.chip.network.attach(tracer=tracer)
    sim.run_sample(warmup=args.warmup, measure=args.cycles)
    written = tracer.write_jsonl(args.out)
    print(f"traced {workload} on {kind.value}: cycles "
          f"[{window[0]}, {window[1]}), {written} events -> {args.out}")
    if tracer.dropped:
        print(f"note: ring bound evicted {tracer.dropped} older events "
              f"(raise --capacity to keep more)")
    counts = tracer.kind_counts()
    for kind_name in sorted(counts):
        print(f"  {kind_name:<20} {counts[kind_name]}")
    events = tracer.events()
    if args.packet is not None:
        pid = args.packet
    else:
        # Show the most informative timeline: among planned packets
        # delivered inside the window, the one with the longest
        # pre-allocated stretch (responses planned from the LLC-hit
        # window typically win over single-step LSD plans).
        planned = planned_pids(events) & delivered_pids(events)
        pid = max(
            planned,
            key=lambda p: len(reconstruct(events, p).plan_sequence()),
            default=None,
        )
    if pid is None:
        print("\nno planned packet was delivered inside the traced "
              "window; pass --packet PID or widen --cycles")
        return 0
    print()
    print(reconstruct(events, pid).render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.noc.network import build_network
    from repro.params import NocParams, RouterParams
    from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

    pattern = TrafficPattern(args.pattern)
    topology = args.topology
    if args.noc:
        kinds = [_NOC_KINDS[args.noc]]
    elif topology.startswith("chiplet"):
        # Only the baseline and ideal organizations build on chiplet
        # topologies; an explicit --noc outside that set still fails
        # loudly in build_network.
        kinds = [NocKind.MESH, NocKind.IDEAL]
    elif topology == "ring":
        kinds = [NocKind.MESH]
    else:
        kinds = list(NocKind)
    rates = [float(r) for r in args.rates.split(",")]
    width, height = args.mesh
    router = RouterParams()
    if args.vcs is not None:
        router = replace(router, vcs_per_port=args.vcs)
    header = "rate      " + "".join(f"{k.value:>10s}" for k in kinds)
    print(header)
    print("-" * len(header))
    for rate in rates:
        cells = []
        for kind in kinds:
            net = build_network(NocParams(
                kind=kind, mesh_width=width, mesh_height=height,
                topology=topology, router=router,
            ))
            SyntheticTraffic(net, pattern, rate, seed=args.seed).run(
                args.cycles
            )
            cells.append(f"{net.stats.avg_network_latency:10.2f}")
        print(f"{rate:<10.4f}" + "".join(cells))
    return 0


def _build_chaos_network(noc: str, width: int, height: int,
                         topology: str = "mesh"):
    """A network for the chaos harness; ``ring`` wraps the stop count."""
    from repro.noc.network import build_network
    from repro.noc.ring import build_ring
    from repro.params import NocParams

    if noc == "ring":
        return build_ring(width * height)
    return build_network(NocParams(
        kind=_NOC_KINDS[noc], mesh_width=width, mesh_height=height,
        topology=topology,
    ))


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import FaultInjector, FaultSchedule
    from repro.invariants import InvariantSuite
    from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

    width, height = args.mesh
    net = _build_chaos_network(args.noc, width, height, args.topology)
    num_nodes = net.topology.num_nodes
    schedule = FaultSchedule.random(
        args.fault_seed, num_nodes, args.cycles, intensity=args.intensity
    )
    injector = FaultInjector(schedule)
    suite = InvariantSuite(raise_on_violation=False)
    net.attach(faults=injector, invariants=suite)
    traffic = SyntheticTraffic(
        net, TrafficPattern(args.pattern), args.rate, seed=args.seed
    )
    traffic.run(args.cycles)
    drain_limit = args.cycles + args.drain
    while (net.stats.in_flight and net.cycle < drain_limit
           and not suite.watchdog_fired):
        net.step()

    stats = net.stats
    print(f"organization:         {args.noc}")
    print(f"nodes:                {num_nodes}")
    print(f"fault seed:           {args.fault_seed} "
          f"(intensity {args.intensity})")
    print(f"packets delivered:    {stats.packets_ejected}"
          f" / {stats.packets_injected}")
    print(f"packets unfinished:   {stats.in_flight}")
    print(f"avg network latency:  {stats.avg_network_latency:.2f} cycles")
    print(f"invariant audits:     {suite.audits_run}")
    summary = injector.summary()
    print("faults injected:      "
          + (", ".join(f"{k}={v}" for k, v in sorted(summary.items()))
             or "none"))
    if stats.control_drop_reasons:
        print("control drops:        "
              + ", ".join(f"{k}={v}" for k, v in
                          sorted(stats.control_drop_reasons.items())))
    failed = False
    if suite.violations:
        failed = True
        print(f"\nINVARIANT VIOLATIONS ({len(suite.violations)}):",
              file=sys.stderr)
        for violation in suite.violations:
            print(violation.render(), file=sys.stderr)
    if stats.in_flight:
        failed = True
        print(f"\n{stats.in_flight} packets never finished "
              f"(drain limit {drain_limit} cycles"
              + (", watchdog fired" if suite.watchdog_fired else "")
              + ")", file=sys.stderr)
    if not failed:
        print("all packets delivered, all invariants held")
    return 1 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    _apply_cell_store(args)
    _validate_wall_limit()
    from repro.bench import (
        compare_reports,
        profile_micro,
        render_compare,
        render_report,
        run_bench,
        write_report,
    )

    if args.compare:
        path_a, path_b = args.compare
        rows, failed = compare_reports(
            path_a, path_b, fail_threshold=args.fail_threshold
        )
        print(render_compare(rows, path_a, path_b, args.fail_threshold))
        return 1 if failed else 0
    scale = get_scale(args.scale)
    if args.profile is not None:
        print(profile_micro(scale, top=args.profile))
        return 0
    report = run_bench(scale, repeat=args.repeat,
                       include_macro=not args.no_macro,
                       shards=_resolve_shards(args))
    print(render_report(report))
    path = write_report(report, out=args.out)
    print(f"\nwrote {path}")
    return _report_grid_outcome()


def _cmd_saturate(args: argparse.Namespace) -> int:
    from repro.analytic import find_saturation
    from repro.params import NocParams
    from repro.workloads.synthetic import TrafficPattern

    kind = _NOC_KINDS[args.noc]
    width, height = args.mesh
    params = NocParams(kind=kind, mesh_width=width, mesh_height=height,
                       topology=args.topology)
    hotspot = (
        tuple(int(n) for n in args.hotspot.split(","))
        if args.hotspot else None
    )
    result = find_saturation(
        kind,
        TrafficPattern(args.pattern),
        params=params,
        cycles=args.cycles,
        seed=args.seed,
        threshold=args.threshold,
        tolerance=args.tol,
        warm=not args.cold,
        hotspot_nodes=hotspot,
    )
    print(f"organization:         {kind.value}")
    print(f"pattern:              {result.pattern.value}")
    print(f"model estimate:       {result.model_estimate:.4f} "
          f"(injection probability/node/cycle)")
    print(f"measured saturation:  {result.measured:.4f} "
          f"(bracket [{result.bracket[0]:.4f}, {result.bracket[1]:.4f}])")
    print(f"model error:          {result.model_error:.1%}")
    print(f"zero-load latency:    {result.zero_load_latency:.2f} cycles "
          f"(knee at {result.threshold:g}x)")
    print(f"probe simulations:    {result.simulated_points} "
          f"({'warm' if result.warm else 'cold'} start)")
    if args.verbose:
        print()
        print("rate      latency   delivered saturated")
        for point in result.points:
            print(f"{point.rate:<10.4f}{point.latency:<10.2f}"
                  f"{point.delivered_fraction:<10.3f}"
                  f"{'yes' if point.saturated else 'no'}")
    return 0


def _cmd_analytic(args: argparse.Namespace) -> int:
    _validate_wall_limit()
    scale = get_scale(args.scale)
    if args.validate:
        result = analytic_validation(scale)
        print(render_figure(result))
        if not result["ok"]:
            report = result["report"]
            print(
                f"\nvalidation FAILED: max latency error "
                f"{report.max_latency_error:.1%} (margin "
                f"{report.margin:.0%}), max IPC error "
                f"{report.max_ipc_error:.1%} (margin "
                f"{report.ipc_margin:.0%})",
                file=sys.stderr,
            )
            return 1
        return _report_grid_outcome()
    # Without --validate: print the model's grid, no simulation at all.
    from repro.analytic import predict_cell
    from repro.harness.runner import ALL_KINDS
    from repro.workloads.profiles import WORKLOAD_NAMES

    header = ("workload             "
              + "".join(f"{k.value:>10s}" for k in ALL_KINDS))
    print("Analytic model IPC by organization (no simulation)")
    print(header)
    print("-" * len(header))
    for workload in WORKLOAD_NAMES:
        cells = "".join(
            f"{predict_cell(workload, kind).ipc:10.1f}"
            for kind in ALL_KINDS
        )
        print(f"{workload:<21s}{cells}")
    return 0


def _cmd_area(_args: argparse.Namespace) -> int:
    print(render_figure(figure8()))
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    print(render_figure(power_analysis(scale)))
    return 0


def _cmd_params(_args: argparse.Namespace) -> int:
    print(render_figure(table1()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Near-Ideal Networks-on-Chip for "
                    "Servers' (HPCA 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="reproduce the paper's figures")
    p.add_argument("--scale", default=None,
                   help="smoke | default | full (or REPRO_SCALE)")
    p.add_argument("--only", default=None,
                   help=f"comma list from {list(_FIGURES)}")
    p.add_argument("--json", default=None, help="also dump JSON here")
    p.add_argument("--bars", action="store_true",
                   help="render ASCII bar charts instead of tables")
    _add_time_skip_flag(p)
    p.add_argument("--cell-store", default=None, metavar="PATH",
                   help="persist finished evaluation-grid cells under "
                        "PATH (sets REPRO_CELL_STORE) so interrupted "
                        "sweeps resume")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("simulate", help="one full-system run")
    p.add_argument("workload", nargs="?", default=None,
                   help="workload name or alias (omit with --restore)")
    p.add_argument("--noc", default="mesh+pra", choices=sorted(_NOC_KINDS))
    p.add_argument("--warmup", type=int, default=1000)
    p.add_argument("--measure", type=int, default=5000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="also write a JSONL event trace of the run")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N",
                   help="write a snapshot at every multiple of N cycles "
                        "(strictly before the run's end)")
    p.add_argument("--checkpoint", default="checkpoint-{cycle}.json",
                   metavar="TPL",
                   help="checkpoint path template; '{cycle}' expands to "
                        "the snapshot cycle, the extension picks the "
                        "format: .json, .json.gz, or .npz "
                        "(default: %(default)s)")
    p.add_argument("--restore", default=None, metavar="FILE",
                   help="resume from a snapshot instead of starting at "
                        "cycle 0 (pass the same --warmup/--measure as "
                        "the original run to finish its schedule)")
    p.add_argument("--digest", action="store_true",
                   help="print the run's golden-determinism sha256 "
                        "digest (restored runs must match straight runs)")
    _add_time_skip_flag(p)
    _add_shards_flag(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "trace",
        help="run with cycle-level event tracing and reconstruct a "
             "per-packet timeline",
    )
    p.add_argument("--workload", required=True,
                   help="workload name or alias (e.g. 'web')")
    p.add_argument("--noc", default="mesh_pra", choices=sorted(_NOC_KINDS))
    p.add_argument("--cycles", type=int, default=200,
                   help="length of the traced cycle window")
    p.add_argument("--warmup", type=int, default=200,
                   help="untraced warm-up cycles before the window")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--packet", type=int, default=None, metavar="PID",
                   help="trace and reconstruct only this packet id")
    p.add_argument("--out", default="trace.jsonl", metavar="PATH",
                   help="JSONL output path (default: trace.jsonl)")
    p.add_argument("--capacity", type=int, default=1 << 17,
                   help="ring-buffer bound on captured events")
    _add_time_skip_flag(p)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("sweep", help="synthetic load-latency sweep")
    p.add_argument("--noc", default=None, choices=sorted(_NOC_KINDS))
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--rates", default="0.002,0.005,0.01,0.02")
    p.add_argument("--cycles", type=int, default=2000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--mesh", type=_parse_mesh, default=(8, 8),
                   metavar="WxH", help="mesh dimensions (default 8x8)")
    p.add_argument("--vcs", type=int, default=None,
                   help="virtual channels per port (default: per class)")
    _add_topology_flag(p)
    _add_time_skip_flag(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "chaos",
        help="fault-injection run with runtime invariant checking",
    )
    p.add_argument("--noc", default="mesh_pra", choices=_CHAOS_NOCS)
    p.add_argument("--mesh", type=_parse_mesh, default=(4, 4),
                   metavar="WxH",
                   help="mesh dimensions (ring: WxH stops; default 4x4)")
    p.add_argument("--cycles", type=int, default=500,
                   help="injection window length")
    p.add_argument("--drain", type=int, default=4096,
                   help="extra cycles allowed to drain in-flight packets")
    p.add_argument("--rate", type=float, default=0.03,
                   help="per-node injection probability")
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--seed", type=int, default=1, help="traffic seed")
    p.add_argument("--fault-seed", type=int, default=7,
                   help="fault-schedule seed")
    p.add_argument("--intensity", type=float, default=1.0,
                   help="fault-schedule intensity multiplier")
    _add_topology_flag(p)
    _add_time_skip_flag(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "bench",
        help="self-measuring performance benchmark of the simulator",
    )
    p.add_argument("--scale", default=None,
                   help="smoke | default | full (or REPRO_SCALE)")
    p.add_argument("--repeat", type=int, default=2,
                   help="timing repetitions per micro cell (best-of)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="report path (default: BENCH_<stamp>.json)")
    p.add_argument("--no-macro", action="store_true",
                   help="skip the evaluation-grid macro benchmark")
    p.add_argument("--profile", type=int, nargs="?", const=20, default=None,
                   metavar="N",
                   help="cProfile the micro suite and print the top N "
                        "functions instead of writing a report")
    p.add_argument("--compare", nargs=2, metavar=("A", "B"),
                   help="diff two BENCH_*.json reports instead of running")
    p.add_argument("--fail-threshold", type=float, default=None,
                   metavar="FRAC",
                   help="with --compare: exit non-zero if any organization "
                        "regressed by more than FRAC (e.g. 0.30)")
    p.add_argument("--cell-store", default=None, metavar="PATH",
                   help="persist finished evaluation-grid cells under "
                        "PATH (sets REPRO_CELL_STORE); the macro report "
                        "records how many cells came from the store")
    _add_time_skip_flag(p)
    _add_shards_flag(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "saturate",
        help="model-seeded bisection search for the saturation rate",
    )
    p.add_argument("--noc", default="mesh", choices=sorted(_NOC_KINDS))
    p.add_argument("--pattern", default="uniform_random")
    p.add_argument("--mesh", type=_parse_mesh, default=(8, 8),
                   metavar="WxH", help="mesh dimensions (default 8x8)")
    p.add_argument("--cycles", type=int, default=2000,
                   help="length of each probe window")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--threshold", type=float, default=3.0,
                   help="saturation knee: latency above THRESHOLD x "
                        "zero-load (default 3.0)")
    p.add_argument("--tol", type=float, default=0.002,
                   help="bisection bracket width to converge to")
    p.add_argument("--cold", action="store_true",
                   help="ignore the analytic estimate and cold-scan "
                        "from 1%% load (more probes, same answer)")
    p.add_argument("--hotspot", default=None, metavar="N,N,...",
                   help="hotspot node ids for --pattern hotspot")
    p.add_argument("--verbose", action="store_true",
                   help="also print every probe point")
    _add_topology_flag(p)
    _add_time_skip_flag(p)
    p.set_defaults(func=_cmd_saturate)

    p = sub.add_parser(
        "analytic",
        help="the queueing-model fast path: predictions and validation",
    )
    p.add_argument("--validate", action="store_true",
                   help="simulate the full grid (pruning off) and fail "
                        "if any cell's model error exceeds the margin")
    p.add_argument("--scale", default=None,
                   help="smoke | default | full (or REPRO_SCALE)")
    _add_time_skip_flag(p)
    p.set_defaults(func=_cmd_analytic)

    p = sub.add_parser("area", help="Figure 8 area model")
    p.set_defaults(func=_cmd_area)

    p = sub.add_parser("power", help="Section V-E power analysis")
    p.add_argument("--scale", default="smoke")
    p.set_defaults(func=_cmd_power)

    p = sub.add_parser("params", help="echo the Table I configuration")
    p.set_defaults(func=_cmd_params)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "no_time_skip", False):
        from repro.noc.network import set_time_skip

        # Flip the process-wide default before any network is built;
        # REPRO_JOBS worker pools inherit it via their initializer.
        set_time_skip(False)
    if getattr(args, "no_fastpath", False):
        from repro.noc.network import set_fastpath

        set_fastpath(False)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0
    except ValueError as exc:
        # Invalid parameter combinations (dataclass validation, bad
        # pattern/rate strings) exit like argparse errors do.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
