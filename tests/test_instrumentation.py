"""Tests for the PRA latency-attribution probe."""

import pytest

from repro.params import NocKind
from repro.perf.instrumentation import PraProbe
from repro.perf.system import SystemSimulator


class TestPraProbe:
    def test_attribution_on_pra_system(self):
        sim = SystemSimulator("Web Search", NocKind.MESH_PRA, seed=1)
        probe = PraProbe.attach(sim.chip.network)
        sim.run_sample(warmup=300, measure=2000)
        report = probe.report()
        assert report.planned_responses > 0
        assert report.requests > 0
        # Planned responses are faster than unplanned ones.
        if report.unplanned_responses > 20:
            assert (report.planned_response_latency
                    < report.unplanned_response_latency)
        assert 0.0 < report.planned_fraction <= 1.0
        assert report.mean_plan_length > 0

    def test_probe_on_mesh_sees_no_plans(self):
        sim = SystemSimulator("Web Search", NocKind.MESH, seed=1)
        probe = PraProbe.attach(sim.chip.network)
        sim.run_sample(warmup=200, measure=800)
        report = probe.report()
        assert report.planned_responses == 0
        assert report.unplanned_responses > 0

    def test_double_install_rejected(self):
        sim = SystemSimulator("Web Search", NocKind.MESH, seed=1)
        probe = PraProbe.attach(sim.chip.network)
        with pytest.raises(RuntimeError):
            probe.install()

    def test_probe_does_not_change_results(self):
        """Observation must not perturb simulation outcomes."""
        a = SystemSimulator("MapReduce", NocKind.MESH_PRA, seed=7)
        sample_a = a.run_sample(warmup=200, measure=1200)
        b = SystemSimulator("MapReduce", NocKind.MESH_PRA, seed=7)
        PraProbe.attach(b.chip.network)
        sample_b = b.run_sample(warmup=200, measure=1200)
        assert sample_a.instructions == sample_b.instructions
        assert sample_a.packets == sample_b.packets
