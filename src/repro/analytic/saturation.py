"""Model-seeded bisection search for the saturation injection rate.

``python -m repro saturate`` locates the Bernoulli injection rate at
which a bare network saturates, by bisection over cycle-accurate probe
runs.  The analytic model supplies the starting bracket: the capacity
bound from :func:`repro.analytic.queueing.saturation_rate` pins the
knee to within a few tens of percent, so a *warm* search opens a narrow
bracket around it instead of cold-scanning from zero — typically
halving the number of probe simulations (the bench harness reports the
exact count either way).

A probe run is judged *saturated* when either

* the mean latency of packets delivered in the window exceeds
  ``threshold`` times the model's zero-load latency (the classic
  load-latency knee), or
* fewer than :data:`MIN_DELIVERED_FRACTION` of offered packets are
  delivered (the backlog is growing without bound, which biases the
  delivered-packet latency low — this catches deep saturation that the
  latency test alone would miss in short windows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analytic.queueing import (
    predict_network,
    saturation_rate,
    synthetic_mix,
)
from repro.params import NocKind, NocParams
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

#: Below this delivered/offered ratio a probe window is saturated
#: regardless of the (survivor-biased) delivered-packet latency.
MIN_DELIVERED_FRACTION = 0.75

#: Warm bracket half-widths around the model estimate, as fractions of
#: the estimate.  Deliberately asymmetric: routers saturate *below* the
#: pure link-capacity bound, never above it.
_WARM_LO = 0.45
_WARM_HI = 1.05


@dataclass(frozen=True)
class SaturationPoint:
    """One cycle-accurate probe of the load-latency curve."""

    rate: float
    latency: float
    delivered_fraction: float
    saturated: bool


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of one saturation search."""

    kind: NocKind
    pattern: TrafficPattern
    #: The model's capacity bound, in Bernoulli injection-rate units.
    model_estimate: float
    #: The bisected measured saturation rate (bracket midpoint).
    measured: float
    #: Final bisection bracket (lo unsaturated, hi saturated).
    bracket: Tuple[float, float]
    #: The model's zero-load mean latency used for the knee test.
    zero_load_latency: float
    threshold: float
    warm: bool
    points: Tuple[SaturationPoint, ...]

    @property
    def simulated_points(self) -> int:
        return len(self.points)

    @property
    def model_error(self) -> float:
        """Relative error of the model estimate vs. the measured knee."""
        if not self.measured:
            return 0.0
        return abs(self.model_estimate - self.measured) / self.measured


def measure_point(
    kind: NocKind,
    rate: float,
    pattern: TrafficPattern = TrafficPattern.UNIFORM_RANDOM,
    params: Optional[NocParams] = None,
    cycles: int = 2000,
    seed: int = 1,
    threshold: float = 3.0,
    zero_load: Optional[float] = None,
    hotspot_nodes: Optional[Tuple[int, ...]] = None,
    response_size: int = 5,
) -> SaturationPoint:
    """Run one probe window and classify it (see module docstring)."""
    from repro.noc.network import build_network

    params = params or NocParams(kind=kind)
    if zero_load is None:
        zero_load = predict_network(
            kind, 0.0, synthetic_mix(pattern, response_size), params,
            pattern, hotspot_nodes,
        ).latency
    net = build_network(params)
    traffic = SyntheticTraffic(
        net, pattern, rate, seed=seed,
        hotspot_nodes=list(hotspot_nodes) if hotspot_nodes else None,
        response_size=response_size,
    )
    traffic.run(cycles)
    latency = net.stats.avg_network_latency
    delivered = (
        net.stats.packets_ejected / traffic.offered
        if traffic.offered else 1.0
    )
    saturated = (
        latency > threshold * zero_load
        or delivered < MIN_DELIVERED_FRACTION
    )
    return SaturationPoint(
        rate=rate,
        latency=latency,
        delivered_fraction=delivered,
        saturated=saturated,
    )


def find_saturation(
    kind: NocKind,
    pattern: TrafficPattern = TrafficPattern.UNIFORM_RANDOM,
    params: Optional[NocParams] = None,
    cycles: int = 2000,
    seed: int = 1,
    threshold: float = 3.0,
    tolerance: float = 0.002,
    warm: bool = True,
    hotspot_nodes: Optional[Tuple[int, ...]] = None,
    response_size: int = 5,
) -> SaturationResult:
    """Bisect the saturation Bernoulli injection rate for ``kind``.

    ``warm=True`` opens the bracket around the analytic capacity bound;
    ``warm=False`` reproduces the legacy cold geometric scan from 1%
    load.  Both converge to the same knee (the probes are identical
    cycle-accurate runs); warm just gets there in fewer probes.
    """
    params = params or NocParams(kind=kind)
    mix = synthetic_mix(pattern, response_size)
    zero_load = predict_network(
        kind, 0.0, mix, params, pattern, hotspot_nodes,
    ).latency
    # The model works in delivered packets/node/cycle; Bernoulli rate is
    # per-draw.  inject_ratio discounts dst==src drops, and REQUEST_REPLY
    # doubles the packet count via replies.
    from repro.analytic.geometry import geometry_for

    geom = geometry_for(params, pattern, hotspot_nodes)
    per_draw = geom.inject_ratio * (
        2.0 if pattern is TrafficPattern.REQUEST_REPLY else 1.0
    )
    estimate = min(1.0, saturation_rate(
        kind, mix, params, pattern, hotspot_nodes,
    ) / per_draw)

    points: List[SaturationPoint] = []

    def probe(rate: float) -> bool:
        point = measure_point(
            kind, rate, pattern, params, cycles, seed, threshold,
            zero_load, hotspot_nodes, response_size,
        )
        points.append(point)
        return point.saturated

    if warm:
        lo = _WARM_LO * estimate
        hi = min(1.0, _WARM_HI * estimate)
        # Repair the bracket if the model missed: walk lo down until it
        # is unsaturated, hi up until it is saturated.
        while lo > tolerance and probe(lo):
            hi = lo
            lo *= 0.5
        while hi < 1.0 and not probe(hi):
            lo = hi
            hi = min(1.0, hi * 1.5)
    else:
        lo = 0.0
        rate = 0.01
        while rate < 1.0 and not probe(rate):
            lo = rate
            rate *= 2.0
        hi = min(1.0, rate)

    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if probe(mid):
            hi = mid
        else:
            lo = mid

    return SaturationResult(
        kind=kind,
        pattern=pattern,
        model_estimate=estimate,
        measured=0.5 * (lo + hi),
        bracket=(lo, hi),
        zero_load_latency=zero_load,
        threshold=threshold,
        warm=warm,
        points=tuple(points),
    )
