"""Runtime invariant checkers for the simulator.

The checkers are pure observers: they read router/port/NI state and the
pending event queue, never mutate anything, and either raise a
structured :class:`InvariantViolation` or collect it for later
inspection.  With checkers attached and no faults injected, every run
must produce identical outcomes to an unchecked run and zero
violations.
"""

from repro.invariants.checkers import (
    InvariantSuite,
    InvariantViolation,
    wait_graph,
)

__all__ = ["InvariantSuite", "InvariantViolation", "wait_graph"]
