"""Tests for the performance model: cores, system simulation, sampling."""

import pytest

from repro.params import NocKind
from repro.perf.metrics import geomean, normalize_to
from repro.perf.sampling import measure_with_confidence
from repro.perf.system import SystemSimulator, simulate
from repro.workloads.profiles import CLOUDSUITE, WORKLOAD_NAMES, get_profile


class TestMetrics:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_normalize(self):
        out = normalize_to({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}


class TestProfiles:
    def test_six_workloads(self):
        assert len(WORKLOAD_NAMES) == 6
        assert "Media Streaming" in WORKLOAD_NAMES

    def test_media_streaming_lowest_ilp_mlp(self):
        """The paper attributes Media Streaming's sensitivity to the
        lowest ILP and MLP of the suite."""
        ms = get_profile("Media Streaming")
        assert ms.mlp == min(p.mlp for p in CLOUDSUITE.values())
        assert ms.base_cpi == max(p.base_cpi for p in CLOUDSUITE.values())

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_profile("SPECint")

    def test_batch_vs_latency_sensitive(self):
        batch = {n for n, p in CLOUDSUITE.items() if not p.latency_sensitive}
        assert batch == {"MapReduce", "SAT Solver"}


class TestSystemSimulator:
    def test_cores_retire_instructions(self):
        sim = SystemSimulator("Web Search", NocKind.MESH, seed=0)
        sample = sim.run_sample(warmup=200, measure=1000)
        assert sample.instructions > 0
        assert 0 < sample.ipc < 64 * 3  # bounded by width

    def test_sample_is_interval_scoped(self):
        sim = SystemSimulator("Web Search", NocKind.MESH, seed=0)
        s1 = sim.run_sample(warmup=200, measure=800)
        s2 = sim.run_sample(warmup=0, measure=800)
        # Two consecutive intervals of one run: both populated, same order
        # of magnitude (steady state).
        assert s2.instructions == pytest.approx(s1.instructions, rel=0.5)

    def test_network_kind_respected(self):
        sim = SystemSimulator("MapReduce", NocKind.MESH_PRA, seed=0)
        assert sim.chip.network.params.kind is NocKind.MESH_PRA
        sample = sim.run_sample(warmup=200, measure=1000)
        assert sample.control_packets > 0

    def test_pra_beats_mesh_on_media_streaming(self):
        mesh = simulate("Media Streaming", NocKind.MESH,
                        warmup=500, measure=3000, seed=2)
        pra = simulate("Media Streaming", NocKind.MESH_PRA,
                       warmup=500, measure=3000, seed=2)
        assert pra.ipc > mesh.ipc

    def test_ideal_is_fastest(self):
        results = {}
        for kind in (NocKind.MESH, NocKind.IDEAL):
            results[kind] = simulate("Web Frontend", kind,
                                     warmup=500, measure=2500, seed=3).ipc
        assert results[NocKind.IDEAL] > results[NocKind.MESH] * 1.1


class TestSampling:
    def test_confidence_interval(self):
        stats = measure_with_confidence(
            "MapReduce", NocKind.MESH, num_samples=3,
            warmup=200, measure=800,
        )
        assert len(stats.samples) == 3
        assert stats.mean_ipc > 0
        assert stats.ci95 >= 0
        # Steady-state sampling should be reasonably tight.
        assert stats.relative_error < 0.25
