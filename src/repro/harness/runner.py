"""Shared evaluation machinery: scales and the resumable simulation grid.

Every performance figure (2, 6, 7, 9, the Section V-B statistics, and
the power analysis) derives from one grid of full-system simulations:
{workload} x {NoC organization} x {seed}.  Finished cells are cached at
two levels:

* **in process** — the grid is computed once per (scale, workloads,
  kinds, seeds, parameter hash) and reused for the process lifetime;
* **on disk** — with a :class:`~repro.checkpoint.store.CellStore`
  attached (the ``REPRO_CELL_STORE`` env var or an explicit ``store=``
  argument), every finished cell is persisted under a content-addressed
  key, so an interrupted sweep resumes from the cells already done —
  across processes and machines sharing the directory.

Cache behavior is observable: hits and misses are counted on the
module-wide ``grid_stats`` object and appear in
``grid_stats.summary()``.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.checkpoint.codec import CODE_VERSION
from repro.checkpoint.snapshot import params_state
from repro.checkpoint.store import STORE_ENV, cell_key, default_store
from repro.noc.stats import NetworkStats
from repro.params import NocKind, default_chip
from repro.perf.system import PerfSample, simulate
from repro.workloads.profiles import WORKLOAD_NAMES

#: All four organizations, in the paper's presentation order.
ALL_KINDS = (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA, NocKind.IDEAL)

#: Module-wide cache counters (``grid_cache_hits``/``grid_cache_misses``
#: show up in ``grid_stats.summary()`` once the grid has run).
grid_stats = NetworkStats()

#: Sentinel distinguishing "use the default store" from "no store".
_UNSET = object()


@dataclass(frozen=True)
class EvaluationScale:
    """Simulation lengths for one quality preset."""

    name: str
    warmup: int
    measure: int
    num_seeds: int


_SCALES = {
    "smoke": EvaluationScale("smoke", warmup=300, measure=1500, num_seeds=1),
    "default": EvaluationScale("default", warmup=1000, measure=5000,
                               num_seeds=1),
    "full": EvaluationScale("full", warmup=2000, measure=10000, num_seeds=3),
}


def get_scale(name: Optional[str] = None) -> EvaluationScale:
    """Resolve a scale by name or the ``REPRO_SCALE`` env variable."""
    name = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None


GridKey = Tuple[str, NocKind]
#: One simulation cell: (workload, kind, warmup, measure, seed).
Cell = Tuple[str, NocKind, int, int, int]
_grid_cache: Dict[tuple, Dict[GridKey, PerfSample]] = {}

_params_hash_cache: Optional[str] = None


def _params_hash() -> str:
    """Digest of the default chip parameters the grid simulates with
    (part of every cell key, so a parameter change invalidates persisted
    cells instead of silently reusing them)."""
    global _params_hash_cache
    if _params_hash_cache is None:
        payload = {
            kind.value: params_state(default_chip(kind)) for kind in ALL_KINDS
        }
        _params_hash_cache = cell_key(payload)[:16]
    return _params_hash_cache


def _cell_payload(cell: Cell) -> dict:
    workload, kind, warmup, measure, seed = cell
    return {
        "workload": workload,
        "kind": kind.value,
        "warmup": warmup,
        "measure": measure,
        "seed": seed,
        "params": _params_hash(),
        "code_version": CODE_VERSION,
    }


def _wall_limit() -> Optional[float]:
    """Per-cell wall-clock budget (seconds) from REPRO_WALL_LIMIT."""
    raw = os.environ.get("REPRO_WALL_LIMIT")
    if not raw:
        return None
    try:
        limit = float(raw)
    except ValueError:
        return None
    return limit if limit > 0 else None


#: Wall-clock budget installed by :func:`_init_worker`.  ``_UNSET`` in
#: the parent process, where ``_simulate_cell`` reads the env directly.
_worker_wall_limit = _UNSET


def _worker_settings() -> tuple:
    """Snapshot of the knobs a worker needs, captured once in the
    parent.  Spawn-start workers re-import everything in a fresh
    process, so env-derived state the parent changed after import
    (``set_time_skip``, ``--cell-store``) would otherwise be lost —
    and fork-start workers would re-read the environment per cell."""
    from repro.noc.network import time_skip_enabled

    return (time_skip_enabled(), os.environ.get(STORE_ENV), _wall_limit())


def _init_worker(time_skip: bool, store_path: Optional[str],
                 wall_limit: Optional[float]) -> None:
    """Pool initializer: apply the parent's settings once per worker."""
    from repro.noc.network import set_time_skip

    set_time_skip(time_skip)
    if store_path is None:
        os.environ.pop(STORE_ENV, None)
    else:
        os.environ[STORE_ENV] = store_path
    global _worker_wall_limit
    _worker_wall_limit = wall_limit


def _cell_wall_limit() -> Optional[float]:
    """Effective per-cell wall-clock budget.

    Workers receive the parent's budget through :func:`_init_worker`.
    A process that never ran the initializer (the parent itself, or a
    worker created outside :func:`_run_cells` — e.g. a nested pool or a
    spawn-start context that skipped the initargs) still sees
    ``_UNSET`` and falls back to reading ``REPRO_WALL_LIMIT`` from its
    own environment.  That fallback is deliberate and observable: a
    ``--wall-limit`` value installed only via the initializer is NOT
    recovered here, which is why every pool in this repository passes
    ``initializer=_init_worker`` explicitly (covered by
    ``tests/test_worker_plumbing.py``).
    """
    if _worker_wall_limit is _UNSET:
        return _wall_limit()
    return _worker_wall_limit


def _simulate_cell(cell: Cell) -> PerfSample:
    """Worker entry point (top-level so it pickles for multiprocessing)."""
    workload, kind, warmup, measure, seed = cell
    sample = simulate(workload, kind, warmup=warmup, measure=measure,
                      seed=seed, wall_limit=_cell_wall_limit())
    if sample.timed_out:
        print(
            f"warning: {workload}/{kind.value} seed {seed} hit the "
            f"REPRO_WALL_LIMIT wall-clock budget after {sample.cycles} "
            f"measured cycles; reporting the partial interval",
            file=sys.stderr,
        )
    return sample


def parse_worker_count(raw: str, source: str) -> int:
    """Validate a worker/shard count the way ``NocParams`` validates CLI
    input: a clear :class:`ValueError` naming the knob instead of a raw
    traceback from deep inside pool setup.

    ``0`` means "one per CPU"; any positive integer is taken literally.
    Shared by ``REPRO_JOBS``, ``REPRO_SHARDS``, and ``--shards``.
    """
    try:
        count = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a non-negative integer "
            f"(0 = one per CPU), got {raw!r}"
        ) from None
    if count < 0:
        raise ValueError(
            f"{source} must be a non-negative integer "
            f"(0 = one per CPU), got {raw!r}"
        )
    if count == 0:
        return os.cpu_count() or 1
    return count


def _num_jobs() -> int:
    """Worker-process count from REPRO_JOBS.

    ``1`` (the default) runs in-process, ``0`` means one worker per
    CPU, anything else is taken literally.  Invalid values raise a
    :class:`ValueError` that the CLI turns into a clean exit 2.
    """
    return parse_worker_count(os.environ.get("REPRO_JOBS", "1"),
                              "REPRO_JOBS")


def _simulate_indexed(item: Tuple[int, Cell]):
    """Pool entry point carrying the cell index (results arrive in
    completion order under ``imap_unordered``)."""
    index, cell = item
    return index, _simulate_cell(cell)


def _run_cells(cells: List[Cell], pending: List[int],
               results: List[Optional[PerfSample]]) -> None:
    """Simulate ``cells[i]`` for every i in ``pending``, in place."""
    jobs = _num_jobs()
    if jobs > 1 and len(pending) > 1:
        import multiprocessing

        # Unordered completion keeps every worker busy regardless of
        # how unevenly cell runtimes are distributed (ideal cells run
        # ~5x faster than mesh+pra cells); small chunks bound the
        # tail-latency cost of a slow chunk landing on one worker.
        workers = min(jobs, len(pending))
        chunksize = max(1, len(pending) // (workers * 4))
        with multiprocessing.Pool(
            workers, initializer=_init_worker, initargs=_worker_settings()
        ) as pool:
            for index, sample in pool.imap_unordered(
                _simulate_indexed, [(i, cells[i]) for i in pending],
                chunksize=chunksize,
            ):
                results[index] = sample
    else:
        for index in pending:
            results[index] = _simulate_cell(cells[index])


def evaluation_grid(
    workloads: Iterable[str] = WORKLOAD_NAMES,
    kinds: Iterable[NocKind] = ALL_KINDS,
    scale: Optional[EvaluationScale] = None,
    store=_UNSET,
) -> Dict[GridKey, PerfSample]:
    """Run (or fetch) the {workload} x {organization} simulation grid.

    ``store`` is a :class:`~repro.checkpoint.store.CellStore` persisting
    finished cells; by default it comes from the ``REPRO_CELL_STORE``
    env variable (unset means no persistence), and ``store=None``
    disables persistence explicitly.  Store reads and writes happen in
    the parent process, so with ``REPRO_JOBS > 1`` only the cells
    actually missing are dispatched to the worker pool.  Multi-seed
    scales merge per-seed samples by summing instructions and cycles
    into one sample per cell.
    """
    scale = scale or get_scale()
    workloads = tuple(workloads)
    kinds = tuple(kinds)
    seeds = tuple(seed + 1 for seed in range(scale.num_seeds))
    cache_key = (scale.name, workloads, kinds, seeds, _params_hash())
    if cache_key in _grid_cache:
        grid_stats.grid_cache_hits += 1
        return _grid_cache[cache_key]
    if store is _UNSET:
        store = default_store()
    cells: List[Cell] = [
        (workload, kind, scale.warmup, scale.measure, seed)
        for workload in workloads
        for kind in kinds
        for seed in seeds
    ]
    results: List[Optional[PerfSample]] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    if store is not None:
        pending: List[int] = []
        for index, cell in enumerate(cells):
            key = cell_key(_cell_payload(cell))
            keys[index] = key
            cached = store.get(key)
            if cached is not None:
                results[index] = PerfSample.from_state(cached["sample"])
                grid_stats.grid_cache_hits += 1
            else:
                pending.append(index)
                grid_stats.grid_cache_misses += 1
    else:
        pending = list(range(len(cells)))
    _run_cells(cells, pending, results)
    if store is not None:
        for index in pending:
            sample = results[index]
            # Timed-out cells are partial measurements; persisting them
            # would freeze the truncation into every future sweep.
            if sample is not None and not sample.timed_out:
                store.put(keys[index], {"sample": sample.to_state()})
    by_key: Dict[GridKey, list] = {}
    for (workload, kind, *_), sample in zip(cells, results):
        by_key.setdefault((workload, kind), []).append(sample)
    grid = {key: _merge(samples) for key, samples in by_key.items()}
    _grid_cache[cache_key] = grid
    return grid


def _merge(samples) -> PerfSample:
    """Combine per-seed samples into one, weighting every latency and
    distribution statistic by its own sample count.

    Averages of averages are only correct when each seed contributed
    the same number of observations — which unequal drain behavior
    makes false in practice.  Latencies weight by delivered packets
    (the transaction-latency denominator tracks packet count), the
    lag-at-drop distribution by each seed's control-packet count, and
    the blocked fraction by each seed's total in-network time.
    """
    if len(samples) == 1:
        return samples[0]
    first = samples[0]
    total_pkts = sum(s.packets for s in samples)
    total_control = sum(s.control_packets for s in samples)
    # Per-seed total network time reconstructs each fraction's true
    # denominator: blocked_fraction = blocked_cycles / net_time.
    net_times = [s.avg_network_latency * s.packets for s in samples]
    total_net_time = sum(net_times)
    lag: Dict[int, float] = {}
    for s in samples:
        weight = (s.control_packets / total_control) if total_control else 0.0
        for k, v in s.lag_distribution.items():
            lag[k] = lag.get(k, 0.0) + v * weight
    return PerfSample(
        workload=first.workload,
        noc_kind=first.noc_kind,
        instructions=sum(s.instructions for s in samples),
        cycles=sum(s.cycles for s in samples),
        packets=total_pkts,
        avg_network_latency=sum(
            s.avg_network_latency * s.packets for s in samples
        ) / max(1, total_pkts),
        avg_transaction_latency=sum(
            s.avg_transaction_latency * s.packets for s in samples
        ) / max(1, total_pkts),
        control_packets=total_control,
        control_per_data=total_control / max(1, total_pkts),
        lag_distribution=dict(sorted(lag.items())),
        pra_blocked_fraction=(
            sum(f * t for f, t in
                zip((s.pra_blocked_fraction for s in samples), net_times))
            / total_net_time if total_net_time else 0.0
        ),
        flits_delivered=sum(s.flits_delivered for s in samples),
        total_hops=sum(s.total_hops for s in samples),
        packets_unfinished=sum(s.packets_unfinished for s in samples),
        timed_out=any(s.timed_out for s in samples),
    )


def clear_grid_cache() -> None:
    """Forget in-process cached grids (tests use this for isolation).

    The ``grid_stats`` counters survive, so callers can observe hit and
    miss totals across a clear (e.g. a resumed sweep's second pass).
    """
    _grid_cache.clear()
