"""Structured outcomes of supervised execution.

A :class:`RunReport` is the supervisor's flight record: every failure it
saw, every recovery it performed, every cell it gave up on.  The CLI
prints it on nonzero exit, the bench harness embeds its counters in
reports, and ``publish`` mirrors the counters onto the module-wide
``grid_stats`` object so they appear in ``NetworkStats.summary()``
alongside the grid-cache counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class FailureRecord:
    """One observed failure, diagnosed and attributed."""

    #: What failed: ``"shard"`` (a shard worker), ``"cell"`` (one
    #: evaluation-grid cell), or ``"pool"`` (a whole grid worker pool).
    scope: str
    #: Human-readable identity: ``"shard 1"``, ``"Web Search/mesh seed 1"``.
    target: str
    #: Diagnosis: ``"died"`` (process gone, exit code known), ``"hung"``
    #: (alive but silent past the heartbeat), ``"garbage"`` (malformed
    #: reply), ``"error"`` (worker-reported exception), ``"protocol"``
    #: (shard-protocol invariant broke).
    kind: str
    #: Failures of this target so far (1-based at first failure).
    attempts: int
    detail: str = ""

    def render(self) -> str:
        text = f"{self.scope} {self.target}: {self.kind} " \
               f"(attempt {self.attempts})"
        if self.detail:
            first = self.detail.strip().splitlines()[0]
            text += f" — {first}"
        return text


@dataclass
class RunReport:
    """Everything the supervisor did to keep one run alive."""

    backend: str
    #: Recovery attempts (each one retried work that had failed).
    retries: int = 0
    #: Shard worker pools respawned from a recovery point (or scratch).
    respawns: int = 0
    #: Evaluation-grid worker pools rebuilt after a crash.
    pool_rebuilds: int = 0
    #: Cycle-barrier recovery points taken during the run.
    recovery_points: int = 0
    #: Every failure observed, in order (recovered ones included).
    failures: List[FailureRecord] = field(default_factory=list)
    #: Poison cells abandoned after ``quarantine_after`` failures.
    quarantined: List[FailureRecord] = field(default_factory=list)
    #: Set when retries exhausted and the run continued in a degraded
    #: mode (serial continuation from the last recovery point).
    degraded: Optional[str] = None

    @property
    def clean(self) -> bool:
        """True when the run needed no recovery at all."""
        return not self.failures and not self.quarantined \
            and self.degraded is None

    @property
    def completed(self) -> bool:
        """True when the run produced a full result (possibly degraded,
        but with nothing quarantined)."""
        return not self.quarantined

    def record_failure(self, record: FailureRecord) -> None:
        self.failures.append(record)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "retries": self.retries,
            "respawns": self.respawns,
            "pool_rebuilds": self.pool_rebuilds,
            "recovery_points": self.recovery_points,
            "failures": len(self.failures),
            "quarantined": [f.render() for f in self.quarantined],
            "degraded": self.degraded,
        }

    def render(self) -> str:
        lines = [f"run report ({self.backend} backend):"]
        lines.append(
            f"  failures observed:   {len(self.failures)}"
            f"  (retries {self.retries}, respawns {self.respawns}, "
            f"pool rebuilds {self.pool_rebuilds})"
        )
        lines.append(f"  recovery points:     {self.recovery_points}")
        if self.degraded:
            lines.append(f"  degraded:            {self.degraded}")
        if self.quarantined:
            lines.append(f"  quarantined ({len(self.quarantined)}):")
            for record in self.quarantined:
                lines.append(f"    - {record.render()}")
        for record in self.failures:
            lines.append(f"  failure: {record.render()}")
        if self.clean:
            lines.append("  no failures; no recovery needed")
        return "\n".join(lines)


#: The most recent supervised run's report (grid sweep or sharded run);
#: the CLI reads this to print diagnostics on nonzero exit.
_LAST_REPORT: Optional[RunReport] = None


def publish(report: RunReport) -> None:
    """Record ``report`` as the latest and mirror its counters onto the
    process-wide ``grid_stats`` object (so retry/respawn/quarantine
    totals show up in ``NetworkStats.summary()``)."""
    global _LAST_REPORT
    _LAST_REPORT = report
    # Imported lazily: repro.harness.runner imports this module.
    from repro.harness.runner import grid_stats

    grid_stats.worker_retries += report.retries
    grid_stats.worker_respawns += report.respawns
    grid_stats.pool_rebuilds += report.pool_rebuilds
    grid_stats.cells_quarantined += len(report.quarantined)


def last_run_report() -> Optional[RunReport]:
    return _LAST_REPORT


def clear_last_report() -> None:
    """Forget the latest report (tests use this for isolation)."""
    global _LAST_REPORT
    _LAST_REPORT = None
