"""SMART: the single-cycle multi-hop network (Krishna et al., HPCA'13).

A SMART hop is a two-stage router pipeline followed by a single-cycle,
potentially multi-tile link traversal — three cycles per hop at zero
load (Table I).  The first stage performs routing, VC allocation, and
speculative crossbar allocation; the second broadcasts the SMART setup
request (SSR) on dedicated multi-drop wires to reserve a multi-hop path;
the third traverses crossbar(s) and link(s), covering up to ``HPC_max``
(= 2 at server-class tile sizes and 2 GHz) tiles.

Pipeline modeling: the two stages are *pipelined*, so they add latency
(a flit becomes visible at its next stop three cycles after its grant
instead of two) without costing link bandwidth — flits still stream one
per cycle through a held port.  The SSR outcome is resolved at grant
time against the intermediate router's state.

Bypass rules (SMART_1D with local priority):

* bypass only continues *straight* — a packet that turns or ejects at
  the next router stops there;
* a locally buffered flit competing for the intermediate router's output
  beats the SSR, which then falls back to a one-hop traversal;
* the bypass path is held for the whole packet, so flits of a packet are
  never reordered or interleaved (the hazard the paper attributes to
  per-flit reservation schemes).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.noc.flit import Flit
from repro.noc.mesh import MeshNetwork
from repro.noc.packet import Packet
from repro.noc.ports import OutputPort
from repro.noc.router import CREDIT_DELAY, MeshRouter
from repro.noc.topology import Direction
from repro.noc.vc import VirtualChannel

#: Grant-to-visibility latency: 2-stage pipeline + link (vs. 2 for mesh).
SMART_HOP_LATENCY = 3
#: Ejection takes the extra pipeline stage too.
SMART_EJECT_LATENCY = 2


class _BypassState:
    """Per-output-port record of an active 2-tile pass-through."""

    __slots__ = ("packet", "via_port", "landing_router", "landing_entry")

    def __init__(self, packet: Packet, via_port: OutputPort):
        self.packet = packet
        self.via_port = via_port
        self.landing_router = via_port.downstream_router
        self.landing_entry = via_port.downstream_unit.direction


class SmartRouter(MeshRouter):
    """Mesh router with SSR-based 2-tile bypass and a 3-cycle hop."""

    def __init__(self, node: int, network):
        super().__init__(node, network)
        self.hpc_max = network.params.smart.hops_per_cycle
        #: Active bypasses keyed by output direction.
        self._bypasses: Dict[Direction, _BypassState] = {}
        for port in self.output_ports.values():
            port.link_hop_latency = SMART_HOP_LATENCY

    # -- build-time specialization (hot-path engine v3) -------------------------

    def finalize_build(self) -> None:
        """Elect the SMART-specific flattened step.

        The base election (``MeshRouter.finalize_build``) already
        verified the stock candidate scan and eligibility check and
        allocated the per-direction buckets; this override swaps the
        half-generic ``_step_scan`` binding (virtual grant/hold hooks)
        for a fully fused pipeline when the instance is provably a plain
        :class:`SmartRouter`.
        """
        super().finalize_build()
        if "step" not in vars(self):
            return  # the base election declined (fastpath off, layered)
        if type(self) is not SmartRouter:
            return
        self.step = self._step_fast_smart  # type: ignore[method-assign]

    def _step_fast_smart(self, now: int) -> None:
        """Monomorphic hot path for the SMART router.

        Bit-identical to the generic step with :meth:`_advance_held`
        and :meth:`_grant` inlined around the fast candidate scan (the
        SSR resolution stays in :meth:`_try_bypass`).  Falls back to
        the generic step whenever an observer is attached, so
        instrumented runs always exercise the reference path.
        """
        if self.active_flits == 0:
            return
        network = self.network
        if (network.faults.enabled or network.tracer.enabled
                or network.boundary is not None):
            MeshRouter.step(self, now)
            return
        touched = self._scan_heads_fast()
        buckets = self._cand_buckets
        rr_last = self._rr_last
        total = self._rr_total
        bypasses = self._bypasses
        send = self._send_smart
        used = 0
        for port in self.port_list:
            held = port.held_by
            if held is not None:
                # ``_advance_held`` inlined (tracer known off).
                vc = port.active_vc
                if vc is None:
                    continue
                flits = vc.flits
                if not flits or flits[0].packet is not held:
                    continue  # next flit still in flight from upstream
                in_bit = 1 << vc.unit.direction
                if used & in_bit:
                    continue
                front_vc_index = flits[0].packet.vc_index
                bypass = bypasses.get(port.direction)
                if bypass is not None:
                    if bypass.via_port.credits[front_vc_index] < 1:
                        continue
                elif port.ni_sink is None and port.credits[front_vc_index] < 1:
                    continue
                used |= in_bit
                if send(port, vc, now, bypass).is_tail:
                    self._release(port)
                continue
            index = int(port.direction)
            if not (touched >> index) & 1:
                continue
            # Eligibility filter fused with the rotation pick.
            direction = port.direction
            down_unit = port.downstream_unit
            credits = port.credits
            ejection = port.ni_sink is not None
            last = rr_last[direction]
            if last is None:
                last = total - 1
            choice = None
            best = total
            for vc in buckets[index]:
                if used & (1 << vc.unit.direction):
                    continue
                if not ejection:
                    vc_index = vc.flits[0].packet.vc_index
                    down_vc = down_unit.vcs[vc_index]
                    if (down_vc.allocated_to is not None or down_vc.flits
                            or credits[vc_index] < 1):
                        continue
                rank = (vc.rr_id - last - 1) % total
                if rank < best:
                    best = rank
                    choice = vc
            if choice is None:
                continue
            vc = choice
            self._rr[direction] = vc.rr_key
            rr_last[direction] = vc.rr_id
            packet = vc.flits[0].packet
            # ``_grant`` inlined: resolve the SSR, then hold and stream.
            via_port = self._try_bypass(packet, direction, now)
            bypass = None
            if via_port is not None:
                via_port.downstream_vc(packet.vc_index).allocated_to = packet
                via_port.hold(packet, source_vc=None)
                bypass = _BypassState(packet, via_port)
                bypasses[direction] = bypass
            elif not ejection:
                down_unit.vcs[packet.vc_index].allocated_to = packet
            # Inline ``port.hold`` (the unheld branch guarantees it).
            port.held_by = packet
            port.active_vc = vc
            port.held_dst_vc = packet.vc_index
            port.holder_sent = 0
            used |= 1 << vc.unit.direction
            if send(port, vc, now, bypass).is_tail:
                self._release(port)
        self._clear_buckets(touched)

    # -- grant: resolve the SSR, then stream at line rate ----------------------

    def _grant(
        self,
        port: OutputPort,
        vc: VirtualChannel,
        packet: Packet,
        now: int,
        used_inputs: Set[Direction],
    ) -> None:
        via_port = self._try_bypass(packet, port.direction, now)
        bypass = None
        if via_port is not None:
            landing_vc = via_port.downstream_vc(packet.vc_index)
            landing_vc.allocated_to = packet
            via_port.hold(packet, source_vc=None)
            bypass = _BypassState(packet, via_port)
            self._bypasses[port.direction] = bypass
        elif port.ni_sink is None:
            port.downstream_unit.vcs[packet.vc_index].allocated_to = packet
        port.hold(packet, source_vc=vc)
        used_inputs.add(vc.unit.direction)
        flit = self._send_smart(port, vc, now, bypass)
        if flit.is_tail:
            self._release(port)

    def _advance_held(
        self, port: OutputPort, now: int, used_inputs: Set[Direction]
    ) -> None:
        vc = port.active_vc
        if vc is None:
            return
        flits = vc.flits
        if not flits or flits[0].packet is not port.held_by:
            return
        direction = vc.unit.direction
        if direction in used_inputs:
            return
        front_vc_index = flits[0].packet.vc_index
        bypass = self._bypasses.get(port.direction)
        if bypass is not None:
            if bypass.via_port.credits[front_vc_index] < 1:
                return
        elif port.ni_sink is None and port.credits[front_vc_index] < 1:
            return
        used_inputs.add(direction)
        flit = self._send_smart(port, vc, now, bypass)
        if flit.is_tail:
            self._release(port)

    # -- transmission -----------------------------------------------------------

    def _send_smart(self, port: OutputPort, vc: VirtualChannel, now: int,
                    bypass: Optional["_BypassState"]) -> Flit:
        # Both callers resolved the bypass state during their credit
        # check, so it is passed in rather than re-fetched here.
        flit = vc.flits.popleft()
        if flit.is_tail:
            vc.allocated_to = vc.next_claim
            vc.next_claim = None
        self.active_flits -= 1
        network = self.network
        # Stock schedulers and no shard patching → append straight into
        # the cycle buckets (all offsets below are positive constants
        # with ``now == network.cycle``, so the future-only guard holds
        # by construction).
        plain = self._plain_sched and network.boundary is None
        feeder = vc.unit.feeder_port
        if feeder is not None:
            if plain:
                time = now + CREDIT_DELAY
                events = network._events
                bucket = events.get(time)
                if bucket is None:
                    pool = network._bucket_pool
                    bucket = pool.pop() if pool else ([], [], [])
                    events[time] = bucket
                bucket[1].append((feeder, vc.index))
            else:
                network.schedule_credit(now + CREDIT_DELAY, feeder,
                                        vc.index)
        if bypass is None:
            if port.ni_sink is not None:
                port.flits_sent += 1
                if port.held_by is flit.packet:
                    port.holder_sent += 1
                self.network.schedule_eject(
                    now + SMART_EJECT_LATENCY, port.ni_sink, flit
                )
                return flit
            # Single-hop transmit: ``OutputPort.send`` flattened in
            # place (tracing or overriding ports take the virtual call).
            if network.tracer.enabled or not port._plain_send:
                port.send(flit, now)
                return flit
            port.flits_sent += 1
            if port.held_by is flit.packet:
                port.holder_sent += 1
                vc_index = port.held_dst_vc
            else:
                vc_index = None
            if vc_index is None:
                vc_index = flit.packet.vc_index
            if port.credits[vc_index] <= 0:
                raise RuntimeError("credit underflow: flow control violated")
            port.credits[vc_index] -= 1
            if flit.is_head:
                flit.packet.hops_taken += 1
            time = now + port.link_hop_latency
            if plain:
                events = network._events
                bucket = events.get(time)
                if bucket is None:
                    pool = network._bucket_pool
                    bucket = pool.pop() if pool else ([], [], [])
                    events[time] = bucket
                bucket[0].append((port.downstream_router,
                                  port.downstream_dir, vc_index, flit))
            else:
                network.schedule_arrival(time, port.downstream_router,
                                         port.downstream_dir, vc_index,
                                         flit)
            return flit
        # Two-tile traversal: both links this cycle, landing two hops away.
        packet = flit.packet
        via_port = bypass.via_port
        port.flits_sent += 1
        port.holder_sent += 1
        via_port.flits_sent += 1
        via_port.holder_sent += 1
        via_port.credits[packet.vc_index] -= 1
        if flit.is_head:
            packet.hops_taken += 2
        if plain:
            time = now + SMART_HOP_LATENCY
            events = network._events
            bucket = events.get(time)
            if bucket is None:
                pool = network._bucket_pool
                bucket = pool.pop() if pool else ([], [], [])
                events[time] = bucket
            bucket[0].append((bypass.landing_router, bypass.landing_entry,
                              packet.vc_index, flit))
            return flit
        network.schedule_arrival(
            now + SMART_HOP_LATENCY,
            bypass.landing_router,
            bypass.landing_entry,
            packet.vc_index,
            flit,
        )
        return flit

    def _release(self, port: OutputPort) -> None:
        bypass = self._bypasses.pop(port.direction, None)
        if bypass is not None:
            bypass.via_port.release()
        port.release()

    # -- SSR arbitration -------------------------------------------------------------

    def _try_bypass(self, packet: Packet, direction: Direction,
                    now: int) -> Optional[OutputPort]:
        """Return the intermediate router's output port if the SSR wins."""
        if direction is Direction.LOCAL or self.hpc_max < 2:
            return None
        inter_node = self.topology.neighbor(self.node, direction)
        if inter_node is None:
            return None
        inter: SmartRouter = self.network.routers[inter_node]
        if inter._route_row[packet.dst] is not direction:
            return None  # the packet turns or ejects at the next router
        via_port = inter.output_ports.get(direction)
        if via_port is None or via_port.held_by is not None:
            return None
        faults = self.network.faults
        if faults.enabled and via_port.fault_stalled(now):
            return None  # SSR refused across a stalled link
        if inter._has_local_candidate(direction):
            return None  # local flits have priority over SSRs
        unit = via_port.downstream_unit
        if unit is None:
            return None
        landing_vc = unit.vcs[packet.vc_index]
        if landing_vc.allocated_to is not None or landing_vc.flits:
            return None
        if via_port.credits[packet.vc_index] < 1:
            return None
        return via_port

    # -- checkpointing -----------------------------------------------------

    def state_dict(self, ctx) -> dict:
        state = super().state_dict(ctx)
        state["bypasses"] = [
            [int(direction), ctx.packet_ref(bypass.packet),
             bypass.via_port.router.node, int(bypass.via_port.direction)]
            for direction, bypass in self._bypasses.items()
        ]
        return state

    def load_state(self, state: dict, ctx) -> None:
        super().load_state(state, ctx)
        self._bypasses = {}
        for direction_value, packet_ref, via_node, via_dir in state["bypasses"]:
            via_port = self.network.routers[via_node].output_ports[
                Direction(via_dir)
            ]
            self._bypasses[Direction(direction_value)] = _BypassState(
                ctx.packet(packet_ref), via_port
            )

    def _has_local_candidate(self, direction: Direction) -> bool:
        row = self._route_row
        for vc in self._vc_list:
            flits = vc.flits
            if flits:
                front = flits[0]
                if front.is_head and row[front.packet.dst] is direction:
                    return True
        return False


class SmartNetwork(MeshNetwork):
    """The SMART organization: mesh wiring with SMART routers."""

    router_class = SmartRouter
