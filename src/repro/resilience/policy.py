"""Retry/backoff/heartbeat knobs for supervised execution.

A :class:`RetryPolicy` is a frozen value object, so the same policy
drives a run identically wherever it is built — in the parent, in a
respawned pool, or in a test.  Every knob has an environment variable
(validated the way ``parse_worker_count`` validates ``REPRO_JOBS``: a
clear :class:`ValueError` naming the knob, which the CLI turns into a
clean exit 2) so long sweeps can be hardened without touching code:

==========================  =============================================
``REPRO_MAX_RETRIES``       recovery attempts (shard-pool respawns, grid
                            pool rebuilds) before degrading gracefully
``REPRO_HEARTBEAT_TIMEOUT`` seconds a shard worker may stay silent
                            before it is diagnosed as hung
``REPRO_QUARANTINE_AFTER``  failures of one evaluation-grid cell before
                            it is quarantined as a poison cell
``REPRO_RETRY_BACKOFF``     base seconds of the exponential backoff
                            slept between recovery attempts
``REPRO_RECOVERY_INTERVAL`` cycles between automatic recovery-point
                            barriers in a sharded run (0 = auto: a
                            quarter of the injection window)
==========================  =============================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional


def _parse_int(raw: str, source: str, minimum: int) -> int:
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be an integer >= {minimum}, got {raw!r}"
        ) from None
    if value < minimum:
        raise ValueError(
            f"{source} must be an integer >= {minimum}, got {raw!r}"
        )
    return value


def _parse_seconds(raw: str, source: str, minimum: float) -> float:
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a number of seconds >= {minimum}, "
            f"got {raw!r}"
        ) from None
    if value < minimum:
        raise ValueError(
            f"{source} must be a number of seconds >= {minimum}, "
            f"got {raw!r}"
        )
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """How hard supervised execution tries before giving ground."""

    #: Recovery attempts without forward progress before degrading:
    #: shard-pool respawns per run segment, grid pool rebuilds per sweep.
    max_retries: int = 2
    #: Seconds a shard worker may stay silent mid-command before the
    #: supervisor declares it hung and recycles the pool.
    heartbeat_timeout: float = 60.0
    #: Failures of a single evaluation-grid cell before it is recorded
    #: as a poison cell and the sweep moves on without it.
    quarantine_after: int = 3
    #: Base of the exponential backoff: attempt ``k`` (1-based) sleeps
    #: ``backoff_base * 2**(k-1)`` seconds.  Zero disables sleeping
    #: (tests use this to keep recovery paths fast).
    backoff_base: float = 0.05
    #: Cycles between automatic cycle-barrier recovery points in a
    #: sharded run; ``None`` picks a quarter of the injection window.
    recovery_interval: Optional[int] = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, "
                f"got {self.heartbeat_timeout}"
            )
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, "
                f"got {self.quarantine_after}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.recovery_interval is not None \
                and self.recovery_interval < 1:
            raise ValueError(
                f"recovery_interval must be positive (or None for "
                f"auto), got {self.recovery_interval}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to sleep before recovery attempt ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        return self.backoff_base * (2 ** (attempt - 1))

    def barriers(self, cycles: int) -> list:
        """Automatic recovery-point barriers for an injection window of
        ``cycles`` cycles (strictly inside the window, ascending)."""
        interval = self.recovery_interval
        if interval is None:
            interval = max(1, cycles // 4)
        return list(range(interval, cycles, interval))

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Build a policy from the ``REPRO_*`` environment knobs."""
        kwargs = {}
        raw = os.environ.get("REPRO_MAX_RETRIES")
        if raw is not None:
            kwargs["max_retries"] = _parse_int(raw, "REPRO_MAX_RETRIES", 0)
        raw = os.environ.get("REPRO_HEARTBEAT_TIMEOUT")
        if raw is not None:
            kwargs["heartbeat_timeout"] = _parse_seconds(
                raw, "REPRO_HEARTBEAT_TIMEOUT", 1e-9
            )
        raw = os.environ.get("REPRO_QUARANTINE_AFTER")
        if raw is not None:
            kwargs["quarantine_after"] = _parse_int(
                raw, "REPRO_QUARANTINE_AFTER", 1
            )
        raw = os.environ.get("REPRO_RETRY_BACKOFF")
        if raw is not None:
            kwargs["backoff_base"] = _parse_seconds(
                raw, "REPRO_RETRY_BACKOFF", 0.0
            )
        raw = os.environ.get("REPRO_RECOVERY_INTERVAL")
        if raw is not None:
            interval = _parse_int(raw, "REPRO_RECOVERY_INTERVAL", 0)
            kwargs["recovery_interval"] = interval or None
        return cls(**kwargs)
