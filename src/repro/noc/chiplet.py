"""Chiplet hierarchies: per-chiplet sub-meshes over an interposer.

A disaggregated server part: ``CX x CY`` compute chiplets, each an
``W x H`` sub-mesh of ordinary tiles, joined through one gateway router
per chiplet.  The gateway's extra ports cross the package substrate —
either to the four neighbouring gateways over an interposer mesh, or up
to a central IO die (star variant) — with a configurable (slower)
inter-chiplet link latency.  All structure lives in
:class:`repro.noc.topology.ChipletTopology`; this module only binds the
escape-layer deadlock scheme and the VC provisioning.

Deadlock freedom mirrors the ring's dateline argument, keyed on the
hierarchy instead of a wrap link: layer 0 carries a packet's
intra-source-chiplet XY hops (acyclic) and layer 1 everything after its
first inter-chiplet hop — interposer XY or star hops, then
intra-destination XY — which is acyclic because the hierarchical route
never re-enters an earlier phase.  The only cross-layer dependency is
0 → 1, so the layered VC dependency graph is acyclic; the runtime
deadlock watchdog checks the claim on every chiplet run.
"""

from __future__ import annotations

from dataclasses import replace

from repro.noc.interface import LayeredInterface
from repro.noc.mesh import MeshNetwork
from repro.noc.router import LayeredVcRouter
from repro.noc.topology import CHIPLET_VC_LAYERS, FIRST_INTERPOSER_PORT, Port
from repro.params import NocParams, NUM_MESSAGE_CLASSES


class ChipletRouter(LayeredVcRouter):
    """Mesh-pipelined router whose inter-chiplet ports advance the
    escape layer.  Gateways and the IO die simply have more ports."""

    vc_layers = CHIPLET_VC_LAYERS

    def _advances_layer(self, direction: Port) -> bool:
        return int(direction) >= FIRST_INTERPOSER_PORT


class ChipletInterface(LayeredInterface):
    """NI whose injection targets the layered chiplet VCs."""

    vc_layers = CHIPLET_VC_LAYERS


class ChipletNetwork(MeshNetwork):
    """Baseline routers on a chiplet topology (mesh or star interposer)."""

    router_class = ChipletRouter
    interface_class = ChipletInterface

    def __init__(self, params: NocParams):
        want = NUM_MESSAGE_CLASSES * CHIPLET_VC_LAYERS
        if params.router.vcs_per_port < want:
            params = replace(
                params,
                router=replace(params.router, vcs_per_port=want),
            )
        super().__init__(params)


def build_chiplet(spec: str = "chiplet:2x2x4x4",
                  flits_per_vc: int = 5) -> ChipletNetwork:
    """Convenience constructor from a spec string."""
    params = NocParams(topology=spec)
    params = replace(
        params,
        router=replace(params.router, flits_per_vc=flits_per_vc),
    )
    return ChipletNetwork(params)
