"""Tests for Mesh+PRA: control network, reservations, LSD, triggers."""

import random

from repro.noc.network import build_network
from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind, NocParams, PraParams


def make_pra(width=4, height=4, **pra_kwargs):
    params = NocParams(
        kind=NocKind.MESH_PRA,
        mesh_width=width,
        mesh_height=height,
        pra=PraParams(**pra_kwargs),
    )
    return build_network(params)


def make_mesh(width=4, height=4):
    return build_network(
        NocParams(kind=NocKind.MESH, mesh_width=width, mesh_height=height)
    )


def run_announced(net, src, dst, ready_in=4):
    """Emulate the tile layer: announce, wait, then send."""
    pkt = Packet(src=src, dst=dst, msg_class=MessageClass.RESPONSE,
                 created=net.cycle)
    net.announce(pkt, ready_in=ready_in)
    net.run(ready_in)
    pkt.created = net.cycle
    net.send(pkt)
    net.drain(max_cycles=500)
    return pkt


class TestPlainTraffic:
    """Without triggers firing, Mesh+PRA must behave exactly like Mesh."""

    def test_single_packet_same_latency_as_mesh(self):
        pra, mesh = make_pra(), make_mesh()
        results = []
        for net in (pra, mesh):
            pkt = Packet(src=0, dst=15, msg_class=MessageClass.REQUEST,
                         created=net.cycle)
            net.send(pkt)
            net.drain(max_cycles=200)
            results.append(pkt.network_latency())
        assert results[0] == results[1]

    def test_random_traffic_all_delivered(self):
        rng = random.Random(3)
        net = make_pra()
        for _ in range(200):
            src = rng.randrange(16)
            dst = (src + rng.randrange(1, 16)) % 16
            mc = rng.choice(list(MessageClass))
            net.send(Packet(src=src, dst=dst, msg_class=mc, created=net.cycle))
            net.step()
        net.drain(max_cycles=10000)
        assert net.stats.packets_ejected == 200


class TestLlcTrigger:
    def test_announced_response_is_planned(self):
        net = make_pra()
        pkt = run_announced(net, src=0, dst=3)
        assert pkt.ejected is not None
        assert net.stats.control_packets_injected == 1
        assert net.stats.pra_planned_packets == 1

    def test_announced_response_faster_than_mesh(self):
        net = make_pra(width=8, height=8)
        pkt = run_announced(net, src=0, dst=7)  # 7 hops straight
        mesh = make_mesh(width=8, height=8)
        ref = Packet(src=0, dst=7, msg_class=MessageClass.RESPONSE,
                     created=mesh.cycle)
        mesh.send(ref)
        mesh.drain(max_cycles=300)
        assert pkt.network_latency() < ref.network_latency()

    def test_plan_covers_turns(self):
        net = make_pra()
        # 0 -> 10: two hops east then two south; the turn node forces a
        # one-hop segment but the plan must still be built and used.
        pkt = run_announced(net, src=0, dst=10)
        assert pkt.ejected is not None
        assert net.stats.pra_planned_packets == 1

    def test_lag_distribution_recorded(self):
        net = make_pra(width=8, height=8)
        for dst in (1, 2, 3, 4, 5, 6, 7):
            run_announced(net, src=0, dst=dst)
        dist = net.stats.lag_distribution()
        assert dist  # non-empty
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_no_announce_no_control_packets(self):
        net = make_pra()
        pkt = Packet(src=0, dst=15, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=200)
        assert net.stats.control_packets_injected == 0

    def test_llc_trigger_disabled(self):
        net = make_pra(use_llc_trigger=False)
        pkt = run_announced(net, src=0, dst=3)
        assert pkt.ejected is not None
        assert net.stats.control_packets_injected == 0

    def test_missed_slot_cancels_plan_and_still_delivers(self):
        """If the announced packet is sent late, the reservations expire
        and it must still be delivered (normally)."""
        net = make_pra()
        pkt = Packet(src=0, dst=3, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        net.announce(pkt, ready_in=4)
        net.run(12)  # miss the pinned slot entirely
        net.send(pkt)
        net.drain(max_cycles=500)
        assert pkt.ejected is not None
        assert pkt.pra_plan is None


class TestLsdTrigger:
    def test_stalled_packet_gets_plan(self):
        """A request stalled behind a 5-flit response on a shared link
        should trigger LSD and get pre-allocated."""
        net = make_pra(width=8, height=8, use_llc_trigger=False)
        # A long response from node 0 streams through node 1's east port
        # just as a request injected at node 1 wants the same port.
        blocker = Packet(src=0, dst=7, msg_class=MessageClass.RESPONSE,
                         created=net.cycle)
        net.send(blocker)
        net.run(3)
        follower = Packet(src=1, dst=7, msg_class=MessageClass.REQUEST,
                          created=net.cycle)
        net.send(follower)
        net.drain(max_cycles=500)
        assert net.stats.packets_ejected == 2
        # LSD should have fired at node 1 for the stalled request.
        assert net.stats.control_packets_injected >= 1
        assert net.stats.pra_planned_packets >= 1

    def test_lsd_disabled(self):
        net = make_pra(width=8, height=8, use_llc_trigger=False,
                       use_lsd_trigger=False)
        blocker = Packet(src=0, dst=7, msg_class=MessageClass.RESPONSE,
                         created=net.cycle)
        net.send(blocker)
        net.run(3)
        follower = Packet(src=1, dst=7, msg_class=MessageClass.REQUEST,
                          created=net.cycle)
        net.send(follower)
        net.drain(max_cycles=500)
        assert net.stats.control_packets_injected == 0


class TestStress:
    def test_heavy_random_traffic_with_announces(self):
        rng = random.Random(17)
        net = make_pra(width=8, height=8)
        sent = 0
        pending = []  # (send_at, packet)
        for cycle in range(400):
            if rng.random() < 0.5:
                src = rng.randrange(64)
                dst = (src + rng.randrange(1, 64)) % 64
                if rng.random() < 0.4:
                    pkt = Packet(src=src, dst=dst,
                                 msg_class=MessageClass.RESPONSE,
                                 created=net.cycle)
                    net.announce(pkt, ready_in=4)
                    pending.append((net.cycle + 4, pkt))
                else:
                    mc = rng.choice(
                        [MessageClass.REQUEST, MessageClass.COHERENCE]
                    )
                    net.send(Packet(src=src, dst=dst, msg_class=mc,
                                    created=net.cycle))
                    sent += 1
            due = [p for t, p in pending if t == net.cycle]
            for pkt in due:
                net.send(pkt)
                sent += 1
            pending = [(t, p) for t, p in pending if t != net.cycle]
            net.step()
        for t, pkt in sorted(pending):
            while net.cycle < t:
                net.step()
            net.send(pkt)
            sent += 1
        net.drain(max_cycles=20000)
        assert net.stats.packets_ejected == sent
