"""Full-system co-simulation: 64 cores + chip + NoC, SimFlex-style.

Mirrors the paper's methodology (Section IV-D): launch from a warmed
state, run a warm-up interval of detailed simulation to reach steady
state, then measure application instructions per cycle over the
measurement interval.  Per-workload, per-NoC performance numbers come
from :func:`simulate`; confidence intervals over seeds come from
:mod:`repro.perf.sampling`.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.params import ChipParams, NocKind, default_chip
from repro.perf.core_model import CoreModel
from repro.tile.chip import Chip
from repro.tile.llc import Transaction
from repro.workloads.profiles import WorkloadProfile, get_profile


@dataclass
class PerfSample:
    """One measurement interval's results."""

    workload: str
    noc_kind: NocKind
    instructions: int
    cycles: int
    packets: int
    avg_network_latency: float
    avg_transaction_latency: float
    #: PRA diagnostics (zero for other organizations).
    control_packets: int = 0
    control_per_data: float = 0.0
    lag_distribution: Dict[int, float] = field(default_factory=dict)
    pra_blocked_fraction: float = 0.0
    #: Link/buffer activity for the power model.
    flits_delivered: int = 0
    total_hops: int = 0
    #: Packets injected during the interval but still in flight at its
    #: end (not silently dropped from the report).
    packets_unfinished: int = 0
    #: True when the wall-clock limit cut the interval short; the
    #: counters then cover only the cycles actually simulated.
    timed_out: bool = False
    #: True when the sample came from the closed-form queueing model
    #: (``REPRO_ANALYTIC=prune``) rather than cycle-accurate simulation.
    #: Analytic samples are never persisted to a cell store.
    analytic: bool = False

    @property
    def ipc(self) -> float:
        """Aggregate application instructions per cycle (all cores)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def per_core_ipc(self) -> float:
        return self.ipc / 64

    def to_dict(self) -> dict:
        """JSON-serializable summary (for manifests and notebooks)."""
        return {
            "workload": self.workload,
            "noc": self.noc_kind.value,
            "ipc": self.ipc,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "packets": self.packets,
            "avg_network_latency": self.avg_network_latency,
            "avg_transaction_latency": self.avg_transaction_latency,
            "control_packets": self.control_packets,
            "control_per_data": self.control_per_data,
            "lag_distribution": {
                str(k): v for k, v in self.lag_distribution.items()
            },
            "pra_blocked_fraction": self.pra_blocked_fraction,
            "packets_unfinished": self.packets_unfinished,
            "timed_out": self.timed_out,
        }

    # -- checkpointing ---------------------------------------------------

    def to_state(self) -> dict:
        """Full round-trippable form for the evaluation-grid cell store.

        Separate from :meth:`to_dict`, whose key set is pinned by the
        golden digests and which drops fields (e.g. ``flits_delivered``)
        that the power model needs back.
        """
        return {
            "workload": self.workload,
            "noc_kind": self.noc_kind.value,
            "instructions": self.instructions,
            "cycles": self.cycles,
            "packets": self.packets,
            "avg_network_latency": self.avg_network_latency,
            "avg_transaction_latency": self.avg_transaction_latency,
            "control_packets": self.control_packets,
            "control_per_data": self.control_per_data,
            "lag_distribution": [
                [lag, frac] for lag, frac in self.lag_distribution.items()
            ],
            "pra_blocked_fraction": self.pra_blocked_fraction,
            "flits_delivered": self.flits_delivered,
            "total_hops": self.total_hops,
            "packets_unfinished": self.packets_unfinished,
            "timed_out": self.timed_out,
            "analytic": self.analytic,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PerfSample":
        state = dict(state)
        state["noc_kind"] = NocKind(state["noc_kind"])
        state["lag_distribution"] = {
            lag: frac for lag, frac in state["lag_distribution"]
        }
        return cls(**state)


class SystemSimulator:
    """Assembles and runs one (workload, NoC) configuration."""

    def __init__(
        self,
        workload: Union[str, WorkloadProfile],
        noc_kind: NocKind,
        chip_params: Optional[ChipParams] = None,
        seed: int = 0,
        detailed_llc: bool = False,
    ):
        self.profile = (
            workload if isinstance(workload, WorkloadProfile)
            else get_profile(workload)
        )
        self.noc_kind = noc_kind
        params = chip_params or default_chip(noc_kind)
        if params.noc.kind is not noc_kind:
            params = params.with_noc_kind(noc_kind)
        self.params = params
        self.chip = Chip(
            params,
            llc_hit_ratio=self.profile.llc_hit_ratio,
            detailed_llc=detailed_llc,
            seed=seed,
        )
        self.cores = [
            CoreModel(node, self.chip, self.profile, seed=seed)
            for node in range(params.num_tiles)
        ]
        self.chip.on_complete = self._route_completion
        self._started = False
        #: Counter snapshot taken at the measurement interval's start
        #: (``None`` outside an interval), and the cycle it was taken.
        self._interval_start: Optional["_Snapshot"] = None
        self._interval_cycle0 = 0

    def _route_completion(self, txn: Transaction, now: int) -> None:
        self.cores[txn.core_node].on_complete(txn, now)

    # -- measurement --------------------------------------------------------------

    def start(self) -> None:
        """Start all cores (idempotent)."""
        if self._started:
            return
        for core in self.cores:
            core.start()
        self._started = True

    def begin_interval(self) -> None:
        """Mark the start of a measurement interval."""
        self._interval_start = _Snapshot.take(self)
        self._interval_cycle0 = self.chip.cycle

    def end_interval(self) -> PerfSample:
        """Close the open measurement interval and report it."""
        if self._interval_start is None:
            raise RuntimeError("no measurement interval is open")
        end = _Snapshot.take(self)
        sample = self._diff(
            self._interval_start, end, self.chip.cycle - self._interval_cycle0
        )
        self._interval_start = None
        self._interval_cycle0 = 0
        return sample

    def run_sample(
        self,
        warmup: int = 2000,
        measure: int = 10000,
        wall_limit: Optional[float] = None,
    ) -> PerfSample:
        """Warm up, then measure one interval (the SimFlex recipe).

        ``wall_limit`` bounds the *wall-clock* seconds spent in this call;
        a run that exceeds it stops at a chunk boundary and reports the
        cycles it did simulate with ``timed_out=True`` instead of hanging
        the harness.
        """
        self.start()
        deadline = (
            time.monotonic() + wall_limit if wall_limit is not None else None
        )
        self._run_budget(warmup, deadline)
        self.begin_interval()
        hit_limit = self._run_budget(measure, deadline)
        sample = self.end_interval()
        sample.timed_out = hit_limit
        return sample

    def _run_budget(
        self, cycles: int, deadline: Optional[float], chunk: int = 256
    ) -> bool:
        """Run up to ``cycles``; True if the deadline cut the run short."""
        if deadline is None:
            self.chip.run(cycles)
            return False
        remaining = cycles
        while remaining > 0:
            if time.monotonic() >= deadline:
                return True
            step = min(chunk, remaining)
            self.chip.run(step)
            remaining -= step
        return False

    def _diff(self, start: "_Snapshot", end: "_Snapshot",
              cycles: int) -> PerfSample:
        stats = self.chip.network.stats
        n_lat = stats.network_latencies[start.lat_len:end.lat_len]
        packets = end.ejected - start.ejected
        avg_net = sum(n_lat) / len(n_lat) if n_lat else 0.0
        lat_sum = end.txn_latency_sum - start.txn_latency_sum
        lat_cnt = end.txn_latency_count - start.txn_latency_count
        control = end.control - start.control
        lag_counter = end.lag_counter - start.lag_counter
        lag_total = sum(lag_counter.values())
        blocked = end.blocked - start.blocked
        net_time = sum(n_lat)
        return PerfSample(
            workload=self.profile.name,
            noc_kind=self.noc_kind,
            instructions=end.instructions - start.instructions,
            cycles=cycles,
            packets=packets,
            avg_network_latency=avg_net,
            avg_transaction_latency=(lat_sum / lat_cnt) if lat_cnt else 0.0,
            control_packets=control,
            control_per_data=(control / packets) if packets else 0.0,
            lag_distribution=(
                {lag: cnt / lag_total for lag, cnt in sorted(lag_counter.items())}
                if lag_total else {}
            ),
            pra_blocked_fraction=(blocked / net_time) if net_time else 0.0,
            flits_delivered=end.flits - start.flits,
            total_hops=end.hops - start.hops,
            packets_unfinished=(
                (end.injected - start.injected) - packets
            ),
        )

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        return {
            "started": self._started,
            "interval": (
                self._interval_start.state_dict()
                if self._interval_start is not None else None
            ),
            "interval_cycle0": self._interval_cycle0,
            "chip": self.chip.state_dict(ctx),
            "cores": [core.state_dict() for core in self.cores],
        }

    def load_state(self, state: dict, ctx) -> None:
        self._started = state["started"]
        self._interval_start = (
            _Snapshot.from_state(state["interval"])
            if state["interval"] is not None else None
        )
        self._interval_cycle0 = state["interval_cycle0"]
        self.chip.load_state(state["chip"], ctx)
        for core, sub in zip(self.cores, state["cores"]):
            core.load_state(sub)


class _Snapshot:
    """Counter snapshot for interval differencing."""

    __slots__ = (
        "instructions", "injected", "ejected", "lat_len",
        "txn_latency_sum", "txn_latency_count", "control", "lag_counter",
        "blocked", "flits", "hops",
    )

    @classmethod
    def take(cls, sim: SystemSimulator) -> "_Snapshot":
        snap = cls()
        stats = sim.chip.network.stats
        snap.instructions = sum(c.instructions_retired for c in sim.cores)
        snap.injected = stats.packets_injected
        snap.ejected = stats.packets_ejected
        snap.lat_len = len(stats.network_latencies)
        snap.txn_latency_sum = sum(stats.network_latencies)
        snap.txn_latency_count = len(stats.network_latencies)
        snap.control = stats.control_packets_injected
        snap.lag_counter = Counter(stats.control_lag_at_drop)
        snap.blocked = stats.pra_blocked_cycles
        snap.flits = stats.flits_ejected
        snap.hops = stats.total_hops
        return snap

    def state_dict(self) -> dict:
        return {
            "instructions": self.instructions,
            "injected": self.injected,
            "ejected": self.ejected,
            "lat_len": self.lat_len,
            "txn_latency_sum": self.txn_latency_sum,
            "txn_latency_count": self.txn_latency_count,
            "control": self.control,
            "lag_counter": sorted(self.lag_counter.items()),
            "blocked": self.blocked,
            "flits": self.flits,
            "hops": self.hops,
        }

    @classmethod
    def from_state(cls, state: dict) -> "_Snapshot":
        snap = cls()
        snap.instructions = state["instructions"]
        snap.injected = state["injected"]
        snap.ejected = state["ejected"]
        snap.lat_len = state["lat_len"]
        snap.txn_latency_sum = state["txn_latency_sum"]
        snap.txn_latency_count = state["txn_latency_count"]
        snap.control = state["control"]
        snap.lag_counter = Counter(
            {lag: count for lag, count in state["lag_counter"]}
        )
        snap.blocked = state["blocked"]
        snap.flits = state["flits"]
        snap.hops = state["hops"]
        return snap


def simulate(
    workload: Union[str, WorkloadProfile],
    noc_kind: NocKind,
    warmup: int = 2000,
    measure: int = 10000,
    seed: int = 0,
    chip_params: Optional[ChipParams] = None,
    tracer=None,
    wall_limit: Optional[float] = None,
) -> PerfSample:
    """One-call convenience wrapper: build, warm up, measure.

    Pass a :class:`~repro.trace.tracer.RingTracer` as ``tracer`` to
    collect cycle-level lifecycle events over the whole run, and
    ``wall_limit`` (seconds) to bound the run's wall-clock time.
    """
    sim = SystemSimulator(workload, noc_kind, chip_params=chip_params,
                          seed=seed)
    if tracer is not None:
        sim.chip.network.attach(tracer=tracer)
    return sim.run_sample(warmup=warmup, measure=measure,
                          wall_limit=wall_limit)
