"""Cycle-accurate network-on-chip substrate.

This subpackage is the reproduction's analog of BookSim 2.0: a flit-level
wormhole network simulator with virtual channels, credit-based flow
control, dimension-ordered routing, and per-cycle router pipelines.  The
three realistic organizations share this substrate:

* :mod:`repro.noc.mesh` — the baseline 1-stage speculative mesh router
  (two cycles per hop at zero load),
* :mod:`repro.noc.smart` — the SMART single-cycle multi-hop network
  (three cycles per hop at zero load, HPC_max = 2),
* :mod:`repro.core.pra_network` — Mesh+PRA, built on the mesh router with
  proactive resource allocation (lives in :mod:`repro.core`).

The hypothetical zero-router-delay network is :mod:`repro.noc.ideal`.
"""

from repro.noc.flit import Flit, FlitType
from repro.noc.packet import Packet
from repro.noc.topology import Direction, MeshTopology
from repro.noc.routing import xy_route, xy_next_direction
from repro.noc.stats import NetworkStats
from repro.noc.network import Network, build_network
from repro.noc.ring import RingNetwork, build_ring

__all__ = [
    "RingNetwork",
    "build_ring",
    "Flit",
    "FlitType",
    "Packet",
    "Direction",
    "MeshTopology",
    "xy_route",
    "xy_next_direction",
    "NetworkStats",
    "Network",
    "build_network",
]
