"""Ablation A3: tiles-per-cycle (the fat-core argument).

The paper's premise: server cores are fat and clocked high, so only ~2
tiles fit in a cycle, which neuters SMART.  Sweeping the ideal network's
hops-per-cycle shows how much headroom a leaner-tile design would have.
"""

from dataclasses import replace

from repro.harness.reporting import format_table
from repro.params import ChipParams, NocKind
from repro.perf.system import simulate

WORKLOAD = "Web Search"
HOPS = (1, 2, 4)


def test_ablation_hpc(benchmark, save_result, scale):
    def run_all():
        mesh = simulate(WORKLOAD, NocKind.MESH, warmup=scale.warmup,
                        measure=scale.measure, seed=1)
        out = {"mesh": mesh}
        for hpc in HOPS:
            base = ChipParams()
            params = replace(base, noc=replace(base.noc,
                                               kind=NocKind.IDEAL,
                                               ideal_hops_per_cycle=hpc))
            out[hpc] = simulate(WORKLOAD, NocKind.IDEAL,
                                warmup=scale.warmup, measure=scale.measure,
                                seed=1, chip_params=params)
        return out

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    base = results["mesh"].ipc
    rows = [
        [str(k), s.ipc / base, s.avg_network_latency]
        for k, s in results.items()
    ]
    save_result(
        "ablation_hpc",
        format_table(["Config", "Perf vs Mesh", "NetLatency"], rows,
                     "Ablation A3: ideal-network tiles-per-cycle sweep"),
    )
    # More tiles per cycle monotonically helps (saturating).
    assert results[2].ipc >= results[1].ipc
    assert results[4].ipc >= results[2].ipc * 0.99
    # Even 1 tile/cycle with zero router delay beats the mesh.
    assert results[1].ipc > base
