"""Tests for the tiled-CMP substrate: address map, caches, LLC, memory."""

import pytest

from repro.params import NocKind, default_chip
from repro.tile.address import block_of, home_slice, memory_channel, BLOCK_BYTES
from repro.tile.cache import SetAssociativeCache
from repro.tile.chip import Chip
from repro.tile.directory import DirectorySlice
from repro.tile.llc import Transaction
from repro.tile.memory import MemoryChannel
from repro.params import MemoryParams


class TestAddress:
    def test_block_of(self):
        assert block_of(0) == 0
        assert block_of(BLOCK_BYTES - 1) == 0
        assert block_of(BLOCK_BYTES) == 1

    def test_home_slice_interleaving(self):
        homes = [home_slice(b * BLOCK_BYTES, 64) for b in range(128)]
        assert homes[:64] == list(range(64))
        assert homes[64:] == list(range(64))

    def test_memory_channel_range(self):
        for b in range(100):
            assert 0 <= memory_channel(b * BLOCK_BYTES, 4) < 4

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            block_of(-1)


class TestCache:
    def test_hit_after_fill(self):
        c = SetAssociativeCache(size_bytes=8192, ways=4)
        assert not c.lookup(0x1000)
        c.fill(0x1000)
        assert c.lookup(0x1000)

    def test_lru_eviction(self):
        c = SetAssociativeCache(size_bytes=4 * 64, ways=4)  # one set
        addrs = [i * 64 for i in range(5)]
        for a in addrs[:4]:
            c.fill(a)
        c.lookup(addrs[0])  # freshen the first block
        evicted = c.fill(addrs[4])
        assert evicted == block_of(addrs[1])  # LRU was block 1
        assert c.contains(addrs[0])

    def test_occupancy_bounded(self):
        c = SetAssociativeCache(size_bytes=2048, ways=2)
        for i in range(1000):
            c.fill(i * 64)
        assert c.occupancy <= 2048 // 64

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=1000, ways=3)

    def test_hit_ratio_statistics(self):
        c = SetAssociativeCache(size_bytes=8192, ways=4)
        c.fill(0)
        c.lookup(0)
        c.lookup(64 * 1024)
        assert c.hits == 1 and c.misses == 1
        assert c.hit_ratio == 0.5


class TestDirectory:
    def test_read_then_write_invalidates_sharers(self):
        d = DirectorySlice(node=0)
        d.record_read(100, requester=1)
        d.record_read(100, requester=2)
        to_inv = d.record_write(100, requester=3)
        assert sorted(to_inv) == [1, 2]
        assert d.sharers_of(100) == {3}

    def test_write_by_sharer_excludes_self(self):
        d = DirectorySlice(node=0)
        d.record_read(5, requester=7)
        assert d.record_write(5, requester=7) == []

    def test_bounded_tracking(self):
        d = DirectorySlice(node=0, max_tracked=10)
        for b in range(100):
            d.record_read(b, requester=0)
        assert d.tracked_blocks <= 10


class TestMemoryChannel:
    def test_deterministic_completion(self):
        events = []

        def scheduler(time, fn, *args):
            events.append((time, fn, args))

        ch = MemoryChannel(0, MemoryParams(), scheduler)
        done1 = ch.access(10, lambda: None)
        done2 = ch.access(10, lambda: None)
        assert done1 == 11 + MemoryParams().access_cycles
        # Second access waits for the channel service interval.
        assert done2 == done1 + MemoryParams().service_cycles


class TestChip:
    def test_remote_request_completes(self):
        chip = Chip(default_chip(NocKind.MESH), llc_hit_ratio=1.0, seed=1)
        done = []
        chip.on_complete = lambda txn, now: done.append((txn, now))
        txn = Transaction(core_node=0, addr=5 * 64, is_instruction=True)
        chip.issue(txn)
        chip.run(200)
        assert len(done) == 1
        assert done[0][0].llc_hit is True
        assert done[0][0].latency > 0

    def test_local_request_never_uses_network(self):
        chip = Chip(default_chip(NocKind.MESH), llc_hit_ratio=1.0, seed=1)
        done = []
        chip.on_complete = lambda txn, now: done.append(txn)
        txn = Transaction(core_node=3, addr=3 * 64, is_instruction=False)
        assert home_slice(txn.addr, 64) == 3
        chip.issue(txn)
        chip.run(100)
        assert len(done) == 1
        assert chip.network.stats.packets_injected == 0

    def test_miss_goes_to_memory(self):
        chip = Chip(default_chip(NocKind.MESH), llc_hit_ratio=0.0, seed=1)
        done = []
        chip.on_complete = lambda txn, now: done.append(txn)
        txn = Transaction(core_node=0, addr=9 * 64, is_instruction=False)
        chip.issue(txn)
        chip.run(400)
        assert len(done) == 1
        assert done[0].llc_hit is False
        assert done[0].latency > chip.params.memory.access_cycles
        assert sum(c.accesses for c in chip.channels) == 1

    def test_write_generates_coherence(self):
        chip = Chip(default_chip(NocKind.MESH), llc_hit_ratio=1.0, seed=1)
        chip.on_complete = lambda txn, now: None
        addr = 17 * 64
        # Two readers register as sharers, then a third core writes.
        for reader in (1, 2):
            chip.issue(Transaction(core_node=reader, addr=addr,
                                   is_instruction=False))
        chip.run(100)
        chip.issue(Transaction(core_node=5, addr=addr, is_instruction=False,
                               is_write=True))
        chip.run(100)
        assert chip.coherence_sent == 2

    def test_detailed_llc_mode(self):
        chip = Chip(default_chip(NocKind.MESH), detailed_llc=True, seed=1)
        done = []
        chip.on_complete = lambda txn, now: done.append(txn)
        addr = 8 * 64
        chip.issue(Transaction(core_node=0, addr=addr, is_instruction=False))
        chip.run(400)
        assert done[0].llc_hit is False  # cold cache
        chip.issue(Transaction(core_node=0, addr=addr, is_instruction=False))
        chip.run(400)
        assert done[1].llc_hit is True  # filled by the first miss
