"""Tests for the ring interconnect (Section II-B baseline)."""

import random

from repro.noc.packet import Packet
from repro.noc.ring import build_ring
from repro.params import MessageClass


class TestRingBasics:
    def test_single_packet_shortest_direction(self):
        net = build_ring(8)
        pkt = Packet(src=0, dst=2, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=100)
        assert pkt.hops_taken == 2

    def test_wraparound_shorter_path(self):
        net = build_ring(8)
        pkt = Packet(src=1, dst=7, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=100)
        assert pkt.hops_taken == 2  # 1 -> 0 -> 7 counter-clockwise

    def test_two_cycles_per_hop(self):
        net = build_ring(16)
        pkt = Packet(src=0, dst=4, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=100)
        assert pkt.network_latency() == 2 * 4 + 2 + 1  # as on the mesh

    def test_dateline_crossing_delivers(self):
        net = build_ring(8)
        # 6 -> 1 clockwise crosses the 7 -> 0 dateline.
        pkt = Packet(src=6, dst=1, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=200)
        assert pkt.ejected is not None
        assert pkt.ring_layer == 1  # switched layers at the dateline

    def test_multi_flit_across_dateline_intact(self):
        net = build_ring(6)
        pkt = Packet(src=5, dst=2, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=200)
        assert net.stats.flits_ejected == 5


class TestRingLoad:
    def test_random_traffic_all_delivered(self):
        rng = random.Random(21)
        net = build_ring(16)
        sent = 0
        for _ in range(300):
            src = rng.randrange(16)
            dst = (src + rng.randrange(1, 16)) % 16
            mc = rng.choice(list(MessageClass))
            net.send(Packet(src=src, dst=dst, msg_class=mc,
                            created=net.cycle))
            sent += 1
            net.step()
        net.drain(max_cycles=30000)
        assert net.stats.packets_ejected == sent

    def test_saturating_wraparound_traffic_is_deadlock_free(self):
        """All-to-opposite traffic maximizes dateline crossings; the
        two-layer VC scheme must keep the ring deadlock-free."""
        net = build_ring(8)
        sent = 0
        for round_ in range(40):
            for src in range(8):
                dst = (src + 4) % 8
                net.send(Packet(src=src, dst=dst,
                                msg_class=MessageClass.RESPONSE,
                                created=net.cycle))
                sent += 1
            net.run(3)
        net.drain(max_cycles=60000)
        assert net.stats.packets_ejected == sent


class TestRingScaling:
    def test_latency_scales_linearly_with_stops(self):
        """The paper's Section II-B claim: ring delay grows linearly
        with the number of interconnected components."""
        latencies = {}
        hops = {}
        for stops in (8, 16, 32):
            net = build_ring(stops)
            rng = random.Random(5)
            for _ in range(60):
                src = rng.randrange(stops)
                dst = (src + rng.randrange(1, stops)) % stops
                net.send(Packet(src=src, dst=dst,
                                msg_class=MessageClass.REQUEST,
                                created=net.cycle))
                net.run(5)
            net.drain(max_cycles=30000)
            latencies[stops] = net.stats.avg_network_latency
            hops[stops] = net.stats.avg_hops
        # Doubling the stop count doubles the average distance; latency
        # net of the fixed inject/eject overhead (~3 cycles) follows.
        assert hops[16] > hops[8] * 1.7
        assert hops[32] > hops[16] * 1.7
        assert (latencies[16] - 3) > (latencies[8] - 3) * 1.6
        assert (latencies[32] - 3) > (latencies[16] - 3) * 1.6
