"""Unit tests for the PRA bookkeeping: reservation tables and plans."""

import pytest

from repro.core.plan import PlanStep, PraPlan, LAND_VC, SRC_VC
from repro.core.reservation import ReservationEntry, ReservationTable
from repro.noc.packet import Packet
from repro.noc.topology import Direction
from repro.params import MessageClass


def make_plan(size_class=MessageClass.RESPONSE):
    pkt = Packet(src=0, dst=3, msg_class=size_class)
    return PraPlan(pkt, start_slot=10), pkt


def make_entry(plan, slot=10, flit=0, driver=True):
    step = PlanStep(
        driver_node=0, out_dir=Direction.EAST, slot=slot, hops=1,
        source_kind=SRC_VC, source_dir=Direction.LOCAL, source_vc=2,
        landing_node=1, landing_kind=LAND_VC,
        landing_entry=Direction.WEST,
    )
    return ReservationEntry(plan, step, flit, is_driver=driver)


class TestReservationTable:
    def test_reserve_and_pop(self):
        table = ReservationTable(horizon=12)
        plan, _ = make_plan()
        entry = make_entry(plan)
        table.reserve(10, entry)
        assert not table.is_free(10)
        assert table.pop(10) is entry
        assert table.is_free(10)

    def test_double_booking_rejected(self):
        table = ReservationTable(horizon=12)
        plan, _ = make_plan()
        table.reserve(10, make_entry(plan))
        with pytest.raises(RuntimeError):
            table.reserve(10, make_entry(plan))

    def test_cancelled_plan_frees_slot(self):
        table = ReservationTable(horizon=12)
        plan, _ = make_plan()
        table.reserve(10, make_entry(plan))
        plan.cancelled = True
        assert table.is_free(10)
        # A new reservation may take the slot.
        plan2, _ = make_plan()
        table.reserve(10, make_entry(plan2))
        assert table.entry_at(10).plan is plan2

    def test_window_free(self):
        table = ReservationTable(horizon=12)
        plan, _ = make_plan()
        table.reserve(12, make_entry(plan, slot=12))
        assert table.window_free(8, 4)
        assert not table.window_free(10, 4)

    def test_horizon(self):
        table = ReservationTable(horizon=8)
        assert table.within_horizon(now=100, first_slot=104, count=5)
        assert not table.within_horizon(now=100, first_slot=105, count=5)

    def test_has_pending_multiflit_per_class(self):
        table = ReservationTable(horizon=12)
        plan, pkt = make_plan(MessageClass.RESPONSE)
        table.reserve(11, make_entry(plan, slot=11))
        assert table.has_pending_multiflit(10, MessageClass.RESPONSE)
        assert not table.has_pending_multiflit(10, MessageClass.REQUEST)
        assert not table.has_pending_multiflit(12, MessageClass.RESPONSE)

    def test_purge_before(self):
        table = ReservationTable(horizon=12)
        plan, _ = make_plan()
        table.reserve(5, make_entry(plan, slot=5))
        table.reserve(9, make_entry(plan, slot=9))
        table.purge_before(8)
        assert len(table) == 1
        assert table.is_free(5) and not table.is_free(9)


class _FakePort:
    """Minimal OutputPort stand-in for claim accounting tests."""

    def __init__(self, depth=5):
        from repro.noc.vc import VirtualChannel

        self._vc = VirtualChannel(2, depth)
        self.credits = [depth, depth, depth]
        self.reserved = [0, 0, 0]

    def downstream_vc(self, idx):
        return self._vc

    def claim_buffer(self, idx, count):
        assert self.credits[idx] >= count
        self.credits[idx] -= count
        self.reserved[idx] += count

    def refund_buffer(self, idx, count):
        self.credits[idx] += count
        self.reserved[idx] -= count

    def consume_claim(self, idx):
        self.reserved[idx] -= 1


class TestPraPlanClaims:
    def test_claim_and_cancel_refunds(self):
        plan, pkt = make_plan()
        port = _FakePort()
        plan.claim_landing_vc(port, pkt.vc_index)
        assert port.credits[2] == 0
        assert port.downstream_vc(2).allocated_to is pkt
        plan.cancel()
        assert port.credits[2] == 5
        assert port.reserved[2] == 0
        assert port.downstream_vc(2).allocated_to is None

    def test_partial_consumption_then_cancel(self):
        plan, pkt = make_plan()
        port = _FakePort()
        plan.claim_landing_vc(port, pkt.vc_index)
        plan.consume_landing_credit()
        plan.consume_landing_credit()
        plan.cancel()
        # Two promised slots were used (flits in flight occupy them);
        # only the remaining three credits are refunded.
        assert port.credits[2] == 3
        assert port.reserved[2] == 0

    def test_full_consumption_clears_claim(self):
        plan, pkt = make_plan()
        port = _FakePort()
        plan.claim_landing_vc(port, pkt.vc_index)
        for _ in range(pkt.size):
            plan.consume_landing_credit()
        assert plan.vc_claim is None
        assert port.reserved[2] == 0

    def test_double_claim_rejected(self):
        plan, pkt = make_plan()
        port = _FakePort()
        plan.claim_landing_vc(port, pkt.vc_index)
        with pytest.raises(AssertionError):
            plan.claim_landing_vc(_FakePort(), pkt.vc_index)

    def test_cancel_clears_packet_state(self):
        plan, pkt = make_plan()
        pkt.pra_plan = plan
        pkt.pra_pending = True
        plan.cancel()
        assert pkt.pra_plan is None
        assert not pkt.pra_pending
        assert plan.cancelled

    def test_cancel_is_idempotent(self):
        plan, pkt = make_plan()
        port = _FakePort()
        plan.claim_landing_vc(port, pkt.vc_index)
        plan.cancel()
        plan.cancel()
        assert port.credits[2] == 5
