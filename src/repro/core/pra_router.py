"""The Mesh+PRA data-network router (paper Figure 4).

Relative to the baseline mesh router, each input unit gains a *bypass*
path (pre-allocated flits cross link → crossbar → link combinationally,
modeled by the upstream driver charging this router's port for the slot)
and a one-cycle *latch*; each output port gains a reservation table (the
bit vectors); and the arbiter is split: the **PRA arbiter** executes any
reservation recorded for the current cycle, and the **local arbiter**
handles everything else, skipping resources the PRA arbiter is using.

The **Long Stall Detection (LSD)** unit watches for a packet stalled
behind a multi-flit packet whose transmission end is deterministic
(enough downstream buffer space and all flits locally buffered) and
injects a control packet so the stalled packet's remaining path is
pre-allocated by the time the port frees up.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from repro.core.plan import LAND_LATCH, LAND_NI, LAND_VC, PraPlan, SRC_VC
from repro.core.reservation import ReservationEntry, ReservationTable
from repro.noc.flit import Flit
from repro.noc.network import _CREDIT
from repro.noc.packet import Packet
from repro.noc.ports import OutputPort
from repro.noc.router import CREDIT_DELAY, MeshRouter
from repro.noc.topology import Direction
from repro.noc.vc import VirtualChannel
from repro.trace.events import EV_LATCH_BYPASS

#: Sentinel VC index addressing an input unit's latch in arrivals.
LATCH_INDEX = -1

#: How often stale claims/reservations are garbage-collected.
_PURGE_PERIOD = 64


class PraOutputPort(OutputPort):
    """Output port with the PRA reservation bit vectors attached."""

    __slots__ = ("reservations",)

    def __init__(self, *args, horizon: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.reservations = ReservationTable(horizon)

    def state_dict(self, ctx) -> dict:
        state = super().state_dict(ctx)
        state["reservations"] = self.reservations.state_dict(ctx)
        return state

    def load_state(self, state: dict, ctx) -> None:
        super().load_state(state, ctx)
        self.reservations.load_state(state["reservations"], ctx)


class PraRouter(MeshRouter):
    """Mesh router extended with PRA arbitration, latches, and LSD."""

    def __init__(self, node: int, network):
        self._horizon = network.params.pra.reservation_horizon
        super().__init__(node, network)
        #: One latch per input direction (Figure 4's extra VC).
        self._latches: Dict[Direction, Deque[Flit]] = {
            d: deque() for d in self.input_units
        }
        #: Latch occupancy promises: (entry_dir, slot) -> plan.
        self._latch_claims: Dict[Tuple[Direction, int], PraPlan] = {}
        #: Crossbar-input promises: (direction, slot) -> plan.
        self._input_claims: Dict[Tuple[Direction, int], PraPlan] = {}
        self._last_purge = 0
        #: Cached PRA knobs (the step loop reads them every cycle).
        self._use_lsd = network.params.pra.use_lsd_trigger
        self._max_lag = network.params.pra.max_lag

    def _make_output_port(self, direction: Direction) -> PraOutputPort:
        return PraOutputPort(
            router=self,
            direction=direction,
            network=self.network,
            num_vcs=self.num_vcs,
            vc_depth=self.vc_depth,
            horizon=self._horizon,
        )

    # -- claims used by the control network -----------------------------------

    def latch_window_free(self, direction: Direction, first_slot: int,
                          count: int) -> bool:
        for i in range(count):
            plan = self._latch_claims.get((direction, first_slot + i))
            if plan is not None and not plan.cancelled:
                return False
        return True

    def claim_latch(self, direction: Direction, slot: int, plan: PraPlan) -> None:
        key = (direction, slot)
        self._latch_claims[key] = plan
        plan.latch_claims.append((self, key))

    def release_latch_claim(self, key, plan: PraPlan) -> None:
        if self._latch_claims.get(key) is plan:
            del self._latch_claims[key]

    def input_window_free(self, direction: Direction, first_slot: int,
                          count: int) -> bool:
        for i in range(count):
            plan = self._input_claims.get((direction, first_slot + i))
            if plan is not None and not plan.cancelled:
                return False
        return True

    def claim_input(self, direction: Direction, slot: int, plan: PraPlan) -> None:
        key = (direction, slot)
        self._input_claims[key] = plan
        plan.input_claims.append((self, key))

    def release_input_claim(self, key, plan: PraPlan) -> None:
        if self._input_claims.get(key) is plan:
            del self._input_claims[key]

    # -- flit reception (latch landings use the sentinel index) ---------------

    #: Latch landings need this dispatching path, so the network keeps
    #: calling ``receive_flit`` instead of inlining arrival delivery —
    #: unless every router advertises the latch sentinel, in which case
    #: ``Network._run_events`` dispatches latch landings inline too.
    _plain_receive = False
    _latch_index = LATCH_INDEX

    def receive_flit(self, direction: Direction, vc_index: int, flit: Flit) -> None:
        if vc_index == LATCH_INDEX:
            self._latches[direction].append(flit)
        else:
            self.input_units[direction].vcs[vc_index].push(flit)
        self.active_flits += 1
        self.network.wake_router(self.node)

    def has_work(self) -> bool:
        """Awake while flits are buffered or any reservation is pending.

        Keeping the router awake through its reserved slots reproduces
        the always-stepping behavior exactly: the PRA arbiter must run
        at every reserved cycle even when no flit is buffered locally.
        """
        if self.active_flits > 0:
            return True
        for port in self.port_list:
            if port.reservations._count:
                return True
        return False

    # -- per-cycle processing ---------------------------------------------------

    def step(self, now: int) -> None:
        used_inputs: Set[Direction] = set()
        busy_dirs: Set[Direction] = set()
        # The PRA arbiter runs even under an injected router stall:
        # the paper splits it from the local arbiter (Figure 4), and
        # committed reservations are the only thing that drains
        # latches — freezing them would strand flits forever instead
        # of modeling a recoverable hardware hiccup.
        self._execute_reservations(now, used_inputs, busy_dirs)
        if self.active_flits == 0:
            # Awake purely for reserved slots (driving a bypass or
            # pinning resources): the local arbiter has nothing to do.
            return
        faults = self.network.faults
        stalled = faults.enabled and faults.router_stalled(self.node, now)
        if stalled:
            if now - self._last_purge >= _PURGE_PERIOD:
                self._purge(now)
            return
        candidates = self._collect_head_candidates()
        for port in self.port_list:
            direction = port.direction
            if faults.enabled and port.fault_stalled(now):
                continue
            if direction in busy_dirs:
                self._count_blocked(candidates.get(direction), used_inputs)
                continue
            if port.held_by is not None:
                self._advance_held(port, now, used_inputs)
            else:
                group = candidates.get(direction)
                if group:
                    self._try_grant(port, direction, now, used_inputs, group)
        if self._use_lsd:
            self._lsd_scan(now, candidates)
        if now - self._last_purge >= _PURGE_PERIOD:
            self._purge(now)

    # -- build-time specialization (hot-path engine v3) --------------------------

    def finalize_build(self) -> None:
        """Elect the flattened PRA step.

        The PRA pipeline only exists on the flat mesh, so unlike the
        base mesh election there is no layering to rule out — just
        subclassing: any subclass keeps the generic :meth:`step`,
        because the inline body replicates exactly this class's
        arbitration (the local arbiter is the stock mesh one; the PRA
        arbiter and LSD keep their own helpers in both paths).
        """
        if not self.network.fastpath:
            return
        if type(self) is not PraRouter:
            return
        self.step = self._step_fast_pra  # type: ignore[method-assign]

    def _step_fast_pra(self, now: int) -> None:
        """Monomorphic hot path for the PRA router.

        Bit-identical to :meth:`step` with the generic local-arbiter
        helpers (``_advance_held``/``_try_grant``/``_grant``/
        ``_pop_and_send``) inlined, mirroring the base mesh
        ``_step_fast``.  Falls back to the generic step whenever an
        observer is attached (faults, tracer, shard boundary), so
        instrumented runs always exercise the reference path.
        """
        network = self.network
        if (network.faults.enabled or network.tracer.enabled
                or network.boundary is not None):
            PraRouter.step(self, now)
            return
        used_inputs: Set[Direction] = set()
        busy_dirs: Set[Direction] = set()
        self._execute_reservations(now, used_inputs, busy_dirs)
        if self.active_flits == 0:
            return
        candidates = self._collect_head_candidates()
        rr_last = self._rr_last
        total = self._rr_total
        pop_send = self._pop_send_fast_pra
        for port in self.port_list:
            direction = port.direction
            if busy_dirs and direction in busy_dirs:
                self._count_blocked(candidates.get(direction), used_inputs)
                continue
            held = port.held_by
            if held is not None:
                # Generic ``_advance_held``, tracer-off.
                vc = port.active_vc
                if vc is None:
                    continue
                flits = vc.flits
                if not flits or flits[0].packet is not held:
                    continue  # next flit still in flight from upstream
                in_dir = vc.unit.direction
                if in_dir in used_inputs:
                    continue
                if port.ni_sink is None and port.credits[port.held_dst_vc] < 1:
                    continue
                used_inputs.add(in_dir)
                if pop_send(port, vc, now).is_tail:
                    port.release()
                continue
            group = candidates.get(direction)
            if not group:
                continue
            # Generic ``_try_grant`` fused: eligibility filter (the
            # stock ``_may_grant`` — PRA reservation rules live in the
            # PRA arbiter, not here) plus the rotation pick.
            down_unit = port.downstream_unit
            credits = port.credits
            ejection = port.ni_sink is not None
            last = rr_last[direction]
            if last is None:
                last = total - 1
            choice = None
            best = total
            for vc in group:
                if vc.unit.direction in used_inputs:
                    continue
                if not ejection:
                    vc_index = vc.flits[0].packet.vc_index
                    down_vc = down_unit.vcs[vc_index]
                    if (down_vc.allocated_to is not None or down_vc.flits
                            or credits[vc_index] < 1):
                        continue
                rank = (vc.rr_id - last - 1) % total
                if rank < best:
                    best = rank
                    choice = vc
            if choice is None:
                continue
            vc = choice
            self._rr[direction] = vc.rr_key
            rr_last[direction] = vc.rr_id
            packet = vc.flits[0].packet
            if not ejection:
                down_unit.vcs[packet.vc_index].allocated_to = packet
            # Inline ``port.hold`` (the unheld branch guarantees it).
            port.held_by = packet
            port.active_vc = vc
            port.held_dst_vc = packet.vc_index
            port.holder_sent = 0
            used_inputs.add(vc.unit.direction)
            if pop_send(port, vc, now).is_tail:
                port.release()
        if self._use_lsd:
            self._lsd_scan(now, candidates)
        if now - self._last_purge >= _PURGE_PERIOD:
            self._purge(now)

    def _pop_send_fast_pra(self, port: OutputPort, vc: VirtualChannel,
                           now: int) -> Flit:
        """``_pop_and_send`` + ``OutputPort.send`` fused for the
        tracer-off, credit-charging case — the PRA twin of the mesh
        ``_pop_send_fast``, except credits append into the *ordered*
        event queue (:meth:`PraNetwork.schedule_credit` semantics: the
        control network's reservation walk reads credit counters, so
        credit/control insertion order is significant).  Every target
        cycle is ``now + <positive const>`` with ``now ==
        network.cycle``, so the future-only guard the public schedulers
        enforce holds by construction."""
        flit = vc.flits.popleft()
        if flit.is_tail:
            vc.allocated_to = vc.next_claim
            vc.next_claim = None
        self.active_flits -= 1
        network = self.network
        events = network._events
        pool = network._bucket_pool
        feeder = vc.unit.feeder_port
        if feeder is not None:
            time = now + CREDIT_DELAY
            bucket = events.get(time)
            if bucket is None:
                bucket = pool.pop() if pool else ([], [], [])
                events[time] = bucket
            bucket[2].append((_CREDIT, feeder, vc.index))
        port.flits_sent += 1
        packet = flit.packet
        if port.held_by is packet:
            port.holder_sent += 1
            vc_index = port.held_dst_vc
        else:
            vc_index = packet.vc_index
        if port.ni_sink is not None:
            network.schedule_eject(now + 1, port.ni_sink, flit)
            return flit
        credits = port.credits
        if credits[vc_index] <= 0:
            raise RuntimeError("credit underflow: flow control violated")
        credits[vc_index] -= 1
        if flit.is_head:
            packet.hops_taken += 1
        time = now + port.link_hop_latency
        bucket = events.get(time)
        if bucket is None:
            bucket = pool.pop() if pool else ([], [], [])
            events[time] = bucket
        bucket[0].append((port.downstream_router, port.downstream_dir,
                          vc_index, flit))
        return flit

    # -- the PRA arbiter ---------------------------------------------------------

    def _execute_reservations(
        self, now: int, used_inputs: Set[Direction], busy_dirs: Set[Direction]
    ) -> None:
        for port in self.port_list:
            table = port.reservations
            if table._count == 0:
                continue
            entry = table.pop(now)
            if entry is None:
                continue
            if not entry.is_driver:
                # A pre-allocated flit crosses this router's crossbar and
                # output link this cycle (set up by the upstream driver);
                # pin the port and the crossbar input for the cycle.  A
                # normally allocated transmission holding the port simply
                # skips this cycle (the PRA arbiter has priority).
                busy_dirs.add(port.direction)
                used_inputs.add(entry.step.out_dir.opposite)
                continue
            self._drive_entry(port, entry, now, used_inputs, busy_dirs)

    def _drive_entry(
        self,
        port: PraOutputPort,
        entry: ReservationEntry,
        now: int,
        used_inputs: Set[Direction],
        busy_dirs: Set[Direction],
    ) -> None:
        plan = entry.plan
        step = entry.step
        packet = plan.packet
        flit = self._source_front(step)
        expected = packet.flits[entry.flit_index]
        if flit is not expected:
            plan.cancel()
            return
        busy_dirs.add(port.direction)
        used_inputs.add(step.source_dir)
        self._pop_source(step, now)
        # Charge link/crossbar activity; a 2-hop step also crosses the
        # bypassed router's crossbar and outgoing link this cycle.
        port.flits_sent += 1
        if step.hops == 2:
            via_router = self.network.routers[step.via_node]
            via_router.output_ports[step.out_dir].flits_sent += 1
        if flit.is_head:
            packet.hops_taken += step.hops
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                now, EV_LATCH_BYPASS, pid=packet.pid, node=self.node,
                direction=step.out_dir.name, hops=step.hops,
                via=step.via_node, flit=flit.index,
                source=step.source_kind, landing=step.landing_node,
                landing_kind=step.landing_kind,
            )
        self._deliver_to_landing(step, plan, flit, now)
        if flit.is_tail and step is plan.steps[-1]:
            # The whole pre-allocated stretch has been traversed.
            plan.finished = True
            packet.pra_plan = None
            packet.pra_pending = False

    def _source_front(self, step) -> Optional[Flit]:
        if step.source_kind == SRC_VC:
            vc = self.input_units[step.source_dir].vcs[step.source_vc]
            return vc.front()
        latch = self._latches[step.source_dir]
        return latch[0] if latch else None

    def _pop_source(self, step, now: int) -> None:
        if step.source_kind == SRC_VC:
            vc = self.input_units[step.source_dir].vcs[step.source_vc]
            vc.pop()
            self.active_flits -= 1
            feeder = vc.unit.feeder_port
            if feeder is not None:
                self.network.schedule_credit(now + CREDIT_DELAY, feeder, vc.index)
        else:
            self._latches[step.source_dir].popleft()
            self.active_flits -= 1

    def _deliver_to_landing(self, step, plan: PraPlan, flit: Flit, now: int) -> None:
        if step.landing_kind == LAND_NI:
            ni = self.network.interfaces[step.landing_node]
            self.network.schedule_eject(now + 1, ni, flit)
            return
        landing_router = self.network.routers[step.landing_node]
        if step.landing_kind == LAND_LATCH:
            self.network.schedule_arrival(
                now + 1, landing_router, step.landing_entry, LATCH_INDEX, flit
            )
            return
        assert step.landing_kind == LAND_VC
        plan.consume_landing_credit()
        self.network.schedule_arrival(
            now + 1,
            landing_router,
            step.landing_entry,
            flit.packet.vc_index,
            flit,
        )

    # -- local arbiter constraints ------------------------------------------------

    def _may_grant(self, port: OutputPort, packet: Packet, now: int) -> bool:
        # Normally allocated packets never interleave with proactively
        # allocated ones inside a VC because landings claim their VC
        # (``allocated_to``) at reservation time — the structural
        # equivalent of the paper's per-class multi-flit flag.  Port
        # cycles reserved in the future are taken back by preemption
        # (the PRA arbiter has priority at its slots), so the local
        # arbiter needs no extra pending-reservation rule here.
        return super()._may_grant(port, packet, now)

    def _count_blocked(self, candidates, used_inputs) -> None:
        """A head flit that would have requested this output this cycle
        was blocked by a proactive allocation for another packet."""
        if not candidates:
            return
        for vc in candidates:
            if vc.unit.direction in used_inputs:
                continue
            front = vc.front()
            if front is not None and front.is_head and (
                front.packet.pra_plan is None
            ):
                front.packet.pra_blocked_cycles += 1

    # -- the Long Stall Detection unit ----------------------------------------------

    def _lsd_scan(self, now: int, candidates) -> None:
        """Inject (at most) one control packet for a deterministic stall.

        Only head flits at the front of a VC can be stalled waiting for
        an output port, so the scan reuses the cycle's candidate map.
        """
        max_lag = self._max_lag
        for vcs in candidates.values():
            for vc in vcs:
                front = vc.front()
                if front is None or not front.is_head:
                    continue
                packet = front.packet
                if packet.pra_pending or packet.pra_plan is not None:
                    continue
                release_slot = self._deterministic_release(packet, vc)
                if release_slot is None:
                    continue
                lag = release_slot - (now + 1)
                if lag < 1 or lag > max_lag:
                    continue
                run = self.network.control.inject(
                    packet,
                    self.node,
                    start_slot=release_slot,
                    trigger="lsd",
                    source_kind=SRC_VC,
                    source_dir=vc.unit.direction,
                    source_vc=vc.index,
                )
                if run is not None:
                    return  # one LSD injection per router per cycle

    def _deterministic_release(
        self, packet: Packet, vc: VirtualChannel
    ) -> Optional[int]:
        """First cycle ``packet`` could be granted, when predictable.

        The paper's condition: the wanted output is busy forwarding
        another multi-flit packet, and the downstream router has enough
        buffer space for the remainder of that packet — then it streams
        one flit per cycle and its end is known.  The stalled packet's
        own flits must be buffered so it can stream as soon as granted.
        An upstream supply hiccup of the draining packet invalidates the
        prediction; the driver then finds the port still held and
        cancels the plan (the hardware equivalent: the expected flit is
        absent, so the valid bit is dropped).
        """
        direction = self.route_of(packet)
        port = self.output_ports.get(direction)
        if port is None or not port.is_held:
            return None
        holder = port.held_by
        if holder is packet or not holder.is_multi_flit:
            return None
        remaining = port.remaining_flits_of_holder()
        if remaining < 1:
            return None
        if not port.is_ejection and port.credits[holder.vc_index] < remaining:
            return None
        if vc.occupancy < packet.size:
            return None
        return self.network.cycle + remaining + 1

    # -- checkpointing ------------------------------------------------------------

    def state_dict(self, ctx) -> dict:
        state = super().state_dict(ctx)
        state["latches"] = [
            [int(direction), [ctx.flit_ref(flit) for flit in latch]]
            for direction, latch in self._latches.items()
        ]
        state["latch_claims"] = [
            [int(direction), slot, ctx.plan_ref(plan)]
            for (direction, slot), plan in self._latch_claims.items()
            if not plan.cancelled
        ]
        state["input_claims"] = [
            [int(direction), slot, ctx.plan_ref(plan)]
            for (direction, slot), plan in self._input_claims.items()
            if not plan.cancelled
        ]
        state["last_purge"] = self._last_purge
        return state

    def load_state(self, state: dict, ctx) -> None:
        super().load_state(state, ctx)
        for direction_value, refs in state["latches"]:
            self._latches[Direction(direction_value)] = deque(
                ctx.flit(ref) for ref in refs
            )
        # ``claim_latch`` / ``claim_input`` rebuild each plan's release
        # back-reference lists as a side effect, mirroring reserve().
        self._latch_claims = {}
        for direction_value, slot, plan_ref in state["latch_claims"]:
            self.claim_latch(Direction(direction_value), slot,
                             ctx.plan(plan_ref))
        self._input_claims = {}
        for direction_value, slot, plan_ref in state["input_claims"]:
            self.claim_input(Direction(direction_value), slot,
                             ctx.plan(plan_ref))
        self._last_purge = state["last_purge"]

    # -- housekeeping -------------------------------------------------------------

    def _purge(self, now: int) -> None:
        self._last_purge = now
        for port in self.output_ports.values():
            port.reservations.purge_before(now)
        for claims in (self._latch_claims, self._input_claims):
            stale = [key for key in claims if key[1] < now]
            for key in stale:
                del claims[key]
