"""Event-horizon time skipping must be a *pure* optimization.

Every test here runs the same scenario twice — once with skipping (the
default) and once stepping every cycle — and asserts bit-identical
results: stats digests, final cycle, invariant-audit counts, violations,
fault counters, and traced event streams.  A separate group checks that
checkpoints taken inside a skipped span restore and finish with the
golden digest, and that the ``--no-time-skip`` escape hatches work.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.checkpoint import (
    read_snapshot,
    restore_network,
    snapshot_network,
    write_snapshot,
)
from repro.faults import FaultInjector, FaultSchedule
from repro.invariants import InvariantSuite
from repro.noc.network import build_network, set_time_skip, time_skip_enabled
from repro.noc.packet import packet_pool, reset_packet_ids
from repro.noc.ring import build_ring
from repro.params import MessageClass, NocKind, NocParams
from repro.trace import RingTracer
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

ALL_KINDS = (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA, NocKind.IDEAL)
FAULTABLE_KINDS = (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA)

_PING_CYCLES = 3000
_PING_GAP = 64


def _digest(payload) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _make(kind) -> object:
    if kind == "ring":
        return build_ring(16)
    return build_network(NocParams(kind=kind, mesh_width=8, mesh_height=8))


def _run_pingpong(net, *, time_skip: bool, observers: bool = False):
    """Closed-loop request ping-pong: long idle spans between replies,
    so the horizon has real distance to cover."""
    reset_packet_ids()  # traced events carry pids; make runs comparable
    net.time_skip = time_skip
    tracer = suite = None
    if observers:
        tracer = RingTracer(capacity=1 << 14)
        suite = InvariantSuite(raise_on_violation=False)
        net.attach(tracer=tracer, invariants=suite)
    n = net.topology.num_nodes

    def send(src: int, dst: int) -> None:
        net.send(packet_pool.acquire(src, dst, MessageClass.REQUEST,
                                     created=net.cycle))

    def on_delivery(packet, now: int) -> None:
        if now + _PING_GAP < _PING_CYCLES:
            net.schedule_call(now + _PING_GAP, send, packet.dst, packet.src)

    net.on_delivery(on_delivery)
    send(0, n - 1)
    send(3, n - 4)
    net.run(_PING_CYCLES)
    net.drain(max_cycles=20000)
    return net, tracer, suite


@pytest.mark.parametrize(
    "kind", ALL_KINDS + ("ring",),
    ids=lambda k: k if isinstance(k, str) else k.value,
)
def test_pingpong_digests_match_with_and_without_skipping(kind):
    on, _, _ = _run_pingpong(_make(kind), time_skip=True)
    off, _, _ = _run_pingpong(_make(kind), time_skip=False)
    assert _digest(on.stats.summary()) == _digest(off.stats.summary())
    # The drain must terminate at the exact quiescent cycle either way.
    assert on.cycle == off.cycle
    # The scenario is mostly idle: skipping must have actually engaged.
    assert on.cycles_skipped > 0
    assert off.cycles_skipped == 0


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_observers_see_identical_runs_across_skipping(kind):
    on, tr_on, iv_on = _run_pingpong(
        _make(kind), time_skip=True, observers=True
    )
    off, tr_off, iv_off = _run_pingpong(
        _make(kind), time_skip=False, observers=True
    )
    assert _digest(on.stats.summary()) == _digest(off.stats.summary())
    # Skipped spans replay their audit/watchdog boundaries exactly.
    assert iv_on.audits_run == iv_off.audits_run
    assert len(iv_on.violations) == len(iv_off.violations) == 0
    # Idle cycles emit no events, so the traces are identical streams.
    events_on = [(e.cycle, e.kind, e.pid) for e in tr_on.events()]
    events_off = [(e.cycle, e.kind, e.pid) for e in tr_off.events()]
    assert events_on == events_off


def _run_chaos(kind, *, time_skip: bool):
    # Control-plane fault draws are keyed by packet id; reset the
    # counter so both runs see the same fault decisions.
    reset_packet_ids()
    net = _make(kind)
    net.time_skip = time_skip
    schedule = FaultSchedule.random(11, net.topology.num_nodes, 300)
    injector = FaultInjector(schedule)
    suite = InvariantSuite(raise_on_violation=False)
    net.attach(faults=injector, invariants=suite)
    SyntheticTraffic(
        net, TrafficPattern.UNIFORM_RANDOM, 0.03, seed=3
    ).run(300)
    # A bounded settle window instead of drain(): faulted runs may leave
    # packets permanently stuck, which is part of what must replay
    # identically (including watchdog boundaries inside skipped spans).
    net.run(1500)
    return net, injector, suite


@pytest.mark.parametrize("kind", FAULTABLE_KINDS, ids=lambda k: k.value)
def test_chaos_runs_match_with_and_without_skipping(kind):
    on, inj_on, iv_on = _run_chaos(kind, time_skip=True)
    off, inj_off, iv_off = _run_chaos(kind, time_skip=False)
    assert _digest(on.stats.summary()) == _digest(off.stats.summary())
    assert dict(inj_on.counts) == dict(inj_off.counts)
    assert iv_on.audits_run == iv_off.audits_run
    assert iv_on.watchdog_fired == iv_off.watchdog_fired
    assert [str(v) for v in iv_on.violations] \
        == [str(v) for v in iv_off.violations]


_GAP_BEFORE_SNAP = 50
_GAP_AFTER_SNAP = 70


def _burst_gap_scenario(tmp_path=None):
    """Two synthetic bursts separated by a 120-cycle idle gap that the
    horizon jumps over.  When ``tmp_path`` is given, the run is
    checkpointed in the middle of the gap and resumed from disk."""
    reset_packet_ids()
    net = build_network(
        NocParams(kind=NocKind.MESH_PRA, mesh_width=8, mesh_height=8)
    )
    net.time_skip = True
    traffic = SyntheticTraffic(
        net, TrafficPattern.UNIFORM_RANDOM, 0.02, seed=7
    )
    traffic.run(250)
    net.drain(max_cycles=20000)
    skipped_at_gap = net.cycles_skipped
    if tmp_path is None:
        net.run(_GAP_BEFORE_SNAP + _GAP_AFTER_SNAP)
    else:
        net.run(_GAP_BEFORE_SNAP)
        # The quiescent gap is exactly what a skipping run jumps over;
        # the snapshot lands on a cycle that was never stepped.
        assert net.cycles_skipped > skipped_at_gap
        path = str(tmp_path / "mid-gap.json")
        write_snapshot(snapshot_network(net, traffic), path)
        net, traffic = restore_network(read_snapshot(path))
        assert net.cycles_skipped > skipped_at_gap
        net.run(_GAP_AFTER_SNAP)
    traffic.run(250)
    net.drain(max_cycles=20000)
    return net


def test_checkpoint_inside_a_skipped_span_restores_exactly(tmp_path):
    straight = _burst_gap_scenario()
    resumed = _burst_gap_scenario(tmp_path)
    assert _digest(resumed.stats.summary()) \
        == _digest(straight.stats.summary())
    assert resumed.cycle == straight.cycle
    # The skip counter is additive across the snapshot boundary.
    assert resumed.cycles_skipped == straight.cycles_skipped


def test_cycles_skipped_counts_only_fastforwarded_cycles():
    net, _, _ = _run_pingpong(
        _make(NocKind.MESH), time_skip=True
    )
    # Skipped + stepped cycles account for the whole run exactly.
    assert 0 < net.cycles_skipped < net.cycle


def test_set_time_skip_controls_new_networks():
    assert time_skip_enabled()
    try:
        set_time_skip(False)
        net = _make(NocKind.MESH)
        assert net.time_skip is False
    finally:
        set_time_skip(True)
    assert _make(NocKind.MESH).time_skip is True


def test_cli_no_time_skip_flag_is_digest_neutral(capsys):
    from repro.cli import main

    def run(extra):
        argv = ["simulate", "web", "--noc", "mesh", "--warmup", "50",
                "--measure", "200", "--seed", "3", "--digest"] + extra
        assert main(argv) == 0
        out = capsys.readouterr().out
        return [line for line in out.splitlines()
                if line.startswith("digest:")][0]

    try:
        fast = run([])
        slow = run(["--no-time-skip"])
    finally:
        set_time_skip(True)
    assert fast == slow


def test_worker_initializer_propagates_settings(tmp_path, monkeypatch):
    """REPRO_JOBS workers apply the parent's settings once instead of
    re-reading the environment per cell."""
    from repro.checkpoint.store import STORE_ENV
    from repro.harness import runner

    store = str(tmp_path / "cells")
    monkeypatch.setenv(STORE_ENV, store)
    monkeypatch.setenv("REPRO_WALL_LIMIT", "2.5")
    set_time_skip(False)
    from repro.noc.network import fastpath_enabled

    try:
        settings = runner._worker_settings()
        assert settings == (False, fastpath_enabled(), store, 2.5)
    finally:
        set_time_skip(True)
    try:
        runner._init_worker(*settings)
        assert time_skip_enabled() is False
        assert runner._cell_wall_limit() == 2.5
        import os

        assert os.environ[STORE_ENV] == store
    finally:
        set_time_skip(True)
        runner._worker_wall_limit = runner._UNSET
