"""Table I: the evaluation configuration, echoed for consistency."""

from repro.harness import table1, render_figure


def test_table1_parameters(benchmark, save_result):
    result = benchmark.pedantic(table1, iterations=1, rounds=1)
    save_result("table1_parameters", render_figure(result))
    text = render_figure(result)
    for expected in ("32 nm", "64", "8.0 MB", "DDR3", "3-way OoO",
                     "5 ports", "128 bits", "max lag 4"):
        assert expected in text
