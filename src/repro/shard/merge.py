"""Merging per-shard state back into one serial-equivalent whole.

Two merge problems arise in a sharded run:

* **Statistics** — every counter in :class:`NetworkStats` is either an
  integer sum or a list of integer latencies, so shard stats merge by
  summing scalars and concatenating lists; the summary means come out
  bit-identical to a serial run because integer sums are
  order-independent.
* **Checkpoints** — at a cycle barrier every shard snapshots its full
  network (owned rows real, neighbor rows replicas).  The merged
  snapshot takes each router/NI from its owning shard, keeps only the
  event-queue entries whose target the shard owns (cross-boundary
  arrivals exist byte-identically on both sides — the filter keeps
  exactly the receiver's copy), and unions the packet registries,
  preferring the copy with the larger hop count (the downstream copy
  of a mid-crossing packet is the one that kept traveling).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.noc.stats import NetworkStats
from repro.shard.spec import ShardError


def merge_stats(states: List[dict]) -> NetworkStats:
    """Fold per-shard ``NetworkStats.state_dict()`` values into one."""
    merged = NetworkStats()
    base = dict(states[0])
    int_keys = [
        "packets_injected", "packets_ejected", "flits_ejected",
        "total_hops", "pra_blocked_cycles", "control_packets_injected",
        "control_injection_conflicts", "pra_planned_packets",
        "grid_cache_hits", "grid_cache_misses",
        "worker_retries", "worker_respawns", "pool_rebuilds",
        "cells_quarantined",
    ]
    for key in int_keys:
        base[key] = sum(state.get(key, 0) for state in states)
    base["network_latencies"] = [
        v for state in states for v in state["network_latencies"]
    ]
    base["total_latencies"] = [
        v for state in states for v in state["total_latencies"]
    ]
    per_class: dict = {}
    for state in states:
        for value, latencies in state["per_class_latency"]:
            per_class.setdefault(value, []).extend(latencies)
    base["per_class_latency"] = [[v, lat] for v, lat in per_class.items()]
    for key in ("control_lag_at_drop", "control_drop_reasons"):
        counts: dict = {}
        for state in states:
            for item, count in state[key]:
                counts[item] = counts.get(item, 0) + count
        base[key] = sorted(counts.items())
    merged.load_state(base)
    return merged


def _event_target(encoded: list) -> int:
    """Owning node of an encoded event (see ``Network._encode_event``)."""
    kind = encoded[0]
    if kind in ("a", "e"):
        return encoded[1]
    if kind == "c":
        port_ref = encoded[1]
        # ["rp", node, direction] or ["nip", node]
        return port_ref[1]
    raise ShardError(
        f"cannot merge deferred-call event {encoded!r} across shards"
    )


def merge_snapshots(snapshots: List[dict],
                    ranges: List[Tuple[int, int]],
                    barrier: int) -> dict:
    """Merge per-shard barrier snapshots into one serial snapshot.

    ``snapshots[k]`` must be ``snapshot_network(...)`` output taken with
    every shard's clock exactly at ``barrier`` and all staged boundary
    records applied (:meth:`ShardDomain.barrier_drain`).
    """
    base = snapshots[0]
    for snap in snapshots:
        if snap["network"]["cycle"] != barrier:
            raise ShardError(
                f"snapshot at cycle {snap['network']['cycle']}, "
                f"expected barrier {barrier}"
            )

    def owner_of(node: int) -> int:
        for k, (first, last) in enumerate(ranges):
            if first <= node <= last:
                return k
        raise ShardError(f"node {node} outside every shard range")

    # Event queues: keep each event in its target's owning shard only.
    buckets: dict = {}
    for k, snap in enumerate(snapshots):
        first, last = ranges[k]
        for time, encoded_events in snap["network"]["events"]:
            kept = [ev for ev in encoded_events
                    if first <= _event_target(ev) <= last]
            if kept:
                buckets.setdefault(time, []).extend(kept)
    events = [[time, buckets[time]] for time in sorted(buckets)]

    bodies = [snap["network"] for snap in snapshots]
    network = {
        "cycle": barrier,
        "cycles_skipped": sum(b["cycles_skipped"] for b in bodies),
        "stats": merge_stats([b["stats"] for b in bodies]).state_dict(),
        "ni_queue": sorted(n for b in bodies for n in b["ni_queue"]),
        "router_queue": sorted(n for b in bodies
                               for n in b["router_queue"]),
        "events": events,
        "routers": [bodies[owner_of(node)]["routers"][node]
                    for node in range(len(bodies[0]["routers"]))],
        "interfaces": [bodies[owner_of(node)]["interfaces"][node]
                       for node in range(len(bodies[0]["interfaces"]))],
    }

    # Registries: union by pid.  Both sides of a mid-crossing packet
    # serialize it; the copy that traveled further (larger hops_taken)
    # is the live one.
    packets: dict = {}
    for snap in snapshots:
        registries = snap["registries"]
        for key in ("plans", "runs", "txns"):
            if registries[key]:
                raise ShardError(
                    f"cannot merge non-empty {key!r} registry "
                    f"across shards"
                )
        for pid, state in registries["packets"]:
            current = packets.get(pid)
            if current is None \
                    or state["hops_taken"] > current["hops_taken"]:
                packets[pid] = state
    registries = {
        "packets": [[pid, packets[pid]] for pid in sorted(packets)],
        "plans": [], "runs": [], "txns": [],
    }

    counters = {
        "next_pid": max(s["counters"]["next_pid"] for s in snapshots),
        "next_tid": max(s["counters"]["next_tid"] for s in snapshots),
    }

    merged = {
        "format": base["format"],
        "version": base["version"],
        "code_version": base["code_version"],
        "kind": base["kind"],
        "network_class": base["network_class"],
        "params": base["params"],
        "network": network,
        "registries": registries,
        "counters": counters,
    }
    if "traffic" in base:
        # Every shard draws the identical RNG stream; shard 0's traffic
        # state is the serial state except for the offered counter,
        # which (like injections) was filtered to owned sources.
        traffic = dict(base["traffic"])
        traffic["offered"] = sum(s["traffic"]["offered"]
                                 for s in snapshots)
        merged["traffic"] = traffic
    return merged
