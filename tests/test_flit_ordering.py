"""Flit-order integrity: packets must arrive head..tail, in order.

The paper rejects per-flit reservation (flit-reservation flow control)
precisely because flits may reorder on single-cycle multi-hop paths;
PRA reserves whole packets to avoid it.  These tests instrument the
ejection path and verify every packet's flits arrive exactly in index
order on every organization, under load and with pre-allocation active.
"""

import random
from collections import defaultdict

import pytest

from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind
from tests.helpers import make_network


def instrument_ejection(net):
    """Record the flit indices each NI receives, per packet."""
    order = defaultdict(list)
    for ni in net.interfaces:
        original = ni.eject_flit

        def eject(flit, now, _orig=original):
            order[flit.packet.pid].append(flit.index)
            _orig(flit, now)

        ni.eject_flit = eject
    return order


@pytest.mark.parametrize("kind", [NocKind.MESH, NocKind.SMART,
                                  NocKind.MESH_PRA])
def test_flits_arrive_in_order_under_load(kind):
    rng = random.Random(77)
    net = make_network(kind, width=4, height=4)
    order = instrument_ejection(net)
    sent = []
    for _ in range(120):
        src = rng.randrange(16)
        dst = (src + rng.randrange(1, 16)) % 16
        pkt = Packet(src=src, dst=dst, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        net.send(pkt)
        sent.append(pkt)
        net.step()
    net.drain(max_cycles=30000)
    for pkt in sent:
        assert order[pkt.pid] == list(range(pkt.size)), (
            f"packet {pkt.pid} flits reordered on {kind.value}: "
            f"{order[pkt.pid]}"
        )


def test_flits_in_order_on_preallocated_paths():
    """Announced responses riding 2-tiles-per-cycle plans must still
    deliver their five flits in order."""
    net = make_network(NocKind.MESH_PRA, width=8, height=8)
    order = instrument_ejection(net)
    packets = []
    rng = random.Random(9)
    pending = []
    for _ in range(60):
        src = rng.randrange(64)
        dst = (src + rng.randrange(1, 64)) % 64
        pkt = Packet(src=src, dst=dst, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        net.announce(pkt, ready_in=4)
        pending.append((net.cycle + 4, pkt))
        packets.append(pkt)
        net.step()
        for t, p in [x for x in pending if x[0] <= net.cycle]:
            net.send(p)
        pending = [x for x in pending if x[0] > net.cycle]
    for t, p in sorted(pending):
        while net.cycle < t:
            net.step()
        net.send(p)
    net.drain(max_cycles=30000)
    for pkt in packets:
        assert order[pkt.pid] == [0, 1, 2, 3, 4]
