"""Edge cases: self-sends, tiny meshes, saturation, API misuse."""

import pytest

from repro.noc.network import build_network
from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind, NocParams
from tests.helpers import assert_quiescent, make_network


class TestSelfSend:
    @pytest.mark.parametrize("kind", list(NocKind))
    def test_src_equals_dst_delivers(self, kind):
        net = make_network(kind)
        pkt = Packet(src=5, dst=5, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=100)
        assert pkt.ejected is not None
        assert pkt.hops_taken == 0


class TestTinyMesh:
    def test_two_by_one_mesh(self):
        net = build_network(NocParams(kind=NocKind.MESH, mesh_width=2,
                                      mesh_height=1))
        pkt = Packet(src=0, dst=1, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=100)
        assert pkt.ejected is not None

    def test_one_by_one_pra_mesh(self):
        net = build_network(NocParams(kind=NocKind.MESH_PRA, mesh_width=1,
                                      mesh_height=1))
        pkt = Packet(src=0, dst=0, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=100)
        assert pkt.ejected is not None


class TestSaturation:
    @pytest.mark.parametrize("kind", [NocKind.MESH, NocKind.MESH_PRA])
    def test_burst_into_one_destination(self, kind):
        """Everyone floods node 0 at once — the worst ejection hotspot.
        Everything must still deliver and unwind."""
        net = make_network(kind)
        sent = 0
        for _ in range(4):
            for src in range(1, 16):
                net.send(Packet(src=src, dst=0,
                                msg_class=MessageClass.RESPONSE,
                                created=net.cycle))
                sent += 1
            net.step()
        net.drain(max_cycles=30000)
        assert net.stats.packets_ejected == sent
        assert_quiescent(net)


class TestApiMisuse:
    def test_past_event_rejected(self):
        net = make_network(NocKind.MESH)
        net.run(5)
        with pytest.raises(ValueError):
            net.schedule_call(3, lambda: None)

    def test_drain_timeout_raises(self):
        net = make_network(NocKind.MESH)
        net.send(Packet(src=0, dst=15, msg_class=MessageClass.REQUEST,
                        created=net.cycle))
        with pytest.raises(RuntimeError):
            net.drain(max_cycles=2)

    def test_double_hold_rejected(self):
        net = make_network(NocKind.MESH)
        port = net.routers[0].output_ports[
            list(net.routers[0].output_ports)[0]
        ]
        pkt = Packet(src=0, dst=1, msg_class=MessageClass.REQUEST)
        port.hold(pkt, source_vc=None)
        with pytest.raises(RuntimeError):
            port.hold(pkt, source_vc=None)
