"""Tests for the analytic fast path (repro.analytic).

Three layers: the queueing model itself (zero-load laws, monotonicity,
saturation), the pruning screen (modes, bounds, decisions), and the
grid integration (store-key regression, pruned sweeps, validation).
"""

import pytest

from repro.analytic import (
    ANALYTIC_ENV,
    IPC_ERROR_MARGIN,
    LATENCY_ERROR_MARGIN,
    CellValidation,
    ValidationReport,
    analytic_mode,
    find_saturation,
    predict_cell,
    predict_network,
    resolve_mode,
    saturation_rate,
    screen_cell,
    synthetic_mix,
    zero_load_latency,
)
from repro.analytic.screen import (
    ANALYTIC_UTIL_ENV,
    PRUNE_MAX_UTIL,
    prune_max_util,
)
from repro.analytic.system import clear_prediction_cache
from repro.checkpoint.store import CellStore
from repro.harness.figures import zero_load_table
from repro.harness.runner import (
    ALL_KINDS,
    EvaluationScale,
    clear_grid_cache,
    evaluation_grid,
    grid_stats,
)
from repro.params import NocKind, NocParams
from repro.workloads.synthetic import TrafficPattern

TINY = EvaluationScale("tiny", warmup=150, measure=700, num_seeds=1)


class TestZeroLoad:
    def test_matches_simulated_zero_load_table(self):
        """The closed-form laws must equal the cycle-accurate simulator
        on an idle mesh, hop for hop (the same oracle zero_load_table
        renders; Mesh+PRA's column is an announced 5-flit response)."""
        table = zero_load_table(max_hops=4)
        for row in table["rows"]:
            hops = row[0]
            for offset, kind in enumerate(ALL_KINDS, start=1):
                predicted = zero_load_latency(
                    kind, hops, 0,
                    size=5 if kind is NocKind.MESH_PRA else 1,
                    announced=kind is NocKind.MESH_PRA,
                )
                assert predicted == row[offset], (kind, hops)

    def test_zero_hops_is_free(self):
        for kind in ALL_KINDS:
            assert zero_load_latency(kind, 0, 0) == 0.0


class TestPredictNetwork:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_latency_monotonic_in_rate(self, kind):
        cap = saturation_rate(kind)
        rates = [cap * f for f in (0.0, 0.1, 0.3, 0.5, 0.7, 0.9)]
        latencies = [predict_network(kind, r).latency for r in rates]
        for lo, hi in zip(latencies, latencies[1:]):
            assert hi >= lo

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_zero_load_convergence(self, kind):
        """As the rate goes to zero the contention term vanishes and
        the prediction converges to the zero-load mean."""
        idle = predict_network(kind, 0.0)
        assert idle.mean_wait == 0.0
        nearly = predict_network(kind, 1e-6 * saturation_rate(kind))
        assert nearly.latency == pytest.approx(idle.latency, rel=1e-3)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_saturated_past_capacity(self, kind):
        point = predict_network(kind, 1.01 * saturation_rate(kind))
        assert point.saturated
        assert point.latency == float("inf")

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            predict_network(NocKind.MESH, -0.1)

    def test_synthetic_mix_shapes(self):
        rr = synthetic_mix(TrafficPattern.REQUEST_REPLY, response_size=3)
        assert sum(w for _, w, _ in rr) == pytest.approx(1.0)
        assert ("response", 0.5, 3) in rr
        ur = synthetic_mix(TrafficPattern.UNIFORM_RANDOM)
        assert sum(w for _, w, _ in ur) == pytest.approx(1.0)


class TestPredictCell:
    def test_sample_is_deterministic(self):
        a = predict_cell("Web Search", NocKind.MESH).sample(1500)
        b = predict_cell("Web Search", NocKind.MESH).sample(1500)
        assert a.to_state() == b.to_state()
        assert a.analytic
        assert a.cycles == 1500
        assert a.packets > 0
        assert a.ipc > 0

    def test_ideal_beats_mesh(self):
        """The paper's headline ordering must survive the model."""
        for workload in ("Web Search", "Data Serving"):
            mesh = predict_cell(workload, NocKind.MESH)
            ideal = predict_cell(workload, NocKind.IDEAL)
            assert ideal.ipc > mesh.ipc
            assert ideal.avg_network_latency < mesh.avg_network_latency

    def test_agrees_with_simulation_within_margin(self):
        """The documented contract: every organization's model error on
        a cycle-accurate smoke-scale run stays inside the margins that
        gate pruning (full-grid coverage runs in the CI analytic-smoke
        job; one workload keeps this tier-1 test affordable)."""
        clear_grid_cache()
        smoke = EvaluationScale("smoke", warmup=300, measure=1500,
                                num_seeds=1)
        grid = evaluation_grid(("Web Search",), ALL_KINDS, smoke,
                               store=None, analytic="off")
        for kind in ALL_KINDS:
            sample = grid[("Web Search", kind)]
            prediction = predict_cell("Web Search", kind)
            lat_err = abs(prediction.avg_network_latency
                          - sample.avg_network_latency) \
                / sample.avg_network_latency
            ipc_err = abs(prediction.ipc - sample.ipc) / sample.ipc
            assert lat_err <= LATENCY_ERROR_MARGIN, (kind, lat_err)
            assert ipc_err <= IPC_ERROR_MARGIN, (kind, ipc_err)
        clear_grid_cache()


class TestModes:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.delenv(ANALYTIC_ENV, raising=False)
        assert analytic_mode() == "off"
        monkeypatch.setenv(ANALYTIC_ENV, "prune")
        assert analytic_mode() == "prune"
        monkeypatch.setenv(ANALYTIC_ENV, " WARM ")
        assert analytic_mode() == "warm"
        monkeypatch.setenv(ANALYTIC_ENV, "sometimes")
        with pytest.raises(ValueError):
            analytic_mode()

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ANALYTIC_ENV, "prune")
        assert resolve_mode("off") == "off"
        assert resolve_mode(None) == "prune"
        with pytest.raises(ValueError):
            resolve_mode("maybe")

    def test_util_bound_env(self, monkeypatch):
        monkeypatch.delenv(ANALYTIC_UTIL_ENV, raising=False)
        assert prune_max_util() == PRUNE_MAX_UTIL
        monkeypatch.setenv(ANALYTIC_UTIL_ENV, "0.25")
        assert prune_max_util() == 0.25
        for bad in ("zero", "0", "1.5", "-0.1"):
            monkeypatch.setenv(ANALYTIC_UTIL_ENV, bad)
            with pytest.raises(ValueError):
                prune_max_util()


class TestScreen:
    def test_default_bound_prunes_the_paper_grid(self, monkeypatch):
        """Every cell of the paper's grid sits well below half the
        bottleneck link's capacity, so the default policy prunes all of
        them (the ISSUE's >= 2x sweep speedup follows directly)."""
        monkeypatch.delenv(ANALYTIC_UTIL_ENV, raising=False)
        from repro.workloads.profiles import WORKLOAD_NAMES

        for workload in WORKLOAD_NAMES:
            for kind in ALL_KINDS:
                decision = screen_cell(workload, kind)
                assert decision.prune, (workload, kind)
                assert decision.reason == "deep-unsaturated"

    def test_tightened_bound_forces_partial_prune(self, monkeypatch):
        monkeypatch.setenv(ANALYTIC_UTIL_ENV, "0.24")
        verdicts = {
            kind: screen_cell("Data Serving", kind)
            for kind in ALL_KINDS
        }
        assert verdicts[NocKind.MESH].prune
        assert verdicts[NocKind.SMART].prune
        assert not verdicts[NocKind.MESH_PRA].prune
        assert verdicts[NocKind.MESH_PRA].reason == "contested"
        assert not verdicts[NocKind.IDEAL].prune

    def test_sample_carries_the_analytic_mark(self):
        decision = screen_cell("Web Search", NocKind.MESH)
        sample = decision.sample(900)
        assert sample.analytic
        assert sample.cycles == 900


class TestGridStoreKey:
    """Satellite regression: the in-process grid cache must key on the
    attached store — two sweeps against different stores are different
    computations (the old cache returned store A's grid to store B)."""

    def test_cache_distinguishes_stores(self, tmp_path):
        clear_grid_cache()
        cells = (("Web Search",), (NocKind.MESH,))
        store_a = CellStore(str(tmp_path / "a"))
        store_b = CellStore(str(tmp_path / "b"))
        grid_a = evaluation_grid(*cells, TINY, store=store_a)
        grid_a_again = evaluation_grid(*cells, TINY, store=store_a)
        assert grid_a_again is grid_a
        grid_b = evaluation_grid(*cells, TINY, store=store_b)
        assert grid_b is not grid_a
        assert len(store_b) == 1  # B really ran and persisted its cell
        grid_none = evaluation_grid(*cells, TINY, store=None)
        assert grid_none is not grid_a
        assert grid_none is not grid_b
        clear_grid_cache()

    def test_cache_distinguishes_analytic_modes(self):
        clear_grid_cache()
        cells = (("Web Search",), (NocKind.MESH,))
        pruned = evaluation_grid(*cells, TINY, store=None,
                                 analytic="prune")
        full = evaluation_grid(*cells, TINY, store=None, analytic="off")
        assert pruned is not full
        assert pruned[("Web Search", NocKind.MESH)].analytic
        assert not full[("Web Search", NocKind.MESH)].analytic
        clear_grid_cache()


class TestPrunedGrid:
    def test_pruned_sweep_counts_and_skips_the_store(self, tmp_path):
        clear_grid_cache()
        a0 = grid_stats.analytic_cells
        s0 = grid_stats.simulated_cells
        store = CellStore(str(tmp_path / "cells"))
        grid = evaluation_grid(("Web Search", "Data Serving"), ALL_KINDS,
                               TINY, store=store, analytic="prune")
        assert len(grid) == 8
        assert all(sample.analytic for sample in grid.values())
        assert grid_stats.analytic_cells - a0 == 8
        assert grid_stats.simulated_cells - s0 == 0
        # Model samples must never be persisted as simulation results.
        assert len(store) == 0
        summary = grid_stats.summary()
        assert summary["analytic_cells"] >= 8
        clear_grid_cache()

    def test_partial_prune_reproduces_simulated_cells_bitwise(
            self, tmp_path, monkeypatch):
        """The acceptance bit-identity: cells the screen does NOT prune
        must come out of a pruned sweep byte-for-byte equal to the same
        cells of an unpruned sweep."""
        clear_grid_cache()
        monkeypatch.setenv(ANALYTIC_UTIL_ENV, "0.24")
        cells = (("Data Serving",), ALL_KINDS)
        full = evaluation_grid(*cells, TINY, store=None, analytic="off")
        pruned = evaluation_grid(*cells, TINY, store=None,
                                 analytic="prune")
        expected_analytic = {NocKind.MESH, NocKind.SMART}
        for kind in ALL_KINDS:
            sample = pruned[("Data Serving", kind)]
            assert sample.analytic == (kind in expected_analytic)
            if not sample.analytic:
                reference = full[("Data Serving", kind)]
                assert sample.to_state() == reference.to_state()
        clear_grid_cache()

    def test_summary_omits_counters_when_unused(self):
        from repro.noc.stats import NetworkStats

        assert "analytic_cells" not in NetworkStats().summary()


class TestBaselineGuard:
    """Satellite regression: normalizing to a missing mesh baseline
    must fail loudly at the figure, not as a KeyError deep inside."""

    def test_missing_mesh_cell_raises_clear_error(self):
        from repro.harness.figures import _normalized_performance

        clear_grid_cache()
        with pytest.raises(RuntimeError, match="mesh baseline"):
            _normalized_performance(
                ("Web Search",), (NocKind.IDEAL,), TINY,
            )
        clear_grid_cache()


class TestValidationReport:
    def _entry(self, lat_err=0.0, ipc_err=0.0):
        return CellValidation(
            workload="Web Search", kind=NocKind.MESH,
            simulated_latency=20.0,
            predicted_latency=20.0 * (1 + lat_err),
            simulated_ipc=30.0, predicted_ipc=30.0 * (1 + ipc_err),
        )

    def test_errors_and_verdict(self):
        good = ValidationReport(entries=(
            self._entry(0.01), self._entry(0.05, 0.02),
        ))
        assert good.ok
        assert good.max_latency_error == pytest.approx(0.05)
        assert good.worst.latency_error == pytest.approx(0.05)
        bad = ValidationReport(entries=(
            self._entry(LATENCY_ERROR_MARGIN + 0.01),
        ))
        assert not bad.ok

    def test_empty_report_passes(self):
        report = ValidationReport(entries=())
        assert report.ok
        assert report.max_latency_error == 0.0
        assert report.worst is None

    def test_zero_reference_guard(self):
        entry = CellValidation(
            workload="w", kind=NocKind.MESH,
            simulated_latency=0.0, predicted_latency=5.0,
            simulated_ipc=0.0, predicted_ipc=5.0,
        )
        assert entry.latency_error == 0.0
        assert entry.ipc_error == 0.0


class TestSaturation:
    def test_warm_search_on_a_small_mesh(self):
        params = NocParams(kind=NocKind.MESH, mesh_width=4, mesh_height=4)
        result = find_saturation(
            NocKind.MESH, params=params, cycles=400, tolerance=0.02,
        )
        lo, hi = result.bracket
        assert 0.0 < result.measured <= 1.0
        assert lo <= result.measured <= hi
        assert hi - lo <= 0.02
        assert result.model_estimate > 0.0
        assert result.simulated_points == len(result.points) > 0
        assert result.warm
        # The knee sits below the pure link-capacity bound.
        assert result.measured <= result.model_estimate

    def test_cold_search_agrees(self):
        params = NocParams(kind=NocKind.MESH, mesh_width=4, mesh_height=4)
        warm = find_saturation(NocKind.MESH, params=params, cycles=400,
                               tolerance=0.02)
        cold = find_saturation(NocKind.MESH, params=params, cycles=400,
                               tolerance=0.02, warm=False)
        # Identical probes, identical classifier: the two searches must
        # land in overlapping brackets.
        assert abs(warm.measured - cold.measured) <= 0.04
        assert not cold.warm


def teardown_module() -> None:
    clear_prediction_cache()
    clear_grid_cache()
