"""The ``REPRO_ANALYTIC`` pre-screen: which grid cells skip simulation.

Three modes (env var ``REPRO_ANALYTIC``, or the ``analytic=`` argument
to :func:`repro.harness.runner.evaluation_grid`, which wins):

* ``off`` (default) — every cell is simulated; the model is not
  consulted.
* ``warm`` — the model is consulted for warm starts (the saturation
  search's bracket, bench reporting) but never replaces a simulation:
  every grid cell still runs cycle-accurately.
* ``prune`` — cells the model decides *with high confidence* are served
  analytically: deep-unsaturated cells (bottleneck-link utilization at
  the closed-loop fixed point below :func:`prune_max_util`, where the
  CI-gated validation margin holds) and deep-saturated cells
  (utilization beyond ``SATURATED_MIN_UTIL``, where simulation would
  only measure the same capacity wall slowly).  Everything in the
  contested band between them is simulated.

Pruned cells are marked ``PerfSample.analytic`` and are counted on
``grid_stats`` (``analytic_cells`` vs ``simulated_cells`` in
``NetworkStats.summary``); they are never written to a cell store.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.analytic.system import CellPrediction, predict_cell
from repro.params import NocKind
from repro.perf.system import PerfSample

ANALYTIC_ENV = "REPRO_ANALYTIC"
#: Env override for the deep-unsaturated utilization bound (CI uses a
#: tightened bound to force a partial prune and check the simulated
#: remainder bit-for-bit against an unpruned sweep).
ANALYTIC_UTIL_ENV = "REPRO_ANALYTIC_UTIL"

MODES = ("off", "warm", "prune")

#: Default deep-unsaturated bound: below half the bottleneck link's
#: capacity the M/G/1 waiting term is small and near-linear, and the
#: validated model error stays inside LATENCY_ERROR_MARGIN (the
#: ``analytic-smoke`` CI job re-checks this every run).
PRUNE_MAX_UTIL = 0.5

#: Deep-saturated bound: offered load this far past the capacity wall
#: pins the answer ("saturated") without a cycle-accurate run.
SATURATED_MIN_UTIL = 1.25


def analytic_mode() -> str:
    """The mode from ``REPRO_ANALYTIC`` (empty/unset means ``off``)."""
    raw = os.environ.get(ANALYTIC_ENV, "").strip().lower()
    if not raw:
        return "off"
    if raw not in MODES:
        raise ValueError(
            f"{ANALYTIC_ENV} must be one of {MODES}, got {raw!r}"
        )
    return raw


def resolve_mode(override: Optional[str] = None) -> str:
    """An explicit ``analytic=`` argument wins over the environment."""
    if override is None:
        return analytic_mode()
    mode = override.strip().lower()
    if mode not in MODES:
        raise ValueError(
            f"analytic mode must be one of {MODES}, got {override!r}"
        )
    return mode


def prune_max_util() -> float:
    """The deep-unsaturated bound, honoring the env override."""
    raw = os.environ.get(ANALYTIC_UTIL_ENV)
    if not raw:
        return PRUNE_MAX_UTIL
    try:
        bound = float(raw)
    except ValueError:
        raise ValueError(
            f"{ANALYTIC_UTIL_ENV} must be a utilization in (0, 1], "
            f"got {raw!r}"
        ) from None
    if not 0.0 < bound <= 1.0:
        raise ValueError(
            f"{ANALYTIC_UTIL_ENV} must be a utilization in (0, 1], "
            f"got {raw!r}"
        )
    return bound


@dataclass(frozen=True)
class ScreenDecision:
    """Verdict on one (workload, organization) cell."""

    workload: str
    kind: NocKind
    prediction: CellPrediction
    prune: bool
    #: "deep-unsaturated" | "deep-saturated" | "contested"
    reason: str

    def sample(self, measure: int) -> PerfSample:
        """The analytic sample standing in for one seed's simulation."""
        return self.prediction.sample(measure)


def screen_cell(workload: str, kind: NocKind) -> ScreenDecision:
    """Decide whether the model may serve this cell.

    The confidence policy is utilization-based: the model's error is
    validated (and CI-gated) in the low-utilization regime, so only
    cells whose closed-loop fixed point lands well inside it — or so
    far past the capacity wall that the verdict cannot flip — are
    pruned.
    """
    prediction = predict_cell(workload, kind)
    util = prediction.max_util
    if util <= prune_max_util():
        return ScreenDecision(workload, kind, prediction, True,
                              "deep-unsaturated")
    if util >= SATURATED_MIN_UTIL:
        return ScreenDecision(workload, kind, prediction, True,
                              "deep-saturated")
    return ScreenDecision(workload, kind, prediction, False, "contested")
