"""Directory slices: sharer tracking and coherence traffic.

Each tile holds a directory slice for the blocks homed there.  The paper
notes coherence traffic is negligible for server workloads ([4], [16],
[17]) and gives it a dedicated message class only to avoid protocol
deadlock.  We model the directory faithfully enough to generate that
message class: reads register sharers; writes invalidate other sharers
with single-flit coherence messages.  The fast statistical mode instead
draws a per-workload coherence fraction (see
:class:`repro.workloads.profiles.WorkloadProfile`)."""

from __future__ import annotations

from typing import Dict, List, Set


class DirectorySlice:
    """Sharer bookkeeping for the blocks homed at one tile."""

    def __init__(self, node: int, max_tracked: int = 65536):
        self.node = node
        self._sharers: Dict[int, Set[int]] = {}
        self._max_tracked = max_tracked
        self.invalidations_sent = 0

    def record_read(self, block: int, requester: int) -> None:
        sharers = self._sharers.get(block)
        if sharers is None:
            if len(self._sharers) >= self._max_tracked:
                self._sharers.pop(next(iter(self._sharers)))
            sharers = set()
            self._sharers[block] = sharers
        sharers.add(requester)

    def record_write(self, block: int, requester: int) -> List[int]:
        """Register a writer; returns the sharers to invalidate."""
        sharers = self._sharers.get(block, set())
        to_invalidate = [s for s in sharers if s != requester]
        self._sharers[block] = {requester}
        self.invalidations_sent += len(to_invalidate)
        return to_invalidate

    def sharers_of(self, block: int) -> Set[int]:
        return set(self._sharers.get(block, set()))

    @property
    def tracked_blocks(self) -> int:
        return len(self._sharers)

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Blocks in insertion order (the eviction policy pops the
        oldest entry); each sharer set sorted.  A sharer set built by
        ``add`` alone iterates by value layout, not insertion history,
        so re-adding the sorted members reproduces the original
        invalidation order in :meth:`record_write`."""
        return {
            "sharers": [
                [block, sorted(members)]
                for block, members in self._sharers.items()
            ],
            "invalidations_sent": self.invalidations_sent,
        }

    def load_state(self, state: dict) -> None:
        self._sharers = {}
        for block, members in state["sharers"]:
            sharers: Set[int] = set()
            for member in members:
                sharers.add(member)
            self._sharers[block] = sharers
        self.invalidations_sent = state["invalidations_sent"]
