"""Closed-form queueing model of the four NoC organizations.

Following Mandal et al.'s program (PAPERS.md: analytical NoC performance
from a per-router queueing decomposition, no simulation), this package
maps (topology, organization, injection parameters) to predicted
per-hop contention, packet latency, and saturation throughput — pure
Python, deterministic, microseconds per evaluation.  Three consumers:

* :func:`repro.analytic.screen.screen_cell` — the ``REPRO_ANALYTIC``
  pre-screen that lets :func:`repro.harness.runner.evaluation_grid`
  serve deep-unsaturated cells analytically instead of simulating them;
* :func:`repro.analytic.saturation.find_saturation` — the bisection
  saturation search behind ``python -m repro saturate``, warm-started
  from the model's estimate;
* :func:`repro.analytic.validate.validate_grid` — the model-vs-sim
  error report behind ``python -m repro analytic --validate`` (gated in
  CI so the pruning margin stays honest).

See docs/performance.md ("The analytical fast path") for the model's
assumptions and the error-margin policy.
"""

from repro.analytic.geometry import TrafficGeometry, traffic_geometry
from repro.analytic.queueing import (
    FULL_SYSTEM_MIX,
    NetworkPoint,
    TrafficMix,
    predict_network,
    saturation_rate,
    synthetic_mix,
    zero_load_latency,
)
from repro.analytic.saturation import SaturationResult, find_saturation
from repro.analytic.screen import (
    ANALYTIC_ENV,
    ScreenDecision,
    analytic_mode,
    resolve_mode,
    screen_cell,
)
from repro.analytic.system import CellPrediction, predict_cell
from repro.analytic.validate import (
    IPC_ERROR_MARGIN,
    LATENCY_ERROR_MARGIN,
    CellValidation,
    ChipletValidation,
    ValidationReport,
    validate_chiplet,
    validate_grid,
)

__all__ = [
    "ANALYTIC_ENV",
    "CellPrediction",
    "CellValidation",
    "ChipletValidation",
    "FULL_SYSTEM_MIX",
    "IPC_ERROR_MARGIN",
    "LATENCY_ERROR_MARGIN",
    "NetworkPoint",
    "SaturationResult",
    "ScreenDecision",
    "TrafficGeometry",
    "TrafficMix",
    "ValidationReport",
    "analytic_mode",
    "find_saturation",
    "predict_cell",
    "predict_network",
    "resolve_mode",
    "saturation_rate",
    "screen_cell",
    "synthetic_mix",
    "traffic_geometry",
    "validate_chiplet",
    "validate_grid",
    "zero_load_latency",
]
