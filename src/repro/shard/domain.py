"""One shard of a spatially partitioned mesh simulation.

A :class:`ShardDomain` owns a contiguous stripe of mesh rows.  It
builds the *full* network (so node numbering, routing tables, and the
injection RNG stream are bit-identical to a serial run) but steps only
the routers and NIs it owns; the rows adjacent to its stripe act as
passive replicas whose buffers mirror the owning shard's real state.

Cross-boundary effects travel as small picklable records:

* ``("a", capture, node, dir, vc, pid, flit_index, state)`` — a flit
  sent into a non-owned router.  The head flit carries the packet's
  serialized state; the owner materializes the packet once and pulls
  later flits from it by index.  Fires at ``capture + 2`` (the link
  hop latency).
* ``("p", capture, node, dir, vc)`` — the owner of an input buffer
  popped a flit whose upstream (feeder) port lives in another shard.
  The feeder's shard replays the pop on its replica buffer and
  schedules the credit return its serial run would have seen.
* ``("g", capture, node, dir, vc, pid)`` — a router allocated a VC in
  a non-owned downstream router; the owner mirrors ``allocated_to``.

Synchronization is conservative in the Chandy–Misra–Bryant style.
The serial step order (all NIs, then all routers, in ascending node
id) gives the cut an asymmetric discipline: records from the previous
shard (lower ids, steps *before* this stripe in the same cycle) apply
before this shard executes the capture cycle; records from the next
shard (steps *after*) are staged and applied one cycle later.  A shard
may therefore execute cycle ``t`` iff it holds complete knowledge of
the previous shard through ``t`` and of the next shard through
``t - 1``.  Knowledge comes either from a neighbor's reported
``through`` (cycles it fully executed and flushed) or from its
``promise`` (a lower bound on any future record's capture cycle — the
null message of CMB), corrected on the receiving side by the earliest
arrival the sender has not acknowledged yet.
"""

from __future__ import annotations

import math
from collections import deque
from typing import List, Optional

from repro.noc.packet import Packet
from repro.noc.topology import Direction
from repro.shard.spec import ShardError, SyntheticSpec

INF = math.inf


class _WireCtx:
    """Save context for packets serialized onto the boundary wire.

    Mesh synthetic traffic carries no payloads and no PRA plans, which
    is what keeps a boundary record self-contained; anything else is a
    hard error rather than a silent drop.
    """

    @staticmethod
    def ref(value):
        if value is not None:
            raise ShardError("cannot ship packet payloads across shards")
        return None

    @staticmethod
    def plan_ref(plan):
        if plan is not None:
            raise ShardError("cannot ship PRA plans across shards")
        return None


_WIRE_CTX = _WireCtx()


class _Link:
    """Per-neighbor synchronization state (one per adjacent cut)."""

    __slots__ = ("cov_through", "promise", "staged", "out_records",
                 "out_min_fire", "out_seq", "in_seq", "in_ack",
                 "sent_log", "last_through", "last_promise", "last_seen")

    def __init__(self):
        self.cov_through = -1     # peer fully executed & flushed <= this
        self.promise = 0          # peer's latest capture lower bound
        self.staged = deque()     # received records, capture-ordered
        self.out_records: list = []   # captured since the last flush
        self.out_min_fire = INF   # earliest arrival fire among out_records
        self.out_seq = 0
        self.in_seq = 0           # last seq received
        #: Seq of the last *record-bearing* flush received.  Only those
        #: need acknowledging (acks prune the peer's sent_log); acking
        #: heartbeats too would ping-pong flushes forever.
        self.in_ack = 0
        self.sent_log: list = []  # [(seq, min_arrival_fire)] unacked
        self.last_through = -1    # dedup state for heartbeat flushes
        self.last_promise: Optional[float] = None
        self.last_seen = 0


class ShardDomain:
    """A row stripe of the mesh plus its boundary bookkeeping."""

    def __init__(self, spec: SyntheticSpec, index: int, count: int,
                 observers: str = "none", restore_from=None):
        self.spec = spec
        self.index = index
        self.count = count
        if restore_from is None:
            net, traffic = spec.build()
            packets: dict = {}
            aux = {"entered": 0, "exited": 0}
        else:
            # Recovery-point restart: rebuild this shard's full state
            # (owned rows real, neighbor rows replicas) from its own
            # barrier snapshot instead of from scratch.  The boundary
            # links below start fresh, which is protocol-consistent:
            # ``barrier_drain`` applied every staged record before the
            # snapshot, so a barrier is as clean a cut as cycle 0.
            from repro.checkpoint.snapshot import restore_network

            snap, aux = restore_from
            packets = {}
            net, traffic = restore_network(snap, packets_out=packets)
            if traffic is None:
                raise ShardError(
                    "recovery snapshot carries no traffic state"
                )
        self.net = net
        self.traffic = traffic
        domains = net.topology.row_domains(count)
        self.first, self.last = domains[index]
        #: Packets that crossed in, keyed by pid (body flits of a packet
        #: arrive as bare (pid, index) references).  On restore this is
        #: every snapshotted packet — a superset of the original map,
        #: harmless because it is only ever read by pid.
        self.registry = dict(packets)
        #: Packets that fully crossed in / out of this stripe; together
        #: with the local injected/ejected counters these make
        #: :attr:`resident` the exact count of packets physically here.
        self.entered = aux["entered"]
        self.exited = aux["exited"]
        self.prev = _Link() if index > 0 else None
        self.next = _Link() if index < count - 1 else None
        traffic.inject_filter = self.owns
        net.shard_view = self
        self._install_hooks()
        if observers == "tracing":
            from repro.invariants import InvariantSuite
            from repro.trace import RingTracer

            net.attach(tracer=RingTracer(capacity=1 << 12))
            net.attach(invariants=InvariantSuite())

    # -- ownership ---------------------------------------------------------

    def owns(self, node: int) -> bool:
        return self.first <= node <= self.last

    @property
    def resident(self) -> int:
        """Packets physically inside this stripe (or bound for it)."""
        return self.net.stats.in_flight + self.entered - self.exited

    # -- boundary capture --------------------------------------------------

    def _install_hooks(self) -> None:
        net = self.net
        first, last = self.first, self.last

        orig_wake_router = net.wake_router
        orig_wake_ni = net.wake_ni

        def wake_router(node: int) -> None:
            if first <= node <= last:
                orig_wake_router(node)

        def wake_ni(node: int) -> None:
            if first <= node <= last:
                orig_wake_ni(node)

        net.wake_router = wake_router
        net.wake_ni = wake_ni

        orig_arrival = net.schedule_arrival

        def schedule_arrival(time, router, direction, vc_index, flit):
            node = router.node
            if not first <= node <= last:
                packet = flit.packet
                state = (packet.state_dict(_WIRE_CTX)
                         if flit.is_head else None)
                self._capture(
                    node,
                    ("a", net.cycle, node, int(direction), vc_index,
                     packet.pid, flit.index, state),
                    arrival_fire=time,
                )
                if flit.is_tail:
                    self.exited += 1
            # Keep the local copy either way: the sender's replica of
            # the downstream buffer must fill so credit accounting and
            # can_accept reads stay bit-identical to the serial run.
            orig_arrival(time, router, direction, vc_index, flit)

        net.schedule_arrival = schedule_arrival

        orig_credit = net.schedule_credit

        def schedule_credit(time, port, vc_index):
            router = port.router
            if router is not None and not first <= router.node <= last:
                # This shard popped a replica-fed buffer; the feeder
                # port's owner replays the pop and schedules the real
                # credit.  Suppress the local event: the feeder port
                # here is itself a replica.
                self._capture(
                    router.node,
                    ("p", net.cycle, router.node, int(port.direction),
                     vc_index),
                )
                return
            orig_credit(time, port, vc_index)

        net.schedule_credit = schedule_credit
        net.boundary = self

    def note_grant(self, port, packet, now: int) -> None:
        """Boundary-port hook (see ``Network.boundary``): a local router
        allocated a VC whose router lives in another shard."""
        node = port.downstream_router.node
        if self.owns(node):
            return
        self._capture(node, ("g", now, node, int(port.downstream_dir),
                             packet.vc_index, packet.pid))

    def _capture(self, node: int, record: tuple,
                 arrival_fire: Optional[int] = None) -> None:
        link = self.prev if node < self.first else self.next
        if link is None:
            raise ShardError(
                f"record for node {node} crosses a non-adjacent cut"
            )
        link.out_records.append(record)
        if arrival_fire is not None and arrival_fire < link.out_min_fire:
            link.out_min_fire = arrival_fire

    # -- record application ------------------------------------------------

    def _apply(self, record: tuple) -> None:
        net = self.net
        kind = record[0]
        if kind == "a":
            _, capture, node, d, vc_index, pid, flit_index, state = record
            if state is not None:
                self.registry[pid] = Packet.from_state(state)
                self.entered += 1
            packet = self.registry[pid]
            net.schedule_arrival(capture + 2, net.routers[node],
                                 Direction(d), vc_index,
                                 packet.flits[flit_index])
        elif kind == "p":
            _, capture, node, d, vc_index = record
            port = net.routers[node].output_ports[Direction(d)]
            net.schedule_credit(capture + 2, port, vc_index)
            # Replay the pop on the replica of the downstream buffer so
            # this shard's can_accept/credit reads keep matching serial.
            port.downstream_unit.vcs[vc_index].pop()
            port.downstream_router.active_flits -= 1
        else:  # "g"
            _, capture, node, d, vc_index, pid = record
            unit = net.routers[node].input_units[Direction(d)]
            unit.vcs[vc_index].allocated_to = self.registry[pid]

    def _drain_link(self, link: Optional[_Link], through: int) -> None:
        if link is None or not link.staged:
            return
        staged = link.staged
        grants: List[tuple] = []
        while staged and staged[0][1] <= through:
            record = staged.popleft()
            # Grants last: a grant references the packet its same-cycle
            # head arrival materializes into the registry.
            if record[0] == "g":
                grants.append(record)
            else:
                self._apply(record)
        for record in grants:
            self._apply(record)

    def _drain_staged(self, now: int) -> None:
        # The previous stripe steps before this one within a cycle, the
        # next stripe after it — hence the asymmetric thresholds.
        self._drain_link(self.prev, now)
        self._drain_link(self.next, now - 1)

    # -- conservative coverage ---------------------------------------------

    def _coverage(self, link: Optional[_Link]) -> float:
        """Cycles of the neighbor this shard has complete knowledge of."""
        if link is None:
            return INF
        pending = link.out_min_fire
        for _, fire in link.sent_log:
            if fire < pending:
                pending = fire
        return max(link.cov_through, min(link.promise, pending) - 1)

    def _promise(self) -> float:
        """Lower bound on the capture cycle of any future record."""
        net = self.net
        horizon = net.next_event_cycle()
        promise = INF if horizon is None else float(horizon)
        if net.cycle < self.spec.cycles:
            # Still injecting: a packet injected at `cycle` reaches its
            # first router (and can cross) at `cycle + 2` at the soonest.
            promise = min(promise, net.cycle + 2)
        for link in (self.prev, self.next):
            if link is None:
                continue
            # Staged arrivals fire at capture + 2 once applied but are
            # invisible to the local event horizon until then.
            for record in link.staged:
                if record[0] == "a":
                    promise = min(promise, record[1] + 2)
                    break  # capture-ordered: the first "a" is minimal
            # A record the neighbor has not sent yet has capture beyond
            # our coverage; its effects here fire two cycles later.
            promise = min(promise, self._coverage(link) + 3)
        return promise

    def _staged_min(self, link: Optional[_Link]) -> Optional[int]:
        if link is None or not link.staged:
            return None
        return link.staged[0][1]

    # -- the advance loop ---------------------------------------------------

    def advance(self, hard_stop: Optional[int] = None) -> bool:
        """Execute (or provably skip) cycles while coverage allows.

        Returns True if the clock moved.  ``hard_stop`` pins a
        checkpoint barrier: the clock never passes it.
        """
        net = self.net
        spec = self.spec
        end_inject = spec.cycles
        stop = spec.cycles + spec.drain
        if hard_stop is not None and hard_stop < stop:
            stop = hard_stop
        progressed = False
        while True:
            t = net.cycle
            if t >= stop:
                break
            limit = min(self._coverage(self.prev),
                        self._coverage(self.next) + 1)
            if t > limit:
                break
            # Fire this cycle's due events first: a staged pop record
            # may target a replica flit whose arrival fires exactly now.
            net._run_events(t)
            self._drain_staged(t)
            if t < end_inject:
                # Injection draws the RNG every cycle; never skip here.
                self.traffic.inject()
                net.step()
                progressed = True
                continue
            horizon = net.next_event_cycle()
            if horizon is not None and horizon <= t:
                net.step()
                progressed = True
                continue
            # Idle at t: fast-forward, bounded by coverage and by the
            # cycles at which staged records fall due.
            target = stop
            if horizon is not None and horizon < target:
                target = horizon
            if limit != INF and limit + 1 < target:
                target = int(limit) + 1
            bound = self._staged_min(self.prev)
            if bound is not None and bound < target:
                target = bound
            bound = self._staged_min(self.next)
            if bound is not None and bound + 1 < target:
                target = bound + 1
            if target <= t:
                break
            if horizon is None and limit == INF \
                    and self._staged_min(self.prev) is None \
                    and self._staged_min(self.next) is None:
                # Fully quiescent and unconstrained: nothing can happen
                # here until a neighbor flushes something.
                break
            if net.time_skip:
                net._skip_to(target)
            else:
                net.step()
            progressed = True
        return progressed

    def barrier_drain(self, barrier: int) -> None:
        """Settle staged records at a checkpoint barrier.

        Called when every shard's clock sits exactly at ``barrier``:
        records captured at ``barrier - 1`` by the *next* stripe (which
        would normally apply just before executing ``barrier``) must
        land before the snapshot so the merged checkpoint equals the
        serial state at the barrier.
        """
        if self.net.cycle != barrier:
            raise ShardError(
                f"shard {self.index} at cycle {self.net.cycle}, "
                f"expected barrier {barrier}"
            )
        self._drain_link(self.prev, barrier - 1)
        self._drain_link(self.next, barrier - 1)

    # -- flush protocol ------------------------------------------------------

    def make_flush(self, side: str) -> Optional[dict]:
        """Compose the outgoing message for ``side`` ("prev"/"next").

        Returns None when the peer already has everything: no new
        records, and through/promise/ack unchanged since the last flush.
        """
        link = self.prev if side == "prev" else self.next
        if link is None:
            return None
        through = self.net.cycle - 1
        promise = self._promise()
        if (not link.out_records and through == link.last_through
                and promise == link.last_promise
                and link.in_ack == link.last_seen):
            return None
        link.out_seq += 1
        message = {
            "seq": link.out_seq,
            "through": through,
            "promise": None if promise is INF else promise,
            "seen": link.in_ack,
            "records": link.out_records,
        }
        if link.out_records:
            link.sent_log.append((link.out_seq, link.out_min_fire))
        link.out_records = []
        link.out_min_fire = INF
        link.last_through = through
        link.last_promise = promise
        link.last_seen = link.in_ack
        return message

    def receive_flush(self, side: str, message: dict) -> None:
        link = self.prev if side == "prev" else self.next
        if link is None:
            raise ShardError(f"shard {self.index} has no {side} neighbor")
        if message["seq"] != link.in_seq + 1:
            raise ShardError(
                f"out-of-order flush on shard {self.index} {side}: "
                f"got seq {message['seq']} after {link.in_seq}"
            )
        link.in_seq = message["seq"]
        seen = message["seen"]
        if seen and link.sent_log:
            link.sent_log = [(seq, fire) for seq, fire in link.sent_log
                             if seq > seen]
        if message["records"]:
            link.in_ack = message["seq"]
        link.staged.extend(message["records"])
        if message["through"] > link.cov_through:
            link.cov_through = message["through"]
        promise = message["promise"]
        link.promise = INF if promise is None else promise
