"""Hot-path engine v3: the fast paths must be *pure* optimizations.

Three families of guarantees are pinned here:

* **Dense route tables** — every flattened per-node route row must
  agree with the memoized ``next_port`` oracle for every (src, dst)
  pair, on every concrete topology (mesh, ring, both chiplet
  variants), and the bounded ``route()`` memo must stay correct past
  its eviction threshold.

* **Monomorphic router fast paths** — runs with the build-time
  specialized ``step`` bindings must be bit-identical to the generic
  layered path: the pinned golden digests hold with the fast path both
  enabled and disabled (``REPRO_NO_FASTPATH``), including a
  chaos+invariants sweep and the contested (high-load) bench cells.

* **Batched event dispatch / wake-sort skipping** — out-of-order wakes
  must dirty the sorted-queue flags and still process components in
  fixed node order, so delivery results never depend on wake order.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, FaultSchedule
from repro.invariants import InvariantSuite
from repro.noc.network import (
    build_network,
    fastpath_enabled,
    set_fastpath,
)
from repro.noc.packet import packet_pool, reset_packet_ids
from repro.noc.ring import build_ring
from repro.noc.topology import (
    MeshTopology,
    RingTopology,
    parse_topology_spec,
    topology_from_spec,
)
from repro.params import MessageClass, NocKind, NocParams
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

from tests.test_chiplet import GOLDEN_CHIPLET, _chiplet_run
from tests.test_golden_determinism import (
    GOLDEN_NETWORK,
    GOLDEN_SYSTEM,
    _digest,
    _network_digest,
    _system_digest,
)

ALL_KINDS = (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA, NocKind.IDEAL)


@pytest.fixture
def no_fastpath():
    """Run the body with the generic layered path selected."""
    set_fastpath(False)
    try:
        yield
    finally:
        set_fastpath(True)


# -- dense route tables vs. the memoized oracle -----------------------------


def _all_topologies():
    return [
        ("mesh", MeshTopology(4, 4)),
        ("ring", RingTopology(8)),
        ("chiplet", topology_from_spec(
            parse_topology_spec("chiplet:2x2x3x3"), 3, 3)),
        ("chiplet-star", topology_from_spec(
            parse_topology_spec("chiplet:2x2x3x3:star"), 3, 3)),
    ]


@pytest.mark.parametrize(
    "name,topo", _all_topologies(), ids=lambda v: v if isinstance(v, str)
    else ""
)
def test_route_rows_match_next_port_oracle(name, topo):
    """Satellite 2: the flattened tables agree with ``next_port`` for
    every (src, dst) pair, and indexing matches the lazy builder."""
    n = topo.num_nodes
    for src in range(n):
        row = topo.route_row(src)
        assert len(row) == n
        for dst in range(n):
            if dst == src:
                continue
            assert row[dst] is topo.next_port(src, dst), (
                f"{name}: dense row disagrees at ({src}, {dst})"
            )
            assert topo.route_port(src, dst) is row[dst]


def test_route_memo_stays_bounded_and_correct():
    """The per-instance ``route()`` memo evicts wholesale at its cap
    instead of growing per (src, dst) pair forever."""
    from repro.noc.topology import _ROUTE_CACHE_CAP

    topo = MeshTopology(8, 8)
    pairs = [(s, d) for s in range(64) for d in range(64) if s != d]
    assert len(pairs) < _ROUTE_CACHE_CAP  # one mesh fits entirely
    for src, dst in pairs:
        topo.route(src, dst)
    assert len(topo._route_cache) <= _ROUTE_CACHE_CAP
    expected = topo.route(5, 58)
    # Stuff the memo to its cap with foreign keys: the next miss must
    # evict wholesale instead of growing without bound.
    topo._route_cache = {
        ("stuffed", i): () for i in range(_ROUTE_CACHE_CAP)
    }
    route = topo.route(5, 58)
    assert route == expected
    assert len(topo._route_cache) < _ROUTE_CACHE_CAP
    assert route[0][0] == 5 and route[-1][0] == 58


# -- fast path vs. generic path: pinned golden digests ----------------------


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_generic_path_matches_golden_network_digest(kind, no_fastpath):
    """Satellite 3: the pinned network digests hold with the
    specialized ``step`` bindings disabled (``REPRO_NO_FASTPATH``)."""
    assert _network_digest(kind) == GOLDEN_NETWORK[kind]


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_generic_path_matches_golden_system_digest(kind, no_fastpath):
    assert _system_digest(kind) == GOLDEN_SYSTEM[kind]


@pytest.mark.parametrize("spec", sorted(GOLDEN_CHIPLET), ids=str)
def test_generic_path_matches_golden_chiplet_digest(spec, no_fastpath):
    net, traffic = _chiplet_run(spec)
    traffic.run(800)
    net.drain(max_cycles=20000)
    assert _digest(net.stats.summary()) == GOLDEN_CHIPLET[spec]


def _chaos_digest(kind: NocKind):
    """Fault sweep with the invariant suite attached (mirrors the
    time-skip chaos parity scenario)."""
    reset_packet_ids()
    net = build_network(NocParams(kind=kind, mesh_width=8, mesh_height=8))
    schedule = FaultSchedule.random(11, net.topology.num_nodes, 300)
    injector = FaultInjector(schedule)
    suite = InvariantSuite(raise_on_violation=False)
    net.attach(faults=injector, invariants=suite)
    SyntheticTraffic(
        net, TrafficPattern.UNIFORM_RANDOM, 0.03, seed=3
    ).run(300)
    net.run(1500)
    return (
        _digest(net.stats.summary()),
        dict(injector.counts),
        suite.audits_run,
        [str(v) for v in suite.violations],
    )


@pytest.mark.parametrize(
    "kind", (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA),
    ids=lambda k: k.value,
)
def test_chaos_sweep_is_fastpath_neutral(kind):
    """Chaos runs take the generic step anyway (observer fallback), so
    enabling the fast path must not perturb them at all."""
    with_fast = _chaos_digest(kind)
    set_fastpath(False)
    try:
        without = _chaos_digest(kind)
    finally:
        set_fastpath(True)
    assert with_fast == without


@pytest.mark.parametrize(
    "key,kind,topology",
    [(key, kind, topology)
     for key, kind, topology in
     __import__("repro.bench.harness", fromlist=["_CONTESTED_CELLS"])
     ._CONTESTED_CELLS],
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_contested_cells_are_fastpath_neutral(key, kind, topology):
    """The profile-guided contested cells — the loads the fast paths
    were built for — digest identically with the fast path on and off."""
    from repro.bench.harness import _time_contested_cell

    on = _time_contested_cell(kind, topology)
    set_fastpath(False)
    try:
        off = _time_contested_cell(kind, topology)
    finally:
        set_fastpath(True)
    assert on["digest"] == off["digest"]
    assert on["cycles"] == off["cycles"]


def test_fast_step_bindings_elected_only_when_safe():
    """Plain mesh gets the full inline step, SMART its fused pipeline,
    PRA its own flattened pipeline, and ring/chiplet (escape-layer
    routing) keep the generic layered path."""
    mesh = build_network(NocParams(kind=NocKind.MESH, mesh_width=4,
                                   mesh_height=4))
    assert all("_step_fast" in repr(r.step) for r in mesh.routers)
    smart = build_network(NocParams(kind=NocKind.SMART, mesh_width=4,
                                    mesh_height=4))
    assert all("_step_fast_smart" in repr(r.step) for r in smart.routers)
    pra = build_network(NocParams(kind=NocKind.MESH_PRA, mesh_width=4,
                                  mesh_height=4))
    assert all("_step_fast_pra" in repr(r.step) for r in pra.routers)
    ring = build_ring(8)
    assert all("step" not in vars(r) for r in ring.routers)


def test_set_fastpath_controls_new_networks(no_fastpath):
    assert not fastpath_enabled()
    net = build_network(NocParams(kind=NocKind.MESH, mesh_width=4,
                                  mesh_height=4))
    assert net.fastpath is False
    # No instance binding: every router keeps the generic class step.
    assert all("step" not in vars(r) for r in net.routers)
    set_fastpath(True)
    assert build_network(
        NocParams(kind=NocKind.MESH, mesh_width=4, mesh_height=4)
    ).fastpath is True


def test_cli_no_fastpath_flag_is_digest_neutral(capsys):
    from repro.cli import main

    def run(extra):
        argv = ["simulate", "web", "--noc", "mesh", "--warmup", "50",
                "--measure", "200", "--seed", "3", "--digest"] + extra
        assert main(argv) == 0
        out = capsys.readouterr().out
        return [line for line in out.splitlines()
                if line.startswith("digest:")][0]

    try:
        fast = run([])
        slow = run(["--no-fastpath"])
    finally:
        set_fastpath(True)
    assert fast == slow


# -- batched dispatch: wake order must never matter -------------------------


def _burst(net, order):
    """Inject one single-flit packet at each node of ``order`` (in that
    order) targeting the opposite corner, then run to completion."""
    reset_packet_ids()
    deliveries = {}
    net.on_delivery(
        lambda packet, now: deliveries.setdefault(
            (packet.src, packet.dst), now
        )
    )
    n = net.topology.num_nodes
    for node in order:
        net.send(packet_pool.acquire(node, n - 1 - node,
                                     MessageClass.REQUEST,
                                     created=net.cycle))
    net.drain(max_cycles=20000)
    return deliveries


def test_out_of_order_wakes_are_sorted_and_deterministic():
    """Satellite 6: wakes arriving in descending node order dirty the
    sorted flag, and the results match the ascending-order run."""
    params = NocParams(kind=NocKind.MESH, mesh_width=4, mesh_height=4)
    net = build_network(params)
    order = list(range(net.topology.num_nodes))
    forward = _burst(net, order)

    net = build_network(params)
    assert net._ni_sorted
    backward = _burst(net, list(reversed(order)))
    assert forward == backward


def test_wake_flags_track_out_of_order_appends():
    net = build_network(NocParams(kind=NocKind.MESH, mesh_width=4,
                                  mesh_height=4))
    net.wake_ni(5)
    assert net._ni_sorted
    net.wake_ni(2)  # out of order: flag must go dirty
    assert not net._ni_sorted
    net.wake_router(1)
    net.wake_router(4)
    assert net._router_sorted  # ascending appends stay clean
    net.step()
    # The step loop consumed both queues and restored the invariant.
    assert net._ni_sorted
