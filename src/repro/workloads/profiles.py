"""Per-workload characterization of the six CloudSuite applications.

The parameters encode what the paper's argument actually depends on:

* ``i_mpki`` — L1-I misses per kilo-instruction.  Server instruction
  footprints dwarf the L1-I ([1], [2]), so instruction misses dominate
  NoC traffic and *serialize* the core (fetch stalls hide nothing).
* ``d_mpki`` — L1-D misses per kilo-instruction reaching the LLC.
* ``llc_hit_ratio`` — the modestly sized LLC is engineered to capture
  the instruction footprint and shared OS data ([18]), so hit ratios
  are high; what misses goes to memory.
* ``base_cpi`` — cycles per instruction with a perfect memory system:
  the ILP proxy for the 3-way Cortex-A15-like core.
* ``mlp`` — sustainable overlapping data misses (bounded by the
  16-entry LSQ and the workloads' pointer-chasing behavior).
* ``write_fraction`` / ``coherence_fraction`` — writes and the
  (negligible) coherence traffic they induce.

Values are calibrated from the CloudSuite characterization the paper
cites ([2]: Ferdman et al., ASPLOS'12; [3]; [7]) — e.g. Media Streaming
has the lowest ILP and MLP of the suite, which the paper names as the
reason it gains the most from PRA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical model of one server workload on one core."""

    name: str
    #: L1-I misses per kilo-instruction (LLC requests, serializing).
    i_mpki: float
    #: L1-D misses per kilo-instruction (LLC requests, overlappable).
    d_mpki: float
    #: Probability an LLC lookup hits.
    llc_hit_ratio: float
    #: Cycles per instruction with a perfect memory hierarchy.
    base_cpi: float
    #: Maximum overlapping outstanding data misses.
    mlp: float
    #: Fraction of data accesses that are writes.
    write_fraction: float = 0.2
    #: Latency-sensitive (vs. batch), per the paper's Table of workloads.
    latency_sensitive: bool = True

    @property
    def total_mpki(self) -> float:
        return self.i_mpki + self.d_mpki

    @property
    def instruction_miss_fraction(self) -> float:
        return self.i_mpki / self.total_mpki

    @property
    def mean_instructions_between_misses(self) -> float:
        return 1000.0 / self.total_mpki


#: The six CloudSuite workloads of the paper's evaluation (Section IV-C).
CLOUDSUITE: Dict[str, WorkloadProfile] = {
    p.name: p
    for p in (
        WorkloadProfile(
            name="Data Serving",
            i_mpki=22.0,
            d_mpki=11.0,
            llc_hit_ratio=0.88,
            base_cpi=0.62,
            mlp=2.0,
        ),
        WorkloadProfile(
            name="MapReduce",
            i_mpki=16.0,
            d_mpki=14.0,
            llc_hit_ratio=0.90,
            base_cpi=0.55,
            mlp=2.6,
            latency_sensitive=False,
        ),
        WorkloadProfile(
            name="Media Streaming",
            i_mpki=24.0,
            d_mpki=8.0,
            llc_hit_ratio=0.92,
            base_cpi=0.85,
            mlp=1.2,
        ),
        WorkloadProfile(
            name="SAT Solver",
            i_mpki=10.0,
            d_mpki=22.0,
            llc_hit_ratio=0.86,
            base_cpi=0.50,
            mlp=3.2,
            latency_sensitive=False,
        ),
        WorkloadProfile(
            name="Web Frontend",
            i_mpki=28.0,
            d_mpki=10.0,
            llc_hit_ratio=0.90,
            base_cpi=0.68,
            mlp=1.6,
        ),
        WorkloadProfile(
            name="Web Search",
            i_mpki=21.0,
            d_mpki=9.0,
            llc_hit_ratio=0.91,
            base_cpi=0.70,
            mlp=1.4,
        ),
    )
}

#: Paper ordering (alphabetical, as in Figures 6 and 9).
WORKLOAD_NAMES: Tuple[str, ...] = tuple(CLOUDSUITE)

#: CLI-friendly short names (lowercase, no spaces).
WORKLOAD_ALIASES: Dict[str, str] = {
    "data": "Data Serving",
    "serving": "Data Serving",
    "mapreduce": "MapReduce",
    "media": "Media Streaming",
    "streaming": "Media Streaming",
    "sat": "SAT Solver",
    "frontend": "Web Frontend",
    "web": "Web Search",
    "search": "Web Search",
}


def resolve_workload(name: str) -> str:
    """Map a workload name or short alias to its canonical name.

    Accepts the exact name ("Web Search"), a case-insensitive variant
    ("web search"), or a registered short alias ("web")."""
    if name in CLOUDSUITE:
        return name
    lowered = name.lower()
    for canonical in CLOUDSUITE:
        if canonical.lower() == lowered:
            return canonical
    alias = WORKLOAD_ALIASES.get(lowered)
    if alias is not None:
        return alias
    raise KeyError(
        f"unknown workload {name!r}; choose from {WORKLOAD_NAMES} "
        f"or aliases {sorted(WORKLOAD_ALIASES)}"
    )


def get_profile(name: str) -> WorkloadProfile:
    return CLOUDSUITE[resolve_workload(name)]
