"""Virtual channels and input units.

Each router port has one VC per message class (request, coherence,
response), five flits deep — the minimum that covers the round-trip
credit time (Table I).  A VC is *allocated* to a packet from the moment
an upstream router (or NI) wins VC allocation for the packet's head flit
until the packet's tail flit leaves the buffer; flits of two packets
never interleave within a VC.

The Mesh+PRA input unit adds two extra entries (paper Figure 4): a
*bypass* path that feeds the crossbar combinationally and a *latch* used
as one-cycle storage in the middle of a pre-allocated multi-hop path.
Those live in :mod:`repro.core.pra_router`; here we provide the plain
buffered VC.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.noc.flit import Flit
from repro.noc.packet import Packet


class VirtualChannel:
    """A FIFO flit buffer with single-packet occupancy."""

    __slots__ = ("index", "capacity", "flits", "allocated_to", "next_claim",
                 "unit", "rr_key", "rr_id")

    def __init__(self, index: int, capacity: int):
        if capacity < 1:
            raise ValueError("VC capacity must be positive")
        self.index = index
        self.capacity = capacity
        self.flits: Deque[Flit] = deque()
        #: Packet that currently owns this VC (set at VC allocation time
        #: by the upstream arbiter, cleared when the tail flit departs).
        self.allocated_to: Optional[Packet] = None
        #: Chained proactive ownership: takes effect the moment the
        #: current owner's tail departs (used by PRA at a source NI whose
        #: injection schedule makes the hand-over deterministic).
        self.next_claim: Optional[Packet] = None
        #: Owning InputUnit (backref set by the unit).
        self.unit: Optional["InputUnit"] = None
        #: Arbitration key ``(input direction, vc index)`` (set by the
        #: unit); round-robin order is defined over it.
        self.rr_key: tuple = ()
        #: Dense router-wide rank of ``rr_key`` (assigned by the router);
        #: lets round-robin picks use modular arithmetic instead of a
        #: sort.
        self.rr_id: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.flits

    @property
    def occupancy(self) -> int:
        return len(self.flits)

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.flits)

    def can_accept_packet(self, packet: Packet) -> bool:
        """True when a new packet may be allocated this VC."""
        return self.allocated_to is None and self.is_empty

    def push(self, flit: Flit) -> None:
        if len(self.flits) >= self.capacity:
            raise OverflowError(
                f"VC{self.index} overflow: credit discipline violated"
            )
        self.flits.append(flit)

    def front(self) -> Optional[Flit]:
        return self.flits[0] if self.flits else None

    def pop(self) -> Flit:
        """Remove the front flit; releases the VC on tail departure (a
        chained proactive claim, if any, takes ownership immediately)."""
        flit = self.flits.popleft()
        if flit.is_tail:
            self.allocated_to = self.next_claim
            self.next_claim = None
        return flit

    def state_dict(self, ctx) -> dict:
        return {
            "flits": [ctx.flit_ref(flit) for flit in self.flits],
            "allocated_to": ctx.packet_ref(self.allocated_to),
            "next_claim": ctx.packet_ref(self.next_claim),
        }

    def load_state(self, state: dict, ctx) -> None:
        self.flits = deque(ctx.flit(ref) for ref in state["flits"])
        self.allocated_to = ctx.packet(state["allocated_to"])
        self.next_claim = ctx.packet(state["next_claim"])

    def __repr__(self) -> str:
        owner = self.allocated_to.pid if self.allocated_to else None
        return f"VC(idx={self.index}, occ={len(self.flits)}, owner={owner})"


class InputUnit:
    """The per-port set of input VCs of a router."""

    __slots__ = ("direction", "vcs", "feeder_port")

    def __init__(self, direction, num_vcs: int, depth: int):
        self.direction = direction
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(i, depth) for i in range(num_vcs)
        ]
        for vc in self.vcs:
            vc.unit = self
            vc.rr_key = (int(direction), vc.index)
        #: Upstream OutputPort feeding this unit (set by Network wiring);
        #: credits return to it when flits are dequeued here.
        self.feeder_port = None

    def receive(self, flit: Flit, vc_index: int) -> None:
        self.vcs[vc_index].push(flit)

    @property
    def buffered_flits(self) -> int:
        return sum(len(vc.flits) for vc in self.vcs)
