"""The baseline mesh organization (Table I, "Mesh").

An 8x8 grid of 1-stage speculative routers, 3 VCs per port (request,
coherence, response), 5 flits per VC, 2 cycles per hop at zero load.

Wiring is topology-driven: routers expose whatever port set the
topology graph declares for their node, links connect through
``topology.entry_port`` (the far-side input port), and each link takes
its hop latency from ``topology.link_latency`` — so the same wiring
code builds plain meshes, rings, and chiplet hierarchies.
"""

from __future__ import annotations

from repro.noc.interface import NetworkInterface
from repro.noc.network import Network
from repro.noc.router import MeshRouter
from repro.noc.topology import Direction
from repro.params import NocParams


class MeshNetwork(Network):
    """Baseline mesh: wiring of routers and network interfaces."""

    router_class = MeshRouter
    interface_class = NetworkInterface

    def __init__(self, params: NocParams):
        super().__init__(params)
        self.routers = [
            self.router_class(node, self) for node in range(self.topology.num_nodes)
        ]
        self._wire_links()
        self.interfaces = [
            self.interface_class(node, self, self.routers[node])
            for node in range(self.topology.num_nodes)
        ]
        self._wire_ejection()
        # Wiring is complete: let each router elect its specialized
        # step binding (no-op under REPRO_NO_FASTPATH).
        for router in self.routers:
            router.finalize_build()

    def _wire_links(self) -> None:
        topo = self.topology
        for router in self.routers:
            for direction, neighbor in topo.neighbors(router.node):
                port = router.output_ports[direction]
                port.connect(self.routers[neighbor],
                             topo.entry_port(router.node, direction))
                # Only impose topology latencies that deviate from the
                # single-hop default: router classes own their pipeline
                # depth (SMART sets 3 on every port at construction).
                latency = topo.link_latency(router.node, direction)
                if latency != 2:
                    port.link_hop_latency = latency

    def _wire_ejection(self) -> None:
        for router, ni in zip(self.routers, self.interfaces):
            router.output_ports[Direction.LOCAL].connect_sink(ni)
