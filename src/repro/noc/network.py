"""Network container: routers, interfaces, the clock, and the event bus.

All cross-component effects (flit arrivals, credit returns, ejections,
deferred calls) travel through time-stamped events executed at the start
of their cycle, so the fixed router processing order can never leak
same-cycle information between routers.

The cycle loop is *activity-based*: instead of stepping every router and
NI every cycle, the network keeps wake sets of components that might
have work.  A component is woken when state lands on it (a flit arrives,
a packet is enqueued, a reservation is placed) and re-arms itself while
it still holds work; everything else is skipped.  Skipping is safe
because an idle component's ``step`` is a no-op by construction — the
wake sets only elide calls that would have returned immediately — so
simulation results are bit-identical to exhaustive stepping (enforced
by ``tests/test_golden_determinism.py``).

On top of the wake sets sits the *event horizon*: when both wake queues
are empty, nothing can happen before the earliest scheduled event, so
:meth:`Network.run` and :meth:`Network.drain` fast-forward the clock to
``next_event_cycle()`` instead of stepping through provably idle
cycles.  Skipped spans replay their invariant-checker boundaries
exactly (:meth:`repro.invariants.checkers.InvariantSuite.on_skip`), so
results stay bit-identical with skipping on or off.  Disable with
``set_time_skip(False)``, the ``--no-time-skip`` CLI flag, or the
``REPRO_NO_TIME_SKIP`` environment variable.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.faults.injector import NULL_FAULTS
from repro.noc.stats import NetworkStats
from repro.noc.packet import Packet, packet_pool
from repro.noc.topology import as_port, build_topology
from repro.params import NocKind, NocParams
from repro.trace.tracer import NULL_TRACER

#: Signature of the packet delivery callback: (packet, cycle).
DeliveryHandler = Callable[[Packet, int], None]

# Event kind tags (tuples are cheaper than closures on the hot path).
# Arrivals and credits normally travel in dedicated per-kind queues
# (see ``_bucket``); the tags survive for the *ordered* queue, whose
# events must keep their exact insertion order.
_ARRIVAL = 0
_EJECT = 1
_CREDIT = 2
_CALL = 3

#: Sentinel for :meth:`Network.attach` keywords that were not passed
#: (``None`` already means "detach", so absence needs its own marker).
_KEEP = object()

#: Process-wide default for event-horizon time skipping.  Networks
#: capture it at construction (``net.time_skip``), so flip it before
#: building a network (the CLI and the worker-pool initializer do).
_time_skip_default = not os.environ.get("REPRO_NO_TIME_SKIP")


def set_time_skip(enabled: bool) -> None:
    """Set the process-wide time-skipping default for new networks."""
    global _time_skip_default
    _time_skip_default = bool(enabled)


def time_skip_enabled() -> bool:
    """The current process-wide time-skipping default."""
    return _time_skip_default


#: Process-wide default for build-time router specialization (the
#: monomorphic ``step`` fast paths).  Captured at network construction
#: (``net.fastpath``) because the election happens while the network is
#: being wired.  ``REPRO_NO_FASTPATH=1`` forces every router onto the
#: generic reference path; golden digests must be bit-identical either
#: way (enforced by ``tests/test_fastpath.py``).
_fastpath_default = not os.environ.get("REPRO_NO_FASTPATH")


def set_fastpath(enabled: bool) -> None:
    """Set the process-wide fast-path default for new networks."""
    global _fastpath_default
    _fastpath_default = bool(enabled)


def fastpath_enabled() -> bool:
    """The current process-wide fast-path default."""
    return _fastpath_default


class Network:
    """Base class for all four network organizations."""

    def __init__(self, params: NocParams):
        self.params = params
        self.topology = build_topology(params)
        self.cycle = 0
        self.stats = NetworkStats()
        self.routers: List = []
        self.interfaces: List = []
        num_nodes = self.topology.num_nodes
        #: Wake sets: a flag per node plus the queue of awake node ids.
        #: The flag makes ``wake_*`` idempotent; the queue is sorted at
        #: the top of each cycle so awake components still process in
        #: fixed node order.
        self._router_awake: List[bool] = [False] * num_nodes
        self._router_queue: List[int] = []
        self._ni_awake: List[bool] = [False] * num_nodes
        self._ni_queue: List[int] = []
        #: Sorted-so-far flags for the wake queues: wakes usually arrive
        #: in ascending node order (events drain in insertion order and
        #: the step loops walk nodes ascending), so the per-cycle sort
        #: is skipped unless an out-of-order wake actually landed.
        self._router_sorted = True
        self._ni_sorted = True
        #: Event buckets by cycle.  Each bucket is ``(arrivals, credits,
        #: ordered)`` — per-kind queues drained in bulk in that order.
        #: Arrivals commute with every other same-cycle event (a flit in
        #: flight lands in a VC whose allocation was decided at grant
        #: time) and credit returns are pure counter increments, so only
        #: the *ordered* queue (ejections and deferred calls, which can
        #: inject packets and read shared state) preserves exact
        #: insertion order.  Mesh+PRA routes credits through the ordered
        #: queue instead — its control network reads credit counters
        #: from deferred calls (see ``PraNetwork.schedule_credit``).
        self._events: Dict[int, tuple] = {}
        #: Drained buckets are recycled here; safe because ``_push``
        #: forbids scheduling into the bucket being drained.
        self._bucket_pool: List[tuple] = []
        #: Lazily resolved arrival-delivery mode for ``_run_events``:
        #: 1 = every router takes the stock flit-reception path
        #: (``BaseRouter.receive_flit``), inline it; 2 = every router
        #: is latch-capable (Mesh+PRA), inline with the latch-sentinel
        #: dispatch; 0 = mixed/custom, virtual ``receive_flit`` calls.
        self._plain_arrivals: Optional[int] = None
        self._delivery_handler: Optional[DeliveryHandler] = None
        self._head_handler: Optional[DeliveryHandler] = None
        #: Event tracer; the null object keeps the hot path to a single
        #: attribute check (see :mod:`repro.trace`).
        self.tracer = NULL_TRACER
        #: Fault injector (chaos harness); same null-object discipline
        #: as the tracer (see :mod:`repro.faults`).
        self.faults = NULL_FAULTS
        #: Attached :class:`repro.invariants.InvariantSuite`, or None.
        self.invariants = None
        #: Event-horizon time skipping (see module docstring); captured
        #: from the process default so a driver can opt out per network.
        self.time_skip = _time_skip_default
        #: Build-time router specialization (monomorphic fast paths);
        #: captured at construction because routers elect their ``step``
        #: binding while the network is wired (``finalize_build``).
        self.fastpath = _fastpath_default
        #: Idle cycles fast-forwarded instead of stepped.
        self.cycles_skipped = 0
        #: Boundary-port observer installed by the sharded engine
        #: (:mod:`repro.shard`).  When set, routers report grants whose
        #: downstream router belongs to another shard through
        #: ``boundary.note_grant(port, packet, now)``.  None in every
        #: serial run, keeping the hot path to one attribute check.
        self.boundary = None
        #: Shard ownership view (:class:`repro.shard.domain.ShardDomain`)
        #: consulted by the invariant suite to restrict audits to owned
        #: components.  None in every serial run.
        self.shard_view = None

    # -- observers (tracer, fault injector, invariant suite) ---------------

    def attach(self, *, tracer=_KEEP, faults=_KEEP, invariants=_KEEP) -> None:
        """Attach or detach observers through one code path.

        Each keyword left at its default keeps the current observer;
        passing ``None`` explicitly detaches (restoring the null object
        that keeps the hot path to a single attribute check).  This is
        the single attachment point — checkpoint restore, the chaos
        harness, and the tracing CLI all go through it.
        """
        if tracer is not _KEEP:
            self.tracer = tracer if tracer is not None else NULL_TRACER
        if faults is not _KEEP:
            self.faults = faults if faults is not None else NULL_FAULTS
        if invariants is not _KEEP:
            self.invariants = invariants

    # -- client API -------------------------------------------------------

    def on_delivery(self, handler: DeliveryHandler) -> None:
        """Register the callback invoked when a packet is delivered
        (tail flit at the destination NI)."""
        self._delivery_handler = handler

    def on_head_arrival(self, handler: DeliveryHandler) -> None:
        """Register the callback invoked when a packet's *head* flit
        reaches the destination NI.  The tile layer uses this for
        critical-word-first completion: the core restarts on the first
        returning word while the rest of the block streams in."""
        self._head_handler = handler

    def send(self, packet: Packet) -> None:
        """Hand a packet to its source network interface."""
        self.interfaces[packet.src].enqueue(packet, self.cycle)

    def announce(self, packet: Packet, ready_in: int) -> None:
        """Advance notice that ``packet`` will be sent in ``ready_in``
        cycles (the LLC-hit window).  Only Mesh+PRA uses this; every
        other organization ignores it."""

    # -- wake registration (component API) --------------------------------

    def wake_ni(self, node: int) -> None:
        """Schedule the NI at ``node`` for processing this/next cycle."""
        if not self._ni_awake[node]:
            self._ni_awake[node] = True
            queue = self._ni_queue
            if queue and node < queue[-1]:
                self._ni_sorted = False
            queue.append(node)

    def wake_router(self, node: int) -> None:
        """Schedule the router at ``node`` for processing this/next cycle."""
        if not self._router_awake[node]:
            self._router_awake[node] = True
            queue = self._router_queue
            if queue and node < queue[-1]:
                self._router_sorted = False
            queue.append(node)

    def step(self) -> None:
        """Advance the network by one clock cycle.

        Only awake components are stepped; each re-arms itself for the
        next cycle while it still has buffered work (``has_work``).
        Wakes raised by the events that just ran land in this cycle's
        batch; wakes raised *during* the loops always target future
        cycles (all cross-component effects are future-scheduled).
        """
        now = self.cycle
        self._run_events(now)
        batch = self._ni_queue
        if batch:
            self._ni_queue = []
            if not self._ni_sorted:
                batch.sort()
                self._ni_sorted = True
            awake = self._ni_awake
            interfaces = self.interfaces
            for node in batch:
                awake[node] = False
            for node in batch:
                ni = interfaces[node]
                ni.step(now)
                if not awake[node] and ni.has_work():
                    awake[node] = True
                    queue = self._ni_queue
                    if queue and node < queue[-1]:
                        self._ni_sorted = False
                    queue.append(node)
        batch = self._router_queue
        if batch:
            self._router_queue = []
            if not self._router_sorted:
                batch.sort()
                self._router_sorted = True
            awake = self._router_awake
            routers = self.routers
            for node in batch:
                awake[node] = False
            for node in batch:
                router = routers[node]
                router.step(now)
                if not awake[node] and router.has_work():
                    awake[node] = True
                    queue = self._router_queue
                    if queue and node < queue[-1]:
                        self._router_sorted = False
                    queue.append(node)
        self._post_router_step(now)
        if self.invariants is not None:
            self.invariants.on_cycle(self, now)
        self.cycle = now + 1

    def _run_events(self, now: int) -> None:
        """Drain this cycle's event bucket, one kind at a time.

        Arrivals first, then credit returns, then the ordered queue
        (ejections and deferred calls, in exact insertion order) — see
        the ``_events`` comment for why this order is observationally
        identical to interleaved dispatch.  The emptied bucket is
        recycled through ``_bucket_pool``; that is safe because
        ``_push`` rejects scheduling into the cycle being drained.
        """
        bucket = self._events.pop(now, None)
        if bucket is None:
            return
        arrivals, credits, ordered = bucket
        if arrivals:
            if self.boundary is not None:
                # Sharded runs wrap ``wake_router`` per instance to
                # filter non-owned nodes; take the dispatching path so
                # the wrapper stays in the loop.
                mode = 0
            else:
                mode = self._plain_arrivals
                if mode is None:
                    routers = self.routers
                    if not routers:
                        mode = 0
                    elif all(router._plain_receive
                             and router.network is self
                             for router in routers):
                        mode = 1  # stock reception everywhere
                    elif all(router._latch_index is not None
                             and router.network is self
                             for router in routers):
                        mode = 2  # PRA: VC push or latch append
                    else:
                        mode = 0  # mixed/custom: virtual dispatch
                    self._plain_arrivals = mode
            if mode == 1:
                # Inlined ``BaseRouter.receive_flit`` (+ wake): the
                # delivery loop is the single hottest event path.
                awake = self._router_awake
                queue = self._router_queue
                for router, direction, vc_index, flit in arrivals:
                    vc = router.input_units[direction].vcs[vc_index]
                    if len(vc.flits) >= vc.capacity:
                        raise OverflowError(
                            f"VC{vc_index} overflow: credit discipline "
                            "violated"
                        )
                    vc.flits.append(flit)
                    router.active_flits += 1
                    node = router.node
                    if not awake[node]:
                        awake[node] = True
                        if queue and node < queue[-1]:
                            self._router_sorted = False
                        queue.append(node)
            elif mode == 2:
                # Inlined ``PraRouter.receive_flit`` (+ wake): same
                # loop with the latch-sentinel dispatch kept.
                awake = self._router_awake
                queue = self._router_queue
                for router, direction, vc_index, flit in arrivals:
                    if vc_index == router._latch_index:
                        router._latches[direction].append(flit)
                    else:
                        vc = router.input_units[direction].vcs[vc_index]
                        if len(vc.flits) >= vc.capacity:
                            raise OverflowError(
                                f"VC{vc_index} overflow: credit discipline "
                                "violated"
                            )
                        vc.flits.append(flit)
                    router.active_flits += 1
                    node = router.node
                    if not awake[node]:
                        awake[node] = True
                        if queue and node < queue[-1]:
                            self._router_sorted = False
                        queue.append(node)
            else:
                for router, direction, vc_index, flit in arrivals:
                    router.receive_flit(direction, vc_index, flit)
        for port, vc_index in credits:
            port.credits[vc_index] += 1
        for event in ordered:
            kind = event[0]
            if kind == _EJECT:
                event[1].eject_flit(event[2], now)
            elif kind == _CREDIT:
                # ``OutputPort.return_credit`` inlined (its single
                # definition is a bare increment; ordering relative to
                # ejections and deferred calls is what matters here).
                event[1].credits[event[2]] += 1
            else:
                event[1](*event[2])
        arrivals.clear()
        credits.clear()
        ordered.clear()
        self._bucket_pool.append(bucket)

    # -- the event horizon -------------------------------------------------

    def next_event_cycle(self) -> Optional[int]:
        """Earliest cycle at which any work can happen.

        Returns ``self.cycle`` while a component is awake (something may
        act this cycle), the earliest scheduled event bucket otherwise,
        or ``None`` when the network is fully quiescent.  A cycle
        strictly between ``self.cycle`` and this horizon is provably a
        no-op: no events fire, no component steps.
        """
        if self._ni_queue or self._router_queue:
            return self.cycle
        events = self._events
        if not events:
            return None
        return min(events)

    def _skip_to(self, target: int) -> None:
        """Fast-forward the clock across a span the caller proved idle
        (``next_event_cycle()`` past ``target`` or absent).

        The invariant suite replays its watchdog/audit boundaries over
        the span first, so ``audits_run``, progress bookkeeping, and any
        violations land exactly as if every cycle had been stepped.
        """
        start = self.cycle
        if self.invariants is not None:
            try:
                self.invariants.on_skip(self, start, target)
            except RuntimeError as exc:
                # A violation fired mid-span: land the clock where a
                # stepped run would have raised it.
                cycle = getattr(exc, "cycle", None)
                if cycle is not None and start <= cycle < target:
                    self.cycles_skipped += cycle - start
                    self.cycle = cycle
                raise
        self.cycles_skipped += target - start
        self.cycle = target
        self._post_skip(start, target)

    def _post_skip(self, start: int, end: int) -> None:
        """Subclass hook after a skip over ``[start, end)``: replicate
        whatever per-cycle housekeeping a stepped run would have done
        (the control network purges its media-claim buckets here)."""

    def run(self, cycles: int) -> None:
        end = self.cycle + cycles
        step = self.step
        if not self.time_skip:
            for _ in range(cycles):
                step()
            return
        while self.cycle < end:
            horizon = self.next_event_cycle()
            if horizon is None or horizon > end:
                horizon = end
            if horizon > self.cycle:
                self._skip_to(horizon)
            else:
                step()

    def drain(self, max_cycles: int = 1_000_000, check_every: int = 64) -> None:
        """Run until every injected packet has been delivered.

        With time skipping on, idle spans fast-forward to the next
        event, so the drain finishes at exactly the quiescent cycle and
        a drain that cannot finish hits its deadline without spinning.
        Without it, the deadline comparison is only evaluated every
        ``check_every`` cycles; the in-flight count is still checked
        after every step so the network stops on the delivery cycle.
        """
        deadline = self.cycle + max_cycles
        stats = self.stats
        step = self.step
        while stats.in_flight > 0:
            if self.cycle >= deadline:
                raise RuntimeError(
                    f"network failed to drain: {stats.in_flight} "
                    f"packets in flight after {max_cycles} cycles"
                    f"{self._drain_hint()}"
                )
            if self.time_skip:
                horizon = self.next_event_cycle()
                if horizon is None:
                    # In flight with nothing scheduled and nobody awake:
                    # deadlocked.  Burn the remaining budget in one jump
                    # so the watchdog (if attached) and the deadline
                    # fire exactly as a stepped run would.
                    self._skip_to(deadline)
                    continue
                if horizon > self.cycle:
                    self._skip_to(min(horizon, deadline))
                    continue
                step()
            else:
                for _ in range(min(check_every, deadline - self.cycle)):
                    step()
                    if stats.in_flight == 0:
                        break

    def _drain_hint(self) -> str:
        """Wait-graph summary appended to the drain-failure message."""
        try:
            # Lazy import: checkers imports event tags from this module.
            from repro.invariants.checkers import wait_graph

            graph = wait_graph(self, self.cycle)
        except Exception:  # pragma: no cover - diagnostics must not mask
            return ""
        blocked = graph.get("blocked", [])
        cycles = graph.get("cycles", [])
        if not blocked:
            return ""
        parts = [f"{len(blocked)} blocked packets"]
        if cycles:
            parts.append(f"{len(cycles)} wait cycles: {cycles[:4]!r}")
        parts.append(f"head of wait graph: {blocked[:6]!r}")
        return " (" + ", ".join(parts) + ")"

    # -- measurement -------------------------------------------------------

    def link_utilization(self) -> float:
        """Average flits per link per cycle over the run so far
        (router-to-router links only; 0.0 before any cycle runs)."""
        if self.cycle == 0 or not self.routers:
            return 0.0
        flits = 0
        links = 0
        for router in self.routers:
            for port in router.cardinal_ports:
                flits += port.flits_sent
                links += 1
        if links == 0:
            return 0.0
        return flits / (links * self.cycle)

    # -- event scheduling (component API) ---------------------------------

    def _bucket(self, time: int) -> tuple:
        """The ``(arrivals, credits, ordered)`` bucket for ``time``,
        created (or pulled off the free list) on first use."""
        if time <= self.cycle:
            raise ValueError("events must be scheduled in the future")
        events = self._events
        bucket = events.get(time)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else ([], [], [])
            events[time] = bucket
        return bucket

    # The three hot schedulers flatten ``_bucket`` inline: they run once
    # per flit hop, and the extra call dominated their cost.

    def schedule_arrival(self, time, router, direction, vc_index, flit) -> None:
        if time <= self.cycle:
            raise ValueError("events must be scheduled in the future")
        events = self._events
        bucket = events.get(time)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else ([], [], [])
            events[time] = bucket
        bucket[0].append((router, direction, vc_index, flit))

    def schedule_eject(self, time, ni, flit) -> None:
        if time <= self.cycle:
            raise ValueError("events must be scheduled in the future")
        events = self._events
        bucket = events.get(time)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else ([], [], [])
            events[time] = bucket
        bucket[2].append((_EJECT, ni, flit))

    def schedule_credit(self, time, port, vc_index) -> None:
        if time <= self.cycle:
            raise ValueError("events must be scheduled in the future")
        events = self._events
        bucket = events.get(time)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else ([], [], [])
            events[time] = bucket
        bucket[1].append((port, vc_index))

    def schedule_call(self, time, fn, *args) -> None:
        self._bucket(time)[2].append((_CALL, fn, args))

    # -- hooks -------------------------------------------------------------

    def _post_router_step(self, now: int) -> None:
        """Subclass hook run after routers each cycle (control network)."""

    def _deliver(self, packet: Packet, now: int) -> None:
        packet.ejected = now
        self.stats.record_ejection(packet)
        if self._delivery_handler is not None:
            self._delivery_handler(packet, now)
        # Recycle pool-born packets once delivery is fully settled.  A
        # surviving plan reference (partial PRA execution, in-flight
        # control run) keeps the object out of the pool: late plan
        # cleanup still holds it.
        if packet.pooled and packet.pra_plan is None \
                and not packet.pra_pending:
            packet_pool.release(packet)

    def _head_arrived(self, packet: Packet, now: int) -> None:
        if self._head_handler is not None:
            self._head_handler(packet, now)

    # -- checkpointing -----------------------------------------------------

    def _encode_bucket(self, bucket: tuple, ctx) -> list:
        """Flatten one bucket into the wire format, in drain order
        (arrivals, credits, then the ordered queue).  The per-event
        encoding is unchanged from the flat-list era, so old snapshots
        decode and the shard merge tooling needs no version bump."""
        arrivals, credits, ordered = bucket
        out = [
            ["a", router.node, int(direction), vc_index, ctx.flit_ref(flit)]
            for router, direction, vc_index, flit in arrivals
        ]
        out += [["c", ctx.port_ref(port), vc_index]
                for port, vc_index in credits]
        out += [self._encode_event(event, ctx) for event in ordered]
        return out

    def _encode_event(self, event, ctx) -> list:
        kind = event[0]
        if kind == _EJECT:
            _, ni, flit = event
            return ["e", ni.node, ctx.flit_ref(flit)]
        if kind == _CREDIT:
            _, port, vc_index = event
            return ["c", ctx.port_ref(port), vc_index]
        _, fn, args = event
        return ["f", ctx.callback_ref(fn), [ctx.ref(arg) for arg in args]]

    def _decode_bucket(self, encoded_bucket: list, ctx) -> tuple:
        """Re-classify a flat encoded event list into per-kind queues.

        Classification is by tag, not position, so pre-batching
        snapshots (interleaved order) load correctly: relative order
        within each kind is preserved, which is the only order the
        drain respects anyway.
        """
        bucket: tuple = ([], [], [])
        arrivals, _, ordered = bucket
        for encoded in encoded_bucket:
            tag = encoded[0]
            if tag == "a":
                arrivals.append((self.routers[encoded[1]],
                                 as_port(encoded[2]), encoded[3],
                                 ctx.flit(encoded[4])))
            elif tag == "c":
                self._restore_credit(bucket, ctx.port(encoded[1]), encoded[2])
            elif tag == "e":
                ordered.append((_EJECT, self.interfaces[encoded[1]],
                                ctx.flit(encoded[2])))
            else:
                ordered.append((_CALL, ctx.callback(encoded[1]),
                                tuple(ctx.deref(arg) for arg in encoded[2])))
        return bucket

    def _restore_credit(self, bucket: tuple, port, vc_index: int) -> None:
        """Where a restored credit event lands; Mesh+PRA overrides this
        to route credits through the ordered queue (mirroring its
        ``schedule_credit``)."""
        bucket[1].append((port, vc_index))

    def state_dict(self, ctx) -> dict:
        """Mutable network state.  Wake queues serialize sorted (the
        step loop sorts them anyway); event buckets serialize in drain
        order (arrivals, credits, then the ordered queue in its exact
        append order) — the only order the drain observes."""
        return {
            "cycle": self.cycle,
            "cycles_skipped": self.cycles_skipped,
            "stats": self.stats.state_dict(),
            "ni_queue": sorted(self._ni_queue),
            "router_queue": sorted(self._router_queue),
            "events": [
                [time, self._encode_bucket(bucket, ctx)]
                for time, bucket in sorted(self._events.items())
            ],
            "routers": [router.state_dict(ctx) for router in self.routers],
            "interfaces": [ni.state_dict(ctx) for ni in self.interfaces],
        }

    def load_state(self, state: dict, ctx) -> None:
        self.cycle = state["cycle"]
        # Tolerated as absent: snapshots written before the event
        # horizon existed carry no skip counter.
        self.cycles_skipped = state.get("cycles_skipped", 0)
        self.stats.load_state(state["stats"])
        num_nodes = self.topology.num_nodes
        self._ni_awake = [False] * num_nodes
        self._ni_queue = []
        self._ni_sorted = True
        for node in state["ni_queue"]:
            self.wake_ni(node)
        self._router_awake = [False] * num_nodes
        self._router_queue = []
        self._router_sorted = True
        for node in state["router_queue"]:
            self.wake_router(node)
        # Written directly: ``_bucket`` rejects past timestamps, but the
        # restored cycle counter is already mid-run.
        self._events = {
            time: self._decode_bucket(encoded_bucket, ctx)
            for time, encoded_bucket in state["events"]
        }
        for router, router_state in zip(self.routers, state["routers"]):
            router.load_state(router_state, ctx)
        for ni, ni_state in zip(self.interfaces, state["interfaces"]):
            ni.load_state(ni_state, ctx)


def build_network(params: NocParams) -> Network:
    """Instantiate the organization selected by ``params.kind`` on the
    topology selected by ``params.topology``."""
    # Local imports avoid circular dependencies between organizations.
    spec_kind = getattr(params, "topology", "mesh").split(":", 1)[0]
    if spec_kind == "ring":
        if params.kind is not NocKind.MESH:
            raise ValueError(
                f"ring topology only supports the baseline router "
                f"(kind=mesh), not {params.kind.value}"
            )
        from repro.noc.ring import RingNetwork

        return RingNetwork(params)
    if spec_kind == "chiplet":
        if params.kind is NocKind.MESH:
            from repro.noc.chiplet import ChipletNetwork

            return ChipletNetwork(params)
        if params.kind is NocKind.IDEAL:
            from repro.noc.ideal import IdealNetwork

            return IdealNetwork(params)
        raise ValueError(
            f"chiplet topology supports kinds mesh and ideal, "
            f"not {params.kind.value}"
        )
    if params.kind is NocKind.MESH:
        from repro.noc.mesh import MeshNetwork

        return MeshNetwork(params)
    if params.kind is NocKind.SMART:
        from repro.noc.smart import SmartNetwork

        return SmartNetwork(params)
    if params.kind is NocKind.MESH_PRA:
        from repro.core.pra_network import PraNetwork

        return PraNetwork(params)
    if params.kind is NocKind.IDEAL:
        from repro.noc.ideal import IdealNetwork

        return IdealNetwork(params)
    raise ValueError(f"unknown network kind: {params.kind}")
