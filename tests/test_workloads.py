"""Tests for workload models: trace generation and synthetic traffic."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.network import build_network
from repro.params import NocKind, NocParams
from repro.tile.address import BLOCK_BYTES
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern
from repro.workloads.tracegen import AccessTraceGenerator


class TestTraceGenerator:
    def test_gap_mean_tracks_mpki(self):
        profile = get_profile("Web Search")
        gen = AccessTraceGenerator(profile, core_id=0, seed=1)
        gaps = [gen.next_gap() for _ in range(4000)]
        expected = profile.mean_instructions_between_misses
        assert statistics.mean(gaps) == pytest.approx(expected, rel=0.1)

    def test_instruction_fraction(self):
        profile = get_profile("Media Streaming")
        gen = AccessTraceGenerator(profile, core_id=1, seed=2)
        accesses = [gen.next_access() for _ in range(4000)]
        frac = sum(a.is_instruction for a in accesses) / len(accesses)
        assert frac == pytest.approx(profile.instruction_miss_fraction,
                                     abs=0.03)

    def test_addresses_are_block_aligned(self):
        gen = AccessTraceGenerator(get_profile("MapReduce"), core_id=2)
        for _ in range(200):
            assert gen.next_access().addr % BLOCK_BYTES == 0

    def test_instruction_accesses_never_write(self):
        gen = AccessTraceGenerator(get_profile("SAT Solver"), core_id=3)
        for _ in range(500):
            access = gen.next_access()
            if access.is_instruction:
                assert not access.is_write

    def test_deterministic_per_seed(self):
        p = get_profile("Web Search")
        a = AccessTraceGenerator(p, core_id=0, seed=7)
        b = AccessTraceGenerator(p, core_id=0, seed=7)
        assert [a.next_gap() for _ in range(50)] == [
            b.next_gap() for _ in range(50)
        ]

    def test_stream(self):
        gen = AccessTraceGenerator(get_profile("Web Search"), core_id=0)
        items = list(gen.stream(10))
        assert len(items) == 10
        assert all(gap >= 1 for gap, _ in items)


class TestSyntheticTraffic:
    @pytest.mark.parametrize("pattern", list(TrafficPattern))
    def test_patterns_deliver(self, pattern):
        net = build_network(NocParams(kind=NocKind.MESH, mesh_width=4,
                                      mesh_height=4))
        traffic = SyntheticTraffic(net, pattern, injection_rate=0.02,
                                   seed=3)
        traffic.run(400)
        net.drain(max_cycles=10000)
        assert net.stats.packets_ejected == traffic.offered
        assert traffic.offered > 0

    def test_offered_rate_tracks_request(self):
        net = build_network(NocParams(kind=NocKind.MESH, mesh_width=4,
                                      mesh_height=4))
        traffic = SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM,
                                   injection_rate=0.05, seed=4)
        traffic.run(2000)
        per_node_rate = traffic.offered / (2000 * 16)
        assert per_node_rate == pytest.approx(0.05, rel=0.15)

    def test_request_reply_generates_responses(self):
        net = build_network(NocParams(kind=NocKind.MESH, mesh_width=4,
                                      mesh_height=4))
        traffic = SyntheticTraffic(net, TrafficPattern.REQUEST_REPLY,
                                   injection_rate=0.01, seed=5)
        traffic.run(500)
        net.drain(max_cycles=10000)
        sizes = net.stats.flits_ejected / max(1, net.stats.packets_ejected)
        assert 1.0 < sizes < 5.0  # a mix of 1-flit and 5-flit packets

    def test_invalid_rate_rejected(self):
        net = build_network(NocParams(kind=NocKind.MESH))
        with pytest.raises(ValueError):
            SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM, 1.5)

    @given(st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_hotspot_targets_hotspot(self, seed):
        net = build_network(NocParams(kind=NocKind.MESH, mesh_width=4,
                                      mesh_height=4))
        arrivals = []
        net.on_delivery(lambda pkt, now: arrivals.append(pkt.dst))
        traffic = SyntheticTraffic(net, TrafficPattern.HOTSPOT,
                                   injection_rate=0.03, seed=seed,
                                   hotspot_nodes=[5])
        traffic.run(400)
        net.drain(max_cycles=20000)
        assert net.stats.packets_ejected == traffic.offered
        if len(arrivals) >= 30:
            hot_share = arrivals.count(5) / len(arrivals)
            assert hot_share > 3 / 16  # well above the uniform 1/16
