"""Figure 7: distribution of control-packet lag at drop.

Paper: lag 0 is the dominant bucket (53-67%, average ~61%); more than
98% of control packets die with lag 0-2.
"""

from repro.harness import figure7, render_figure


def test_fig7_lag_distribution(benchmark, save_result, scale):
    result = benchmark.pedantic(
        lambda: figure7(scale), iterations=1, rounds=1
    )
    save_result("fig7_lag_distribution", render_figure(result))
    for row in result["rows"]:
        workload, lag0, lag1, lag2, others = row
        total = lag0 + lag1 + lag2 + others
        assert abs(total - 1.0) < 1e-6
        # Lag 0 is the most common terminal value.
        assert lag0 >= lag1 and lag0 >= lag2
        # Most control packets pre-allocate most of their path.
        assert lag0 + lag1 + lag2 > 0.6
