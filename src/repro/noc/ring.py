"""A bidirectional ring interconnect (paper Section II-B).

The paper motivates tiled meshes by noting that the ring interconnect of
contemporary server parts (Intel Xeon E5) "stands as a major obstacle
for scaling up the core count, as its delay has linear dependence on the
number of interconnected components."  This module implements that
baseline so the claim can be reproduced as an experiment
(`benchmarks/test_background_ring_scaling.py`).

Structure: N ring stops, each with a clockwise port, a counter-clockwise
port, and the local NI port (:class:`repro.noc.topology.RingTopology`;
the generic mesh wiring builds the wrap links from it).  Packets take
the shorter direction.  Deadlock freedom on the wrap-around cycle uses
the classic *dateline* scheme via the shared escape-layer machinery
(:class:`repro.noc.router.LayeredVcRouter`): each message class gets two
VC layers; a packet starts in layer 0 and switches to layer 1 when it
crosses the dateline link (stop N-1 → stop 0 clockwise, or stop 0 →
stop N-1 counter-clockwise), breaking the cyclic channel dependency.
Router timing matches the mesh's 1-stage speculative pipeline (2
cycles/hop at zero load).
"""

from __future__ import annotations

from dataclasses import replace

from repro.noc.interface import LayeredInterface
from repro.noc.mesh import MeshNetwork
from repro.noc.router import LayeredVcRouter
from repro.noc.topology import Direction, Port
from repro.params import NocParams, NUM_MESSAGE_CLASSES

#: Ring directions reuse the mesh port ids: EAST = clockwise,
#: WEST = counter-clockwise.
CLOCKWISE = Direction.EAST
COUNTER_CLOCKWISE = Direction.WEST

#: VC layers per message class for dateline deadlock avoidance.
RING_VC_LAYERS = 2


class RingRouter(LayeredVcRouter):
    """One ring stop: clockwise, counter-clockwise, and local ports.

    Routing (shorter direction, ties clockwise) comes from the
    topology's routing law; this class only pins the dateline edges
    that advance the escape layer.
    """

    vc_layers = RING_VC_LAYERS

    def __init__(self, node: int, network: "RingNetwork"):
        super().__init__(node, network)
        self.ring_size = self.topology.num_nodes

    def _advances_layer(self, direction: Port) -> bool:
        if direction is CLOCKWISE:
            return self.node == self.ring_size - 1
        if direction is COUNTER_CLOCKWISE:
            return self.node == 0
        return False


class RingInterface(LayeredInterface):
    """NI whose injection targets the layered ring VCs."""

    vc_layers = RING_VC_LAYERS


class RingNetwork(MeshNetwork):
    """A bidirectional ring of ``num_stops`` tiles."""

    router_class = RingRouter
    interface_class = RingInterface

    def __init__(self, params: NocParams):
        if params.topology != "ring":
            params = replace(params, topology="ring")
        if params.router.vcs_per_port < NUM_MESSAGE_CLASSES * RING_VC_LAYERS:
            params = replace(
                params,
                router=replace(
                    params.router,
                    vcs_per_port=NUM_MESSAGE_CLASSES * RING_VC_LAYERS,
                ),
            )
        super().__init__(params)


def build_ring(num_stops: int, flits_per_vc: int = 5) -> RingNetwork:
    """Convenience constructor: a ring of ``num_stops`` tiles."""
    params = NocParams(mesh_width=num_stops, mesh_height=1, topology="ring")
    params = replace(
        params,
        router=replace(
            params.router,
            vcs_per_port=NUM_MESSAGE_CLASSES * RING_VC_LAYERS,
            flits_per_vc=flits_per_vc,
        ),
    )
    return RingNetwork(params)
