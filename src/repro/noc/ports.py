"""Output ports: credit tracking, VC allocation, and switch holding.

An :class:`OutputPort` is the upstream end of a link.  It mirrors the
state of the downstream input unit (free VCs, credit counts) exactly the
way a hardware router's output unit does, and enforces the two
invariants the rest of the simulator relies on:

* **packet-granular switch allocation** — once a packet's head flit is
  granted an output port, the port is held until the tail flit leaves.
  This is what makes the end of a multi-flit transmission deterministic,
  which the paper's Long Stall Detection unit exploits.
* **credit discipline** — a flit is only sent when the downstream buffer
  has space; PRA's proactive buffer reservations are claimed out of the
  same credit pool (``reserved`` below), so normally allocated traffic
  cannot consume proactively promised space.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.topology import Port, as_port, port_name
from repro.noc.vc import InputUnit, VirtualChannel
from repro.trace.events import EV_LINK

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.router import BaseRouter
    from repro.noc.network import Network


class OutputPort:
    """Upstream end of one unidirectional link (or the ejection port)."""

    __slots__ = (
        "router",
        "direction",
        "network",
        "node",
        "downstream_router",
        "downstream_unit",
        "downstream_dir",
        "ni_sink",
        "credits",
        "reserved",
        "held_by",
        "active_vc",
        "held_dst_vc",
        "holder_sent",
        "flits_sent",
        "link_hop_latency",
    )

    def __init__(
        self,
        router: Optional["BaseRouter"],
        direction: Port,
        network: "Network",
        num_vcs: int,
        vc_depth: int,
        node: Optional[int] = None,
    ):
        self.router = router
        self.direction = direction
        self.network = network
        #: Node this port belongs to (the router's node, or the NI's for
        #: injection ports); fault sites key link stalls on it.
        self.node = node if node is not None else (
            router.node if router is not None else None
        )
        #: Downstream router and its input unit; None for the ejection
        #: port (then ``ni_sink`` is set instead).
        self.downstream_router: Optional["BaseRouter"] = None
        self.downstream_unit: Optional[InputUnit] = None
        #: Entry port at the downstream router (cached off the unit
        #: because every flit transmission reads it).
        self.downstream_dir: Optional[Port] = None
        self.ni_sink = None
        self.credits: List[int] = [vc_depth] * num_vcs
        #: Buffer space currently promised to proactively allocated
        #: packets (PRA).  Claims are taken *out of* ``credits`` (so
        #: normal traffic simply sees fewer credits); this counter only
        #: tracks how much of the missing space is a PRA promise, which
        #: the blocked-time statistic needs.
        self.reserved: List[int] = [0] * num_vcs
        self.held_by: Optional[Packet] = None
        #: Source VC in this router that feeds the held packet.
        self.active_vc: Optional[VirtualChannel] = None
        #: Downstream VC index granted to the holder (usually the
        #: packet's message class; ring datelines remap it).
        self.held_dst_vc: Optional[int] = None
        #: Flits of the holder already transmitted through this port.
        self.holder_sent = 0
        self.flits_sent = 0
        #: Cycles from grant to downstream visibility (2 for the mesh:
        #: one ST+LT cycle, then allocation-eligible the next cycle).
        self.link_hop_latency = 2

    # -- wiring ---------------------------------------------------------

    def connect(self, downstream_router: "BaseRouter", entry: Port) -> None:
        """Attach this port to the downstream router's input unit."""
        self.downstream_router = downstream_router
        unit = downstream_router.input_units[entry]
        self.downstream_unit = unit
        self.downstream_dir = entry
        unit.feeder_port = self

    def connect_sink(self, ni_sink) -> None:
        """Attach this port to a network interface (ejection)."""
        self.ni_sink = ni_sink

    @property
    def is_ejection(self) -> bool:
        return self.ni_sink is not None

    # -- allocation checks ------------------------------------------------

    def downstream_vc(self, vc_index: int) -> Optional[VirtualChannel]:
        if self.downstream_unit is None:
            return None
        return self.downstream_unit.vcs[vc_index]

    def usable_credits(self, vc_index: int) -> int:
        """Credits visible to *normally* allocated traffic (PRA claims
        have already been withdrawn from the pool)."""
        return self.credits[vc_index]

    # -- PRA buffer claims --------------------------------------------------

    def claim_buffer(self, vc_index: int, count: int) -> None:
        """Withdraw ``count`` credits as a proactive full-packet claim."""
        if self.credits[vc_index] < count:
            raise RuntimeError("claiming more buffer space than available")
        self.credits[vc_index] -= count
        self.reserved[vc_index] += count

    def refund_buffer(self, vc_index: int, count: int) -> None:
        """Return unused proactively claimed credits to the pool."""
        self.credits[vc_index] += count
        self.reserved[vc_index] -= count

    def consume_claim(self, vc_index: int) -> None:
        """A proactively delivered flit occupied its promised slot."""
        self.reserved[vc_index] -= 1

    def can_allocate_vc(self, packet: Packet,
                        vc_index: Optional[int] = None) -> bool:
        """VC allocation check for a normally routed head flit.

        Runs once per (output, candidate) pair every arbitration cycle;
        the ``downstream_vc``/``can_accept_packet``/``usable_credits``
        chain is flattened to plain attribute reads.
        """
        if self.ni_sink is not None:
            return True
        if vc_index is None:
            vc_index = packet.vc_index
        unit = self.downstream_unit
        if unit is None:
            return False
        vc = unit.vcs[vc_index]
        return (
            vc.allocated_to is None
            and not vc.flits
            and self.credits[vc_index] >= 1
        )

    def has_credit_for(self, vc_index: int) -> bool:
        return self.ni_sink is not None or self.credits[vc_index] >= 1

    # -- fault site -------------------------------------------------------

    def fault_stalled(self, now: int) -> bool:
        """Is this link inside an injected stall window?  Callers guard
        with ``network.faults.enabled`` so the off path stays free."""
        return self.network.faults.link_stalled(self.node, self.direction,
                                                now)

    # -- switch state -----------------------------------------------------

    @property
    def is_held(self) -> bool:
        return self.held_by is not None

    def hold(self, packet: Packet, source_vc: VirtualChannel,
             dst_vc: Optional[int] = None) -> None:
        if self.held_by is not None:
            raise RuntimeError("output port already held")
        self.held_by = packet
        self.active_vc = source_vc
        self.held_dst_vc = dst_vc if dst_vc is not None else packet.vc_index
        self.holder_sent = 0

    def release(self) -> None:
        self.held_by = None
        self.active_vc = None
        self.held_dst_vc = None
        self.holder_sent = 0

    def remaining_flits_of_holder(self) -> int:
        """Flits of the holder not yet sent through this port.

        Valid while the port is held; used by LSD to compute the
        deterministic release time.
        """
        if self.held_by is None:
            return 0
        return self.held_by.size - self.holder_sent

    # -- flit transmission ----------------------------------------------

    #: ``BaseRouter._pop_and_send`` inlines the tracer-off body of
    #: :meth:`send`.  A subclass that overrides ``send`` must clear
    #: this flag so the router falls back to the virtual call.
    _plain_send = True

    def send(self, flit: Flit, now: int, charge_credit: bool = True,
             vc_index: Optional[int] = None) -> None:
        """Transmit one flit to the immediate downstream hop.

        ``vc_index`` selects the downstream VC; it defaults to the
        holder's granted VC (when held) or the packet's message class.
        """
        self.flits_sent += 1
        if self.held_by is flit.packet:
            self.holder_sent += 1
            if vc_index is None:
                vc_index = self.held_dst_vc
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                now, EV_LINK,
                pid=flit.packet.pid,
                node=self.router.node if self.router is not None
                else flit.packet.src,
                direction=port_name(self.direction),
                flit=flit.index,
                ni=self.router is None,
            )
        if self.ni_sink is not None:
            self.network.schedule_eject(now + 1, self.ni_sink, flit)
            return
        if vc_index is None:
            vc_index = flit.packet.vc_index
        if charge_credit:
            if self.credits[vc_index] <= 0:
                raise RuntimeError("credit underflow: flow control violated")
            self.credits[vc_index] -= 1
        if flit.is_head and self.router is not None:
            flit.packet.hops_taken += 1
        self.network.schedule_arrival(
            now + self.link_hop_latency,
            self.downstream_router,
            self.downstream_dir,
            vc_index,
            flit,
        )

    def return_credit(self, vc_index: int) -> None:
        self.credits[vc_index] += 1

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        active_vc = None
        if self.active_vc is not None:
            active_vc = [int(self.active_vc.unit.direction),
                         self.active_vc.index]
        return {
            "credits": list(self.credits),
            "reserved": list(self.reserved),
            "held_by": ctx.packet_ref(self.held_by),
            "active_vc": active_vc,
            "held_dst_vc": self.held_dst_vc,
            "holder_sent": self.holder_sent,
            "flits_sent": self.flits_sent,
        }

    def load_state(self, state: dict, ctx) -> None:
        self.credits = list(state["credits"])
        self.reserved = list(state["reserved"])
        self.held_by = ctx.packet(state["held_by"])
        active_vc = state["active_vc"]
        if active_vc is None:
            self.active_vc = None
        else:
            if self.router is None:
                raise ValueError("NI injection ports never hold a source VC")
            unit = self.router.input_units[as_port(active_vc[0])]
            self.active_vc = unit.vcs[active_vc[1]]
        self.held_dst_vc = state["held_dst_vc"]
        self.holder_sent = state["holder_sent"]
        self.flits_sent = state["flits_sent"]
