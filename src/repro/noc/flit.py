"""Flits: the unit of link bandwidth and buffering.

A packet of ``size`` flits is decomposed into one head flit, ``size - 2``
body flits, and one tail flit (a single-flit packet's flit is both head
and tail).  Flits carry a reference to their packet; routing state lives
on the packet.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.noc.packet import Packet


class FlitType(Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"  # single-flit packet


class Flit:
    """One flit of a packet.

    ``index`` is the flit's position within the packet (0 = head).
    """

    __slots__ = ("packet", "index", "kind", "is_head", "is_tail")

    def __init__(self, packet: "Packet", index: int):
        size = packet.size
        if not (0 <= index < size):
            raise ValueError(f"flit index {index} outside packet of {size}")
        self.packet = packet
        self.index = index
        #: Materialized head/tail flags: the arbiters read these on
        #: every flit move, so a property would dominate the hot path.
        self.is_head = index == 0
        self.is_tail = index == size - 1
        if size == 1:
            self.kind = FlitType.HEAD_TAIL
        elif index == 0:
            self.kind = FlitType.HEAD
        elif index == size - 1:
            self.kind = FlitType.TAIL
        else:
            self.kind = FlitType.BODY

    def __repr__(self) -> str:
        return f"Flit(pkt={self.packet.pid}, idx={self.index}, {self.kind.value})"
