"""Reproducibility guarantees: identical seeds give identical runs."""

import random

import pytest

from repro.noc.packet import Packet
from repro.noc.ring import build_ring
from repro.params import MessageClass, NocKind
from repro.perf.system import simulate
from tests.helpers import assert_quiescent, make_network


class TestDeterminism:
    @pytest.mark.parametrize("kind", list(NocKind))
    def test_network_level(self, kind):
        results = []
        for _ in range(2):
            rng = random.Random(99)
            net = make_network(kind)
            latencies = []
            net.on_delivery(lambda p, now: latencies.append(
                (p.src, p.dst, p.network_latency())))
            for _ in range(60):
                src = rng.randrange(16)
                dst = (src + rng.randrange(1, 16)) % 16
                net.send(Packet(src=src, dst=dst,
                                msg_class=rng.choice(list(MessageClass)),
                                created=net.cycle))
                net.step()
            net.drain(max_cycles=20000)
            results.append(latencies)
        assert results[0] == results[1]

    def test_system_level(self):
        a = simulate("Data Serving", NocKind.MESH_PRA, warmup=200,
                     measure=1000, seed=42)
        b = simulate("Data Serving", NocKind.MESH_PRA, warmup=200,
                     measure=1000, seed=42)
        assert a.instructions == b.instructions
        assert a.packets == b.packets
        assert a.lag_distribution == b.lag_distribution

    def test_different_seeds_differ(self):
        a = simulate("Data Serving", NocKind.MESH, warmup=200,
                     measure=1000, seed=1)
        b = simulate("Data Serving", NocKind.MESH, warmup=200,
                     measure=1000, seed=2)
        assert a.instructions != b.instructions


class TestRingQuiescence:
    def test_ring_drains_clean(self):
        rng = random.Random(31)
        net = build_ring(12)
        for _ in range(200):
            src = rng.randrange(12)
            dst = (src + rng.randrange(1, 12)) % 12
            net.send(Packet(src=src, dst=dst,
                            msg_class=rng.choice(list(MessageClass)),
                            created=net.cycle))
            net.step()
        net.drain(max_cycles=30000)
        assert_quiescent(net)


class TestLlcBankQueueing:
    def test_serial_bank_occupancy(self):
        """Back-to-back hits to one slice serialize at tag+data spacing."""
        from repro.params import default_chip
        from repro.tile.chip import Chip
        from repro.tile.llc import Transaction

        chip = Chip(default_chip(NocKind.MESH), llc_hit_ratio=1.0, seed=0)
        done = []
        chip.on_complete = lambda txn, now: done.append(txn)
        # Two local accesses to slice 3, issued together.
        for _ in range(2):
            chip.issue(Transaction(core_node=3, addr=3 * 64,
                                   is_instruction=False))
        chip.run(100)
        assert len(done) == 2
        spacing = abs(done[1].completed_at - done[0].completed_at)
        # The second lookup waits for the first's tag+data occupancy.
        assert spacing >= chip.params.cache.tag_lookup_cycles + \
            chip.params.cache.data_lookup_cycles
