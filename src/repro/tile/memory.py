"""DDR3-1600 memory channels: fixed-service-time queues.

Table I gives four channels.  Each access occupies the channel for
``service_cycles`` (bus occupancy / bank cycle time at closed-page row
policy) and completes ``access_cycles`` after it starts, both in 2 GHz
core cycles.  LLC misses are rare in the server profiles we model, so
the paper's results do not hinge on DRAM detail (see DESIGN.md §6).
"""

from __future__ import annotations

from typing import Callable

from repro.params import MemoryParams


class MemoryChannel:
    """One DDR channel with in-order service."""

    def __init__(self, channel_id: int, params: MemoryParams, scheduler):
        """``scheduler`` is a callable ``(time, fn, *args)`` that runs
        ``fn`` at ``time`` (the network's schedule_call)."""
        self.channel_id = channel_id
        self.params = params
        self._schedule = scheduler
        self._next_free = 0
        self.accesses = 0
        self.busy_cycles = 0

    def access(self, now: int, on_done: Callable[..., None], *args) -> int:
        """Issue an access; ``on_done(*args)`` fires at completion.

        Returns the completion time (deterministic at issue).  The
        callback is scheduled with its arguments spelled out (rather
        than closed over) so the pending completion survives a
        checkpoint: bound methods and plain values are serializable,
        closures are not.
        """
        start = max(now + 1, self._next_free)
        self._next_free = start + self.params.service_cycles
        done = start + self.params.access_cycles
        self.accesses += 1
        self.busy_cycles += self.params.service_cycles
        self._schedule(done, on_done, *args)
        return done

    def utilization(self, elapsed_cycles: int) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "next_free": self._next_free,
            "accesses": self.accesses,
            "busy_cycles": self.busy_cycles,
        }

    def load_state(self, state: dict) -> None:
        self._next_free = state["next_free"]
        self.accesses = state["accesses"]
        self.busy_cycles = state["busy_cycles"]
