"""Chip assembly: network + LLC slices + directories + memory channels.

The :class:`Chip` owns the clock (delegated to the network), routes
delivered packets to the right component, and offers the core-model
layer a small API:

* :meth:`issue` — a core's L1 miss becomes a request (local or remote),
* ``on_complete`` — callback fired when the response reaches the core.

Coherence messages use the third message class and are modeled as
fire-and-forget single-flit invalidations (the paper: coherence traffic
is negligible but needs its own class for deadlock freedom).
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.noc.network import Network, build_network
from repro.noc.packet import Packet, packet_pool
from repro.params import ChipParams, MessageClass
from repro.tile.address import home_slice, memory_channel
from repro.tile.cache import SetAssociativeCache
from repro.tile.directory import DirectorySlice
from repro.tile.llc import LlcSlice, Transaction
from repro.tile.memory import MemoryChannel

#: Fixed NI/controller overhead for LLC accesses that stay on-tile.
LOCAL_ACCESS_OVERHEAD = 2


class Chip:
    """A 64-tile server processor with the configured NoC."""

    def __init__(
        self,
        params: ChipParams,
        llc_hit_ratio: Optional[float] = 0.9,
        detailed_llc: bool = False,
        seed: int = 0,
    ):
        self.params = params
        self.rng = random.Random(seed)
        self.network: Network = build_network(params.noc)
        self.network.on_delivery(self._on_delivery)
        self.network.on_head_arrival(self._on_head_arrival)
        num_tiles = params.num_tiles
        slice_bytes = int(params.llc_slice_mb * 1024 * 1024)
        self.slices: List[LlcSlice] = []
        for node in range(num_tiles):
            if detailed_llc:
                cache = SetAssociativeCache(slice_bytes, ways=16)
                self.slices.append(LlcSlice(node, self, cache=cache))
            else:
                self.slices.append(
                    LlcSlice(node, self, hit_ratio=llc_hit_ratio)
                )
        self.directories = [DirectorySlice(n) for n in range(num_tiles)]
        self.channels = [
            MemoryChannel(c, params.memory, self.schedule)
            for c in range(params.memory.num_channels)
        ]
        #: Completion callback: ``fn(txn, now)``; set by the core layer.
        self.on_complete: Optional[Callable[[Transaction, int], None]] = None
        self.coherence_sent = 0

    # -- clock ----------------------------------------------------------------

    @property
    def cycle(self) -> int:
        return self.network.cycle

    def step(self) -> None:
        self.network.step()

    def run(self, cycles: int) -> None:
        self.network.run(cycles)

    def schedule(self, time: int, fn, *args) -> None:
        self.network.schedule_call(time, fn, *args)

    # -- core-facing API ---------------------------------------------------------

    def issue(self, txn: Transaction) -> None:
        """An L1 miss: route the request to the block's home slice."""
        txn.issued_at = self.cycle
        txn.home = home_slice(txn.addr, self.params.num_tiles)
        if not txn.is_write:
            self.slices[txn.home].record_read_sharer(txn)
        if txn.home == txn.core_node:
            # Local slice: no network traversal, only controller overhead.
            self.schedule(
                self.cycle + LOCAL_ACCESS_OVERHEAD,
                self.slices[txn.home].handle_request,
                txn,
                self.cycle + LOCAL_ACCESS_OVERHEAD,
            )
            return
        request = packet_pool.acquire(
            txn.core_node,
            txn.home,
            MessageClass.REQUEST,
            created=self.cycle,
            payload=txn,
        )
        self.network.send(request)

    def complete_local(self, txn: Transaction) -> None:
        """A local-slice access finished (no response packet needed)."""
        self._complete(txn, self.cycle + LOCAL_ACCESS_OVERHEAD)

    # -- internals ------------------------------------------------------------------

    def _on_delivery(self, packet: Packet, now: int) -> None:
        if packet.msg_class is MessageClass.REQUEST:
            self.slices[packet.dst].handle_request(packet.payload, now)
        elif packet.msg_class is MessageClass.RESPONSE:
            # Critical-word-first: completion fired at head arrival; the
            # tail event is only a fallback for single-flit responses or
            # exotic configurations.
            self._complete(packet.payload, now)
        # Coherence invalidations are fire-and-forget (sunk here).

    def _on_head_arrival(self, packet: Packet, now: int) -> None:
        if packet.msg_class is MessageClass.RESPONSE:
            # The requested word leads the block (critical-word-first);
            # the core restarts one cycle after the head lands while the
            # remaining flits stream into the L1 fill buffer.
            self._complete(packet.payload, now + 1)

    def _complete(self, txn: Transaction, when: int) -> None:
        if txn.completed_at is not None:
            return
        txn.completed_at = when
        if self.on_complete is not None:
            if when <= self.cycle:
                self.on_complete(txn, when)
            else:
                self.schedule(when, self.on_complete, txn, when)

    def channel_for(self, addr: int) -> MemoryChannel:
        return self.channels[
            memory_channel(addr, self.params.memory.num_channels)
        ]

    def send_coherence(self, src: int, dst: int) -> None:
        self.coherence_sent += 1
        self.network.send(
            packet_pool.acquire(
                src,
                dst,
                MessageClass.COHERENCE,
                created=self.cycle,
            )
        )

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        from repro.checkpoint.codec import rng_state

        return {
            "rng": rng_state(self.rng),
            "coherence_sent": self.coherence_sent,
            "network": self.network.state_dict(ctx),
            "slices": [llc.state_dict() for llc in self.slices],
            "directories": [d.state_dict() for d in self.directories],
            "channels": [ch.state_dict() for ch in self.channels],
        }

    def load_state(self, state: dict, ctx) -> None:
        from repro.checkpoint.codec import set_rng_state

        set_rng_state(self.rng, state["rng"])
        self.coherence_sent = state["coherence_sent"]
        self.network.load_state(state["network"], ctx)
        for llc, sub in zip(self.slices, state["slices"]):
            llc.load_state(sub)
        for directory, sub in zip(self.directories, state["directories"]):
            directory.load_state(sub)
        for channel, sub in zip(self.channels, state["channels"]):
            channel.load_state(sub)
