#!/usr/bin/env python3
"""Anatomy of one proactive resource allocation.

Traces a single LLC-hit-triggered control packet through the control
network and then watches the data packet ride the pre-allocated path:
which routers reserved which timeslots, where the packet is latched,
where it bypasses, and when each flit lands.  This is Figure 3 and
Figure 5(b) of the paper, animated in text.

Run:  python examples/pra_anatomy.py
"""

from repro.core.plan import LAND_LATCH, LAND_NI, LAND_VC
from repro.noc.network import build_network
from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind, NocParams


def main() -> None:
    net = build_network(NocParams(kind=NocKind.MESH_PRA))
    # LLC slice at node 16 (coords (0,2)), requesting core at node 21
    # (coords (5,2)): a 5-hop straight path plus ejection.
    src, dst = 16, 21
    response = Packet(src=src, dst=dst, msg_class=MessageClass.RESPONSE,
                      created=net.cycle)

    print(f"Cycle {net.cycle}: LLC tag lookup hits at node {src}; the "
          f"controller announces the\nresponse (destination node {dst}) "
          f"four cycles before the data lookup completes.\n")
    net.announce(response, ready_in=4)
    net.run(4)
    net.send(response)

    plan = response.pra_plan
    if plan is None:
        raise SystemExit("no plan was built (unexpected on an idle mesh)")
    # Let the control packet finish its run and the data packet ride the
    # path before printing the complete plan.
    net.drain(max_cycles=300)
    print("Control packet's reservations (one PlanStep per cycle):")
    kind_name = {LAND_VC: "standard VC (buffer claimed for the full packet)",
                 LAND_LATCH: "one-cycle latch",
                 LAND_NI: "network interface (delivered)"}
    for i, step in enumerate(plan.steps):
        via = (f", bypassing node {step.via_node} combinationally"
               if step.via_node is not None else "")
        print(f"  step {i}: cycle {step.slot}: node {step.driver_node} "
              f"drives {step.hops} hop(s) {step.out_dir.name}{via}")
        print(f"          -> lands at node {step.landing_node} in "
              f"{kind_name[step.landing_kind]}")

    print(f"\nDelivered at cycle {response.ejected}: "
          f"network latency {response.network_latency()} cycles for "
          f"{response.size} flits over {response.hops_taken} hops.")

    # The same transfer on the plain mesh, for contrast.
    mesh = build_network(NocParams(kind=NocKind.MESH))
    ref = Packet(src=src, dst=dst, msg_class=MessageClass.RESPONSE,
                 created=mesh.cycle)
    mesh.send(ref)
    mesh.drain(max_cycles=300)
    print(f"Baseline mesh needs {ref.network_latency()} cycles — PRA "
          f"removed {ref.network_latency() - response.network_latency()} "
          f"cycles of per-hop resource allocation.")


if __name__ == "__main__":
    main()
