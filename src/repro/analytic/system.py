"""Closed-loop full-system prediction: IPC <-> injection <-> latency.

The evaluation grid's cells are *closed-loop*: cores inject misses at a
rate set by their IPC, and their IPC depends on the miss latency, which
depends on the injection rate.  This module solves that loop as a
damped fixed point over the per-core IPC:

    miss rate  = IPC * MPKI / 1000
    node rate  = 2 * miss rate * P(remote home) + coherence
    latencies  = queueing model at that rate          (per class)
    L_txn      = request + LLC bank + data/memory + response-head + 1
    CPI        = base + i_misses * L + d_misses * stall(L, MLP)
    IPC        = 1 / CPI

The component constants mirror the simulator's transaction path exactly
(``repro.tile.chip``/``llc``/``memory``): serial tag(1)+data(4) LLC
lookups on an M/G/1 bank, a 2-cycle controller overhead each way for
the 1/64 of accesses whose home is the local slice, four 90-cycle
memory channels, and critical-word-first completion one cycle after the
response head lands (4 cycles before its tail under 1-flit/cycle
ejection).  Instruction misses serialize the core.  Data-miss stalls
mirror :class:`repro.perf.core_model.CoreModel`'s actual mechanism —
the MLP *limit* is re-sampled per miss (``int(mlp)`` or one more, by
the fractional part), and the core stalls only when outstanding misses
reach it:

* a limit-1 draw stalls for the full transaction latency (the common
  case for the low-MLP server workloads, and why ``latency / MLP``
  amortization overpredicts stalls badly at MLP > 2);
* larger limits stall only when the in-flight window actually fills,
  which happens with probability ``P(Poisson(L/D) >= limit)`` for
  inter-data-miss core time ``D`` — the geometric inter-miss gaps make
  arrivals into the window memoryless.

Writes additionally trigger directory invalidations (single-flit
coherence packets, ~2-5% of traffic); their expected fan-out is a
fitted constant, since the simulator's sharer lists truncate under
directory eviction in a rate-dependent way no closed form captures.

The result converges in tens of iterations to < 1e-10, is deterministic
and parameter-pure, and takes ~100 microseconds per cell — the quantity
the ``REPRO_ANALYTIC=prune`` fast path serves in place of a multi-second
cycle-accurate run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional

from math import exp

from repro.analytic.geometry import geometry_for
from repro.analytic.queueing import (
    NetworkPoint,
    TrafficMix,
    predict_network,
)
from repro.params import ChipParams, NocKind, default_chip
from repro.perf.system import PerfSample
from repro.tile.chip import LOCAL_ACCESS_OVERHEAD
from repro.workloads.profiles import get_profile

#: PRA bookkeeping constants, fit once against cycle-accurate smoke
#: runs (they only shape the PRA diagnostic columns of pruned samples,
#: not latency or IPC; the validation harness tracks the real error).
_PRA_CONTROL_PER_ANNOUNCE = 1.27
_PRA_BLOCKED_FRACTION = 0.004
_PRA_LAG_DISTRIBUTION = {0: 0.55, 1: 0.20, 2: 0.12, 3: 0.08, 4: 0.05}

#: Expected directory invalidations per write reaching the LLC, fit
#: against the simulator's packet counts (coherence is ~2-5% of
#: traffic; the true fan-out depends on rate-dependent sharer-list
#: eviction).
_COHERENCE_SHARERS_PER_WRITE = 1.0

#: Inflation of the Poisson window-full term in :func:`_data_stall`.
#: The Poisson estimate assumes memoryless arrivals and mean service;
#: the core's post-stall clustering and the bimodal service (LLC hit
#: vs. ~3x-longer memory round trip) both push the real stall up.
#: Fit against the evaluation grid (SAT Solver pins it: MLP 3.2 makes
#: the window term its only data-stall source).
_DATA_STALL_SCALE = 2.25

_FIXED_POINT_ITERS = 200
_FIXED_POINT_TOL = 1e-10


def _mg1_wait(rate: float, e_s: float, e_s2: float) -> float:
    """M/G/1 waiting time, clamped near saturation so the fixed point
    stays finite while it talks itself down from an infeasible rate."""
    rho = rate * e_s
    slack = max(0.02, 1.0 - rho)
    return rate * e_s2 / (2.0 * slack)


def _poisson_tail(rho: float, k: int) -> float:
    """P(N >= k) for N ~ Poisson(rho)."""
    if k <= 0:
        return 1.0
    term = exp(-rho)
    cdf = 0.0
    for i in range(k):
        cdf += term
        term *= rho / (i + 1)
    return max(0.0, 1.0 - cdf)


def _data_stall(l_txn: float, w_exec: float, p_instr: float,
                p_data: float, mlp: float) -> float:
    """Expected stall cycles per *data* miss (see module docstring).

    ``w_exec`` is the mean execution time of one inter-miss window;
    ``p_instr``/``p_data`` split misses by type.  The core issues data
    misses every ``D = (w_exec + p_instr * L) / p_data`` core-cycles
    absent data stalls, so ``rho = L / D`` is the mean in-flight count
    a new miss sees; a limit-``m`` draw stalls when that window is
    full, for roughly the oldest miss's residual ``L / m``.
    """
    m_low = max(1, int(mlp))
    frac = mlp - m_low
    d_free = (w_exec + p_instr * l_txn) / p_data
    rho = l_txn / d_free
    stall = 0.0
    for limit, weight in ((m_low, 1.0 - frac), (m_low + 1, frac)):
        if weight <= 0.0:
            continue
        if limit == 1:
            stall += weight * l_txn
        else:
            stall += (
                weight * _DATA_STALL_SCALE
                * _poisson_tail(rho, limit) * l_txn / limit
            )
    return stall


@dataclass(frozen=True)
class CellPrediction:
    """Analytic stand-in for one evaluation-grid cell."""

    workload: str
    kind: NocKind
    #: Aggregate (64-core) application instructions per cycle.
    ipc: float
    #: Packets injected per node per cycle at the fixed point.
    node_rate: float
    #: The network model's output at that rate.
    network: NetworkPoint
    #: Per-class (label, packet fraction, flits) mix at the fixed point.
    mix: TrafficMix
    #: Mix-weighted mean packet latency (the grid's
    #: ``avg_network_latency`` analogue).
    avg_network_latency: float
    #: Mean LLC-transaction latency (issue to completion).
    transaction_latency: float
    #: Bottleneck-link flit utilization (the pruning confidence signal).
    max_util: float
    #: Expected hops per packet (for the power model's activity counts).
    avg_hops: float

    @property
    def per_core_ipc(self) -> float:
        return self.ipc / 64.0

    def sample(self, measure: int,
               num_tiles: int = 64) -> PerfSample:
        """Materialize a :class:`PerfSample` covering ``measure`` cycles.

        Count-shaped fields scale with the interval; latency fields are
        the model's steady-state expectations.  ``analytic=True`` marks
        the sample's provenance (kept out of every persistent store).
        """
        packets = round(num_tiles * self.node_rate * measure)
        instructions = round(self.ipc * measure)
        e_flits = sum(w * size for _, w, size in self.mix)
        resp_weight = sum(w for label, w, _ in self.mix
                          if label == "response")
        control = 0
        per_data = 0.0
        lag: Dict[int, float] = {}
        blocked = 0.0
        if self.kind is NocKind.MESH_PRA and packets:
            # Announcements fire once per remote LLC hit; the simulator
            # reports ~1.27 control injections per announce (per-segment
            # re-injections after drops).
            responses = packets * resp_weight
            profile = get_profile(self.workload)
            control = round(
                responses * profile.llc_hit_ratio
                * _PRA_CONTROL_PER_ANNOUNCE
            )
            per_data = control / packets
            lag = dict(_PRA_LAG_DISTRIBUTION)
            blocked = _PRA_BLOCKED_FRACTION
        return PerfSample(
            workload=self.workload,
            noc_kind=self.kind,
            instructions=instructions,
            cycles=measure,
            packets=packets,
            avg_network_latency=self.avg_network_latency,
            avg_transaction_latency=self.avg_network_latency,
            control_packets=control,
            control_per_data=per_data,
            lag_distribution=lag,
            pra_blocked_fraction=blocked,
            flits_delivered=round(packets * e_flits),
            total_hops=round(packets * self.avg_hops),
            analytic=True,
        )


def predict_cell(
    workload: str,
    kind: NocKind,
    chip: Optional[ChipParams] = None,
) -> CellPrediction:
    """Solve the closed loop for one (workload, organization) cell."""
    if chip is None:
        profile = get_profile(workload)
        return _predict_default(profile.name, kind)
    return _solve(workload, kind, chip)


@lru_cache(maxsize=256)
def _predict_default(workload: str, kind: NocKind) -> CellPrediction:
    return _solve(workload, kind, default_chip(kind))


def _solve(workload: str, kind: NocKind,
           chip: ChipParams) -> CellPrediction:
    profile = get_profile(workload)
    noc = chip.noc if chip.noc.kind is kind else chip.noc.with_kind(kind)
    num_tiles = chip.num_tiles
    hit = profile.llc_hit_ratio
    p_remote = (num_tiles - 1) / num_tiles
    tag = chip.cache.tag_lookup_cycles
    data = chip.cache.data_lookup_cycles
    mem_service = chip.memory.service_cycles
    # LLC bank service: tag+data on a hit, tag-only on a miss.
    es_llc = (tag + data) * hit + tag * (1.0 - hit)
    es2_llc = (tag + data) ** 2 * hit + tag ** 2 * (1.0 - hit)

    p_instr = profile.instruction_miss_fraction
    p_data = 1.0 - p_instr
    w_exec = profile.mean_instructions_between_misses * profile.base_cpi

    def rates_and_mix(lam_miss):
        """Per-node packet rates by class at miss rate ``lam_miss``."""
        lam_req = lam_miss * p_remote
        lam_coh = (
            lam_miss * p_data * profile.write_fraction
            * _COHERENCE_SHARERS_PER_WRITE
        )
        node_rate = 2.0 * lam_req + lam_coh
        mix: TrafficMix = (
            ("request", lam_req / node_rate, 1),
            ("response", lam_req / node_rate, 5),
            ("coherence", lam_coh / node_rate, 1),
        )
        return node_rate, mix

    ipc_core = 1.0 / profile.base_cpi
    net = None
    for _ in range(_FIXED_POINT_ITERS):
        lam_miss = ipc_core * profile.total_mpki / 1000.0
        node_rate, mix = rates_and_mix(lam_miss)
        net = predict_network(kind, node_rate, mix, noc)
        if net.saturated:
            # Offered load beyond the bottleneck link: halve and retry
            # (the loop settles onto the saturated branch's fixed point).
            ipc_core *= 0.5
            continue
        w_llc = _mg1_wait(lam_miss, es_llc, es2_llc)
        lam_chan = (
            num_tiles * lam_miss * (1.0 - hit)
            / chip.memory.num_channels
        )
        w_mem = _mg1_wait(lam_chan, mem_service, mem_service ** 2)
        # Critical-word-first: completion fires one cycle after the
        # response head, 4 cycles before the 5-flit tail the network
        # latency is measured at.
        resp_head = net.per_class["response"] - 4.0
        # Network latency is measured head-into-router to ejection; the
        # core's stall additionally covers the source NI: a 1-cycle
        # injection latch plus M/G/1 queueing behind the node's other
        # injections (the port serializes one flit per cycle).
        e_s_ni = sum(w * size for _, w, size in mix)
        e_s2_ni = sum(w * size * size for _, w, size in mix)
        ni_delay = 1.0 + _mg1_wait(node_rate, e_s_ni, e_s2_ni)
        mem_turnaround = 1 + chip.memory.access_cycles + w_mem
        remote_hit = (
            net.per_class["request"] + w_llc + tag + data + resp_head + 1
            + 2 * ni_delay
        )
        remote_miss = (
            net.per_class["request"] + w_llc + tag + mem_turnaround
            + resp_head + 1 + 2 * ni_delay
        )
        local_hit = 2 * LOCAL_ACCESS_OVERHEAD + w_llc + tag + data
        local_miss = 2 * LOCAL_ACCESS_OVERHEAD + w_llc + tag + mem_turnaround
        l_txn = (
            p_remote * (hit * remote_hit + (1.0 - hit) * remote_miss)
            + (1.0 - p_remote)
            * (hit * local_hit + (1.0 - hit) * local_miss)
        )
        cpi = (
            profile.base_cpi
            + profile.i_mpki / 1000.0 * l_txn
            + profile.d_mpki / 1000.0
            * _data_stall(l_txn, w_exec, p_instr, p_data, profile.mlp)
        )
        ipc_new = 1.0 / cpi
        if abs(ipc_new - ipc_core) < _FIXED_POINT_TOL:
            ipc_core = ipc_new
            break
        ipc_core = 0.5 * (ipc_core + ipc_new)
    lam_miss = ipc_core * profile.total_mpki / 1000.0
    node_rate, mix = rates_and_mix(lam_miss)
    net = predict_network(kind, node_rate, mix, noc)
    geom = geometry_for(noc)
    return CellPrediction(
        workload=profile.name,
        kind=kind,
        ipc=ipc_core * num_tiles,
        node_rate=node_rate,
        network=net,
        mix=mix,
        avg_network_latency=net.latency,
        transaction_latency=l_txn,
        max_util=net.max_util,
        avg_hops=geom.e_hops,
    )


def clear_prediction_cache() -> None:
    """Drop memoized cell predictions (tests use this for isolation)."""
    _predict_default.cache_clear()
