"""Routers: the base pipeline and the baseline mesh router.

The baseline mesh router (Table I) is a 1-stage speculative router: a
head flit that arrived by the start of cycle *t* performs routing, VC
allocation, and speculative crossbar allocation during *t*, then crosses
the crossbar and link during *t+1*, becoming allocation-eligible at the
next router at *t+2* — two cycles per hop at zero load.

Switch allocation is packet-granular: once a head flit wins an output
port, the port is held until the packet's tail is sent.  This keeps the
flits of a multi-flit packet contiguous on every link, which (a) matches
the paper's framing of in-network blocking ("the output port is busy
forwarding a multi-flit packet") and (b) makes the release time of a
blocked port deterministic whenever the downstream buffer can absorb the
in-flight packet — the property the Long Stall Detection unit exploits.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Dict, List, Optional, Set, Tuple

from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.ports import OutputPort
from repro.noc.topology import Direction, Port, as_port, port_name
from repro.noc.vc import InputUnit, VirtualChannel
from repro.trace.events import (
    EV_SWITCH_GRANT,
    EV_SWITCH_HOLD,
    EV_SWITCH_RELEASE,
    EV_VC_ALLOC,
)

#: Cycles from a flit's dequeue to the upstream credit increment
#: (one cycle switch+link traversal, one cycle credit wire).
CREDIT_DELAY = 2

#: Sort key for round-robin candidate ordering.
_RR_KEY = attrgetter("rr_key")


class BaseRouter:
    """Shared structure of all router types: input units and ports."""

    def __init__(self, node: int, network):
        self.node = node
        self.network = network
        self.topology = network.topology
        params = network.params.router
        self.num_vcs = params.vcs_per_port
        self.vc_depth = params.flits_per_vc
        self.input_units: Dict[Port, InputUnit] = {}
        self.output_ports: Dict[Port, OutputPort] = {}
        #: Flits currently buffered in this router (early-exit counter).
        self.active_flits = 0
        #: Round-robin state per output port: the (input port, vc index)
        #: key last granted, or None before the first grant.
        #: Advancing relative to the previous *grant* (instead of a
        #: monotonically increasing pointer indexed into a list whose
        #: membership changes every cycle) is what makes arbitration
        #: fair under churning candidate sets.
        self._rr: Dict[Port, Optional[Tuple[int, int]]] = {
            Direction.LOCAL: None
        }

        self.input_units[Direction.LOCAL] = InputUnit(
            Direction.LOCAL, self.num_vcs, self.vc_depth
        )
        # The topology's per-node port set decides this router's degree:
        # 2 on a ring stop, up to 4 on a mesh tile, more on a chiplet
        # gateway or an IO die.  Every listed port has a neighbor.
        for port in self.topology.ports(node):
            self.input_units[port] = InputUnit(
                port, self.num_vcs, self.vc_depth
            )
            self.output_ports[port] = self._make_output_port(port)
            self._rr[port] = None
        # Ejection port toward the NI (wired by the network).
        self.output_ports[Direction.LOCAL] = self._make_output_port(
            Direction.LOCAL
        )
        self._unit_list: List[InputUnit] = list(self.input_units.values())
        #: Dense next-port row for this node (the candidate scan
        #: resolves a route per buffered head flit every cycle, so it
        #: must be a single list index, not a hash lookup).
        self._route_row = self.topology.route_row(node)
        self._rebuild_port_cache()

    def _rebuild_port_cache(self) -> None:
        """Refresh cached port and VC lists (call after adding ports)."""
        order = (Direction.LOCAL,) + tuple(self.topology.ports(self.node))
        #: Router-to-router output ports, in processing order.
        self.cardinal_ports: List[OutputPort] = [
            self.output_ports[p] for p in order
            if p is not Direction.LOCAL and p in self.output_ports
        ]
        #: All output ports in fixed processing order (LOCAL first).
        self.port_list: List[OutputPort] = [
            self.output_ports[p] for p in order if p in self.output_ports
        ]
        #: Every input VC, flattened in fixed unit order (hot-scan list).
        self._vc_list: List[VirtualChannel] = [
            vc for unit in self._unit_list for vc in unit.vcs
        ]
        #: Dense round-robin ids: every input VC numbered in ascending
        #: ``rr_key`` order.  With ids dense in ``[0, total)``, "first
        #: key strictly after the last grantee, wrapping to the
        #: smallest" becomes a minimum of ``(id - last - 1) % total`` —
        #: no per-pick sort.
        ranked = sorted(self._vc_list, key=_RR_KEY)
        for rank, vc in enumerate(ranked):
            vc.rr_id = rank
        self._rr_total = len(ranked)
        self._rr_key_to_id = {vc.rr_key: vc.rr_id for vc in ranked}
        #: Last-granted rr id per output port (mirrors ``_rr``, which
        #: stays the checkpointed form).
        self._rr_last: Dict[Port, Optional[int]] = {
            direction: None for direction in self._rr
        }

    def _make_output_port(self, direction: Port) -> OutputPort:
        return OutputPort(
            router=self,
            direction=direction,
            network=self.network,
            num_vcs=self.num_vcs,
            vc_depth=self.vc_depth,
        )

    # -- flit reception -----------------------------------------------------

    #: True while the class keeps this stock reception path, letting
    #: ``Network._run_events`` inline delivery (PRA latches opt out).
    _plain_receive = True

    #: Sentinel VC index of latch landings (PRA); ``None`` everywhere
    #: else.  Set per class so the inlined arrival loop can dispatch
    #: latch deliveries without a virtual ``receive_flit`` call.
    _latch_index: Optional[int] = None

    #: True once ``finalize_build`` verified the network keeps the
    #: stock event schedulers, letting ``_pop_and_send`` (and the SMART
    #: transmit) append straight into the cycle buckets.  Runtime still
    #: checks ``network.boundary`` — sharded runs patch the schedulers
    #: per instance.
    _plain_sched = False

    def receive_flit(self, direction: Port, vc_index: int, flit: Flit) -> None:
        self.input_units[direction].receive(flit, vc_index)
        self.active_flits += 1
        self.network.wake_router(self.node)

    def has_work(self) -> bool:
        """Whether this router must be stepped again next cycle."""
        return self.active_flits > 0

    def route_of(self, packet: Packet) -> Port:
        """Output port the packet takes from this router."""
        return self._route_row[packet.dst]

    # -- per-cycle processing -----------------------------------------------

    def step(self, now: int) -> None:
        raise NotImplementedError

    def finalize_build(self) -> None:
        """Build-time specialization hook, called once by the network
        after all wiring (links, ejection, interfaces) is in place.  The
        mesh router elects a monomorphic fast path here; the base router
        has none."""

    # -- shared helpers -------------------------------------------------------

    def _pop_and_send(
        self, port: OutputPort, vc: VirtualChannel, now: int,
        charge_credit: bool = True,
    ) -> Flit:
        """Dequeue the front flit of ``vc`` and transmit it on ``port``."""
        # ``vc.pop()`` inlined: this helper moves every flit of every
        # generic-path router, so the extra call showed up in profiles.
        flit = vc.flits.popleft()
        if flit.is_tail:
            vc.allocated_to = vc.next_claim
            vc.next_claim = None
        self.active_flits -= 1
        network = self.network
        # ``plain``: stock schedulers, no shard patching — credit and
        # arrival appends go straight into the cycle buckets (targets
        # are ``now + <positive const>`` with ``now == network.cycle``,
        # so the future-only guard holds by construction).
        plain = self._plain_sched and network.boundary is None
        feeder = vc.unit.feeder_port
        if feeder is not None:
            if plain:
                time = now + CREDIT_DELAY
                events = network._events
                bucket = events.get(time)
                if bucket is None:
                    pool = network._bucket_pool
                    bucket = pool.pop() if pool else ([], [], [])
                    events[time] = bucket
                bucket[1].append((feeder, vc.index))
            else:
                network.schedule_credit(
                    now + CREDIT_DELAY, feeder, vc.index
                )
        # Tracer-off transmit is ``OutputPort.send`` flattened in place
        # (same fusion as ``_pop_send_fast``); tracing and overriding
        # ports take the virtual call so they stay fully featured.
        if network.tracer.enabled or not port._plain_send:
            port.send(flit, now, charge_credit=charge_credit)
            return flit
        port.flits_sent += 1
        vc_index = None
        if port.held_by is flit.packet:
            port.holder_sent += 1
            vc_index = port.held_dst_vc
        if port.ni_sink is not None:
            network.schedule_eject(now + 1, port.ni_sink, flit)
            return flit
        if vc_index is None:
            vc_index = flit.packet.vc_index
        if charge_credit:
            if port.credits[vc_index] <= 0:
                raise RuntimeError("credit underflow: flow control violated")
            port.credits[vc_index] -= 1
        if flit.is_head and port.router is not None:
            flit.packet.hops_taken += 1
        if plain:
            time = now + port.link_hop_latency
            events = network._events
            bucket = events.get(time)
            if bucket is None:
                pool = network._bucket_pool
                bucket = pool.pop() if pool else ([], [], [])
                events[time] = bucket
            bucket[0].append((port.downstream_router, port.downstream_dir,
                              vc_index, flit))
        else:
            network.schedule_arrival(
                now + port.link_hop_latency,
                port.downstream_router,
                port.downstream_dir,
                vc_index,
                flit,
            )
        return flit

    def _collect_head_candidates(self) -> Dict[Port, List[VirtualChannel]]:
        """One pass over all input VCs: head flits grouped by the output
        port they request.  Built once per cycle and shared by all
        output ports (and by LSD in the PRA router)."""
        candidates: Dict[Port, List[VirtualChannel]] = {}
        row = self._route_row
        for vc in self._vc_list:
            flits = vc.flits
            if not flits:
                continue
            front = flits[0]
            if not front.is_head:
                continue
            direction = row[front.packet.dst]
            group = candidates.get(direction)
            if group is None:
                candidates[direction] = [vc]
            else:
                group.append(vc)
        return candidates

    def _head_candidates(
        self, direction: Port, used_inputs: Set[Port]
    ) -> List[VirtualChannel]:
        """Input VCs whose front flit is a head routed to ``direction``."""
        return [
            vc
            for vc in self._collect_head_candidates().get(direction, [])
            if vc.unit.direction not in used_inputs
        ]

    def _round_robin_pick(
        self, direction: Port, candidates: List[VirtualChannel]
    ) -> VirtualChannel:
        """Grant the first candidate strictly after the last grantee in
        cyclic (input direction, vc index) order.

        The candidate list's membership changes every cycle, so the
        pointer must be anchored to the previously granted *key*, not an
        index into the list: an index-modulo scheme can starve a VC
        indefinitely when membership oscillates.  With dense per-VC
        ranks ("first id strictly after the last grantee, wrapping")
        the pick is a modular-arithmetic minimum — no per-cycle sort.
        """
        total = self._rr_total
        last = self._rr_last[direction]
        if last is None:
            last = total - 1
        choice: Optional[VirtualChannel] = None
        best = total
        for vc in candidates:
            rank = (vc.rr_id - last - 1) % total
            if rank < best:
                best = rank
                choice = vc
        self._rr[direction] = choice.rr_key
        self._rr_last[direction] = choice.rr_id
        return choice

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        """Mutable router state; wiring and caches are reconstruction."""
        return {
            "units": [
                [int(direction), [vc.state_dict(ctx) for vc in unit.vcs]]
                for direction, unit in self.input_units.items()
            ],
            "ports": [
                [int(direction), port.state_dict(ctx)]
                for direction, port in self.output_ports.items()
            ],
            "active_flits": self.active_flits,
            "rr": [
                [int(direction), list(key) if key is not None else None]
                for direction, key in self._rr.items()
            ],
        }

    def load_state(self, state: dict, ctx) -> None:
        for direction_value, vc_states in state["units"]:
            unit = self.input_units[as_port(direction_value)]
            for vc, vc_state in zip(unit.vcs, vc_states):
                vc.load_state(vc_state, ctx)
        for direction_value, port_state in state["ports"]:
            self.output_ports[as_port(direction_value)].load_state(
                port_state, ctx
            )
        self.active_flits = state["active_flits"]
        self._rr = {
            as_port(direction_value):
                tuple(key) if key is not None else None
            for direction_value, key in state["rr"]
        }
        # Rebuild the dense-rank mirror of the checkpointed keys.
        key_to_id = self._rr_key_to_id
        self._rr_last = {
            direction: None if key is None else key_to_id[key]
            for direction, key in self._rr.items()
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(node={self.node})"


class MeshRouter(BaseRouter):
    """The baseline 1-stage speculative mesh router."""

    def step(self, now: int) -> None:
        if self.active_flits == 0:
            return
        faults = self.network.faults
        fault_on = faults.enabled
        if fault_on and faults.router_stalled(self.node, now):
            return
        used_inputs: Set[Port] = set()
        group_of = self._collect_head_candidates().get
        for port in self.port_list:
            if fault_on and port.fault_stalled(now):
                continue
            if port.held_by is not None:
                self._advance_held(port, now, used_inputs)
            else:
                direction = port.direction
                group = group_of(direction)
                if group:
                    self._try_grant(port, direction, now, used_inputs, group)

    # -- build-time specialization (hot-path engine v3) ----------------------

    def finalize_build(self) -> None:
        """Elect a monomorphic ``step`` when this instance provably uses
        the plain mesh pipeline.

        Selection happens once, at build time: a flat (single escape
        layer) router whose class keeps the stock ``step`` gets a
        specialized binding — the full inline path for a plain
        :class:`MeshRouter`, or the fast candidate scan
        (:meth:`_step_scan`) when grant/hold hooks are overridden (the
        SMART router).  Escape-layer routers (ring, chiplet) keep the
        generic layered path; the PRA router elects its own flattened
        pipeline (see ``PraRouter.finalize_build``).
        ``REPRO_NO_FASTPATH`` disables election entirely.
        """
        if not self.network.fastpath:
            return
        network = self.network
        cls = type(self)
        from repro.noc.network import Network
        net_cls = type(network)
        # Stock event schedulers → transmit helpers may append into the
        # cycle buckets directly (PraNetwork re-orders credits, so its
        # routers keep the virtual calls on the generic path).
        self._plain_sched = (
            net_cls.schedule_arrival is Network.schedule_arrival
            and net_cls.schedule_credit is Network.schedule_credit
        )
        if cls.step is not MeshRouter.step:
            return  # custom pipeline (PRA) elects its own fast step
        if isinstance(self, LayeredVcRouter):
            return  # escape-layer routing stays on the generic path
        if cls._collect_head_candidates is not \
                BaseRouter._collect_head_candidates:
            return
        if cls._may_grant is not MeshRouter._may_grant:
            return  # the fast scan fuses the stock eligibility check
        #: Preallocated per-direction candidate buckets indexed by
        #: ``int(port)``, so the hot scan never hashes or allocates.
        size = max(int(port.direction) for port in self.port_list) + 1
        self._cand_buckets: List[List[VirtualChannel]] = [
            [] for _ in range(size)
        ]
        if (cls is MeshRouter
                and cls._pop_and_send is BaseRouter._pop_and_send
                and cls._make_output_port is BaseRouter._make_output_port):
            self.step = self._step_fast  # type: ignore[method-assign]
        else:
            self.step = self._step_scan  # type: ignore[method-assign]

    def _scan_heads_fast(self) -> int:
        """Fill the preallocated candidate buckets; returns a bitmask of
        touched output-port indices (callers must clear those buckets
        before returning)."""
        buckets = self._cand_buckets
        row = self._route_row
        touched = 0
        for vc in self._vc_list:
            flits = vc.flits
            if flits:
                front = flits[0]
                if front.is_head:
                    index = int(row[front.packet.dst])
                    buckets[index].append(vc)
                    touched |= 1 << index
        return touched

    def _clear_buckets(self, touched: int) -> None:
        buckets = self._cand_buckets
        while touched:
            low = touched & -touched
            buckets[low.bit_length() - 1].clear()
            touched -= low

    def _step_fast(self, now: int) -> None:
        """Monomorphic hot path for the plain flat mesh.

        Bit-identical to :meth:`step` with the generic helpers inlined:
        candidate groups live in preallocated per-direction buckets, the
        round-robin pick is rotation arithmetic fused with the
        eligibility filter, and the pop→credit→send chain skips the
        virtual dispatch.  Whenever an observer is attached (faults,
        tracer, shard boundary) the router falls back to the generic
        step, so instrumented runs always exercise the reference path.
        """
        if self.active_flits == 0:
            return
        network = self.network
        if (network.faults.enabled or network.tracer.enabled
                or network.boundary is not None):
            MeshRouter.step(self, now)
            return
        touched = self._scan_heads_fast()
        buckets = self._cand_buckets
        rr_last = self._rr_last
        total = self._rr_total
        used = 0
        for port in self.port_list:
            held = port.held_by
            if held is not None:
                vc = port.active_vc
                if vc is None:
                    continue
                flits = vc.flits
                if not flits or flits[0].packet is not held:
                    continue  # next flit still in flight from upstream
                in_bit = 1 << vc.unit.direction
                if used & in_bit:
                    continue
                if port.ni_sink is None and port.credits[port.held_dst_vc] < 1:
                    continue
                used |= in_bit
                if self._pop_send_fast(port, vc, now).is_tail:
                    port.release()
                continue
            index = int(port.direction)
            if not (touched >> index) & 1:
                continue
            # Eligibility filter fused with the rotation pick.
            last = rr_last[port.direction]
            if last is None:
                last = total - 1
            down_unit = port.downstream_unit
            credits = port.credits
            ejection = port.ni_sink is not None
            choice = None
            best = total
            for vc in buckets[index]:
                if used & (1 << vc.unit.direction):
                    continue
                packet = vc.flits[0].packet
                if not ejection:
                    vc_index = packet.vc_index
                    down_vc = down_unit.vcs[vc_index]
                    if (down_vc.allocated_to is not None or down_vc.flits
                            or credits[vc_index] < 1):
                        continue
                rank = (vc.rr_id - last - 1) % total
                if rank < best:
                    best = rank
                    choice = vc
            if choice is None:
                continue
            vc = choice
            direction = port.direction
            self._rr[direction] = vc.rr_key
            rr_last[direction] = vc.rr_id
            packet = vc.flits[0].packet
            if not ejection:
                down_unit.vcs[packet.vc_index].allocated_to = packet
            # Inline port.hold (the unheld branch above guarantees it).
            port.held_by = packet
            port.active_vc = vc
            port.held_dst_vc = packet.vc_index
            port.holder_sent = 0
            used |= 1 << vc.unit.direction
            if self._pop_send_fast(port, vc, now).is_tail:
                port.release()
        self._clear_buckets(touched)

    def _pop_send_fast(self, port: OutputPort, vc: VirtualChannel,
                       now: int) -> Flit:
        """:meth:`_pop_and_send` + :meth:`OutputPort.send` fused for the
        tracer-off, credit-charging, plain-port case (the only one the
        fast step reaches).  Event scheduling appends straight into the
        cycle buckets: every target cycle is ``now + <positive const>``
        with ``now == network.cycle``, so the future-only guard the
        public schedulers enforce holds by construction."""
        flit = vc.flits.popleft()
        if flit.is_tail:
            vc.allocated_to = vc.next_claim
            vc.next_claim = None
        self.active_flits -= 1
        network = self.network
        events = network._events
        pool = network._bucket_pool
        feeder = vc.unit.feeder_port
        if feeder is not None:
            time = now + CREDIT_DELAY
            bucket = events.get(time)
            if bucket is None:
                bucket = pool.pop() if pool else ([], [], [])
                events[time] = bucket
            bucket[1].append((feeder, vc.index))
        port.flits_sent += 1
        packet = flit.packet
        if port.held_by is packet:
            port.holder_sent += 1
            vc_index = port.held_dst_vc
        else:
            vc_index = packet.vc_index
        if port.ni_sink is not None:
            network.schedule_eject(now + 1, port.ni_sink, flit)
            return flit
        credits = port.credits
        if credits[vc_index] <= 0:
            raise RuntimeError("credit underflow: flow control violated")
        credits[vc_index] -= 1
        if flit.is_head:
            packet.hops_taken += 1
        time = now + port.link_hop_latency
        bucket = events.get(time)
        if bucket is None:
            bucket = pool.pop() if pool else ([], [], [])
            events[time] = bucket
        bucket[0].append((port.downstream_router, port.downstream_dir,
                          vc_index, flit))
        return flit

    def _step_scan(self, now: int) -> None:
        """Fast candidate scan with virtual grant/hold hooks: the
        per-cycle head scan, the eligibility filter (the election
        verified the stock ``_may_grant``), and the round-robin pick
        are inlined, while ``_advance_held``/``_grant`` stay
        overridable — the SMART router's bypass logic rides on them."""
        if self.active_flits == 0:
            return
        network = self.network
        if (network.faults.enabled or network.tracer.enabled
                or network.boundary is not None):
            MeshRouter.step(self, now)
            return
        touched = self._scan_heads_fast()
        buckets = self._cand_buckets
        rr_last = self._rr_last
        total = self._rr_total
        used_inputs: Set[Port] = set()
        for port in self.port_list:
            if port.held_by is not None:
                self._advance_held(port, now, used_inputs)
                continue
            index = int(port.direction)
            if not (touched >> index) & 1:
                continue
            # ``_try_grant`` fused: the filter is the flattened
            # VC-allocation check, the pick is rotation arithmetic.
            direction = port.direction
            down_unit = port.downstream_unit
            credits = port.credits
            ejection = port.ni_sink is not None
            last = rr_last[direction]
            if last is None:
                last = total - 1
            choice = None
            best = total
            for vc in buckets[index]:
                if vc.unit.direction in used_inputs:
                    continue
                if not ejection:
                    vc_index = vc.flits[0].packet.vc_index
                    down_vc = down_unit.vcs[vc_index]
                    if (down_vc.allocated_to is not None or down_vc.flits
                            or credits[vc_index] < 1):
                        continue
                rank = (vc.rr_id - last - 1) % total
                if rank < best:
                    best = rank
                    choice = vc
            if choice is None:
                continue
            self._rr[direction] = choice.rr_key
            rr_last[direction] = choice.rr_id
            self._grant(port, choice, choice.flits[0].packet, now,
                        used_inputs)
        self._clear_buckets(touched)

    # -- switch traversal of an in-progress packet ---------------------------

    def _advance_held(
        self, port: OutputPort, now: int, used_inputs: Set[Port]
    ) -> None:
        # Stall checks are inlined (``vc.front()`` / ``has_credit_for``
        # flattened); the trace helper is only invoked when a tracer is
        # actually attached, keeping the common stall to attribute work.
        vc = port.active_vc
        if vc is None:
            return
        flits = vc.flits
        if not flits or flits[0].packet is not port.held_by:
            if self.network.tracer.enabled:
                self._trace_hold(port, now, "awaiting_flit")
            return  # next flit still in flight from upstream
        direction = vc.unit.direction
        if direction in used_inputs:
            if self.network.tracer.enabled:
                self._trace_hold(port, now, "input_busy")
            return
        if port.ni_sink is None and port.credits[port.held_dst_vc] < 1:
            if self.network.tracer.enabled:
                self._trace_hold(port, now, "no_credit")
            return
        used_inputs.add(direction)
        flit = self._pop_and_send(port, vc, now)
        if flit.is_tail:
            port.release()
            tracer = self.network.tracer
            if tracer.enabled:
                tracer.emit(now, EV_SWITCH_RELEASE, pid=flit.packet.pid,
                            node=self.node,
                            direction=port_name(port.direction))

    def _trace_hold(self, port: OutputPort, now: int, reason: str) -> None:
        """Record a held port that could not advance this cycle."""
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                now, EV_SWITCH_HOLD,
                pid=port.held_by.pid if port.held_by is not None else None,
                node=self.node,
                direction=port_name(port.direction),
                reason=reason,
            )

    # -- head-flit allocation (RC + VA + speculative SA in one cycle) --------

    def _try_grant(
        self, port: OutputPort, direction: Port, now: int,
        used_inputs: Set[Port],
        candidates: Optional[List[VirtualChannel]] = None,
    ) -> None:
        may_grant = self._may_grant
        if candidates is None:
            candidates = self._collect_head_candidates().get(direction, ())
        # Eligibility filter fused with the rotation pick (one pass, no
        # intermediate list); identical to filtering into ``eligible``
        # and handing it to ``_round_robin_pick``.
        total = self._rr_total
        last = self._rr_last[direction]
        if last is None:
            last = total - 1
        choice: Optional[VirtualChannel] = None
        best = total
        for vc in candidates:
            if vc.unit.direction in used_inputs:
                continue
            if not may_grant(port, vc.flits[0].packet, now):
                continue
            rank = (vc.rr_id - last - 1) % total
            if rank < best:
                best = rank
                choice = vc
        if choice is None:
            return
        self._rr[direction] = choice.rr_key
        self._rr_last[direction] = choice.rr_id
        self._grant(port, choice, choice.flits[0].packet, now, used_inputs)

    def _may_grant(self, port: OutputPort, packet: Packet, now: int) -> bool:
        """VC-allocation check; the PRA router layers reservation rules."""
        return port.can_allocate_vc(packet)

    def _grant(
        self,
        port: OutputPort,
        vc: VirtualChannel,
        packet: Packet,
        now: int,
        used_inputs: Set[Port],
    ) -> None:
        tracer = self.network.tracer
        if not port.is_ejection:
            port.downstream_vc(packet.vc_index).allocated_to = packet
            boundary = self.network.boundary
            if boundary is not None:
                # Sharded runs mirror VC allocations whose downstream
                # router lives in another shard (the write above landed
                # on a local replica; the owner must replay it).
                boundary.note_grant(port, packet, now)
            if tracer.enabled:
                tracer.emit(now, EV_VC_ALLOC, pid=packet.pid, node=self.node,
                            direction=port_name(port.direction),
                            vc=packet.vc_index)
        port.hold(packet, source_vc=vc)
        if tracer.enabled:
            tracer.emit(now, EV_SWITCH_GRANT, pid=packet.pid, node=self.node,
                        direction=port_name(port.direction),
                        input=port_name(vc.unit.direction),
                        input_vc=vc.index)
        used_inputs.add(vc.unit.direction)
        flit = self._pop_and_send(port, vc, now)
        if flit.is_tail:
            port.release()
            if tracer.enabled:
                tracer.emit(now, EV_SWITCH_RELEASE, pid=packet.pid,
                            node=self.node,
                            direction=port_name(port.direction))


class LayeredVcRouter(MeshRouter):
    """A mesh-pipelined router whose VCs are split into escape layers.

    Per-class VCs subdivide into ``vc_layers`` layers; a packet starts
    in layer 0 and is bumped to layer 1 the first time it crosses a
    *layer-advancing* output port (:meth:`_advances_layer`) — the ring's
    dateline link, or a chiplet's inter-chiplet link.  Choosing the
    advancing edges so that each layer's channel graph is acyclic makes
    the layered VC dependency graph acyclic, i.e. deadlock-free; the
    deadlock watchdog verifies this at runtime.

    The current layer rides on ``packet.ring_layer`` (named for its
    first user; it is simply "escape layer").
    """

    #: VC layers per message class (downstream VC = class * layers + layer).
    vc_layers = 2

    #: Lazily built frozenset of layer-advancing output directions.
    #: ``_advances_layer`` is a pure function of the direction, so the
    #: per-grant virtual call collapses to one set-membership test.
    _adv_dirs: Optional[frozenset] = None

    def _advances_layer(self, direction: Port) -> bool:
        """Does granting ``direction`` move the packet to layer 1?"""
        raise NotImplementedError

    def _advancing_dirs(self) -> frozenset:
        dirs = self._adv_dirs
        if dirs is None:
            dirs = self._adv_dirs = frozenset(
                direction for direction in self.output_ports
                if self._advances_layer(direction)
            )
        return dirs

    def _dst_vc_for(self, packet: Packet, direction: Port) -> int:
        """Downstream VC: the packet's class layer, escaped if needed."""
        dirs = self._adv_dirs
        if dirs is None:
            dirs = self._advancing_dirs()
        layer = 1 if direction in dirs else packet.ring_layer
        return packet.msg_class.value * self.vc_layers + layer

    def _may_grant(self, port: OutputPort, packet: Packet, now: int) -> bool:
        if port.ni_sink is not None:
            return True
        return port.can_allocate_vc(
            packet, self._dst_vc_for(packet, port.direction)
        )

    def _grant(
        self,
        port: OutputPort,
        vc: VirtualChannel,
        packet: Packet,
        now: int,
        used_inputs: Set[Port],
    ) -> None:
        dst_vc: Optional[int] = None
        if port.ni_sink is None:
            dst_vc = self._dst_vc_for(packet, port.direction)
            port.downstream_unit.vcs[dst_vc].allocated_to = packet
            if port.direction in self._advancing_dirs():
                packet.ring_layer = 1
        port.hold(packet, source_vc=vc, dst_vc=dst_vc)
        used_inputs.add(vc.unit.direction)
        flit = self._pop_and_send(port, vc, now)
        if flit.is_tail:
            port.release()
