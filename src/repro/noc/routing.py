"""Source routing over topology graphs.

XY routing is deadlock-free on a mesh and is what the paper's networks
use; the control network additionally relies on the route being known at
the source ("we know the whole path to the destination").  Since the
topology refactor the routing *law* lives on the topology object
(:meth:`repro.noc.topology.Topology.next_port`) — XY on meshes,
shortest-direction on rings, hierarchical XY -> interposer -> XY on
chiplets — and these helpers are thin memoized entry points kept for
their call sites (the control network, SMART, the ideal fabric).

Route state is structurally per-topology-instance: the next-port query
is served from dense per-node route rows
(:meth:`~repro.noc.topology.Topology.route_row` — a list indexed by
destination id, built once and aliased by every router), and the
full-path memo is a bounded per-instance cache keyed by node-pair
indices within *that* topology, so two live topologies — even of
identical size — can never serve each other's routes.  This module
holds no state.
"""

from __future__ import annotations

from typing import Tuple

from repro.noc.topology import Port, Topology


def xy_next_direction(topo: Topology, node: int, dst: int) -> Port:
    """Output port a packet at ``node`` takes toward ``dst``.

    Returns ``Direction.LOCAL`` when the packet has arrived.  Results
    are memoized on the topology (this is the single hottest routing
    query — every head-candidate scan calls it)."""
    return topo.route_port(node, dst)


def xy_route(topo: Topology, src: int, dst: int) -> Tuple[Tuple[int, Port], ...]:
    """The full source route as ``((node, out_port), ...)``.

    The final element is ``(dst, Direction.LOCAL)`` (the ejection hop).
    This is the information a PRA control packet carries as its
    look-ahead routing field.  Routes are memoized per (src, dst) pair
    and returned as shared immutable tuples."""
    return topo.route(src, dst)


def turn_node(topo: Topology, src: int, dst: int) -> int:
    """The node where a mesh XY route turns from X to Y travel.

    Equals ``dst`` for routes with no Y component and ``src`` for routes
    with no X component.  PRA's multi-drop segments cannot cross this
    node in a single segment (turns are not allowed in multi-drop
    segments), so pre-allocated 2-hop traversals break here.
    """
    _sx, sy = topo.coords(src)
    dx, _dy = topo.coords(dst)
    # After X travel the packet sits at column dx in the source row.
    return topo.node_at(dx, sy)
