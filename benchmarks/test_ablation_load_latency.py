"""Ablation A4: open-loop load-latency curves under synthetic traffic.

Network-level validation outside the full-system loop: uniform-random
request-reply traffic at increasing injection rates.  The expected
shape: at low load latencies order as Ideal < Mesh+PRA < Mesh ~= SMART;
all saturate as offered load approaches capacity.
"""

from repro.harness.reporting import format_table
from repro.noc.network import build_network
from repro.params import NocKind, NocParams
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

RATES = (0.002, 0.01, 0.03)
KINDS = (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA, NocKind.IDEAL)


def _avg_latency(kind, rate, cycles):
    net = build_network(NocParams(kind=kind))
    traffic = SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM, rate,
                               seed=5)
    traffic.run(cycles)
    return net.stats.avg_network_latency


def test_ablation_load_latency(benchmark, save_result, scale):
    cycles = max(1500, scale.measure // 2)

    def run_all():
        return {
            (kind, rate): _avg_latency(kind, rate, cycles)
            for kind in KINDS
            for rate in RATES
        }

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = [
        [kind.value] + [results[(kind, r)] for r in RATES]
        for kind in KINDS
    ]
    save_result(
        "ablation_load_latency",
        format_table(["Organization"] + [f"rate={r}" for r in RATES], rows,
                     "Ablation A4: load-latency (uniform random)"),
    )
    for rate in RATES:
        # The ideal network lower-bounds everything at every load point.
        for kind in (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA):
            assert results[(NocKind.IDEAL, rate)] < results[(kind, rate)]
        # Latency grows with load for the realistic networks.
    assert results[(NocKind.MESH, RATES[-1])] > results[(NocKind.MESH, RATES[0])]
