"""Figure 8: NOC area breakdown.

Paper: Mesh 3.5 mm2; SMART 4.5 mm2 (+31%); Mesh+PRA 4.9 mm2 (+40%);
links and buffers dominate; all small next to a >200 mm2 chip.
"""

import pytest

from repro.harness import figure8, render_figure
from repro.params import ChipParams, NocKind
from repro.physical.density import chip_area_mm2


def test_fig8_area(benchmark, save_result):
    result = benchmark.pedantic(figure8, iterations=1, rounds=1)
    save_result("fig8_area", render_figure(result))
    areas = result["areas"]
    assert areas[NocKind.MESH].total_mm2 == pytest.approx(3.5, rel=0.05)
    assert areas[NocKind.SMART].total_mm2 == pytest.approx(4.5, rel=0.05)
    assert areas[NocKind.MESH_PRA].total_mm2 == pytest.approx(4.9, rel=0.05)
    # Relative to the whole chip the overheads are small.
    chip = ChipParams()
    for kind in (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA):
        assert chip_area_mm2(chip, kind) > 200.0
        assert areas[kind].total_mm2 / chip_area_mm2(chip, kind) < 0.03
