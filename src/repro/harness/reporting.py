"""Plain-text rendering of the reproduced tables and figures."""

from __future__ import annotations

from typing import Dict, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table, suitable for terminals and EXPERIMENTS.md."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows))
        if str_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def render_figure(result: Dict) -> str:
    """Render a figure-function result (they all share the layout:
    {'title': ..., 'headers': [...], 'rows': [[...], ...]})."""
    return format_table(result["headers"], result["rows"], result["title"])


def render_bars(result: Dict, width: int = 40) -> str:
    """ASCII bar chart of a figure result's numeric columns.

    Each row becomes a group of labeled bars scaled to the result's
    maximum value — a terminal stand-in for the paper's bar figures.
    """
    headers = result["headers"]
    rows = result["rows"]
    numeric_cols = [
        i for i in range(1, len(headers))
        if all(isinstance(r[i], (int, float)) for r in rows)
    ]
    if not numeric_cols:
        return render_figure(result)
    peak = max(float(r[i]) for r in rows for i in numeric_cols) or 1.0
    label_w = max(len(str(h)) for h in headers) + 2
    lines = [result["title"]]
    for row in rows:
        lines.append(str(row[0]))
        for i in numeric_cols:
            value = float(row[i])
            bar = "#" * max(0, round(width * value / peak))
            lines.append(f"  {str(headers[i]).ljust(label_w)}{bar} {value:.3f}")
    return "\n".join(lines)
