"""Behavioral tests of router arbitration, blocking, and backpressure."""

import pytest

from repro.noc.packet import Packet
from repro.noc.topology import Direction
from repro.params import MessageClass, NocKind
from tests.helpers import assert_quiescent, make_network


class TestArbitration:
    def test_round_robin_shares_a_port(self):
        """Two flows merging at one router should share the contended
        output roughly evenly."""
        net = make_network(NocKind.MESH, width=8, height=1)
        # Flows from nodes 0 and 1 (via its NI) both heading east
        # through node 1's east port.
        done = {0: [], 1: []}
        net.on_delivery(lambda p, now: done[p.src].append(now))
        for i in range(30):
            net.send(Packet(src=0, dst=7, msg_class=MessageClass.REQUEST,
                            created=net.cycle))
            net.send(Packet(src=1, dst=7, msg_class=MessageClass.COHERENCE,
                            created=net.cycle))
            net.run(2)
        net.drain(max_cycles=5000)
        assert len(done[0]) == len(done[1]) == 30
        # Neither flow finishes wholesale before the other: interleaved
        # service means the last arrivals are close together.
        assert abs(max(done[0]) - max(done[1])) < 40

    def test_wormhole_blocking_chains_backwards(self):
        """When a multi-flit packet stalls, upstream links stall too
        (wormhole), but independent VCs keep flowing."""
        net = make_network(NocKind.MESH, width=8, height=1)
        # Saturate node 6..7 with responses so buffers fill back.
        for _ in range(12):
            net.send(Packet(src=0, dst=7, msg_class=MessageClass.RESPONSE,
                            created=net.cycle))
        # Requests on their own VC should still make progress.
        req = Packet(src=0, dst=7, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(req)
        net.drain(max_cycles=10000)
        assert req.ejected is not None
        assert_quiescent(net)

    def test_credit_backpressure_limits_inflight_flits(self):
        """With the destination NI ejecting one flit per cycle, buffer
        occupancy anywhere never exceeds VC capacity (credits hold)."""
        net = make_network(NocKind.MESH, width=4, height=1)
        for _ in range(20):
            net.send(Packet(src=0, dst=3, msg_class=MessageClass.RESPONSE,
                            created=net.cycle))
        for _ in range(40):
            net.step()
            for router in net.routers:
                for unit in router.input_units.values():
                    for vc in unit.vcs:
                        assert vc.occupancy <= vc.capacity
        net.drain(max_cycles=5000)
        assert_quiescent(net)


class TestRoundRobinFairness:
    def test_churning_membership_cannot_starve_a_competitor(self):
        """Regression: three persistent competitors for one output where
        the previous winner sits out the following round (its next head
        flit is still in flight).  An index-modulo pointer over the
        changing candidate list alternates between two of them and
        starves the third forever; anchoring to the last-granted key
        serves all three evenly."""
        from collections import Counter

        net = make_network(NocKind.MESH)
        router = net.routers[5]  # interior node: N/E/S/W all present
        competitors = [
            router.input_units[Direction.WEST].vcs[0],
            router.input_units[Direction.NORTH].vcs[0],
            router.input_units[Direction.SOUTH].vcs[0],
        ]
        grants = Counter()
        absent = None
        for _ in range(30):
            candidates = [vc for vc in competitors if vc is not absent]
            choice = router._round_robin_pick(Direction.EAST, candidates)
            grants[choice.unit.direction] += 1
            absent = choice
        assert len(grants) == 3, f"a competitor was starved: {grants}"
        assert max(grants.values()) - min(grants.values()) <= 1, grants

    def test_stable_membership_rotates(self):
        """With a fixed candidate set the arbiter is a plain rotor."""
        net = make_network(NocKind.MESH)
        router = net.routers[5]
        competitors = [
            router.input_units[d].vcs[0]
            for d in (Direction.WEST, Direction.NORTH, Direction.SOUTH)
        ]
        picks = [
            router._round_robin_pick(Direction.EAST, list(competitors))
            for _ in range(6)
        ]
        assert picks[:3] == picks[3:6]
        assert len(set(picks[:3])) == 3


class TestSmartBypass:
    def test_bypass_denied_when_local_candidate_waits(self):
        """Local flits have priority over SSRs: a packet buffered at the
        intermediate router kills the bypass."""
        net = make_network(NocKind.SMART, width=8, height=1)
        # A local packet at node 1 wants east.
        local = Packet(src=1, dst=7, msg_class=MessageClass.REQUEST,
                       created=net.cycle)
        net.send(local)
        # A through packet from node 0 would bypass node 1.
        through = Packet(src=0, dst=7, msg_class=MessageClass.REQUEST,
                         created=net.cycle)
        net.send(through)
        net.drain(max_cycles=500)
        # Both delivered; the through packet stopped at node 1 at least
        # once (its head cannot have covered the path purely in 2-hop
        # jumps: 7 hops with a contested first bypass).
        assert local.ejected is not None and through.ejected is not None

    def test_bypass_works_on_idle_straight_path(self):
        net = make_network(NocKind.SMART, width=8, height=1)
        pkt = Packet(src=0, dst=6, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=200)
        # 6 hops: stops at 0, 2, 4 (bypassing 1, 3, 5) = 3 stops of 3
        # cycles; vs 6 stops without bypass.  Latency must reflect
        # multi-hop traversal: below the no-bypass bound.
        no_bypass_bound = 2 + 6 * 3 + 2
        assert pkt.network_latency() < no_bypass_bound


class TestIdealBounds:
    @pytest.mark.parametrize("dst,hops", [(1, 1), (3, 3), (7, 7)])
    def test_latency_lower_bound(self, dst, hops):
        """Ideal latency >= ceil(hops / 2) move cycles + ejection."""
        net = make_network(NocKind.IDEAL, width=8, height=1)
        pkt = Packet(src=0, dst=dst, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=100)
        lower = -(-hops // 2) + 1
        assert pkt.network_latency() >= lower
