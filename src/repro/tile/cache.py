"""A set-associative cache with LRU replacement.

Used for the detailed (address-accurate) simulation mode of the LLC
slices and by examples/tests; the fast statistical mode used in the
paper-scale performance runs draws hits from the per-workload hit ratio
instead (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.tile.address import BLOCK_BYTES, block_of


class SetAssociativeCache:
    """LRU set-associative cache indexed by block address."""

    def __init__(self, size_bytes: int, ways: int,
                 block_bytes: int = BLOCK_BYTES):
        if size_bytes % (ways * block_bytes) != 0:
            raise ValueError("cache size must be a multiple of way size")
        self.block_bytes = block_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * block_bytes)
        if self.num_sets < 1:
            raise ValueError("cache has no sets")
        #: Per-set OrderedDict of block -> dirty flag (LRU order).
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _set_of(self, block: int) -> "OrderedDict[int, bool]":
        return self._sets[block % self.num_sets]

    def lookup(self, addr: int, write: bool = False) -> bool:
        """Probe the cache; updates LRU order and statistics."""
        block = block_of(addr)
        entries = self._set_of(block)
        if block in entries:
            entries.move_to_end(block)
            if write:
                entries[block] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Insert the block; returns the evicted block number, if any."""
        block = block_of(addr)
        entries = self._set_of(block)
        evicted = None
        if block not in entries and len(entries) >= self.ways:
            evicted, _dirty = entries.popitem(last=False)
        entries[block] = dirty or entries.get(block, False)
        entries.move_to_end(block)
        return evicted

    def contains(self, addr: int) -> bool:
        return block_of(addr) in self._set_of(block_of(addr))

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        """Each set is serialized in LRU order (OrderedDict order is the
        replacement policy's state, not an implementation detail)."""
        return {
            "sets": [
                [[block, dirty] for block, dirty in entries.items()]
                for entries in self._sets
            ],
            "hits": self.hits,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        self._sets = [
            OrderedDict((block, dirty) for block, dirty in entries)
            for entries in state["sets"]
        ]
        self.hits = state["hits"]
        self.misses = state["misses"]
