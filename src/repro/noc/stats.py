"""Network statistics: latency, throughput, hop counts, PRA counters.

The system-level performance model reads packet latencies directly; the
aggregated statistics here back the network-level experiments (load vs.
latency) and the Section V-B control-packet analysis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.noc.packet import Packet
from repro.params import MessageClass


def _mean(values: List[int]) -> float:
    return sum(values) / len(values) if values else 0.0


def _percentile(values: List[int], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for empty input)."""
    if not values:
        return 0.0
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("percentile fraction must be in [0, 1]")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return float(ordered[rank])


@dataclass
class NetworkStats:
    """Counters collected by a network over a simulation run."""

    packets_injected: int = 0
    packets_ejected: int = 0
    flits_ejected: int = 0
    total_hops: int = 0
    network_latencies: List[int] = field(default_factory=list)
    total_latencies: List[int] = field(default_factory=list)
    per_class_latency: Dict[MessageClass, List[int]] = field(
        default_factory=lambda: {mc: [] for mc in MessageClass}
    )
    #: Cycles packets spent blocked behind resources proactively
    #: allocated to *other* packets (Section V-B underutilization stat).
    pra_blocked_cycles: int = 0
    #: PRA control-network counters (zero for non-PRA organizations).
    control_packets_injected: int = 0
    #: Control packets dropped at the injection latch (never entered).
    control_injection_conflicts: int = 0
    control_lag_at_drop: Counter = field(default_factory=Counter)
    control_drop_reasons: Counter = field(default_factory=Counter)
    #: Data packets that began traversal with a pre-allocated path.
    pra_planned_packets: int = 0

    def record_injection(self, packet: Packet) -> None:
        self.packets_injected += 1

    def record_ejection(self, packet: Packet) -> None:
        self.packets_ejected += 1
        self.flits_ejected += packet.size
        self.total_hops += packet.hops_taken
        net = packet.network_latency()
        tot = packet.total_latency()
        if net is not None:
            self.network_latencies.append(net)
            self.per_class_latency[packet.msg_class].append(net)
        if tot is not None:
            self.total_latencies.append(tot)
        self.pra_blocked_cycles += packet.pra_blocked_cycles

    # -- summaries -------------------------------------------------------

    @property
    def avg_network_latency(self) -> float:
        return _mean(self.network_latencies)

    @property
    def avg_total_latency(self) -> float:
        return _mean(self.total_latencies)

    @property
    def avg_hops(self) -> float:
        if not self.packets_ejected:
            return 0.0
        return self.total_hops / self.packets_ejected

    def avg_class_latency(self, mc: MessageClass) -> float:
        return _mean(self.per_class_latency[mc])

    def latency_percentile(self, fraction: float) -> float:
        """Network-latency percentile (e.g. 0.99 for the p99 tail)."""
        return _percentile(self.network_latencies, fraction)

    def latency_histogram(self, bucket: int = 4) -> Dict[int, int]:
        """Latencies bucketed into ``bucket``-cycle bins (lower edge)."""
        if bucket < 1:
            raise ValueError("bucket width must be positive")
        hist: Dict[int, int] = {}
        for latency in self.network_latencies:
            edge = (latency // bucket) * bucket
            hist[edge] = hist.get(edge, 0) + 1
        return dict(sorted(hist.items()))

    @property
    def in_flight(self) -> int:
        return self.packets_injected - self.packets_ejected

    @property
    def control_packets_per_data_packet(self) -> float:
        if not self.packets_injected:
            return 0.0
        return self.control_packets_injected / self.packets_injected

    def lag_distribution(self) -> Dict[int, float]:
        """Fraction of control packets dropped at each lag (Figure 7)."""
        total = sum(self.control_lag_at_drop.values())
        if not total:
            return {}
        return {
            lag: count / total
            for lag, count in sorted(self.control_lag_at_drop.items())
        }

    def pra_blocked_fraction(self) -> float:
        """Blocked-behind-reservation time over total network time."""
        total_time = sum(self.network_latencies)
        if not total_time:
            return 0.0
        return self.pra_blocked_cycles / total_time

    def summary(self) -> Dict[str, float]:
        return {
            "packets_injected": self.packets_injected,
            "packets_ejected": self.packets_ejected,
            "packets_unfinished": self.in_flight,
            "avg_network_latency": self.avg_network_latency,
            "avg_total_latency": self.avg_total_latency,
            "avg_hops": self.avg_hops,
            "control_packets_per_data_packet": self.control_packets_per_data_packet,
        }
