"""Routers: the base pipeline and the baseline mesh router.

The baseline mesh router (Table I) is a 1-stage speculative router: a
head flit that arrived by the start of cycle *t* performs routing, VC
allocation, and speculative crossbar allocation during *t*, then crosses
the crossbar and link during *t+1*, becoming allocation-eligible at the
next router at *t+2* — two cycles per hop at zero load.

Switch allocation is packet-granular: once a head flit wins an output
port, the port is held until the packet's tail is sent.  This keeps the
flits of a multi-flit packet contiguous on every link, which (a) matches
the paper's framing of in-network blocking ("the output port is busy
forwarding a multi-flit packet") and (b) makes the release time of a
blocked port deterministic whenever the downstream buffer can absorb the
in-flight packet — the property the Long Stall Detection unit exploits.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Dict, List, Optional, Set, Tuple

from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.ports import OutputPort
from repro.noc.routing import xy_next_direction
from repro.noc.topology import CARDINALS, Direction
from repro.noc.vc import InputUnit, VirtualChannel
from repro.trace.events import (
    EV_SWITCH_GRANT,
    EV_SWITCH_HOLD,
    EV_SWITCH_RELEASE,
    EV_VC_ALLOC,
)

#: Fixed port processing order inside a cycle.
PORT_ORDER = (
    Direction.LOCAL,
    Direction.NORTH,
    Direction.EAST,
    Direction.SOUTH,
    Direction.WEST,
)

#: Cycles from a flit's dequeue to the upstream credit increment
#: (one cycle switch+link traversal, one cycle credit wire).
CREDIT_DELAY = 2

#: Sort key for round-robin candidate ordering.
_RR_KEY = attrgetter("rr_key")


class BaseRouter:
    """Shared structure of all router types: input units and ports."""

    def __init__(self, node: int, network):
        self.node = node
        self.network = network
        self.topology = network.topology
        params = network.params.router
        self.num_vcs = params.vcs_per_port
        self.vc_depth = params.flits_per_vc
        self.input_units: Dict[Direction, InputUnit] = {}
        self.output_ports: Dict[Direction, OutputPort] = {}
        #: Flits currently buffered in this router (early-exit counter).
        self.active_flits = 0
        #: Round-robin state per output direction: the (input direction,
        #: vc index) key last granted, or None before the first grant.
        #: Advancing relative to the previous *grant* (instead of a
        #: monotonically increasing pointer indexed into a list whose
        #: membership changes every cycle) is what makes arbitration
        #: fair under churning candidate sets.
        self._rr: Dict[Direction, Optional[Tuple[int, int]]] = {
            d: None for d in PORT_ORDER
        }

        self.input_units[Direction.LOCAL] = InputUnit(
            Direction.LOCAL, self.num_vcs, self.vc_depth
        )
        for direction in CARDINALS:
            if self.topology.neighbor(node, direction) is not None:
                self.input_units[direction] = InputUnit(
                    direction, self.num_vcs, self.vc_depth
                )
                self.output_ports[direction] = self._make_output_port(direction)
        # Ejection port toward the NI (wired by the network).
        self.output_ports[Direction.LOCAL] = self._make_output_port(
            Direction.LOCAL
        )
        self._unit_list: List[InputUnit] = list(self.input_units.values())
        #: Direct handles into the topology's route memo (the candidate
        #: scan resolves a route per buffered head flit every cycle).
        self._dir_cache = self.topology._xy_dir_cache
        self._route_base = node * self.topology.num_nodes
        self._rebuild_port_cache()

    def _rebuild_port_cache(self) -> None:
        """Refresh cached port and VC lists (call after adding ports)."""
        #: Cardinal (router-to-router) output ports, in PORT_ORDER.
        self.cardinal_ports: List[OutputPort] = [
            self.output_ports[d] for d in CARDINALS if d in self.output_ports
        ]
        #: All output ports in fixed processing order.
        self.port_list: List[OutputPort] = [
            self.output_ports[d] for d in PORT_ORDER if d in self.output_ports
        ]
        #: Every input VC, flattened in fixed unit order (hot-scan list).
        self._vc_list: List[VirtualChannel] = [
            vc for unit in self._unit_list for vc in unit.vcs
        ]

    def _make_output_port(self, direction: Direction) -> OutputPort:
        return OutputPort(
            router=self,
            direction=direction,
            network=self.network,
            num_vcs=self.num_vcs,
            vc_depth=self.vc_depth,
        )

    # -- flit reception -----------------------------------------------------

    def receive_flit(self, direction: Direction, vc_index: int, flit: Flit) -> None:
        self.input_units[direction].receive(flit, vc_index)
        self.active_flits += 1
        self.network.wake_router(self.node)

    def has_work(self) -> bool:
        """Whether this router must be stepped again next cycle."""
        return self.active_flits > 0

    def route_of(self, packet: Packet) -> Direction:
        """Output direction the packet takes from this router."""
        direction = self._dir_cache.get(self._route_base + packet.dst)
        if direction is None:
            direction = xy_next_direction(self.topology, self.node, packet.dst)
        return direction

    # -- per-cycle processing -----------------------------------------------

    def step(self, now: int) -> None:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    def _pop_and_send(
        self, port: OutputPort, vc: VirtualChannel, now: int,
        charge_credit: bool = True,
    ) -> Flit:
        """Dequeue the front flit of ``vc`` and transmit it on ``port``."""
        flit = vc.pop()
        self.active_flits -= 1
        feeder = vc.unit.feeder_port
        if feeder is not None:
            self.network.schedule_credit(
                now + CREDIT_DELAY, feeder, vc.index
            )
        port.send(flit, now, charge_credit=charge_credit)
        return flit

    def _collect_head_candidates(self) -> Dict[Direction, List[VirtualChannel]]:
        """One pass over all input VCs: head flits grouped by the output
        direction they request.  Built once per cycle and shared by all
        output ports (and by LSD in the PRA router)."""
        candidates: Dict[Direction, List[VirtualChannel]] = {}
        dir_cache = self._dir_cache
        route_base = self._route_base
        for vc in self._vc_list:
            flits = vc.flits
            if not flits:
                continue
            front = flits[0]
            if not front.is_head:
                continue
            direction = dir_cache.get(route_base + front.packet.dst)
            if direction is None:
                direction = self.route_of(front.packet)
            group = candidates.get(direction)
            if group is None:
                candidates[direction] = [vc]
            else:
                group.append(vc)
        return candidates

    def _head_candidates(
        self, direction: Direction, used_inputs: Set[Direction]
    ) -> List[VirtualChannel]:
        """Input VCs whose front flit is a head routed to ``direction``."""
        return [
            vc
            for vc in self._collect_head_candidates().get(direction, [])
            if vc.unit.direction not in used_inputs
        ]

    def _round_robin_pick(
        self, direction: Direction, candidates: List[VirtualChannel]
    ) -> VirtualChannel:
        """Grant the first candidate strictly after the last grantee in
        cyclic (input direction, vc index) order.

        The candidate list's membership changes every cycle, so the
        pointer must be anchored to the previously granted *key*, not an
        index into the list: an index-modulo scheme can starve a VC
        indefinitely when membership oscillates.
        """
        candidates.sort(key=_RR_KEY)
        last = self._rr[direction]
        choice = candidates[0]
        if last is not None:
            for vc in candidates:
                if vc.rr_key > last:
                    choice = vc
                    break
        self._rr[direction] = choice.rr_key
        return choice

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        """Mutable router state; wiring and caches are reconstruction."""
        return {
            "units": [
                [int(direction), [vc.state_dict(ctx) for vc in unit.vcs]]
                for direction, unit in self.input_units.items()
            ],
            "ports": [
                [int(direction), port.state_dict(ctx)]
                for direction, port in self.output_ports.items()
            ],
            "active_flits": self.active_flits,
            "rr": [
                [int(direction), list(key) if key is not None else None]
                for direction, key in self._rr.items()
            ],
        }

    def load_state(self, state: dict, ctx) -> None:
        for direction_value, vc_states in state["units"]:
            unit = self.input_units[Direction(direction_value)]
            for vc, vc_state in zip(unit.vcs, vc_states):
                vc.load_state(vc_state, ctx)
        for direction_value, port_state in state["ports"]:
            self.output_ports[Direction(direction_value)].load_state(
                port_state, ctx
            )
        self.active_flits = state["active_flits"]
        self._rr = {
            Direction(direction_value):
                tuple(key) if key is not None else None
            for direction_value, key in state["rr"]
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(node={self.node})"


class MeshRouter(BaseRouter):
    """The baseline 1-stage speculative mesh router."""

    def step(self, now: int) -> None:
        if self.active_flits == 0:
            return
        faults = self.network.faults
        if faults.enabled and faults.router_stalled(self.node, now):
            return
        used_inputs: Set[Direction] = set()
        candidates = self._collect_head_candidates()
        for port in self.port_list:
            if faults.enabled and port.fault_stalled(now):
                continue
            if port.held_by is not None:
                self._advance_held(port, now, used_inputs)
            else:
                direction = port.direction
                group = candidates.get(direction)
                if group:
                    self._try_grant(port, direction, now, used_inputs, group)

    # -- switch traversal of an in-progress packet ---------------------------

    def _advance_held(
        self, port: OutputPort, now: int, used_inputs: Set[Direction]
    ) -> None:
        vc = port.active_vc
        if vc is None:
            return
        front = vc.front()
        if front is None or front.packet is not port.held_by:
            self._trace_hold(port, now, "awaiting_flit")
            return  # next flit still in flight from upstream
        if vc.unit.direction in used_inputs:
            self._trace_hold(port, now, "input_busy")
            return
        if not port.has_credit_for(port.held_dst_vc):
            self._trace_hold(port, now, "no_credit")
            return
        used_inputs.add(vc.unit.direction)
        flit = self._pop_and_send(port, vc, now)
        if flit.is_tail:
            port.release()
            tracer = self.network.tracer
            if tracer.enabled:
                tracer.emit(now, EV_SWITCH_RELEASE, pid=flit.packet.pid,
                            node=self.node, direction=port.direction.name)

    def _trace_hold(self, port: OutputPort, now: int, reason: str) -> None:
        """Record a held port that could not advance this cycle."""
        tracer = self.network.tracer
        if tracer.enabled:
            tracer.emit(
                now, EV_SWITCH_HOLD,
                pid=port.held_by.pid if port.held_by is not None else None,
                node=self.node,
                direction=port.direction.name,
                reason=reason,
            )

    # -- head-flit allocation (RC + VA + speculative SA in one cycle) --------

    def _try_grant(
        self, port: OutputPort, direction: Direction, now: int,
        used_inputs: Set[Direction],
        candidates: Optional[List[VirtualChannel]] = None,
    ) -> None:
        if candidates is None:
            candidates = self._head_candidates(direction, used_inputs)
            eligible = [
                vc for vc in candidates
                if self._may_grant(port, vc.front().packet, now)
            ]
        else:
            eligible = [
                vc for vc in candidates
                if vc.unit.direction not in used_inputs
                and self._may_grant(port, vc.front().packet, now)
            ]
        if not eligible:
            return
        vc = self._round_robin_pick(direction, eligible)
        packet = vc.front().packet
        self._grant(port, vc, packet, now, used_inputs)

    def _may_grant(self, port: OutputPort, packet: Packet, now: int) -> bool:
        """VC-allocation check; the PRA router layers reservation rules."""
        return port.can_allocate_vc(packet)

    def _grant(
        self,
        port: OutputPort,
        vc: VirtualChannel,
        packet: Packet,
        now: int,
        used_inputs: Set[Direction],
    ) -> None:
        tracer = self.network.tracer
        if not port.is_ejection:
            port.downstream_vc(packet.vc_index).allocated_to = packet
            boundary = self.network.boundary
            if boundary is not None:
                # Sharded runs mirror VC allocations whose downstream
                # router lives in another shard (the write above landed
                # on a local replica; the owner must replay it).
                boundary.note_grant(port, packet, now)
            if tracer.enabled:
                tracer.emit(now, EV_VC_ALLOC, pid=packet.pid, node=self.node,
                            direction=port.direction.name,
                            vc=packet.vc_index)
        port.hold(packet, source_vc=vc)
        if tracer.enabled:
            tracer.emit(now, EV_SWITCH_GRANT, pid=packet.pid, node=self.node,
                        direction=port.direction.name,
                        input=vc.unit.direction.name, input_vc=vc.index)
        used_inputs.add(vc.unit.direction)
        flit = self._pop_and_send(port, vc, now)
        if flit.is_tail:
            port.release()
            if tracer.enabled:
                tracer.emit(now, EV_SWITCH_RELEASE, pid=packet.pid,
                            node=self.node, direction=port.direction.name)
