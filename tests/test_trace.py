"""Tests for the cycle-level event-tracing layer (repro.trace)."""

import json

import pytest

from repro.cli import main
from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind
from repro.perf.instrumentation import PraProbe, attribution_from_events
from repro.trace import (
    EV_CONTROL_DROP,
    EV_CONTROL_INJECT,
    EV_CONTROL_SEGMENT,
    EV_EJECT,
    EV_LATCH_BYPASS,
    EV_LINK,
    EV_PACKET_INJECT,
    EV_RESERVATION_COMMIT,
    NULL_TRACER,
    RingTracer,
    TraceEvent,
    delivered_pids,
    planned_pids,
    read_jsonl,
    reconstruct,
    timelines_by_pid,
)
from tests.helpers import make_network


def traced_pra_run(src=0, dst=4, ready_in=4, **tracer_kwargs):
    """One announced response crossing a PRA mesh under tracing."""
    net = make_network(NocKind.MESH_PRA, width=8, height=8)
    tracer = RingTracer(**tracer_kwargs)
    net.attach(tracer=tracer)
    pkt = Packet(src=src, dst=dst, msg_class=MessageClass.RESPONSE,
                 created=net.cycle)
    net.announce(pkt, ready_in=ready_in)
    net.run(ready_in)
    net.send(pkt)
    net.drain(max_cycles=300)
    return net, tracer, pkt


class TestRingTracer:
    def test_emission_and_retrieval(self):
        tracer = RingTracer()
        tracer.emit(3, EV_LINK, pid=7, node=1, direction="EAST")
        tracer.emit(4, EV_EJECT, pid=7, node=2)
        assert len(tracer) == 2
        assert [e.kind for e in tracer.events(pid=7)] == [EV_LINK, EV_EJECT]
        assert tracer.events(kinds=[EV_EJECT])[0].cycle == 4

    def test_ring_bound_evicts_oldest(self):
        tracer = RingTracer(capacity=4)
        for cycle in range(10):
            tracer.emit(cycle, EV_LINK, pid=cycle)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert [e.cycle for e in tracer.events()] == [6, 7, 8, 9]

    def test_pid_filter(self):
        tracer = RingTracer(pids=[1])
        tracer.emit(0, EV_LINK, pid=1)
        tracer.emit(0, EV_LINK, pid=2)
        assert [e.pid for e in tracer.events()] == [1]

    def test_cycle_window_filter(self):
        tracer = RingTracer(cycle_window=(5, 8))
        for cycle in range(12):
            tracer.emit(cycle, EV_LINK, pid=0)
        assert [e.cycle for e in tracer.events()] == [5, 6, 7]

    def test_subscribers_see_evicted_events(self):
        seen = []
        tracer = RingTracer(capacity=1)
        tracer.subscribe(seen.append)
        tracer.emit(0, EV_LINK, pid=0)
        tracer.emit(1, EV_LINK, pid=1)
        assert len(seen) == 2
        assert len(tracer) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)


class TestJsonlRoundtrip:
    def test_write_and_read_back(self, tmp_path):
        tracer = RingTracer()
        tracer.emit(1, EV_PACKET_INJECT, pid=3, node=0, dst=9, size=5)
        tracer.emit(2, EV_LINK, pid=3, node=0, direction="EAST", flit=0)
        path = tmp_path / "t.jsonl"
        assert tracer.write_jsonl(str(path)) == 2
        back = read_jsonl(str(path))
        assert [e.to_dict() for e in back] == [
            e.to_dict() for e in tracer.events()
        ]
        # Each line is standalone JSON.
        lines = path.read_text().strip().splitlines()
        assert json.loads(lines[0])["kind"] == EV_PACKET_INJECT

    def test_event_dict_roundtrip(self):
        event = TraceEvent(9, EV_CONTROL_DROP, pid=1, node=4,
                           data={"reason": "lag_zero", "lag": 0}, seq=17)
        back = TraceEvent.from_dict(json.loads(event.to_json()))
        assert back.to_dict() == event.to_dict()


class TestNullTracer:
    def test_networks_default_to_null(self):
        net = make_network(NocKind.MESH)
        assert net.tracer is NULL_TRACER
        assert not net.tracer.enabled

    def test_attach_detach(self):
        net = make_network(NocKind.MESH)
        tracer = RingTracer()
        net.attach(tracer=tracer)
        assert net.tracer is tracer
        net.attach(tracer=None)
        assert net.tracer is NULL_TRACER

    def test_tracing_does_not_change_outcomes(self):
        def run(traced):
            net = make_network(NocKind.MESH_PRA, width=4, height=4)
            if traced:
                net.attach(tracer=RingTracer())
            pkts = [
                Packet(src=s, dst=(s + 5) % 16,
                       msg_class=MessageClass.RESPONSE, created=0)
                for s in range(8)
            ]
            for p in pkts:
                net.announce(p, ready_in=4)
            net.run(4)
            for p in pkts:
                net.send(p)
            net.drain(max_cycles=500)
            return (net.stats.packets_ejected, net.stats.avg_network_latency,
                    dict(net.stats.control_drop_reasons))

        assert run(traced=False) == run(traced=True)


class TestPlannedTimeline:
    def test_planned_response_full_sequence(self):
        """The acceptance path: a planned response's timeline recovers
        the exact control-segment/reservation/latch-bypass sequence."""
        net, tracer, pkt = traced_pra_run(src=0, dst=4)
        timeline = reconstruct(tracer.events(), pkt.pid)
        assert timeline.is_planned
        assert timeline.network_latency == pkt.network_latency()
        # Control lifecycle: injection, then (commit, segment) per 2-hop
        # step, the ejection commit, and the terminal drop.
        control_kinds = [e.kind for e in timeline.control_events()]
        assert control_kinds == [
            EV_CONTROL_INJECT,
            EV_RESERVATION_COMMIT, EV_CONTROL_SEGMENT,
            EV_RESERVATION_COMMIT, EV_CONTROL_SEGMENT,
            EV_RESERVATION_COMMIT,
            EV_CONTROL_DROP,
        ]
        drops = timeline.control_events()[-1]
        assert drops.data["reason"] == "reached_destination"
        # Plan geometry: two 2-hop steps then the 1-hop ejection, on
        # consecutive slots, matching the committed plan exactly.
        commits = [e for e in timeline.events
                   if e.kind == EV_RESERVATION_COMMIT]
        assert [c.data["hops"] for c in commits] == [2, 2, 1]
        slots = [c.data["slot"] for c in commits]
        assert slots == list(range(slots[0], slots[0] + 3))
        # Every flit of every step was driven over the bypass/latch path.
        bypasses = [e for e in timeline.events if e.kind == EV_LATCH_BYPASS]
        assert len(bypasses) == 3 * pkt.size
        assert {b.data["landing_kind"] for b in bypasses} == {"latch", "ni"}

    def test_helpers_find_planned_and_delivered(self):
        net, tracer, pkt = traced_pra_run(src=0, dst=2)
        events = tracer.events()
        assert pkt.pid in planned_pids(events)
        assert pkt.pid in delivered_pids(events)
        assert pkt.pid in timelines_by_pid(events)

    def test_unplanned_packet_timeline(self):
        net = make_network(NocKind.MESH)
        tracer = RingTracer()
        net.attach(tracer=tracer)
        pkt = Packet(src=0, dst=3, msg_class=MessageClass.REQUEST, created=0)
        net.send(pkt)
        net.drain(max_cycles=200)
        timeline = reconstruct(tracer.events(), pkt.pid)
        assert not timeline.is_planned
        kinds = timeline.kinds()
        assert kinds[0] == EV_PACKET_INJECT
        assert kinds[-1] == EV_EJECT
        assert EV_LINK in kinds
        assert "vc_alloc" in kinds and "switch_grant" in kinds
        assert timeline.render().startswith(f"packet {pkt.pid}")


class TestAttributionFromTrace:
    def test_offline_matches_live_probe(self):
        net = make_network(NocKind.MESH_PRA, width=8, height=8)
        probe = PraProbe.attach(net)
        tracer = net.tracer  # the probe's own tracer
        collected = []
        tracer.subscribe(collected.append)
        for s in range(6):
            pkt = Packet(src=s, dst=s + 8, msg_class=MessageClass.RESPONSE,
                         created=net.cycle)
            net.announce(pkt, ready_in=4)
            net.run(4)
            net.send(pkt)
        net.drain(max_cycles=800)
        live = probe.report()
        offline = attribution_from_events(collected)
        assert live.planned_responses == offline.planned_responses
        assert live.unplanned_responses == offline.unplanned_responses
        assert live.plan_lengths == offline.plan_lengths
        assert live.planned_responses + live.unplanned_responses == 6


class TestTraceCli:
    def test_trace_command_end_to_end(self, tmp_path, capsys):
        """Acceptance: `repro trace --workload web --noc mesh_pra
        --cycles 200` emits JSONL from which the reconstructor recovers
        a planned response's control/reservation/bypass sequence."""
        out = tmp_path / "trace.jsonl"
        rc = main(["trace", "--workload", "web", "--noc", "mesh_pra",
                   "--cycles", "200", "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "events" in printed
        events = read_jsonl(str(out))
        assert events, "trace file is empty"
        candidates = planned_pids(events) & delivered_pids(events)
        assert candidates, "no planned packet delivered in the window"
        best = max(candidates,
                   key=lambda p: len(reconstruct(events, p).plan_sequence()))
        timeline = reconstruct(events, best)
        kinds = set(timeline.kinds())
        assert EV_CONTROL_INJECT in kinds
        assert EV_RESERVATION_COMMIT in kinds
        assert EV_LATCH_BYPASS in kinds
        # The reconstructed plan is internally consistent: commits come
        # before the bypass traversals that execute them.
        seq = [e.kind for e in timeline.plan_sequence()]
        assert seq.index(EV_RESERVATION_COMMIT) < seq.index(EV_LATCH_BYPASS)

    def test_trace_command_packet_filter(self, tmp_path, capsys):
        out = tmp_path / "pid.jsonl"
        rc = main(["trace", "--workload", "web", "--noc", "mesh_pra",
                   "--cycles", "60", "--warmup", "60", "--packet", "5",
                   "--out", str(out)])
        assert rc == 0
        events = read_jsonl(str(out))
        assert all(e.pid == 5 for e in events)

    def test_simulate_trace_flag(self, tmp_path, capsys):
        out = tmp_path / "sim.jsonl"
        rc = main(["simulate", "web", "--noc", "mesh_pra",
                   "--warmup", "100", "--measure", "200",
                   "--trace", str(out)])
        assert rc == 0
        assert "trace:" in capsys.readouterr().out
        assert read_jsonl(str(out))

    def test_workload_and_noc_aliases(self, capsys):
        rc = main(["simulate", "web", "--noc", "mesh_pra",
                   "--warmup", "50", "--measure", "100"])
        assert rc == 0
        assert "Web Search" in capsys.readouterr().out
