"""Self-measuring benchmark harness (``python -m repro bench``).

The harness answers one question continuously: *how fast is the
simulator on this machine, right now?*  It runs a pinned suite of
micro-benchmarks (cycles/second per network organization on the smoke
workload) and one macro-benchmark (wall time of the full evaluation
grid), writes the results to a ``BENCH_<stamp>.json`` report, and can
diff two reports — normalizing by a per-machine calibration loop so
reports from different hosts remain comparable.

See ``docs/performance.md`` for the profiling workflow built on top.
"""

from repro.bench.harness import (
    calibrate,
    compare_reports,
    machine_info,
    profile_micro,
    render_compare,
    render_report,
    run_analytic,
    run_bench,
    write_report,
)

__all__ = [
    "calibrate",
    "compare_reports",
    "machine_info",
    "profile_micro",
    "render_compare",
    "render_report",
    "run_analytic",
    "run_bench",
    "write_report",
]
