"""Deterministic fault injection for the chaos harness.

The paper's safety argument is that proactive allocation is *speculative
but harmless*: a control packet that cannot reserve what it needs is
dropped and the data packet falls back to ordinary hop-by-hop
allocation.  This package stresses that claim on purpose: a
:class:`FaultSchedule` describes a reproducible set of adverse events
(control-packet drops, ACK loss, reservation expiry, router/link stalls,
multi-drop segment blackouts) and a :class:`FaultInjector` applies them
at named sites inside the simulator.  The null object
(:data:`NULL_FAULTS`) keeps every site to a single attribute check when
fault injection is off, exactly like the trace layer's ``NULL_TRACER``.
"""

from repro.faults.injector import FaultInjector, NullFaultInjector, NULL_FAULTS
from repro.faults.schedule import (
    FaultSchedule,
    LinkStall,
    SegmentBlackout,
    StallWindow,
    mix01,
)

__all__ = [
    "FaultInjector",
    "FaultSchedule",
    "LinkStall",
    "NULL_FAULTS",
    "NullFaultInjector",
    "SegmentBlackout",
    "StallWindow",
    "mix01",
]
