"""Synthetic per-core memory access traces.

Generates the address-accurate access stream for the detailed simulation
mode: instruction fetches walk a large instruction footprint (the
defining property of server workloads [1], [2]), data accesses mix a
hot working set with a cold zipf-ish tail.  The fast statistical mode
bypasses explicit addresses; this generator backs the detailed LLC mode
and the examples.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.tile.address import BLOCK_BYTES
from repro.workloads.profiles import WorkloadProfile


@dataclass
class Access:
    addr: int
    is_instruction: bool
    is_write: bool


class AccessTraceGenerator:
    """Per-core generator of L1-miss accesses for one workload."""

    #: Instruction footprint far beyond L1-I capacity (paper Section I).
    INSTRUCTION_FOOTPRINT_BYTES = 16 * 1024 * 1024
    #: Hot data working set per core.
    HOT_DATA_BYTES = 2 * 1024 * 1024
    #: Cold data region (shared, rarely re-referenced).
    COLD_DATA_BYTES = 512 * 1024 * 1024

    #: Address-space bases keep the regions disjoint.
    _INSTR_BASE = 0x0000_0000
    _HOT_BASE = 0x4000_0000
    _COLD_BASE = 0x8000_0000

    def __init__(self, profile: WorkloadProfile, core_id: int, seed: int = 0):
        self.profile = profile
        self.core_id = core_id
        self.rng = random.Random(hash((seed, core_id)) & 0x7FFFFFFF)
        # Each core executes its own service threads but shares the
        # instruction footprint (OS + application code).
        self._instr_blocks = self.INSTRUCTION_FOOTPRINT_BYTES // BLOCK_BYTES
        self._hot_blocks = self.HOT_DATA_BYTES // BLOCK_BYTES
        self._cold_blocks = self.COLD_DATA_BYTES // BLOCK_BYTES

    def next_gap(self) -> int:
        """Instructions executed before the next L1 miss (geometric)."""
        mean = self.profile.mean_instructions_between_misses
        # Exponential (geometric in the limit) with the given mean.
        u = self.rng.random()
        gap = int(-mean * math.log(u)) if u > 0 else 1
        return max(1, gap)

    def next_access(self) -> Access:
        """The next missing access (its type and address)."""
        is_instruction = (
            self.rng.random() < self.profile.instruction_miss_fraction
        )
        if is_instruction:
            block = self.rng.randrange(self._instr_blocks)
            return Access(
                addr=self._INSTR_BASE + block * BLOCK_BYTES,
                is_instruction=True,
                is_write=False,
            )
        is_write = self.rng.random() < self.profile.write_fraction
        if self.rng.random() < 0.8:
            block = self.rng.randrange(self._hot_blocks)
            base = self._HOT_BASE + self.core_id * self.HOT_DATA_BYTES
        else:
            block = self.rng.randrange(self._cold_blocks)
            base = self._COLD_BASE
        return Access(
            addr=base + block * BLOCK_BYTES,
            is_instruction=False,
            is_write=is_write,
        )

    def stream(self, count: int) -> Iterator[Tuple[int, Access]]:
        """Yield ``count`` (instruction_gap, access) pairs."""
        for _ in range(count):
            yield self.next_gap(), self.next_access()

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> dict:
        from repro.checkpoint.codec import rng_state

        return {"rng": rng_state(self.rng)}

    def load_state(self, state: dict) -> None:
        from repro.checkpoint.codec import set_rng_state

        set_rng_state(self.rng, state["rng"])
