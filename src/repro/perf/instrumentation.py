"""Latency-attribution instrumentation for Mesh+PRA analysis.

The EXPERIMENTS.md gap analysis needs to know *where* latency goes:
planned vs. unplanned responses, requests, and how far plans carry their
packets.  :class:`PraProbe` collects exactly that by subscribing to the
network's trace-event stream (:mod:`repro.trace`): packet injections and
ejections bound each latency, and reservation commits identify planned
packets and plan lengths.  Observation never perturbs simulation
behavior — the tracer only records.

Example::

    probe = PraProbe.attach(sim.chip.network)
    sim.run_sample(...)
    report = probe.report()
    print(report.planned_response_latency, report.request_latency)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.noc.network import Network
from repro.params import MessageClass
from repro.trace.events import (
    EV_CONTROL_INJECT,
    EV_EJECT,
    EV_PACKET_INJECT,
    EV_RESERVATION_COMMIT,
    TraceEvent,
)
from repro.trace.tracer import RingTracer

#: The probe only needs the stream, not retention; keep its private
#: ring small so long probed runs stay cheap.
_PROBE_RING_CAPACITY = 1024


@dataclass
class LatencyReport:
    """Aggregated attribution over the probed interval."""

    planned_responses: int = 0
    unplanned_responses: int = 0
    requests: int = 0
    planned_response_latency: float = 0.0
    unplanned_response_latency: float = 0.0
    request_latency: float = 0.0
    #: Histogram of plan lengths (single-cycle steps) at run end.
    plan_lengths: Dict[int, int] = field(default_factory=dict)

    @property
    def planned_fraction(self) -> float:
        total = self.planned_responses + self.unplanned_responses
        return self.planned_responses / total if total else 0.0

    @property
    def mean_plan_length(self) -> float:
        total = sum(self.plan_lengths.values())
        if not total:
            return 0.0
        return sum(k * v for k, v in self.plan_lengths.items()) / total


def attribution_from_events(events) -> LatencyReport:
    """Build a :class:`LatencyReport` from a finished trace (a list of
    :class:`~repro.trace.events.TraceEvent` or a loaded JSONL trace).

    The offline twin of :class:`PraProbe`: the same attribution, derived
    after the fact from an exported trace instead of a live stream.
    """
    sink = _AttributionSink()
    for event in events:
        sink.consume(event)
    return sink.report()


class _AttributionSink:
    """Shared event-folding logic for live probes and offline traces."""

    def __init__(self) -> None:
        #: pid -> (injection cycle, message class name).
        self._injected: Dict[int, Tuple[int, str]] = {}
        self._planned_pids: Set[int] = set()
        self._plan_lengths: Dict[int, int] = {}
        self._lat: Dict[str, List[int]] = {
            "planned": [], "unplanned": [], "request": [],
        }

    def consume(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == EV_PACKET_INJECT:
            self._injected[event.pid] = (
                event.cycle, event.data.get("msg_class", "")
            )
        elif kind == EV_RESERVATION_COMMIT:
            self._planned_pids.add(event.pid)
            self._plan_lengths[event.pid] = (
                self._plan_lengths.get(event.pid, 0) + 1
            )
        elif kind == EV_CONTROL_INJECT:
            # A fresh control packet restarts the packet's plan-length
            # count (a later run supersedes a cancelled earlier plan).
            if event.data.get("accepted"):
                self._plan_lengths[event.pid] = 0
        elif kind == EV_EJECT:
            info = self._injected.pop(event.pid, None)
            if info is None:
                return  # injected before the probed interval
            injected_at, msg_class = info
            latency = event.cycle - injected_at
            if msg_class == MessageClass.RESPONSE.name:
                bucket = ("planned" if event.pid in self._planned_pids
                          else "unplanned")
                self._lat[bucket].append(latency)
            elif msg_class == MessageClass.REQUEST.name:
                self._lat["request"].append(latency)

    def report(self) -> LatencyReport:
        def mean(xs: List[int]) -> float:
            return sum(xs) / len(xs) if xs else 0.0

        lengths: Dict[int, int] = {}
        for pid, steps in self._plan_lengths.items():
            if steps:
                lengths[steps] = lengths.get(steps, 0) + 1
        return LatencyReport(
            planned_responses=len(self._lat["planned"]),
            unplanned_responses=len(self._lat["unplanned"]),
            requests=len(self._lat["request"]),
            planned_response_latency=mean(self._lat["planned"]),
            unplanned_response_latency=mean(self._lat["unplanned"]),
            request_latency=mean(self._lat["request"]),
            plan_lengths=lengths,
        )


class PraProbe:
    """Live latency-attribution observer, fed by the network's tracer.

    If the network already has a tracer attached, the probe subscribes
    to it; otherwise it attaches a small private ring tracer.  Either
    way the simulation's outcomes are untouched.
    """

    def __init__(self, network: Network):
        self.network = network
        self._sink = _AttributionSink()
        self._installed = False
        self._own_tracer: Optional[RingTracer] = None

    @classmethod
    def attach(cls, network: Network) -> "PraProbe":
        probe = cls(network)
        probe.install()
        return probe

    def install(self) -> None:
        if self._installed:
            raise RuntimeError("probe already installed")
        self._installed = True
        tracer = self.network.tracer
        if not tracer.enabled:
            tracer = RingTracer(capacity=_PROBE_RING_CAPACITY)
            self.network.attach(tracer=tracer)
            self._own_tracer = tracer
        tracer.subscribe(self._sink.consume)

    def uninstall(self) -> None:
        """Detach the probe's private tracer, if it attached one."""
        if self._own_tracer is not None and (
            self.network.tracer is self._own_tracer
        ):
            self.network.attach(tracer=None)
        self._own_tracer = None

    def report(self) -> LatencyReport:
        return self._sink.report()
