"""Per-packet timeline reconstruction from trace events.

A :class:`PacketTimeline` is the ordered lifecycle of one packet,
rebuilt purely from :class:`~repro.trace.events.TraceEvent` records (a
live ring buffer or a JSONL file) — no simulator state needed.  For a
planned (PRA) response it recovers the exact control-segment →
reservation-commit → latch-bypass sequence the control network built
and the data packet then rode, which is the ground truth behind the
paper's Figure 7 argument.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.trace.events import (
    EV_CONTROL_DROP,
    EV_CONTROL_INJECT,
    EV_CONTROL_SEGMENT,
    EV_EJECT,
    EV_PACKET_INJECT,
    EV_RESERVATION_COMMIT,
    PLAN_KINDS,
    TraceEvent,
    read_jsonl,
)

#: Kinds belonging to the control-packet lifecycle.
CONTROL_KINDS = (
    EV_CONTROL_INJECT,
    EV_CONTROL_SEGMENT,
    EV_CONTROL_DROP,
    EV_RESERVATION_COMMIT,
)


class PacketTimeline:
    """Chronological event list of a single packet."""

    def __init__(self, pid: int, events: Sequence[TraceEvent]):
        self.pid = pid
        self.events: List[TraceEvent] = sorted(
            (e for e in events if e.pid == pid),
            key=lambda e: (e.cycle, e.seq),
        )

    # -- derived views -----------------------------------------------------

    def kinds(self) -> List[str]:
        return [e.kind for e in self.events]

    def control_events(self) -> List[TraceEvent]:
        """The control-packet side: injection, segments, commits, drop."""
        return [e for e in self.events if e.kind in CONTROL_KINDS]

    def plan_sequence(self) -> List[TraceEvent]:
        """The pre-allocation story: control segments, reservation
        commits, and the latch/bypass traversals that executed them."""
        return [e for e in self.events if e.kind in PLAN_KINDS]

    @property
    def injected_at(self) -> Optional[int]:
        for e in self.events:
            if e.kind == EV_PACKET_INJECT:
                return e.cycle
        return None

    @property
    def ejected_at(self) -> Optional[int]:
        for e in self.events:
            if e.kind == EV_EJECT:
                return e.cycle
        return None

    @property
    def network_latency(self) -> Optional[int]:
        inj, ej = self.injected_at, self.ejected_at
        if inj is None or ej is None:
            return None
        return ej - inj

    @property
    def is_planned(self) -> bool:
        return any(e.kind == EV_RESERVATION_COMMIT for e in self.events)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Human-readable, one line per event, for the trace CLI."""
        if not self.events:
            return f"packet {self.pid}: no events captured"
        lines = [f"packet {self.pid} timeline "
                 f"({len(self.events)} events"
                 + (f", latency {self.network_latency}" if
                    self.network_latency is not None else "")
                 + ")"]
        for e in self.events:
            where = f" @node {e.node}" if e.node is not None else ""
            detail = " ".join(f"{k}={v}" for k, v in sorted(e.data.items()))
            lines.append(
                f"  cycle {e.cycle:>6}  {e.kind:<18}{where:<10} {detail}".rstrip()
            )
        return "\n".join(lines)


def _load(events_or_path) -> List[TraceEvent]:
    if isinstance(events_or_path, str):
        return read_jsonl(events_or_path)
    return list(events_or_path)


def reconstruct(events_or_path, pid: int) -> PacketTimeline:
    """Build one packet's timeline from events or a JSONL path."""
    return PacketTimeline(pid, _load(events_or_path))


def timelines_by_pid(
    events_or_path, kinds: Optional[Iterable[str]] = None
) -> Dict[int, PacketTimeline]:
    """All per-packet timelines present in a trace."""
    events = _load(events_or_path)
    kind_set = set(kinds) if kinds is not None else None
    by_pid: Dict[int, List[TraceEvent]] = {}
    for e in events:
        if e.pid is None:
            continue
        if kind_set is not None and e.kind not in kind_set:
            continue
        by_pid.setdefault(e.pid, []).append(e)
    return {pid: PacketTimeline(pid, evs) for pid, evs in by_pid.items()}


def planned_pids(events_or_path) -> Set[int]:
    """Packet ids that had at least one reservation committed."""
    return {
        e.pid for e in _load(events_or_path)
        if e.kind == EV_RESERVATION_COMMIT and e.pid is not None
    }


def delivered_pids(events_or_path) -> Set[int]:
    """Packet ids whose tail reached the destination NI in-trace."""
    return {
        e.pid for e in _load(events_or_path)
        if e.kind == EV_EJECT and e.pid is not None
    }
