"""Serial-vs-sharded equivalence: the golden digests are the oracle.

A sharded run of the pinned golden scenario must produce the exact
stats digest of the serial simulator — for every organization (the
non-mesh ones via the documented serial fallback), for every shard
count, with observers attached, through a mid-run merged checkpoint,
and on both the inline and worker-process backends.  Any divergence in
the boundary-exchange protocol, the conservative clock discipline, or
the snapshot merge shows up here as a digest mismatch.
"""

from __future__ import annotations

import pytest

from repro.noc.topology import MeshTopology
from repro.params import NocKind
from repro.shard import (
    GOLDEN_SPEC,
    SyntheticSpec,
    plan_shards,
    run_sharded,
    shards_from_env,
    summary_digest,
)
from tests.test_golden_determinism import ALL_KINDS, GOLDEN_NETWORK

SHARD_COUNTS = (1, 2, 4)


def _spec(kind: NocKind) -> SyntheticSpec:
    return GOLDEN_SPEC if kind is NocKind.MESH else SyntheticSpec(kind=kind)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_sharded_run_matches_serial_golden_digest(kind, shards):
    result = run_sharded(_spec(kind), shards)
    assert result.digest == GOLDEN_NETWORK[kind]
    if kind is NocKind.MESH and shards > 1:
        assert result.backend == "inline"
        assert result.shards == shards
        assert result.fallback_reason is None
    else:
        # Non-mesh organizations (and shards=1) take the serial path,
        # with a reason recorded whenever the request was downgraded.
        assert result.backend == "serial"
        assert result.shards == 1
        assert (result.fallback_reason is None) == (
            shards == 1 or kind is NocKind.MESH
        )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_observers_do_not_perturb_sharded_runs(kind, shards):
    """Tracer + invariant suite attached to every shard must be inert,
    exactly as they are on the serial simulator."""
    result = run_sharded(_spec(kind), shards, observers="tracing")
    assert result.digest == GOLDEN_NETWORK[kind]


def test_mid_run_checkpoint_merges_and_restores():
    """A merged snapshot taken at a cycle barrier of a 4-shard run must
    restore into a *serial* network that finishes on the golden digest
    — and taking it must not perturb the sharded run itself."""
    from repro.checkpoint.snapshot import restore_network

    result = run_sharded(GOLDEN_SPEC, 4, checkpoint_at=400)
    assert result.digest == GOLDEN_NETWORK[NocKind.MESH]
    assert result.checkpoint is not None

    net, traffic = restore_network(result.checkpoint)
    assert net.cycle == 400
    traffic.run(GOLDEN_SPEC.cycles - 400)
    net.drain(max_cycles=GOLDEN_SPEC.drain)
    assert summary_digest(net.stats.summary()) == GOLDEN_NETWORK[NocKind.MESH]


def test_checkpoint_with_observers_attached():
    result = run_sharded(GOLDEN_SPEC, 2, observers="tracing",
                         checkpoint_at=400)
    assert result.digest == GOLDEN_NETWORK[NocKind.MESH]
    assert result.checkpoint is not None
    assert result.checkpoint["network"]["cycle"] == 400


def test_process_backend_matches_inline():
    result = run_sharded(GOLDEN_SPEC, 2, backend="process")
    assert result.digest == GOLDEN_NETWORK[NocKind.MESH]
    assert result.backend == "process"


def test_shard_count_clamps_to_mesh_height():
    # The golden mesh is 8 rows tall; 16 shards clamp to 8 and still
    # reproduce the serial digest.
    result = run_sharded(GOLDEN_SPEC, 16)
    assert result.shards == 8
    assert "clamped to 8" in result.fallback_reason
    assert result.digest == GOLDEN_NETWORK[NocKind.MESH]


# -- planning and plumbing -------------------------------------------------


def test_plan_shards_rejects_non_positive_counts():
    with pytest.raises(ValueError, match="must be positive"):
        plan_shards(GOLDEN_SPEC.params(), 0)


def test_plan_shards_reports_non_mesh_fallback():
    effective, reason = plan_shards(SyntheticSpec(kind=NocKind.SMART).params(),
                                    4)
    assert effective == 1
    assert "only the baseline mesh shards" in reason


def test_run_sharded_validates_arguments():
    with pytest.raises(ValueError, match="backend must be"):
        run_sharded(GOLDEN_SPEC, 2, backend="threads")
    with pytest.raises(ValueError, match="observers must be"):
        run_sharded(GOLDEN_SPEC, 2, observers="all")
    with pytest.raises(ValueError, match="checkpoint_at must be"):
        run_sharded(GOLDEN_SPEC, 2, checkpoint_at=GOLDEN_SPEC.cycles + 1)
    with pytest.raises(ValueError, match="checkpoint_at must be"):
        run_sharded(GOLDEN_SPEC, 1, checkpoint_at=-1)


def test_shards_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert shards_from_env() == 1
    monkeypatch.setenv("REPRO_SHARDS", "4")
    assert shards_from_env() == 4
    monkeypatch.setenv("REPRO_SHARDS", "nope")
    with pytest.raises(ValueError, match="REPRO_SHARDS must be"):
        shards_from_env()


def test_row_domains_partition_the_mesh():
    topo = MeshTopology(8, 8)
    assert topo.row_domains(1) == [(0, 63)]
    domains = topo.row_domains(3)
    # Contiguous, ordered, and covering every node exactly once.
    assert domains[0][0] == 0 and domains[-1][1] == 63
    for (_, last), (first, _) in zip(domains, domains[1:]):
        assert first == last + 1
    # Row-aligned: every boundary falls on a row edge.
    assert all((last + 1) % 8 == 0 for _, last in domains[:-1])
    with pytest.raises(ValueError, match="cannot cut"):
        topo.row_domains(9)
    with pytest.raises(ValueError, match="cannot cut"):
        topo.row_domains(0)
