"""Sharded parallel simulation of one large mesh.

One scenario, cut into contiguous row stripes, stepped by cooperating
workers that exchange boundary flits, credits, and VC grants at
conservative cycle barriers — with statistics bit-identical to the
serial simulator (the golden-digest tests are the oracle).

Entry point: :func:`repro.shard.engine.run_sharded`.
"""

from repro.shard.engine import ShardResult, run_sharded, summary_digest
from repro.shard.merge import merge_snapshots, merge_stats
from repro.shard.spec import (GOLDEN_SPEC, SHARD_BENCH_SPEC, ShardError,
                              SyntheticSpec, WorkerFailure, plan_shards,
                              serial_fallback_reason, shards_from_env)

__all__ = [
    "GOLDEN_SPEC",
    "SHARD_BENCH_SPEC",
    "ShardError",
    "ShardResult",
    "SyntheticSpec",
    "WorkerFailure",
    "merge_snapshots",
    "merge_stats",
    "plan_shards",
    "run_sharded",
    "serial_fallback_reason",
    "shards_from_env",
    "summary_digest",
]
