"""Tests for the experiment harness at a tiny scale."""

import pytest

from repro.harness import (
    evaluation_grid,
    figure2,
    figure6,
    figure7,
    figure8,
    figure9,
    format_table,
    get_scale,
    power_analysis,
    render_figure,
    section5b_stats,
    table1,
)
from repro.harness.runner import EvaluationScale, clear_grid_cache
from repro.params import NocKind
from repro.workloads.profiles import WORKLOAD_NAMES

TINY = EvaluationScale("tiny", warmup=150, measure=700, num_seeds=1)


@pytest.fixture(scope="module")
def grid():
    clear_grid_cache()
    return evaluation_grid(scale=TINY)


class TestRunner:
    def test_grid_covers_all_cells(self, grid):
        assert len(grid) == 6 * 4
        for workload in WORKLOAD_NAMES:
            for kind in NocKind:
                assert (workload, kind) in grid

    def test_grid_is_cached(self, grid):
        again = evaluation_grid(scale=TINY)
        assert again is grid

    def test_scales(self):
        assert get_scale("smoke").name == "smoke"
        assert get_scale("full").num_seeds == 3
        with pytest.raises(ValueError):
            get_scale("enormous")

    def test_multi_seed_merge(self):
        clear_grid_cache()
        two = EvaluationScale("two", warmup=100, measure=400, num_seeds=2)
        grid = evaluation_grid(("Web Search",), (NocKind.MESH,), scale=two)
        sample = grid[("Web Search", NocKind.MESH)]
        assert sample.cycles == 2 * 400
        assert sample.instructions > 0
        clear_grid_cache()

    def test_merge_weights_by_sample_counts(self):
        """Regression: merged latencies and distributions must weight
        each seed by its own observation count, not average the
        per-seed averages.  Seed B delivered 9x the packets of seed A,
        so it dominates every merged statistic 9:1."""
        from repro.harness.runner import _merge
        from repro.perf.system import PerfSample

        def sample(packets, avg_net, avg_txn, control, lag, blocked):
            return PerfSample(
                workload="Web Search", noc_kind=NocKind.MESH_PRA,
                instructions=1000 * packets, cycles=400, packets=packets,
                avg_network_latency=avg_net,
                avg_transaction_latency=avg_txn,
                control_packets=control, control_per_data=control / packets,
                lag_distribution=lag, pra_blocked_fraction=blocked,
                flits_delivered=5 * packets, total_hops=20 * packets,
            )

        a = sample(packets=10, avg_net=10.0, avg_txn=100.0, control=10,
                   lag={0: 1.0}, blocked=0.1)
        b = sample(packets=90, avg_net=20.0, avg_txn=200.0, control=30,
                   lag={1: 1.0}, blocked=0.3)
        merged = _merge([a, b])
        assert merged.packets == 100
        assert merged.instructions == 1000 * 100
        # Packet-weighted latencies (an unweighted mean would give 150
        # and 15).
        assert merged.avg_transaction_latency == pytest.approx(
            (100.0 * 10 + 200.0 * 90) / 100
        )
        assert merged.avg_network_latency == pytest.approx(
            (10.0 * 10 + 20.0 * 90) / 100
        )
        # Control-packet-weighted lag distribution: 10 of the 40 control
        # packets dropped at lag 0, 30 at lag 1.
        assert merged.lag_distribution == pytest.approx(
            {0: 10 / 40, 1: 30 / 40}
        )
        assert sum(merged.lag_distribution.values()) == pytest.approx(1.0)
        # Blocked fraction weighted by each seed's total network time
        # (10*10 = 100 vs 20*90 = 1800 cycles in-network).
        assert merged.pra_blocked_fraction == pytest.approx(
            (0.1 * 100 + 0.3 * 1800) / 1900
        )
        assert merged.control_per_data == pytest.approx(40 / 100)

    def test_merge_single_sample_is_identity(self):
        from repro.harness.runner import _merge
        from repro.perf.system import PerfSample

        s = PerfSample(workload="Web Search", noc_kind=NocKind.MESH,
                       instructions=1, cycles=1, packets=1,
                       avg_network_latency=1.0, avg_transaction_latency=1.0)
        assert _merge([s]) is s


class TestFigures:
    def test_figure2_structure(self, grid):
        result = figure2(TINY)
        assert result["headers"] == ["Workload", "Mesh", "SMART", "Ideal"]
        assert result["rows"][-1][0] == "GMean"
        assert result["normalized"]["Web Search"][NocKind.MESH] == 1.0

    def test_figure6_normalization(self, grid):
        result = figure6(TINY)
        for workload in WORKLOAD_NAMES:
            assert result["normalized"][workload][NocKind.MESH] == 1.0

    def test_figure7_rows_sum_to_one(self, grid):
        result = figure7(TINY)
        for row in result["rows"]:
            assert sum(row[1:]) == pytest.approx(1.0)

    def test_section5b(self, grid):
        result = section5b_stats(TINY)
        assert len(result["per_workload"]) == 6

    def test_figure8_static(self):
        result = figure8()
        assert len(result["rows"]) == 3

    def test_figure9_density_below_performance(self, grid):
        perf = figure6(TINY)["gmeans"]
        dens = figure9(TINY)["gmeans"]
        # PRA's extra area means its density gain trails its perf gain.
        assert dens[NocKind.MESH_PRA] < perf[NocKind.MESH_PRA]

    def test_power_analysis(self, grid):
        result = power_analysis(TINY)
        assert {row[0] for row in result["rows"]} == {
            "Mesh", "SMART", "Mesh+PRA", "Ideal"
        }

    def test_table1_render(self):
        text = render_figure(table1())
        assert "Table I" in text


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["A", "Blong"], [["x", 1.23456], ["yy", 2.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text
        # all rows aligned to the same width
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_empty_rows(self):
        text = format_table(["A"], [])
        assert "A" in text
