"""The benchmark suite: pinned workloads, reports, and comparisons.

Every measurement in a report is wall-clock based, so two reports are
only directly comparable on the same machine.  To keep cross-machine
comparisons (CI runners, laptops) meaningful, each report embeds a
*calibration score* — the throughput of a fixed pure-Python loop on the
measuring host — and :func:`compare_reports` scores regressions on
calibration-normalized throughput when both reports carry a score.
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import json
import os
import platform
import pstats
import subprocess
import time
from typing import Dict, List, Optional, Tuple

from repro.harness.runner import (
    ALL_KINDS,
    EvaluationScale,
    _num_jobs,
    clear_grid_cache,
    evaluation_grid,
    get_scale,
    grid_stats,
)
from repro.noc.network import build_network
from repro.noc.packet import packet_pool, pool_summary, reset_packet_ids
from repro.params import MessageClass, NocKind, NocParams
from repro.perf.system import SystemSimulator

#: Report format version (bump on incompatible layout changes).
SCHEMA_VERSION = 1

#: The pinned micro-benchmark configuration.  Changing any of these
#: invalidates comparisons against older reports, so don't.
MICRO_WORKLOAD = "Web Search"
MICRO_SEED = 5

#: Iterations of the calibration loop (~0.1 s on a 2020s-era core).
_CALIBRATION_ITERS = 2_000_000


def calibrate(rounds: int = 5) -> float:
    """Millions of iterations/second of a fixed arithmetic loop.

    A crude single-core Python speed score: the loop exercises integer
    arithmetic and attribute-free name lookups, which is roughly what
    the simulator's hot path is made of.  Best-of-``rounds`` to shed
    scheduler noise.
    """
    best = 0.0
    for _ in range(rounds):
        acc = 0
        start = time.perf_counter()
        for i in range(_CALIBRATION_ITERS):
            acc += i & 7
        elapsed = time.perf_counter() - start
        best = max(best, _CALIBRATION_ITERS / elapsed / 1e6)
    return best


def machine_info() -> Dict[str, object]:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "calibration_mips": round(calibrate(), 2),
    }


def git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


# -- micro: cycles/second per organization --------------------------------


def _time_micro_cell(
    kind: NocKind, scale: EvaluationScale
) -> Tuple[int, float, int]:
    """(simulated cycles, wall seconds, cycles skipped) of one pinned
    full-system run."""
    sim = SystemSimulator(MICRO_WORKLOAD, kind, seed=MICRO_SEED)
    cycles = scale.warmup + scale.measure
    start = time.perf_counter()
    sim.run_sample(warmup=scale.warmup, measure=scale.measure)
    wall = time.perf_counter() - start
    return cycles, wall, sim.chip.network.cycles_skipped


#: Low-injection scenario: closed-loop ping-pong pairs on an 8x8
#: network.  Each delivery schedules the reply ``_LOW_GAP`` cycles
#: later, so the network sits idle for long deterministic spans — the
#: traffic shape the event-horizon skip (docs/performance.md) targets.
#: No RNG is involved anywhere, so the stats digest recorded in the
#: report doubles as a skip-equivalence oracle (CI runs the suite with
#: and without ``--no-time-skip`` and asserts the digests match).
#: Gap length matters: activity-based stepping already makes an idle
#: cycle cost ~0.2us, so short gaps leave nothing to win — the paper
#: case is a server NoC at a few percent utilization, i.e. long gaps.
_LOW_PAIRS = ((0, 63), (7, 56), (27, 36), (18, 45))
_LOW_GAP = 2000
_LOW_CYCLES = 60000


def _time_low_cell(kind: NocKind) -> dict:
    net = build_network(NocParams(kind=kind, mesh_width=8, mesh_height=8))

    def send(src: int, dst: int) -> None:
        net.send(packet_pool.acquire(src, dst, MessageClass.REQUEST,
                                     created=net.cycle))

    def on_delivery(packet, now: int) -> None:
        if now + _LOW_GAP < _LOW_CYCLES:
            net.schedule_call(now + _LOW_GAP, send, packet.dst, packet.src)

    net.on_delivery(on_delivery)
    for src, dst in _LOW_PAIRS:
        send(src, dst)
    start = time.perf_counter()
    net.run(_LOW_CYCLES)
    net.drain(max_cycles=20000)
    wall = time.perf_counter() - start
    digest = hashlib.sha256(
        json.dumps(net.stats.summary(), sort_keys=True).encode()
    ).hexdigest()
    return {
        "cycles": net.cycle,
        "wall_s": wall,
        "cycles_skipped": net.cycles_skipped,
        "digest": digest,
    }


#: Contested-load scenario (hot-path engine v3): open-loop uniform
#: random traffic at ~0.7 of XY saturation on an 8x8 network (the
#: chiplet cell runs a 2x2 grid of 4x4 chiplets at a matching relative
#: load).  Almost every cycle has work, so the event-horizon skip wins
#: nothing and the measurement isolates the stepped hot path: router
#: allocation, flit movement, and event dispatch —
#: ``stepped_cycles_per_sec`` is the number to watch.  The traffic is
#: seeded, so the recorded stats digest doubles as a fast-path
#: equivalence oracle: CI reruns these cells under
#: ``REPRO_NO_FASTPATH=1`` and asserts the digests match bit for bit.
_CONTESTED_RATE = 0.08
_CONTESTED_CHIPLET_RATE = 0.02
_CONTESTED_CYCLES = 3000
_CONTESTED_SEED = 11
_CONTESTED_DRAIN = 200_000
_CONTESTED_CELLS = (
    ("mesh@contested", NocKind.MESH, None),
    ("smart@contested", NocKind.SMART, None),
    ("mesh+pra@contested", NocKind.MESH_PRA, None),
    ("chiplet@contested", NocKind.MESH, "chiplet:2x2x4x4"),
)


def _time_contested_cell(kind: NocKind, topology: Optional[str]) -> dict:
    from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

    if topology is None:
        params = NocParams(kind=kind, mesh_width=8, mesh_height=8)
        rate = _CONTESTED_RATE
    else:
        params = NocParams(kind=kind, topology=topology)
        rate = _CONTESTED_CHIPLET_RATE
    reset_packet_ids()
    net = build_network(params)
    traffic = SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM, rate,
                               seed=_CONTESTED_SEED)
    start = time.perf_counter()
    traffic.run(_CONTESTED_CYCLES)
    net.drain(max_cycles=_CONTESTED_DRAIN)
    wall = time.perf_counter() - start
    digest = hashlib.sha256(
        json.dumps(net.stats.summary(), sort_keys=True).encode()
    ).hexdigest()
    return {
        "cycles": net.cycle,
        "wall_s": wall,
        "cycles_skipped": net.cycles_skipped,
        "digest": digest,
    }


def _time_shard_cell(shards: int) -> dict:
    """One run of the pinned sharded scenario (``SHARD_BENCH_SPEC``).

    The recorded digest is the correctness half of the win-meter: every
    shard count of the same spec must produce the same digest, so CI can
    rerun the suite with ``--shards 2`` and assert the ``@shard`` cells
    hash identically to the committed serial baselines.
    """
    from repro.shard import SHARD_BENCH_SPEC, run_sharded

    backend = "process" if shards > 1 else "inline"
    start = time.perf_counter()
    result = run_sharded(SHARD_BENCH_SPEC, shards, backend=backend)
    wall = time.perf_counter() - start
    cell = {
        "cycles": result.cycles,
        "wall_s": wall,
        "cycles_skipped": result.cycles_skipped,
        "digest": result.digest,
        "shards": result.shards,
        "backend": result.backend,
    }
    # Supervision counters (process backend only; all-zero means the
    # timing measured an undisturbed run).
    if result.report is not None and not result.report.clean:
        cell["respawns"] = result.report.respawns
        cell["retries"] = result.report.retries
        cell["failures"] = len(result.report.failures)
    return cell


def _finish_cell(cell: dict) -> dict:
    """Derive the throughput metrics every micro cell reports.

    ``stepped_cycles_per_sec`` divides only the cycles that were
    actually stepped (not fast-forwarded by the event horizon) by the
    wall time — the honest hot-path number.  For the ``@low`` cells the
    raw ``cycles_per_sec`` stays the headline (skipping *is* the
    optimization being measured there); for the ``@contested`` cells
    the two are nearly equal by construction.
    """
    wall = cell["wall_s"]
    stepped = cell["cycles"] - cell.get("cycles_skipped", 0)
    cell["cycles_per_sec"] = round(cell["cycles"] / wall, 1)
    cell["stepped_cycles_per_sec"] = round(stepped / wall, 1)
    cell["wall_s"] = round(wall, 4)
    return cell


def run_micro(scale: EvaluationScale, repeat: int = 2,
              shards: int = 1) -> Dict[str, dict]:
    """Best-of-``repeat`` cycles/second for each organization.

    Three cells per organization: the pinned full-system run (keyed by
    the organization name, as in every historical report), the pinned
    low-injection ping-pong scenario (keyed ``<org>@low``), and — for
    the router-heavy organizations — the pinned contested-load scenario
    (keyed ``<org>@contested``).  ``compare_reports`` skips keys absent
    from either side, so reports predating a cell family remain
    comparable.

    A ``mesh@shard1`` cell times the pinned sharded scenario serially;
    with ``shards > 1`` a ``mesh@shard<n>`` cell reruns it cut into that
    many row stripes on the worker-process backend, so the pair measures
    the sharding win (and the matching digests prove it changed nothing).
    """
    results: Dict[str, dict] = {}
    for kind in ALL_KINDS:
        best = None
        for _ in range(max(1, repeat)):
            cycles, wall, skipped = _time_micro_cell(kind, scale)
            if best is None or wall < best["wall_s"]:
                best = {"cycles": cycles, "wall_s": wall,
                        "cycles_skipped": skipped}
        results[kind.value] = _finish_cell(best)
    for kind in ALL_KINDS:
        best = None
        for _ in range(max(1, repeat)):
            cell = _time_low_cell(kind)
            if best is None or cell["wall_s"] < best["wall_s"]:
                best = cell
        results[f"{kind.value}@low"] = _finish_cell(best)
    for key, kind, topology in _CONTESTED_CELLS:
        best = None
        for _ in range(max(1, repeat)):
            cell = _time_contested_cell(kind, topology)
            if best is not None and cell["digest"] != best["digest"]:
                raise RuntimeError(
                    f"{key}: contested digest differs between repeats "
                    f"(the scenario must be deterministic)"
                )
            if best is None or cell["wall_s"] < best["wall_s"]:
                best = cell
        results[key] = _finish_cell(best)
    shard_counts = [1] if shards <= 1 else [1, shards]
    for count in shard_counts:
        best = None
        for _ in range(max(1, repeat)):
            cell = _time_shard_cell(count)
            if best is None or cell["wall_s"] < best["wall_s"]:
                best = cell
        results[f"mesh@shard{count}"] = _finish_cell(best)
    return results


def profile_micro(scale: EvaluationScale, top: int = 20) -> str:
    """cProfile the contested micro cells; return the top-``top`` lines
    by internal time (the profiling workflow in docs/performance.md).

    The contested cells are the profile target because they are the
    cells whose every cycle is stepped: the full-system cells spend
    most of their samples in workload bookkeeping and the ``@low``
    cells in provably idle spans, which buries the router hot path the
    profile exists to expose.  ``scale`` is accepted for CLI symmetry
    with the timing suite; the contested scenario is fixed-size.
    """
    del scale  # the contested scenario is pinned, not scaled
    profiler = cProfile.Profile()
    profiler.enable()
    for _key, kind, topology in _CONTESTED_CELLS:
        _time_contested_cell(kind, topology)
    profiler.disable()
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(top)
    return buf.getvalue()


# -- macro: evaluation-grid wall time -------------------------------------


def run_macro(scale: EvaluationScale) -> Dict[str, object]:
    """Wall time of the full {workload} x {organization} grid.

    The grid honors ``REPRO_CELL_STORE`` (an attached store lets an
    interrupted macro run resume), so the report records how many cells
    came from the store: a wall time with nonzero ``store_hits`` is a
    resumed sweep, not a measurement of simulation throughput.
    """
    clear_grid_cache()  # measure real work, not the process-level cache
    hits0 = grid_stats.grid_cache_hits
    misses0 = grid_stats.grid_cache_misses
    start = time.perf_counter()
    grid = evaluation_grid(scale=scale)
    wall = time.perf_counter() - start
    clear_grid_cache()
    macro = {
        "cells": len(grid),
        "wall_s": round(wall, 3),
        # The *resolved* worker count, not the raw environment string:
        # "REPRO_JOBS=0" means one worker per CPU, and recording "0"
        # made such reports unreadable (and unvalidated junk like
        # "REPRO_JOBS=banana" used to land in reports verbatim).
        "jobs": _num_jobs(),
        "store_hits": grid_stats.grid_cache_hits - hits0,
        "store_misses": grid_stats.grid_cache_misses - misses0,
    }
    # Resilience counters for the sweep just timed; absent keys mean a
    # clean run (a wall time with retries or pool rebuilds in it is a
    # survival story, not a throughput measurement).
    from repro.resilience import last_run_report

    report = last_run_report()
    if report is not None and not report.clean:
        macro["resilience"] = report.to_dict()
    return macro


# -- analytic: pruned-sweep speedup ---------------------------------------


def run_analytic(scale: EvaluationScale) -> Dict[str, object]:
    """The analytic fast path's win-meter: full vs. pruned sweep.

    Times the evaluation grid twice against no store — once with
    pruning forced off, once with ``analytic="prune"`` — and reports
    the speedup, how many cells the queueing model served, the model's
    worst relative error on the cells it pruned, and whether every
    *non*-pruned cell reproduced the full sweep bit-for-bit (it must:
    pruning only ever removes simulations, it never perturbs one).
    """
    from repro.analytic.validate import (
        IPC_ERROR_MARGIN,
        LATENCY_ERROR_MARGIN,
    )

    clear_grid_cache()
    start = time.perf_counter()
    full = evaluation_grid(scale=scale, store=None, analytic="off")
    wall_full = time.perf_counter() - start
    clear_grid_cache()
    pruned0 = grid_stats.analytic_cells
    start = time.perf_counter()
    pruned = evaluation_grid(scale=scale, store=None, analytic="prune")
    wall_pruned = time.perf_counter() - start
    clear_grid_cache()
    cells_pruned = grid_stats.analytic_cells - pruned0
    max_latency_error = 0.0
    max_ipc_error = 0.0
    non_pruned_identical = True
    for key, sample in pruned.items():
        reference = full.get(key)
        if reference is None:
            continue
        if sample.analytic:
            if reference.avg_network_latency:
                max_latency_error = max(
                    max_latency_error,
                    abs(sample.avg_network_latency
                        - reference.avg_network_latency)
                    / reference.avg_network_latency,
                )
            if reference.ipc:
                max_ipc_error = max(
                    max_ipc_error,
                    abs(sample.ipc - reference.ipc) / reference.ipc,
                )
        elif sample.to_state() != reference.to_state():
            non_pruned_identical = False
    return {
        "cells": len(pruned),
        "cells_pruned": cells_pruned,
        "wall_full_s": round(wall_full, 3),
        "wall_pruned_s": round(wall_pruned, 3),
        "speedup": round(wall_full / wall_pruned, 1) if wall_pruned else 0.0,
        "max_latency_error": round(max_latency_error, 4),
        "max_ipc_error": round(max_ipc_error, 4),
        "latency_margin": LATENCY_ERROR_MARGIN,
        "ipc_margin": IPC_ERROR_MARGIN,
        "non_pruned_identical": non_pruned_identical,
    }


# -- reports ---------------------------------------------------------------


def run_bench(
    scale: Optional[EvaluationScale] = None,
    repeat: int = 2,
    include_macro: bool = True,
    shards: int = 1,
) -> Dict[str, object]:
    scale = scale or get_scale()
    start = time.perf_counter()
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "stamp": time.strftime("%Y%m%dT%H%M%SZ", time.gmtime()),
        "git_rev": git_rev(),
        "scale": scale.name,
        "shards": shards,
        "machine": machine_info(),
        "micro": run_micro(scale, repeat=repeat, shards=shards),
    }
    # Process-wide allocator counters as of the end of the micro suite
    # (reuse ratios near 1.0 mean the free lists are doing their job).
    report["pools"] = pool_summary()
    if include_macro:
        report["macro"] = run_macro(scale)
        report["analytic"] = run_analytic(scale)
    report["total_wall_s"] = round(time.perf_counter() - start, 3)
    return report


def write_report(report: Dict[str, object],
                 out: Optional[str] = None) -> str:
    path = out or f"BENCH_{report['stamp']}.json"
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return path


def render_report(report: Dict[str, object]) -> str:
    lines = [
        f"bench report {report['stamp']}  "
        f"(rev {report['git_rev']}, scale {report['scale']})",
        f"machine: {report['machine']['platform']}  "
        f"python {report['machine']['python']}  "
        f"calibration {report['machine']['calibration_mips']} Mips",
        "",
        f"{'organization':<18} {'cycles':>8} {'wall (s)':>10} "
        f"{'cycles/sec':>12} {'stepped c/s':>12} {'skipped':>9}",
    ]
    for org, cell in report["micro"].items():
        stepped = cell.get("stepped_cycles_per_sec",
                           cell["cycles_per_sec"])
        lines.append(
            f"{org:<18} {cell['cycles']:>8} {cell['wall_s']:>10.3f} "
            f"{cell['cycles_per_sec']:>12.0f} {stepped:>12.0f} "
            f"{cell.get('cycles_skipped', 0):>9}"
        )
    macro = report.get("macro")
    if macro:
        lines.append("")
        resumed = (
            f", {macro['store_hits']} cells from the store"
            if macro.get("store_hits") else ""
        )
        lines.append(
            f"evaluation grid: {macro['cells']} cells in "
            f"{macro['wall_s']:.2f} s (REPRO_JOBS={macro['jobs']}{resumed})"
        )
    analytic = report.get("analytic")
    if analytic:
        lines.append(
            f"analytic fast path: {analytic['cells_pruned']}/"
            f"{analytic['cells']} cells pruned, sweep "
            f"{analytic['wall_full_s']:.2f} s -> "
            f"{analytic['wall_pruned_s']:.2f} s "
            f"({analytic['speedup']:.1f}x); worst model error "
            f"{analytic['max_latency_error']:.1%} latency / "
            f"{analytic['max_ipc_error']:.1%} IPC; non-pruned cells "
            + ("bit-identical"
               if analytic["non_pruned_identical"] else "DIVERGED")
        )
    lines.append(f"total: {report['total_wall_s']:.2f} s")
    return "\n".join(lines)


# -- comparisons -----------------------------------------------------------


def _load(path: str) -> Dict[str, object]:
    with open(path) as fh:
        report = json.load(fh)
    if report.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench schema "
            f"{report.get('schema')!r} (expected {SCHEMA_VERSION})"
        )
    return report


def compare_reports(
    path_a: str, path_b: str, fail_threshold: Optional[float] = None
) -> Tuple[List[dict], bool]:
    """Per-organization throughput deltas of report B relative to A.

    When both reports carry a calibration score, a *normalized* delta
    (throughput divided by the host's calibration score) is reported
    next to the raw one, so a slower CI runner does not read as a
    simulator regression.  An organization counts as regressed only
    when **both** deltas are below ``-fail_threshold``: raw-only drops
    are machine-speed differences, normalized-only drops are
    calibration noise.  Returns (rows, failed).

    Cells carrying ``stepped_cycles_per_sec`` on both sides are gated
    on it (skip-adjusted throughput — a cell can't hide a slower hot
    path behind more aggressive time skipping); older reports fall back
    to raw ``cycles_per_sec``.  Each row records the metric used.
    """
    a, b = _load(path_a), _load(path_b)
    cal_a = a["machine"].get("calibration_mips")
    cal_b = b["machine"].get("calibration_mips")
    normalized = bool(cal_a and cal_b)
    rows: List[dict] = []
    failed = False
    for org in a["micro"]:
        if org not in b["micro"]:
            continue
        cell_a, cell_b = a["micro"][org], b["micro"][org]
        metric = "cycles_per_sec"
        if "stepped_cycles_per_sec" in cell_a \
                and "stepped_cycles_per_sec" in cell_b:
            metric = "stepped_cycles_per_sec"
        cps_a = cell_a[metric]
        cps_b = cell_b[metric]
        raw_delta = (cps_b - cps_a) / cps_a if cps_a else 0.0
        if normalized:
            norm_delta = ((cps_b / cal_b) - (cps_a / cal_a)) / (cps_a / cal_a)
        else:
            norm_delta = raw_delta
        regressed = (
            fail_threshold is not None
            and raw_delta < -fail_threshold
            and norm_delta < -fail_threshold
        )
        failed = failed or regressed
        rows.append({
            "org": org,
            "a": cps_a,
            "b": cps_b,
            "metric": metric,
            "raw_delta": raw_delta,
            "norm_delta": norm_delta,
            "regressed": regressed,
        })
    return rows, failed


def render_compare(rows: List[dict], path_a: str, path_b: str,
                   fail_threshold: Optional[float]) -> str:
    lines = [
        f"A: {path_a}",
        f"B: {path_b}",
        "",
        f"{'organization':<18} {'A cyc/s':>10} {'B cyc/s':>10} "
        f"{'raw':>8} {'normalized':>11}",
    ]
    for row in rows:
        flag = "  REGRESSED" if row["regressed"] else ""
        if row.get("metric") == "stepped_cycles_per_sec":
            flag = "  [stepped]" + flag
        lines.append(
            f"{row['org']:<18} {row['a']:>10.0f} {row['b']:>10.0f} "
            f"{row['raw_delta']:>+7.1%} {row['norm_delta']:>+10.1%}{flag}"
        )
    if fail_threshold is not None:
        lines.append("")
        lines.append(
            f"fail threshold: normalized regression beyond "
            f"{fail_threshold:.0%}"
        )
    return "\n".join(lines)
