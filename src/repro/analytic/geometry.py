"""Exact traffic geometry: pair distributions reduced to aggregates.

The queueing layer (:mod:`repro.analytic.queueing`) needs only a handful
of numbers about a traffic pattern on a WxH mesh: expected hop counts
under each organization's traversal rule, and the probability that a
packet crosses each directed link under XY routing (whose maximum sets
the saturation throughput, and whose full vector feeds the per-link
waiting-time sum).  This module computes them by *exact enumeration* of
the (src, dst) pair distribution — O(N^2 * diameter) once per
(topology, pattern), cached — so the model has no sampling noise and no
uniform-traffic approximation: hotspot and transpose skews land on
exactly the links the simulator would load.

Coordinates follow :class:`repro.noc.topology.MeshTopology`: node ids
are row-major, ``coords(node) -> (x, y)``, and XY routing travels fully
in X (east/west) before Y (south/north).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import ceil
from typing import Dict, Optional, Tuple

from repro.workloads.synthetic import TrafficPattern


@dataclass(frozen=True)
class TrafficGeometry:
    """Aggregate geometry of one (mesh, pattern) combination.

    Expectations are conditional on a packet actually being injected
    (self-addressed draws are dropped by the injectors, see
    ``inject_ratio``).
    """

    width: int
    height: int
    #: P(a Bernoulli injection draw becomes a packet) — uniform traffic
    #: on an 8x8 mesh redraws the source 1/64th of the time, transpose
    #: drops the diagonal, and so on.
    inject_ratio: float
    #: E[Manhattan hops] (route hops on non-mesh topologies).
    e_hops: float
    #: E[sum of per-hop link latencies along the route] — 2 cycles per
    #: hop on the mesh; chiplet interposer crossings cost their
    #: configured latency.  The mesh-kind zero-load law consumes this.
    e_lat_hops: float
    #: E[ceil(hops / 2)] — the ideal network's 2-hops-per-cycle rule.
    e_ceil_half_hops: float
    #: E[ceil(|dx|/2) + ceil(|dy|/2)] — SMART's straight-segment count.
    e_segments: float
    #: E[segments + reservation-overflow penalty] — the PRA announced
    #: traversal (see :func:`repro.analytic.queueing.zero_load_latency`).
    e_pra_hops: float
    #: P(a packet crosses link l) for every directed mesh link, sorted
    #: descending.  Sums to ``e_hops``.
    link_coeffs: Tuple[float, ...]
    #: max(link_coeffs): the bottleneck link's share of injected packets.
    max_link_coeff: float


def _xy_route_links(
    width: int, src: int, dst: int
) -> Tuple[Tuple[int, int], ...]:
    """Directed links (node, next_node) of the XY route src -> dst."""
    links = []
    x, y = src % width, src // width
    dx, dy = dst % width, dst // width
    while x != dx:
        nxt = x + 1 if x < dx else x - 1
        links.append((y * width + x, y * width + nxt))
        x = nxt
    while y != dy:
        nxt = y + 1 if y < dy else y - 1
        links.append((y * width + x, nxt * width + x))
        y = nxt
    return tuple(links)


def _destination_probs(
    width: int, height: int, pattern: TrafficPattern, src: int,
    hotspot_nodes: Tuple[int, ...],
) -> Dict[int, float]:
    """P(dst | src draws an injection), before the dst==src drop.

    Mirrors :meth:`repro.workloads.synthetic.SyntheticTraffic._destination`
    exactly, including transpose's out-of-range drop on non-square
    meshes and hotspot's 50/50 hot/uniform split.
    """
    num_nodes = width * height
    if pattern in (TrafficPattern.UNIFORM_RANDOM,
                   TrafficPattern.REQUEST_REPLY):
        return {d: 1.0 / num_nodes for d in range(num_nodes)}
    if pattern is TrafficPattern.TRANSPOSE:
        x, y = src % width, src // width
        if x >= height or y >= width:
            return {}
        return {x * width + y: 1.0}
    if pattern is TrafficPattern.HOTSPOT:
        probs = {d: 0.5 / num_nodes for d in range(num_nodes)}
        for hot in hotspot_nodes:
            probs[hot] = probs.get(hot, 0.0) + 0.5 / len(hotspot_nodes)
        return probs
    if pattern is TrafficPattern.NEIGHBOR:
        neighbors = []
        x, y = src % width, src // width
        if y > 0:
            neighbors.append(src - width)
        if y < height - 1:
            neighbors.append(src + width)
        if x > 0:
            neighbors.append(src - 1)
        if x < width - 1:
            neighbors.append(src + 1)
        return {d: 1.0 / len(neighbors) for d in neighbors}
    raise ValueError(f"unhandled pattern {pattern}")


@lru_cache(maxsize=64)
def traffic_geometry(
    width: int,
    height: int,
    pattern: TrafficPattern = TrafficPattern.UNIFORM_RANDOM,
    hotspot_nodes: Tuple[int, ...] = (0,),
    pra_overflow_hops: int = 8,
) -> TrafficGeometry:
    """Enumerate the pair distribution and reduce it to aggregates.

    ``pra_overflow_hops`` is the Manhattan distance beyond which an
    announced PRA packet outruns its reservation horizon (see the
    queueing layer); it only affects ``e_pra_hops``.
    """
    num_nodes = width * height
    weights: Dict[Tuple[int, int], float] = {}
    for src in range(num_nodes):
        for dst, p in _destination_probs(
            width, height, pattern, src, hotspot_nodes
        ).items():
            if dst == src or p <= 0.0:
                continue
            key = (src, dst)
            weights[key] = weights.get(key, 0.0) + p / num_nodes
    total = sum(weights.values())
    if total <= 0.0:
        raise ValueError(
            f"pattern {pattern.value} injects no packets on a "
            f"{width}x{height} mesh"
        )
    e_hops = e_half = e_seg = e_pra = 0.0
    link_load: Dict[Tuple[int, int], float] = {}
    for (src, dst), weight in weights.items():
        p = weight / total
        ax = abs(src % width - dst % width)
        ay = abs(src // width - dst // width)
        hops = ax + ay
        e_hops += p * hops
        e_half += p * ceil(hops / 2)
        segments = ceil(ax / 2) + ceil(ay / 2)
        e_seg += p * segments
        e_pra += p * (segments + 2 * max(0, hops - pra_overflow_hops))
        for link in _xy_route_links(width, src, dst):
            link_load[link] = link_load.get(link, 0.0) + p
    coeffs = tuple(sorted(link_load.values(), reverse=True))
    return TrafficGeometry(
        width=width,
        height=height,
        inject_ratio=total,
        e_hops=e_hops,
        e_lat_hops=2.0 * e_hops,
        e_ceil_half_hops=e_half,
        e_segments=e_seg,
        e_pra_hops=e_pra,
        link_coeffs=coeffs,
        max_link_coeff=coeffs[0],
    )


def clear_geometry_cache() -> None:
    """Drop memoized geometries (tests poking at cache behavior)."""
    traffic_geometry.cache_clear()
    topology_geometry.cache_clear()


def pra_overflow_hops(reservation_horizon: int, max_lag: int) -> int:
    """Hop count an announced packet covers before its reservations age
    out of the table: empirically ``horizon - max_lag`` on the default
    configuration (12-slot horizon, max lag 4 -> onset at 9 hops)."""
    return max(1, reservation_horizon - max_lag)


def _topology_destination_probs(topo, pattern, src, hotspot_nodes):
    """P(dst | src draws) on an arbitrary topology graph, mirroring
    :meth:`repro.workloads.synthetic.SyntheticTraffic._destination`."""
    limit = topo.num_endpoints
    if pattern in (TrafficPattern.UNIFORM_RANDOM,
                   TrafficPattern.REQUEST_REPLY):
        return {d: 1.0 / limit for d in range(limit)}
    if pattern is TrafficPattern.TRANSPOSE:
        x, y = topo.coords(src)
        if x >= topo.height or y >= topo.width:
            return {}
        return {topo.node_at(y, x): 1.0}
    if pattern is TrafficPattern.HOTSPOT:
        probs = {d: 0.5 / limit for d in range(limit)}
        for hot in hotspot_nodes:
            probs[hot] = probs.get(hot, 0.0) + 0.5 / len(hotspot_nodes)
        return probs
    if pattern is TrafficPattern.NEIGHBOR:
        neighbors = [n for _, n in topo.neighbors(src) if n < limit]
        return {d: 1.0 / len(neighbors) for d in neighbors}
    raise ValueError(f"unhandled pattern {pattern}")


@lru_cache(maxsize=32)
def topology_geometry(
    topology: str,
    width: int,
    height: int,
    pattern: TrafficPattern = TrafficPattern.UNIFORM_RANDOM,
    hotspot_nodes: Tuple[int, ...] = (0,),
) -> TrafficGeometry:
    """Geometry by route enumeration over an arbitrary topology graph.

    Uses ``topology.route`` for hop counts and directed-link loads and
    ``topology.link_latency`` for the per-hop cost, so hierarchical
    chiplet routes (intra-mesh -> gateway -> interposer -> intra-mesh)
    land on exactly the links the simulator loads.  Segment/PRA
    aggregates reuse the hop count (SMART and PRA do not build on
    non-mesh topologies, so those fields are never consumed).
    """
    from repro.noc.topology import parse_topology_spec, topology_from_spec

    topo = topology_from_spec(parse_topology_spec(topology), width, height)
    limit = topo.num_endpoints
    weights: Dict[Tuple[int, int], float] = {}
    for src in range(limit):
        for dst, p in _topology_destination_probs(
            topo, pattern, src, hotspot_nodes
        ).items():
            if dst == src or p <= 0.0:
                continue
            key = (src, dst)
            weights[key] = weights.get(key, 0.0) + p / limit
    total = sum(weights.values())
    if total <= 0.0:
        raise ValueError(
            f"pattern {pattern.value} injects no packets on "
            f"topology {topology}"
        )
    e_hops = e_lat = e_half = 0.0
    link_load: Dict[Tuple[int, object], float] = {}
    for (src, dst), weight in weights.items():
        p = weight / total
        route = topo.route(src, dst)[:-1]  # drop the ejection hop
        hops = len(route)
        lat = sum(topo.link_latency(node, port) for node, port in route)
        e_hops += p * hops
        e_lat += p * lat
        e_half += p * ceil(hops / 2)
        for link in route:
            link_load[link] = link_load.get(link, 0.0) + p
    coeffs = tuple(sorted(link_load.values(), reverse=True))
    return TrafficGeometry(
        width=width,
        height=height,
        inject_ratio=total,
        e_hops=e_hops,
        e_lat_hops=e_lat,
        e_ceil_half_hops=e_half,
        e_segments=e_hops,
        e_pra_hops=e_hops,
        link_coeffs=coeffs,
        max_link_coeff=coeffs[0],
    )


def geometry_for(
    params, pattern: TrafficPattern = TrafficPattern.UNIFORM_RANDOM,
    hotspot_nodes: Optional[Tuple[int, ...]] = None,
) -> TrafficGeometry:
    """Geometry for a :class:`~repro.params.NocParams` configuration."""
    topology = getattr(params, "topology", "mesh")
    if topology != "mesh":
        return topology_geometry(
            topology,
            params.mesh_width,
            params.mesh_height,
            pattern,
            tuple(hotspot_nodes) if hotspot_nodes else (0,),
        )
    return traffic_geometry(
        params.mesh_width,
        params.mesh_height,
        pattern,
        tuple(hotspot_nodes) if hotspot_nodes else (0,),
        pra_overflow_hops(params.pra.reservation_horizon,
                          params.pra.max_lag),
    )
