"""Tests for the physical models: area, power, density (Figures 8/9)."""

import pytest

from repro.params import ChipParams, NocKind
from repro.physical.area import noc_area
from repro.physical.buffers import BufferModel, router_vc_buffer_bits
from repro.physical.crossbar import CrossbarModel
from repro.physical.density import chip_area_mm2, performance_density
from repro.physical.power import chip_power, noc_power
from repro.physical.wires import LinkModel, num_unidirectional_links

CHIP = ChipParams()


class TestWires:
    def test_link_count_8x8(self):
        assert num_unidirectional_links(CHIP) == 2 * (8 * 7 + 8 * 7)

    def test_two_tile_repeaters_cost_more(self):
        base = LinkModel(128, 1.8)
        fast = LinkModel(128, 1.8, repeater_factor=1.45)
        assert fast.repeater_area_mm2 > base.repeater_area_mm2

    def test_link_energy_scale(self):
        link = LinkModel(128, 1.0)
        joules = link.traversal_energy_j(1, CHIP.technology)
        assert joules == pytest.approx(50e-15)  # 50 fJ/bit/mm


class TestArea:
    def test_mesh_total_matches_paper(self):
        assert noc_area(CHIP, NocKind.MESH).total_mm2 == pytest.approx(
            3.5, rel=0.05
        )

    def test_smart_total_matches_paper(self):
        assert noc_area(CHIP, NocKind.SMART).total_mm2 == pytest.approx(
            4.5, rel=0.05
        )

    def test_pra_total_matches_paper(self):
        assert noc_area(CHIP, NocKind.MESH_PRA).total_mm2 == pytest.approx(
            4.9, rel=0.05
        )

    def test_overheads_match_paper(self):
        mesh = noc_area(CHIP, NocKind.MESH).total_mm2
        smart = noc_area(CHIP, NocKind.SMART).total_mm2
        pra = noc_area(CHIP, NocKind.MESH_PRA).total_mm2
        assert (smart / mesh - 1) == pytest.approx(0.31, abs=0.04)
        assert (pra / mesh - 1) == pytest.approx(0.40, abs=0.04)

    def test_ideal_charged_mesh_area(self):
        assert noc_area(CHIP, NocKind.IDEAL).total_mm2 == pytest.approx(
            noc_area(CHIP, NocKind.MESH).total_mm2
        )

    def test_breakdown_sums(self):
        a = noc_area(CHIP, NocKind.MESH_PRA)
        b = a.breakdown()
        assert b["total"] == pytest.approx(
            b["links"] + b["buffers"] + b["crossbar"]
        )


class TestPower:
    def test_noc_power_below_two_watts(self):
        """Section V-E: NOC power is below 2 W in all organizations."""
        # Generous activity: 3 packets/cycle at 6 hops, 3 flits average.
        for kind in NocKind:
            p = noc_power(CHIP, flit_hops=10_000 * 18, cycles=10_000,
                          kind=kind, control_packets=20_000)
            assert p.total_w < 2.0

    def test_cores_dominate(self):
        p = noc_power(CHIP, flit_hops=100_000, cycles=10_000,
                      kind=NocKind.MESH)
        cp = chip_power(CHIP, p)
        assert cp.cores_w > 60.0
        assert cp.cores_w > 20 * p.total_w

    def test_power_scales_with_activity(self):
        lo = noc_power(CHIP, flit_hops=1000, cycles=1000, kind=NocKind.MESH)
        hi = noc_power(CHIP, flit_hops=4000, cycles=1000, kind=NocKind.MESH)
        assert hi.link_w == pytest.approx(4 * lo.link_w)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            noc_power(CHIP, flit_hops=1, cycles=0)


class TestDensity:
    def test_chip_area_over_200mm2(self):
        for kind in NocKind:
            assert chip_area_mm2(CHIP, kind) > 200.0

    def test_density_penalizes_bigger_noc(self):
        perf = {NocKind.MESH: 1.0, NocKind.MESH_PRA: 1.0}
        dens = performance_density(CHIP, perf)
        assert dens[NocKind.MESH_PRA] < dens[NocKind.MESH]

    def test_density_ordering_with_paper_performance(self):
        """With the paper's performance ratios, PRA has the highest
        density among realistic organizations (Section V-D)."""
        perf = {NocKind.MESH: 1.0, NocKind.SMART: 1.02, NocKind.MESH_PRA: 1.14}
        dens = performance_density(CHIP, perf)
        assert dens[NocKind.MESH_PRA] > dens[NocKind.SMART] > 0
        assert dens[NocKind.MESH_PRA] > dens[NocKind.MESH]


class TestBuffers:
    def test_router_buffer_bits(self):
        assert router_vc_buffer_bits(CHIP) == 5 * 3 * 5 * 128

    def test_leakage_positive(self):
        assert BufferModel(1000).leakage_w > 0


class TestCrossbar:
    def test_extra_inputs_grow_area(self):
        base = CrossbarModel(5, 128)
        wide = CrossbarModel(5, 128, extra_input_fraction=0.2)
        assert wide.area_mm2 > base.area_mm2
