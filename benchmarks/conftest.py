"""Shared benchmark utilities.

Every benchmark renders its table to stdout and into
``benchmarks/results/<name>.txt`` so the reproduced figures are
inspectable after a run.  The heavy simulation grid is computed once per
process and shared by all performance figures (see
:mod:`repro.harness.runner`).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save


@pytest.fixture(scope="session")
def scale():
    from repro.harness.runner import get_scale

    return get_scale(os.environ.get("REPRO_SCALE"))
