"""Sharded simulation entry point and the in-process backend.

``run_sharded`` is the one public door: it plans the cut
(:func:`repro.shard.spec.plan_shards`), falls back to a serial run when
the scenario cannot shard (non-mesh organizations, single-row meshes,
``shards=1``), and otherwise drives the shard pool round by round until
the network drains.  Both backends — the deterministic in-process pool
here and the worker-process pool in :mod:`repro.shard.process` — expose
the same three-call surface (``round`` / ``barrier_checkpoint`` /
``stats``), so the driver and every test run identically against
either.

The correctness oracle is digest equality: a sharded run's merged
statistics summary must hash to the same pinned sha256 as the serial
run of the same :class:`SyntheticSpec` (see
``tests/test_golden_determinism.py`` and
``tests/test_shard_equivalence.py``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.shard.domain import ShardDomain
from repro.shard.merge import merge_snapshots, merge_stats
from repro.shard.spec import ShardError, SyntheticSpec, plan_shards


def summary_digest(summary: dict) -> str:
    """sha256 of a stats summary, exactly as the golden tests hash it."""
    return hashlib.sha256(
        json.dumps(summary, sort_keys=True, default=repr).encode()
    ).hexdigest()


@dataclass
class ShardResult:
    """Outcome of a (possibly degenerate) sharded run."""

    digest: str
    summary: dict
    shards: int                      # effective shard count
    backend: str                     # "serial", "inline", or "process"
    fallback_reason: Optional[str] = None
    checkpoint: Optional[dict] = None
    cycles: int = 0                  # final clock (max across shards)
    cycles_skipped: int = 0
    offered: int = 0
    clocks: List[int] = field(default_factory=list)
    #: The supervisor's flight record (process backend; None inline).
    report: Optional[object] = None


class _InlinePool:
    """All shards in one process, advanced round-robin.

    Messages to the *next* shard are delivered within the same round
    (the sweep runs in ascending shard order), messages to the
    *previous* shard at the start of the following round.
    """

    def __init__(self, spec: SyntheticSpec, count: int, observers: str):
        self.domains = [ShardDomain(spec, i, count, observers=observers)
                        for i in range(count)]
        self.pending: List[list] = [[] for _ in range(count)]

    def round(self, hard_stop: Optional[int]
              ) -> Tuple[List[int], List[int], int]:
        produced = 0
        clocks: List[int] = []
        flights: List[int] = []
        for i, dom in enumerate(self.domains):
            inbox = self.pending[i]
            self.pending[i] = []
            for side, message in inbox:
                dom.receive_flush(side, message)
            dom.advance(hard_stop=hard_stop)
            message = dom.make_flush("prev")
            if message is not None:
                produced += 1
                self.pending[i - 1].append(("next", message))
            message = dom.make_flush("next")
            if message is not None:
                produced += 1
                self.pending[i + 1].append(("prev", message))
            clocks.append(dom.net.cycle)
            flights.append(dom.net.stats.in_flight)
        return clocks, flights, produced

    def barrier_checkpoint(self, barrier: int) -> dict:
        from repro.checkpoint.snapshot import snapshot_network

        snapshots = []
        for dom in self.domains:
            dom.barrier_drain(barrier)
            snapshots.append(snapshot_network(dom.net, dom.traffic))
        ranges = [(dom.first, dom.last) for dom in self.domains]
        return merge_snapshots(snapshots, ranges, barrier)

    def stats(self) -> List[Tuple[dict, int, int]]:
        return [(dom.net.stats.state_dict(), dom.net.cycles_skipped,
                 dom.traffic.offered) for dom in self.domains]

    def close(self) -> None:
        pass


def _drive(pool, spec: SyntheticSpec,
           checkpoint_at: Optional[int]) -> Optional[dict]:
    """Run rounds until the network drains; returns the merged
    checkpoint if one was requested."""
    end_inject = spec.cycles
    deadline = spec.cycles + spec.drain
    hard_stop = checkpoint_at
    checkpoint = None
    prev_clocks: Optional[List[int]] = None
    while True:
        clocks, flights, produced = pool.round(hard_stop)
        total = sum(flights)
        if hard_stop is not None and produced == 0 \
                and all(c == hard_stop for c in clocks):
            checkpoint = pool.barrier_checkpoint(hard_stop)
            hard_stop = None
            prev_clocks = None
            continue
        # Once every shard has finished injecting and the global
        # in-flight count is zero, no packet exists anywhere and no
        # boundary record can ever be produced again — the statistics
        # are final.  Heartbeat flushes may keep flowing (promises creep
        # as coverage rises), so termination must not wait for silence.
        if hard_stop is None and total == 0 \
                and all(c >= end_inject for c in clocks):
            break
        if total > 0 and all(c >= deadline for c in clocks):
            raise RuntimeError(
                f"network failed to drain: {total} packets in flight "
                f"after {spec.drain} cycles"
            )
        if produced == 0 and clocks == prev_clocks:
            raise ShardError(
                f"sharded run stalled at clocks {clocks}: no boundary "
                f"traffic and no clock progress"
            )
        prev_clocks = clocks
    return checkpoint


def _run_serial(spec: SyntheticSpec, observers: str,
                checkpoint_at: Optional[int],
                reason: Optional[str]) -> ShardResult:
    """The reference path: one network, exactly the golden scenario."""
    net, traffic = spec.build()
    if observers == "tracing":
        from repro.invariants import InvariantSuite
        from repro.trace import RingTracer

        net.attach(tracer=RingTracer(capacity=1 << 12))
        net.attach(invariants=InvariantSuite())
    checkpoint = None
    if checkpoint_at is not None:
        if not 0 <= checkpoint_at <= spec.cycles:
            raise ValueError(
                f"checkpoint_at must be within the injection phase "
                f"[0, {spec.cycles}], got {checkpoint_at}"
            )
        from repro.checkpoint.snapshot import snapshot_network

        traffic.run(checkpoint_at)
        checkpoint = snapshot_network(net, traffic)
        traffic.run(spec.cycles - checkpoint_at)
    else:
        traffic.run(spec.cycles)
    net.drain(max_cycles=spec.drain)
    summary = net.stats.summary()
    return ShardResult(
        digest=summary_digest(summary),
        summary=summary,
        shards=1,
        backend="serial",
        fallback_reason=reason,
        checkpoint=checkpoint,
        cycles=net.cycle,
        cycles_skipped=net.cycles_skipped,
        offered=traffic.offered,
        clocks=[net.cycle],
    )


def run_sharded(spec: SyntheticSpec, shards: int,
                backend: str = "inline", observers: str = "none",
                checkpoint_at: Optional[int] = None,
                policy=None, faults=None) -> ShardResult:
    """Simulate ``spec`` cut into ``shards`` row stripes.

    Serial and sharded runs of the same spec produce bit-identical
    statistics summaries (and therefore digests); ``checkpoint_at``
    additionally returns a merged snapshot taken at that cycle barrier,
    restorable by :func:`repro.checkpoint.snapshot.restore_network`.

    The process backend always runs supervised
    (:func:`repro.resilience.supervisor.run_supervised`): workers that
    die, hang, or babble are respawned from recovery-point barriers
    under ``policy`` (default: :meth:`RetryPolicy.from_env`), and
    ``faults`` injects deterministic process failures for testing.
    """
    if backend not in ("inline", "process"):
        raise ValueError(
            f"backend must be 'inline' or 'process', got {backend!r}"
        )
    if observers not in ("none", "tracing"):
        raise ValueError(
            f"observers must be 'none' or 'tracing', got {observers!r}"
        )
    if backend == "process":
        from repro.resilience.supervisor import run_supervised

        return run_supervised(spec, shards, observers=observers,
                              checkpoint_at=checkpoint_at,
                              policy=policy, faults=faults)
    if faults is not None:
        raise ValueError(
            "process fault injection requires the process backend"
        )
    effective, reason = plan_shards(spec.params(), shards)
    if effective == 1:
        return _run_serial(spec, observers, checkpoint_at, reason)
    if checkpoint_at is not None \
            and not 0 < checkpoint_at <= spec.cycles:
        raise ValueError(
            f"checkpoint_at must be within the injection phase "
            f"(0, {spec.cycles}], got {checkpoint_at}"
        )
    pool = _InlinePool(spec, effective, observers)
    try:
        checkpoint = _drive(pool, spec, checkpoint_at)
        states = pool.stats()
    finally:
        pool.close()
    stats = merge_stats([state for state, _, _ in states])
    summary = stats.summary()
    clocks = [dom.net.cycle for dom in pool.domains]
    return ShardResult(
        digest=summary_digest(summary),
        summary=summary,
        shards=effective,
        backend=backend,
        fallback_reason=reason,
        checkpoint=checkpoint,
        cycles=max(clocks),
        cycles_skipped=sum(skipped for _, skipped, _ in states),
        offered=sum(offered for _, _, offered in states),
        clocks=clocks,
    )
