#!/usr/bin/env python3
"""Quickstart: one LLC response across the four network organizations.

Builds each network on an 8x8 mesh, sends a 5-flit response packet from
an LLC slice (node 0) to a core (node 7) with the PRA announce window,
and prints the end-to-end network latency.  The punchline matches the
paper's motivation: SMART barely beats the mesh, while Mesh+PRA lands
close to the ideal network.

Run:  python examples/quickstart.py
"""

from repro.noc.network import build_network
from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind, NocParams


def main() -> None:
    print("One 5-flit LLC response, node 0 -> node 7 (7 hops straight):\n")
    for kind in (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA,
                 NocKind.IDEAL):
        net = build_network(NocParams(kind=kind))
        packet = Packet(src=0, dst=7, msg_class=MessageClass.RESPONSE,
                        created=net.cycle)
        # The tile layer would do this on an LLC tag hit: announce the
        # response four cycles (the data-lookup time) before sending it.
        net.announce(packet, ready_in=4)
        net.run(4)
        net.send(packet)
        net.drain(max_cycles=500)
        print(f"  {kind.value:10s} network latency = "
              f"{packet.network_latency():3d} cycles "
              f"(head traversed {packet.hops_taken} hops)")
    print("\nMesh+PRA rides a pre-allocated path at two tiles per cycle;")
    print("only the ideal (zero router delay) network is faster.")


if __name__ == "__main__":
    main()
