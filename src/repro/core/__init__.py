"""The paper's contribution: proactive resource allocation (PRA).

Mesh+PRA augments the baseline mesh data network with:

* per-output-port reservation bit vectors (:mod:`repro.core.reservation`),
* a bypass path and a one-cycle latch in each input unit, a PRA arbiter
  beside the local arbiter, and a Long Stall Detection unit
  (:mod:`repro.core.pra_router`),
* a narrow bufferless control network of 2-hop multi-drop segments that
  carries one-flit control packets reserving timeslots and full-packet
  buffer space ahead of data packets (:mod:`repro.core.control_network`).

A pre-allocated packet crosses up to two tiles per cycle; everywhere
else the network behaves exactly like the baseline mesh.
"""

from repro.core.plan import PlanStep, PraPlan
from repro.core.reservation import ReservationEntry, ReservationTable
from repro.core.control_network import ControlNetwork, ControlRun
from repro.core.pra_network import PraNetwork

__all__ = [
    "PlanStep",
    "PraPlan",
    "ReservationEntry",
    "ReservationTable",
    "ControlNetwork",
    "ControlRun",
    "PraNetwork",
]
