"""Behavioral tests for the control network: lag, drops, claims."""

from repro.core.control_network import (
    DROP_CONTROL_CONFLICT,
    DROP_LAG_ZERO,
    DROP_REACHED_DESTINATION,
    DROP_RESOURCE_BUSY,
)
from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind, NocParams, PraParams
from repro.noc.network import build_network
from tests.helpers import assert_quiescent


def make_pra(width=8, height=8, **pra_kwargs):
    return build_network(
        NocParams(kind=NocKind.MESH_PRA, mesh_width=width, mesh_height=height,
                  pra=PraParams(**pra_kwargs))
    )


def announce_and_send(net, src, dst, ready_in=4):
    pkt = Packet(src=src, dst=dst, msg_class=MessageClass.RESPONSE,
                 created=net.cycle)
    net.announce(pkt, ready_in=ready_in)
    net.run(ready_in)
    net.send(pkt)
    return pkt


class TestLagArithmetic:
    def test_short_path_reaches_destination_with_lag_left(self):
        net = make_pra()
        announce_and_send(net, src=0, dst=2)  # 2 hops
        net.drain(max_cycles=300)
        reasons = net.stats.control_drop_reasons
        assert reasons[DROP_REACHED_DESTINATION] == 1
        # A 2-hop path is fully covered well before lag 4 expires.
        (lag,) = net.stats.control_lag_at_drop.keys()
        assert lag >= 1

    def test_long_path_exhausts_lag(self):
        net = make_pra()
        announce_and_send(net, src=0, dst=63)  # 14 hops
        net.drain(max_cycles=300)
        assert net.stats.control_drop_reasons[DROP_LAG_ZERO] == 1
        assert net.stats.control_lag_at_drop[0] == 1

    def test_lag_bounds_preallocated_stretch(self):
        """With lag L, at most L single-cycle steps are pre-allocated."""
        for max_lag in (1, 2, 3):
            net = make_pra(max_lag=max_lag)
            pkt = announce_and_send(net, src=0, dst=7)
            plan = pkt.pra_plan
            assert plan is not None
            net.drain(max_cycles=300)
            assert len(plan.steps) <= max_lag

    def test_tiny_window_still_injects_and_unwinds(self):
        """Even a zero-cycle announce window leaves lag 1 (the two-cycle
        injection pipeline is itself a window).  Whatever little gets
        reserved, a late send must unwind it cleanly."""
        net = make_pra()
        pkt = Packet(src=0, dst=7, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        net.announce(pkt, ready_in=0)
        net.run(2)  # the send is now late; the plan will cancel
        assert net.stats.control_packets_injected == 1
        net.send(pkt)
        net.drain(max_cycles=300)
        assert pkt.ejected is not None
        assert_quiescent(net)


class TestConflicts:
    def test_same_cycle_announces_conflict_on_shared_path(self):
        """Two responses pre-allocating overlapping slots on the same
        output port: the second run must drop at the busy resource, and
        both packets still deliver."""
        net = make_pra()
        a = Packet(src=0, dst=7, msg_class=MessageClass.RESPONSE,
                   created=net.cycle)
        b = Packet(src=1, dst=7, msg_class=MessageClass.RESPONSE,
                   created=net.cycle)
        net.announce(a, ready_in=4)
        net.announce(b, ready_in=4)
        net.run(4)
        net.send(a)
        net.send(b)
        net.drain(max_cycles=500)
        assert net.stats.packets_ejected == 2
        reasons = net.stats.control_drop_reasons
        assert (
            reasons[DROP_RESOURCE_BUSY] + reasons[DROP_CONTROL_CONFLICT] >= 1
        )
        assert_quiescent(net)

    def test_injection_latch_conflict(self):
        """Two announces from the same node in the same cycle: the
        local latch holds one control packet; the loser is dropped at
        injection (and never counted as injected)."""
        net = make_pra()
        a = Packet(src=0, dst=7, msg_class=MessageClass.RESPONSE,
                   created=net.cycle)
        b = Packet(src=0, dst=15, msg_class=MessageClass.RESPONSE,
                   created=net.cycle)
        net.announce(a, ready_in=4)
        net.announce(b, ready_in=4)
        assert net.stats.control_packets_injected <= 1


class TestPlanExecution:
    def test_full_plan_rides_two_hops_per_cycle(self):
        net = make_pra()
        pkt = announce_and_send(net, src=0, dst=4)  # 4 straight hops
        plan = pkt.pra_plan
        net.drain(max_cycles=300)
        # 4 hops = two 2-hop steps, plus the ejection step.
        assert [s.hops for s in plan.steps] == [2, 2, 1]
        assert plan.steps[-1].out_dir.name == "LOCAL"
        # Consecutive steps occupy consecutive cycles.
        slots = [s.slot for s in plan.steps]
        assert slots == list(range(slots[0], slots[0] + len(slots)))

    def test_turns_break_two_hop_steps(self):
        net = make_pra()
        pkt = announce_and_send(net, src=0, dst=9)  # 1 east, 1 south
        plan = pkt.pra_plan
        net.drain(max_cycles=300)
        assert all(s.hops == 1 for s in plan.steps[:-1])

    def test_consumed_plan_clears_packet_state(self):
        net = make_pra()
        pkt = announce_and_send(net, src=0, dst=2)
        net.drain(max_cycles=300)
        assert pkt.pra_plan is None
        assert not pkt.pra_pending
        assert_quiescent(net)

    def test_blocked_stat_counts_foreign_reservations(self):
        """A packet denied a port because the slot is proactively
        allocated to another packet accrues pra_blocked_cycles."""
        net = make_pra(width=8, height=8)
        victim_delivered = []
        net.on_delivery(lambda p, now: victim_delivered.append(p))
        planned = announce_and_send(net, src=0, dst=7)
        # A competing response from node 1 wants the same row eastward
        # in the same cycles, without a plan.
        victim = Packet(src=1, dst=7, msg_class=MessageClass.RESPONSE,
                        created=net.cycle)
        net.send(victim)
        net.drain(max_cycles=500)
        assert net.stats.packets_ejected == 2
        # The planned packet cannot be blocked by its own reservations.
        assert planned.pra_blocked_cycles == 0
