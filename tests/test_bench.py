"""Tests for the self-measuring benchmark harness (`repro.bench`)."""

from __future__ import annotations

import json

import pytest

from repro.bench import compare_reports, run_bench, write_report
from repro.bench.harness import SCHEMA_VERSION
from repro.harness.runner import ALL_KINDS, EvaluationScale

#: A deliberately tiny scale so the suite times real simulations
#: without dominating the test run.
TINY = EvaluationScale("tiny", warmup=20, measure=80, num_seeds=1)


def _fake_report(cps_by_org, calibration=10.0):
    return {
        "schema": SCHEMA_VERSION,
        "stamp": "19700101T000000Z",
        "git_rev": "deadbee",
        "scale": "smoke",
        "machine": {"calibration_mips": calibration},
        "micro": {
            org: {"cycles": 1800, "wall_s": 1.0, "cycles_per_sec": cps}
            for org, cps in cps_by_org.items()
        },
        "total_wall_s": 1.0,
    }


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def test_run_bench_produces_complete_report(tmp_path):
    report = run_bench(TINY, repeat=1, include_macro=False)
    assert report["schema"] == SCHEMA_VERSION
    assert report["scale"] == "tiny"
    orgs = {k.value for k in ALL_KINDS}
    contested = {"mesh@contested", "smart@contested",
                 "mesh+pra@contested", "chiplet@contested"}
    assert set(report["micro"]) == (
        orgs | {f"{org}@low" for org in orgs} | contested
        | {"mesh@shard1"}
    )
    for key in contested:
        cell = report["micro"][key]
        assert cell["wall_s"] > 0
        assert cell["stepped_cycles_per_sec"] > 0
        assert len(cell["digest"]) == 64
    for org in orgs:
        cell = report["micro"][org]
        assert cell["cycles"] == TINY.warmup + TINY.measure
        assert cell["wall_s"] > 0
        assert cell["cycles_per_sec"] > 0
        assert cell["cycles_skipped"] >= 0
    for org in orgs:
        cell = report["micro"][f"{org}@low"]
        assert cell["wall_s"] > 0
        assert cell["cycles_per_sec"] > 0
        # The ping-pong scenario is mostly idle: the horizon must have
        # fast-forwarded real spans, and the digest pins the results.
        assert cell["cycles_skipped"] > 0
        assert len(cell["digest"]) == 64
    shard_cell = report["micro"]["mesh@shard1"]
    assert shard_cell["backend"] == "serial"
    assert len(shard_cell["digest"]) == 64
    assert report["shards"] == 1
    assert report["pools"]["packets_acquired"] > 0
    assert report["machine"]["calibration_mips"] > 0
    path = write_report(report, out=str(tmp_path / "BENCH_test.json"))
    assert json.loads(open(path).read()) == report


def test_compare_reports_computes_deltas(tmp_path):
    a = _write(tmp_path, "a.json", _fake_report({"mesh": 1000.0}))
    b = _write(tmp_path, "b.json", _fake_report({"mesh": 1500.0}))
    rows, failed = compare_reports(a, b)
    assert not failed
    assert len(rows) == 1
    assert rows[0]["org"] == "mesh"
    assert rows[0]["raw_delta"] == pytest.approx(0.5)
    assert rows[0]["norm_delta"] == pytest.approx(0.5)


def test_compare_flags_true_regression(tmp_path):
    a = _write(tmp_path, "a.json", _fake_report({"mesh": 1000.0}))
    b = _write(tmp_path, "b.json", _fake_report({"mesh": 500.0}))
    rows, failed = compare_reports(a, b, fail_threshold=0.30)
    assert failed and rows[0]["regressed"]


def test_compare_forgives_slower_machine(tmp_path):
    # Half the throughput on a machine with half the calibration score
    # is not a simulator regression.
    a = _write(tmp_path, "a.json",
               _fake_report({"mesh": 1000.0}, calibration=10.0))
    b = _write(tmp_path, "b.json",
               _fake_report({"mesh": 500.0}, calibration=5.0))
    rows, failed = compare_reports(a, b, fail_threshold=0.30)
    assert not failed
    assert rows[0]["raw_delta"] == pytest.approx(-0.5)
    assert rows[0]["norm_delta"] == pytest.approx(0.0)


def test_compare_forgives_calibration_noise(tmp_path):
    # Unchanged raw throughput with a noisy calibration reading must
    # not fail the gate either (the gate needs both deltas to regress).
    a = _write(tmp_path, "a.json",
               _fake_report({"mesh": 1000.0}, calibration=10.0))
    b = _write(tmp_path, "b.json",
               _fake_report({"mesh": 1000.0}, calibration=20.0))
    rows, failed = compare_reports(a, b, fail_threshold=0.30)
    assert not failed
    assert rows[0]["norm_delta"] == pytest.approx(-0.5)


def test_compare_rejects_unknown_schema(tmp_path):
    report = _fake_report({"mesh": 1000.0})
    report["schema"] = 999
    a = _write(tmp_path, "a.json", report)
    with pytest.raises(ValueError, match="unsupported bench schema"):
        compare_reports(a, a)


def test_num_jobs_env_handling(monkeypatch):
    from repro.harness import runner

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert runner._num_jobs() == 1
    monkeypatch.setenv("REPRO_JOBS", "4")
    assert runner._num_jobs() == 4
    monkeypatch.setenv("REPRO_JOBS", "0")  # auto: one worker per CPU
    assert runner._num_jobs() == (runner.os.cpu_count() or 1)
    # Invalid values used to be swallowed into a silent default of 1;
    # they now fail loudly with the shared worker-count message (the
    # CLI turns this into exit 2, see tests/test_worker_plumbing.py).
    monkeypatch.setenv("REPRO_JOBS", "not-a-number")
    with pytest.raises(ValueError, match="REPRO_JOBS must be"):
        runner._num_jobs()


def test_cli_compare_exit_codes(tmp_path, capsys):
    from repro.cli import main

    a = _write(tmp_path, "a.json", _fake_report({"mesh": 1000.0}))
    b = _write(tmp_path, "b.json", _fake_report({"mesh": 400.0}))
    assert main(["bench", "--compare", a, b]) == 0  # no threshold: report only
    assert main(["bench", "--compare", a, b, "--fail-threshold", "0.3"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out
