"""Ablation A2: maximum control-packet lag.

The paper fixes max lag at 4.  Sweeping it shows the trade-off: shorter
lags cannot cover the path (most drops at high remaining lag); longer
lags saturate because paths complete or reservations fail first.
"""

from dataclasses import replace

from repro.harness.reporting import format_table
from repro.params import ChipParams, NocKind, PraParams
from repro.perf.system import simulate

WORKLOAD = "Web Search"
LAGS = (1, 2, 4, 8)


def test_ablation_maxlag(benchmark, save_result, scale):
    def run_all():
        out = {}
        for max_lag in LAGS:
            base = ChipParams()
            pra = PraParams(max_lag=max_lag,
                            reservation_horizon=max_lag + 8)
            params = replace(base, noc=replace(base.noc,
                                               kind=NocKind.MESH_PRA,
                                               pra=pra))
            out[max_lag] = simulate(WORKLOAD, NocKind.MESH_PRA,
                                    warmup=scale.warmup,
                                    measure=scale.measure, seed=1,
                                    chip_params=params)
        return out

    results = benchmark.pedantic(run_all, iterations=1, rounds=1)
    rows = [
        [lag, s.ipc, s.avg_network_latency, s.lag_distribution.get(0, 0.0)]
        for lag, s in results.items()
    ]
    save_result(
        "ablation_maxlag",
        format_table(["MaxLag", "IPC", "NetLatency", "Lag0Frac"], rows,
                     "Ablation A2: maximum lag sweep"),
    )
    # Lag 4 (the paper's choice) clearly beats lag 1.
    assert results[4].ipc > results[1].ipc
    # Returns diminish beyond the paper's setting.
    assert results[8].ipc < results[4].ipc * 1.05
