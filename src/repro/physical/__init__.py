"""Physical models: area, energy, and performance density.

These are first-order analytic models parameterized with the exact
constants the paper reports (Section IV-B): 32 nm / 0.9 V / 2 GHz,
semi-global wires at 85 ps/mm with power-delay-optimized repeaters,
50 fJ/bit/mm links with repeaters at 19% of link energy, flip-flop
buffers (DSENT-derived), CACTI-derived cache area/power, and the
Cortex-A15 core numbers from Microprocessor Report.  The buffer cell
area is calibrated so the Mesh organization totals the paper's reported
3.5 mm²; the SMART and Mesh+PRA totals then *follow from structure*
(multi-tile repeaters, SSR wires, the control network, latches, and
reservation state).
"""

from repro.physical.wires import LinkModel
from repro.physical.buffers import BufferModel
from repro.physical.crossbar import CrossbarModel
from repro.physical.area import NocArea, noc_area
from repro.physical.power import NocPower, noc_power, chip_power
from repro.physical.density import chip_area_mm2, performance_density

__all__ = [
    "LinkModel",
    "BufferModel",
    "CrossbarModel",
    "NocArea",
    "noc_area",
    "NocPower",
    "noc_power",
    "chip_power",
    "chip_area_mm2",
    "performance_density",
]
