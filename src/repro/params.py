"""Evaluation parameters (Table I of the paper) as dataclasses.

Every experiment in the harness builds its configuration from these
dataclasses so there is a single source of truth for the paper's setup:
32 nm / 0.9 V / 2 GHz, 64 cores, 8 MB NUCA LLC, four DDR3-1600 channels,
and the four network organizations (Mesh, SMART, Mesh+PRA, Ideal).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum


class NocKind(Enum):
    """The four network organizations evaluated in the paper."""

    MESH = "mesh"
    SMART = "smart"
    MESH_PRA = "mesh+pra"
    IDEAL = "ideal"


class MessageClass(Enum):
    """Message classes; one virtual channel per class avoids protocol
    deadlock (Dally & Towles).  Values double as VC indices."""

    REQUEST = 0
    COHERENCE = 1
    RESPONSE = 2


#: Number of message classes / VCs per port in every organization.
NUM_MESSAGE_CLASSES = len(MessageClass)


@dataclass(frozen=True)
class TechnologyParams:
    """32 nm technology point used throughout the evaluation."""

    node_nm: int = 32
    vdd: float = 0.9
    frequency_ghz: float = 2.0
    #: Semi-global wires with power-delay-optimized repeaters.
    wire_delay_ps_per_mm: float = 85.0
    #: Link energy on random data.
    link_energy_fj_per_bit_mm: float = 50.0
    #: Fraction of link energy dissipated in repeaters.
    repeater_energy_fraction: float = 0.19
    wire_pitch_nm: float = 200.0

    @property
    def cycle_time_ps(self) -> float:
        return 1000.0 / self.frequency_ghz


@dataclass(frozen=True)
class CoreParams:
    """ARM Cortex-A15-like core scaled to 32 nm (Microprocessor Report)."""

    decode_width: int = 3
    rob_entries: int = 64
    lsq_entries: int = 16
    area_mm2: float = 2.9
    power_w: float = 1.05


@dataclass(frozen=True)
class CacheParams:
    """LLC slice parameters (CACTI 6.5-derived values from the paper)."""

    llc_total_mb: float = 8.0
    area_mm2_per_mb: float = 3.2
    power_w_per_mb: float = 0.5
    #: Serial tag then data lookup (energy-optimized LLC).
    tag_lookup_cycles: int = 1
    data_lookup_cycles: int = 4
    block_bytes: int = 64


@dataclass(frozen=True)
class MemoryParams:
    """Four DDR3-1600 channels; closed-page fixed-service approximation."""

    num_channels: int = 4
    #: Core cycles (2 GHz) for an average DRAM access (activate+read+data).
    access_cycles: int = 90
    #: Minimum cycles between successive accesses on one channel.
    service_cycles: int = 8


@dataclass(frozen=True)
class RouterParams:
    """Per-router structure shared by all organizations."""

    num_ports: int = 5
    vcs_per_port: int = NUM_MESSAGE_CLASSES
    flits_per_vc: int = 5
    link_width_bits: int = 128

    def __post_init__(self) -> None:
        if self.num_ports < 2:
            raise ValueError(
                f"num_ports must be at least 2, got {self.num_ports}"
            )
        if not NUM_MESSAGE_CLASSES <= self.vcs_per_port <= 32:
            raise ValueError(
                f"vcs_per_port must be between {NUM_MESSAGE_CLASSES} (one "
                f"VC per message class) and 32, got {self.vcs_per_port}"
            )
        if self.flits_per_vc < 1:
            raise ValueError(
                f"flits_per_vc must be positive, got {self.flits_per_vc}"
            )
        if self.link_width_bits < 1:
            raise ValueError(
                f"link_width_bits must be positive, got "
                f"{self.link_width_bits}"
            )


@dataclass(frozen=True)
class PraParams:
    """Parameters unique to the Mesh+PRA organization."""

    #: Tiles a pre-allocated data packet covers per cycle.
    hops_per_cycle: int = 2
    #: Maximum lag carried by a control packet (paper Section V-B).
    max_lag: int = 4
    #: Reservation table horizon in timeslots ("several timeslots").
    reservation_horizon: int = 12
    #: Control-network link width (bits), for area/power only.
    control_link_width_bits: int = 15
    #: Enable the LLC-hit trigger (opportunity 1).
    use_llc_trigger: bool = True
    #: Enable the long-stall-detection trigger (opportunity 2).
    use_lsd_trigger: bool = True
    #: Extension beyond the paper: also announce LLC-miss responses,
    #: whose DRAM completion time is deterministic at issue.  Off by
    #: default (the paper triggers on LLC hits only); exercised by the
    #: trigger ablation.
    use_memory_trigger: bool = False

    def __post_init__(self) -> None:
        if self.hops_per_cycle not in (1, 2):
            raise ValueError(
                f"pra hops_per_cycle must be 1 or 2, got "
                f"{self.hops_per_cycle}"
            )
        if self.max_lag < 1:
            raise ValueError(f"max_lag must be positive, got {self.max_lag}")
        if self.reservation_horizon < 1:
            raise ValueError(
                f"reservation_horizon must be positive, got "
                f"{self.reservation_horizon}"
            )


@dataclass(frozen=True)
class SmartParams:
    """Parameters unique to the SMART organization."""

    #: HPC_max: tiles traversed per cycle when bypass is granted.
    hops_per_cycle: int = 2


@dataclass(frozen=True)
class NocParams:
    """One network organization, fully specified."""

    kind: NocKind = NocKind.MESH
    mesh_width: int = 8
    mesh_height: int = 8
    #: Topology spec string: ``mesh`` (the grid above), ``ring``
    #: (``mesh_width`` stops), or ``chiplet:CXxCYxWxH[:star][:ilat=N]``
    #: (see :func:`repro.noc.topology.parse_topology_spec`).  For
    #: chiplet specs the mesh dimensions are derived from the spec's
    #: global tile grid, so ``num_nodes`` stays the endpoint count.
    topology: str = "mesh"

    router: RouterParams = field(default_factory=RouterParams)
    pra: PraParams = field(default_factory=PraParams)
    smart: SmartParams = field(default_factory=SmartParams)
    #: Ideal network: hops a header may cover per cycle.
    ideal_hops_per_cycle: int = 2

    def __post_init__(self) -> None:
        if self.mesh_width < 1 or self.mesh_height < 1:
            raise ValueError(
                f"mesh dimensions must be positive, got "
                f"{self.mesh_width}x{self.mesh_height}"
            )
        if self.ideal_hops_per_cycle < 1:
            raise ValueError(
                f"ideal_hops_per_cycle must be positive, got "
                f"{self.ideal_hops_per_cycle}"
            )
        # Validate the spec eagerly (junk fails at construction, not
        # deep inside network building) and derive the global grid for
        # chiplet specs.  Lazy import: topology has no params dependency
        # at import time, but keeping it out of module scope avoids any
        # chance of a cycle.
        from repro.noc.topology import parse_topology_spec

        spec = parse_topology_spec(self.topology)
        if spec.kind == "chiplet":
            width = spec.chiplets_x * spec.chip_width
            height = spec.chiplets_y * spec.chip_height
            if (self.mesh_width, self.mesh_height) != (width, height):
                object.__setattr__(self, "mesh_width", width)
                object.__setattr__(self, "mesh_height", height)

    @property
    def num_nodes(self) -> int:
        return self.mesh_width * self.mesh_height

    def with_kind(self, kind: NocKind) -> "NocParams":
        return replace(self, kind=kind)


@dataclass(frozen=True)
class ChipParams:
    """The 64-core Scale-Out-Processor-style chip of Table I."""

    technology: TechnologyParams = field(default_factory=TechnologyParams)
    core: CoreParams = field(default_factory=CoreParams)
    cache: CacheParams = field(default_factory=CacheParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    noc: NocParams = field(default_factory=NocParams)

    @property
    def num_tiles(self) -> int:
        return self.noc.num_nodes

    @property
    def llc_slice_mb(self) -> float:
        return self.cache.llc_total_mb / self.num_tiles

    @property
    def tile_area_mm2(self) -> float:
        """Core + LLC slice area (network area is modeled separately)."""
        return self.core.area_mm2 + self.llc_slice_mb * self.cache.area_mm2_per_mb

    @property
    def tile_side_mm(self) -> float:
        """Tile edge length assuming square tiles; sets link length."""
        return self.tile_area_mm2 ** 0.5

    def with_noc_kind(self, kind: NocKind) -> "ChipParams":
        return replace(self, noc=self.noc.with_kind(kind))


#: Packet sizes in flits over the 128-bit data links: a request or
#: coherence message is a single (address-sized) flit; a response carries
#: a 64-byte block = 4 data flits + 1 header flit.
PACKET_FLITS = {
    MessageClass.REQUEST: 1,
    MessageClass.COHERENCE: 1,
    MessageClass.RESPONSE: 5,
}


def default_chip(kind: NocKind = NocKind.MESH) -> ChipParams:
    """The Table I configuration with the chosen network organization."""
    return ChipParams().with_noc_kind(kind)
