"""Cycle-level event tracing: typed events, tracers, and timelines.

The observability layer of the simulator.  A network's ``tracer``
attribute is the :data:`~repro.trace.tracer.NULL_TRACER` by default
(zero-cost apart from one guarded attribute check per emission site);
attach a :class:`~repro.trace.tracer.RingTracer` to collect typed
lifecycle events, export them as JSONL, and rebuild per-packet
timelines with :func:`~repro.trace.timeline.reconstruct`.

Example::

    from repro.trace import RingTracer, reconstruct

    net = build_network(NocParams(kind=NocKind.MESH_PRA))
    tracer = RingTracer()
    net.attach(tracer=tracer)
    ...  # run traffic
    tracer.write_jsonl("run.jsonl")
    print(reconstruct("run.jsonl", pid=42).render())
"""

from repro.trace.events import (
    ALL_KINDS,
    EV_CONTROL_DROP,
    EV_CONTROL_INJECT,
    EV_CONTROL_SEGMENT,
    EV_EJECT,
    EV_LATCH_BYPASS,
    EV_LINK,
    EV_PACKET_INJECT,
    EV_RESERVATION_COMMIT,
    EV_SWITCH_GRANT,
    EV_SWITCH_HOLD,
    EV_SWITCH_RELEASE,
    EV_VC_ALLOC,
    PLAN_KINDS,
    TraceEvent,
    read_jsonl,
    write_jsonl,
)
from repro.trace.tracer import NULL_TRACER, NullTracer, RingTracer
from repro.trace.timeline import (
    PacketTimeline,
    delivered_pids,
    planned_pids,
    reconstruct,
    timelines_by_pid,
)

__all__ = [
    "ALL_KINDS",
    "PLAN_KINDS",
    "EV_PACKET_INJECT",
    "EV_LINK",
    "EV_VC_ALLOC",
    "EV_SWITCH_GRANT",
    "EV_SWITCH_HOLD",
    "EV_SWITCH_RELEASE",
    "EV_EJECT",
    "EV_CONTROL_INJECT",
    "EV_CONTROL_SEGMENT",
    "EV_CONTROL_DROP",
    "EV_RESERVATION_COMMIT",
    "EV_LATCH_BYPASS",
    "TraceEvent",
    "read_jsonl",
    "write_jsonl",
    "NULL_TRACER",
    "NullTracer",
    "RingTracer",
    "PacketTimeline",
    "reconstruct",
    "timelines_by_pid",
    "planned_pids",
    "delivered_pids",
]
