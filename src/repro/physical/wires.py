"""Wire and repeater models (paper Section IV-B).

Semi-global wires, 200 nm pitch, power-delay-optimized repeaters giving
85 ps/mm — two tiles per cycle at 2 GHz given the tile aspect ratio.
Wires route over logic/SRAM and cost no area; only repeaters count.
Link energy is 50 fJ/bit/mm on random data, 19% of it in repeaters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import ChipParams, TechnologyParams

#: Repeater area per millimeter of one wire, mm².  Power-delay-optimized
#: repeaters at 32 nm; calibrated jointly with the buffer cell so the
#: mesh NOC totals the paper's 3.5 mm² (see repro.physical.area).
REPEATER_AREA_MM2_PER_WIRE_MM = 2.6e-5

#: Extra repeater sizing needed to traverse two tiles in one cycle
#: (SMART and Mesh+PRA data links, multi-drop control segments): larger,
#: more closely spaced repeaters on the same wires.
TWO_TILE_REPEATER_FACTOR = 1.45


@dataclass(frozen=True)
class LinkModel:
    """One unidirectional link bundle between adjacent tiles."""

    width_bits: int
    length_mm: float
    #: 1 for single-tile-per-cycle links, TWO_TILE_REPEATER_FACTOR for
    #: single-cycle two-tile traversal.
    repeater_factor: float = 1.0
    #: Multi-drop segments run a second bundle past the neighbor to the
    #: tile after it (Figure 5): effectively doubled wire length.
    drop_factor: float = 1.0

    @property
    def repeater_area_mm2(self) -> float:
        return (
            self.width_bits
            * self.length_mm
            * self.drop_factor
            * self.repeater_factor
            * REPEATER_AREA_MM2_PER_WIRE_MM
        )

    def traversal_energy_j(self, bits_toggled: int,
                           tech: TechnologyParams) -> float:
        """Energy for sending ``bits_toggled`` bits over this link."""
        return (
            bits_toggled
            * self.length_mm
            * self.drop_factor
            * tech.link_energy_fj_per_bit_mm
            * 1e-15
        )


def data_link(chip: ChipParams, two_tile: bool = False) -> LinkModel:
    """A data-network link between two adjacent tiles."""
    return LinkModel(
        width_bits=chip.noc.router.link_width_bits,
        length_mm=chip.tile_side_mm,
        repeater_factor=TWO_TILE_REPEATER_FACTOR if two_tile else 1.0,
    )


def control_link(chip: ChipParams) -> LinkModel:
    """A control-network multi-drop segment (15-bit, 2-hop reach)."""
    return LinkModel(
        width_bits=chip.noc.pra.control_link_width_bits,
        length_mm=chip.tile_side_mm,
        repeater_factor=TWO_TILE_REPEATER_FACTOR,
        drop_factor=2.0,
    )


def num_unidirectional_links(chip: ChipParams) -> int:
    """Mesh link count: two directions per adjacent pair."""
    w, h = chip.noc.mesh_width, chip.noc.mesh_height
    return 2 * (w * (h - 1) + h * (w - 1))
