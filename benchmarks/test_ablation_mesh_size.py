"""Ablation A5: mesh size (hop count) vs. PRA's benefit.

PRA removes per-hop allocation time, so its absolute gain should grow
with the average hop count — i.e. with the mesh dimension — while SMART
stays pinned near the mesh.
"""

from dataclasses import replace

from repro.harness.reporting import format_table
from repro.params import ChipParams, NocKind
from repro.perf.system import simulate

WORKLOAD = "Web Search"
SIZES = ((4, 4), (6, 6), (8, 8))


def _chip(width, height, kind):
    base = ChipParams()
    return replace(base, noc=replace(base.noc, kind=kind, mesh_width=width,
                                     mesh_height=height))


def test_ablation_mesh_size(benchmark, save_result, scale):
    def run_all():
        rows = []
        for width, height in SIZES:
            mesh = simulate(WORKLOAD, NocKind.MESH, warmup=scale.warmup,
                            measure=scale.measure, seed=1,
                            chip_params=_chip(width, height, NocKind.MESH))
            pra = simulate(WORKLOAD, NocKind.MESH_PRA, warmup=scale.warmup,
                           measure=scale.measure, seed=1,
                           chip_params=_chip(width, height,
                                             NocKind.MESH_PRA))
            rows.append([
                f"{width}x{height}",
                mesh.avg_network_latency,
                pra.avg_network_latency,
                pra.ipc / mesh.ipc,
            ])
        return rows

    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    save_result(
        "ablation_mesh_size",
        format_table(
            ["Mesh", "Mesh latency", "PRA latency", "PRA speedup"],
            rows, "Ablation A5: mesh-size sweep"),
    )
    by_size = {r[0]: r for r in rows}
    # PRA always helps, and its latency advantage widens with size.
    for row in rows:
        assert row[2] < row[1]
    gain_small = by_size["4x4"][1] - by_size["4x4"][2]
    gain_large = by_size["8x8"][1] - by_size["8x8"][2]
    assert gain_large > gain_small
