"""Cycle-accurate network-on-chip substrate.

This subpackage is the reproduction's analog of BookSim 2.0: a flit-level
wormhole network simulator with virtual channels, credit-based flow
control, dimension-ordered routing, and per-cycle router pipelines.  The
three realistic organizations share this substrate:

* :mod:`repro.noc.mesh` — the baseline 1-stage speculative mesh router
  (two cycles per hop at zero load),
* :mod:`repro.noc.smart` — the SMART single-cycle multi-hop network
  (three cycles per hop at zero load, HPC_max = 2),
* :mod:`repro.core.pra_network` — Mesh+PRA, built on the mesh router with
  proactive resource allocation (lives in :mod:`repro.core`).

The hypothetical zero-router-delay network is :mod:`repro.noc.ideal`.
All of them run over a composable topology graph
(:mod:`repro.noc.topology`): the flat mesh, the background-section
ring, and chiplet + interposer hierarchies
(``--topology chiplet:2x2x4x4[:star][:ilat=N]``).
"""

from repro.noc.flit import Flit, FlitType
from repro.noc.packet import Packet
from repro.noc.topology import (
    ChipletTopology,
    Direction,
    MeshTopology,
    RingTopology,
    Topology,
    TopologySpec,
    as_port,
    build_topology,
    parse_topology_spec,
    port_name,
    topology_from_spec,
)
from repro.noc.routing import xy_route, xy_next_direction
from repro.noc.stats import NetworkStats
from repro.noc.network import Network, build_network
from repro.noc.ring import RingNetwork, build_ring
from repro.noc.chiplet import ChipletNetwork, build_chiplet

__all__ = [
    "RingNetwork",
    "build_ring",
    "ChipletNetwork",
    "build_chiplet",
    "Flit",
    "FlitType",
    "Packet",
    "Direction",
    "Topology",
    "TopologySpec",
    "MeshTopology",
    "RingTopology",
    "ChipletTopology",
    "as_port",
    "port_name",
    "parse_topology_spec",
    "topology_from_spec",
    "build_topology",
    "xy_route",
    "xy_next_direction",
    "NetworkStats",
    "Network",
    "build_network",
]
