"""Figure 2: SMART barely helps servers; an ideal NOC helps a lot.

Paper: SMART's performance is almost the same as the mesh's, while a
zero-router-delay network gains ~28% on Media Streaming + Web Search.
"""

from repro.harness import figure2, render_figure
from repro.params import NocKind


def test_fig2_motivation(benchmark, save_result, scale):
    result = benchmark.pedantic(
        lambda: figure2(scale), iterations=1, rounds=1
    )
    save_result("fig2_motivation", render_figure(result))
    gmeans = result["gmeans"]
    # SMART is within a few percent of the mesh (the paper's point).
    assert abs(gmeans[NocKind.SMART] - 1.0) < 0.05
    # The ideal network gains substantially (paper: ~1.28).
    assert gmeans[NocKind.IDEAL] > 1.15
    assert gmeans[NocKind.IDEAL] > gmeans[NocKind.SMART]
