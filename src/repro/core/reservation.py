"""Per-output-port reservation tables (the paper's bit vectors).

Figure 4 of the paper attaches to every output port a set of bit vectors
holding, for several future timeslots, whether the slot is proactively
allocated (*Valid*), which input port and VC the packet comes from
(*Input Select*, *Local VC Select*), and which downstream VC it goes to
(*Downstream VC Select*), shifting left one slot per cycle.

We model the same state as a fixed-size ring buffer indexed by
``slot % size``: live entries always fall inside ``[now, now + horizon]``
(reservations are only placed for future slots and the PRA arbiter pops
each slot's entry on its cycle), so a ring of ``horizon + 2`` cells can
never alias two live slots.  This keeps every hot-path operation —
``pop``/``entry_at``/``is_free``/emptiness — a single indexed load, where
the previous dict-backed table scanned ``list(self._slots.items())`` on
each ``has_pending*`` probe.

Entries reference the :class:`~repro.core.plan.PraPlan` they belong to.
A cancelled plan voids its entries *eagerly* (``PraPlan.cancel`` calls
:meth:`ReservationTable.void`); the queries additionally treat any entry
whose plan is cancelled as absent, which keeps the table correct even if
``cancelled`` is flipped without going through ``cancel()`` (the
hardware equivalent either way: the valid bit is cleared, freeing the
slot for the local arbiter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.plan import PlanStep, PraPlan
from repro.params import MessageClass


@dataclass
class ReservationEntry:
    """One timeslot's allocation on one output port."""

    plan: PraPlan
    step: PlanStep
    #: Index of the packet flit expected in this slot.
    flit_index: int
    #: True at the router that reads the flit and drives the (multi-hop)
    #: traversal; False at a bypassed router, whose entry only pins its
    #: crossbar and output link for the slot.
    is_driver: bool

    @property
    def live(self) -> bool:
        return not self.plan.cancelled


class ReservationTable:
    """Future-timeslot allocations of a single output port."""

    __slots__ = ("horizon", "_size", "_ring", "_count")

    def __init__(self, horizon: int):
        self.horizon = horizon
        self._size = horizon + 2
        #: ``_ring[slot % _size]`` is ``(slot, entry)`` or None.
        self._ring: List[Optional[Tuple[int, ReservationEntry]]] = (
            [None] * self._size
        )
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    @property
    def _slots(self) -> Dict[int, ReservationEntry]:
        """Dict view of occupied cells (invariant checkers and tests)."""
        return {cell[0]: cell[1] for cell in self._ring if cell is not None}

    # -- queries ------------------------------------------------------------

    def entry_at(self, slot: int) -> Optional[ReservationEntry]:
        """Live entry at ``slot`` (purging a cancelled one)."""
        idx = slot % self._size
        cell = self._ring[idx]
        if cell is None or cell[0] != slot:
            return None
        entry = cell[1]
        if entry.plan.cancelled:
            self._ring[idx] = None
            self._count -= 1
            return None
        return entry

    def is_free(self, slot: int) -> bool:
        return self.entry_at(slot) is None

    def window_free(self, first_slot: int, count: int) -> bool:
        """True when ``count`` consecutive slots are unallocated."""
        entry_at = self.entry_at
        return all(
            entry_at(first_slot + i) is None for i in range(count)
        )

    def within_horizon(self, now: int, first_slot: int, count: int) -> bool:
        return first_slot + count - 1 <= now + self.horizon

    def has_pending(self, now: int) -> bool:
        """Any live allocation at or after ``now``?"""
        if self._count == 0:
            return False
        return any(
            cell is not None
            and cell[0] >= now
            and not cell[1].plan.cancelled
            for cell in self._ring
        )

    def has_pending_multiflit(self, now: int, msg_class: MessageClass) -> bool:
        """The paper's per-class multi-flit interleaving flag: true when
        a multi-flit packet of ``msg_class`` holds future slots here."""
        if self._count == 0:
            return False
        for cell in self._ring:
            if cell is None or cell[0] < now:
                continue
            entry = cell[1]
            if entry.plan.cancelled:
                continue
            packet = entry.plan.packet
            if packet.is_multi_flit and packet.msg_class is msg_class:
                return True
        return False

    # -- updates -------------------------------------------------------------

    def reserve(self, slot: int, entry: ReservationEntry) -> None:
        idx = slot % self._size
        cell = self._ring[idx]
        if cell is not None:
            if cell[0] == slot and not cell[1].plan.cancelled:
                raise RuntimeError("double-booked reservation slot")
            # Evict a stale or cancelled occupant of this ring cell.
            self._count -= 1
        self._ring[idx] = (slot, entry)
        self._count += 1
        entry.plan.table_entries.append((self, slot))

    def pop(self, slot: int) -> Optional[ReservationEntry]:
        """Remove and return the live entry for ``slot``, if any."""
        idx = slot % self._size
        cell = self._ring[idx]
        if cell is None or cell[0] != slot:
            return None
        self._ring[idx] = None
        self._count -= 1
        entry = cell[1]
        if entry.plan.cancelled:
            return None
        return entry

    def void(self, slot: int, plan: PraPlan) -> None:
        """Eagerly clear ``plan``'s entry at ``slot`` (plan cancelled)."""
        idx = slot % self._size
        cell = self._ring[idx]
        if cell is not None and cell[0] == slot and cell[1].plan is plan:
            self._ring[idx] = None
            self._count -= 1

    def purge_before(self, now: int) -> None:
        """Drop stale slots (shift-left of the bit vectors)."""
        if self._count == 0:
            return
        ring = self._ring
        for idx, cell in enumerate(ring):
            if cell is not None and cell[0] < now:
                ring[idx] = None
                self._count -= 1

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        """Occupied cells in slot order; cancelled plans' entries are
        dropped (the queries already treat them as absent)."""
        cells = []
        for cell in self._ring:
            if cell is None:
                continue
            slot, entry = cell
            if entry.plan.cancelled:
                continue
            # Identity index: PlanStep is a value-comparing dataclass,
            # so ``steps.index(entry.step)`` could match a twin step.
            step_index = next(
                i for i, step in enumerate(entry.plan.steps)
                if step is entry.step
            )
            cells.append([slot, ctx.plan_ref(entry.plan), step_index,
                          entry.flit_index, entry.is_driver])
        cells.sort(key=lambda cell: cell[0])
        return {"cells": cells}

    def load_state(self, state: dict, ctx) -> None:
        self._ring = [None] * self._size
        self._count = 0
        for slot, plan_ref, step_index, flit_index, is_driver in state["cells"]:
            plan = ctx.plan(plan_ref)
            # ``reserve`` re-appends ``(table, slot)`` to the plan's
            # refund list, rebuilding it as a side effect.
            self.reserve(slot, ReservationEntry(
                plan, plan.steps[step_index], flit_index, is_driver
            ))
