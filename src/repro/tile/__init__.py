"""The tiled-CMP substrate: caches, LLC slices, directory, memory.

A 64-tile Scale-Out-Processor-style chip (Table I): each tile holds a
core, its L1 caches, one 128 KB slice of the 8 MB NUCA LLC, a directory
slice, and a network interface.  Four DDR3-1600 memory channels sit at
the mesh edges.  Blocks are interleaved across slices by block address.
"""

from repro.tile.address import home_slice, memory_channel, block_of
from repro.tile.cache import SetAssociativeCache
from repro.tile.llc import LlcSlice, Transaction
from repro.tile.memory import MemoryChannel
from repro.tile.directory import DirectorySlice
from repro.tile.chip import Chip

__all__ = [
    "home_slice",
    "memory_channel",
    "block_of",
    "SetAssociativeCache",
    "LlcSlice",
    "Transaction",
    "MemoryChannel",
    "DirectorySlice",
    "Chip",
]
