"""The ideal network: zero router delay, wire delay and contention only.

The paper's upper bound is "a hypothetical network-on-chip with router
delay of zero cycles.  For the ideal network-on-chip, only wire delays
are considered.  A header flit can pass over up to two hops in a single
cycle if the required crossbars and links are free.  Body flits follow
the header flit in subsequent cycles.  While router delay is zero,
packets may get blocked in a router due to contention."

We model this at packet granularity: every unidirectional link keeps a
busy-until calendar; a header claims the next one or two links of its XY
route for the packet's flit window ``[now, now + size)`` and advances
accordingly.  Blocked packets wait at their current node in FIFO order.
Buffering while blocked is unbounded — a deliberate idealization (the
network is hypothetical; this only strengthens the upper bound the paper
normalizes against).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.topology import Port, as_port
from repro.params import NocParams


class IdealNetwork(Network):
    """Packet-level zero-router-delay network with link contention."""

    def __init__(self, params: NocParams):
        super().__init__(params)
        self.hops_per_cycle = params.ideal_hops_per_cycle
        #: busy-until (exclusive) per unidirectional link.
        self._link_free_at: Dict[Tuple[int, Port], int] = {}
        #: Waiting packets per node, FIFO.
        self._waiting: List[Deque[Packet]] = [
            deque() for _ in range(self.topology.num_nodes)
        ]
        #: Nodes with a non-empty waiting queue (iterated in sorted
        #: order so blocked packets keep competing in fixed node order).
        self._busy_nodes: set = set()
        #: (position, packet) arrivals becoming visible next cycle.
        self._arrivals: Dict[int, List[Tuple[int, Packet]]] = {}
        #: Flit-link traversals, for utilization accounting.
        self._link_flits = 0

    # -- client API -----------------------------------------------------------

    def send(self, packet: Packet) -> None:
        self.stats.record_injection(packet)
        # The NI-to-router wire costs one cycle, as in the other designs.
        self._push_arrival(self.cycle + 1, packet.src, packet)

    def _push_arrival(self, time: int, node: int, packet: Packet) -> None:
        arrivals = self._arrivals
        bucket = arrivals.get(time)
        if bucket is None:
            arrivals[time] = [(node, packet)]
        else:
            bucket.append((node, packet))

    def next_event_cycle(self):
        """Event horizon over the packet-granular state: blocked packets
        retry their link claims every cycle, so any busy node pins the
        horizon to now; otherwise the earliest deferred call or arrival
        bounds it."""
        if self._busy_nodes:
            return self.cycle
        horizon = min(self._events) if self._events else None
        if self._arrivals:
            arrival = min(self._arrivals)
            if horizon is None or arrival < horizon:
                horizon = arrival
        return horizon

    def step(self) -> None:
        now = self.cycle
        self._run_events(now)
        for node, packet in self._arrivals.pop(now, ()):
            if packet.injected is None:
                packet.injected = now
            if node == packet.dst:
                self._finish(packet, now)
            else:
                self._waiting[node].append(packet)
                self._busy_nodes.add(node)
        self._advance_waiting(now)
        if self.invariants is not None:
            self.invariants.on_cycle(self, now)
        self.cycle = now + 1

    def _advance_waiting(self, now: int) -> None:
        if not self._busy_nodes:
            return
        for node in sorted(self._busy_nodes):
            queue = self._waiting[node]
            # Rotate in place: every packet gets one try per cycle and
            # blocked packets keep their FIFO order at the back.
            for _ in range(len(queue)):
                packet = queue.popleft()
                if not self._try_move(node, packet, now):
                    queue.append(packet)
            if not queue:
                self._busy_nodes.discard(node)

    # -- movement ---------------------------------------------------------------

    def _try_move(self, node: int, packet: Packet, now: int) -> bool:
        """Claim up to ``hops_per_cycle`` links; move if at least one."""
        window_end = now + packet.size
        topo = self.topology
        route_row = topo.route_row
        free_at = self._link_free_at
        dst = packet.dst
        hops = 0
        position = node
        claimed: List[Tuple[int, Port]] = []
        while hops < self.hops_per_cycle and position != dst:
            direction = route_row(position)[dst]
            link = (position, direction)
            if free_at.get(link, 0) > now:
                break
            claimed.append(link)
            position = topo.neighbor(position, direction)
            hops += 1
        if hops == 0:
            return False
        for link in claimed:
            free_at[link] = window_end
        self._link_flits += hops * packet.size
        packet.hops_taken += hops
        self._push_arrival(now + 1, position, packet)
        return True

    def link_utilization(self) -> float:
        if self.cycle == 0:
            return 0.0
        links = 2 * len(self.topology.bidirectional_links())
        return self._link_flits / (links * self.cycle)

    def _finish(self, packet: Packet, head_arrival: int) -> None:
        """Head reached the destination; the tail lands ``size - 1``
        cycles later and ejection to the NI takes one more cycle."""
        head_time = head_arrival + 1
        self.schedule_call(head_time, self._head_arrived, packet, head_time)
        eject_time = head_arrival + (packet.size - 1) + 1
        self.schedule_call(eject_time, self._deliver, packet, eject_time)

    # -- checkpointing -----------------------------------------------------

    def state_dict(self, ctx) -> dict:
        state = super().state_dict(ctx)
        state["link_free_at"] = [
            [node, int(direction), until]
            for (node, direction), until in sorted(self._link_free_at.items())
        ]
        state["waiting"] = [
            [ctx.packet_ref(packet) for packet in queue]
            for queue in self._waiting
        ]
        state["busy_nodes"] = sorted(self._busy_nodes)
        # Arrival buckets keep their append order: packets arriving at a
        # node on the same cycle enter its FIFO in that order.
        state["arrivals"] = [
            [time, [[node, ctx.packet_ref(packet)] for node, packet in bucket]]
            for time, bucket in sorted(self._arrivals.items())
        ]
        state["link_flits"] = self._link_flits
        return state

    def load_state(self, state: dict, ctx) -> None:
        super().load_state(state, ctx)
        self._link_free_at = {
            (node, as_port(direction)): until
            for node, direction, until in state["link_free_at"]
        }
        self._waiting = [
            deque(ctx.packet(ref) for ref in refs)
            for refs in state["waiting"]
        ]
        self._busy_nodes = set(state["busy_nodes"])
        self._arrivals = {
            time: [(node, ctx.packet(ref)) for node, ref in bucket]
            for time, bucket in state["arrivals"]
        }
        self._link_flits = state["link_flits"]
