"""Fault injectors: the runtime half of the chaos harness.

Injection sites query a :class:`FaultInjector` attached to the network
(``network.attach(faults=...)``).  Sites are *named*: each query method is
one place in the simulator where hardware can misbehave, and each is
designed so the misbehaviour degrades gracefully —

====================== ==================================================
query                  site
====================== ==================================================
``drop_control_inject``  control packet eaten at its injection latch
``drop_control_segment`` control packet eaten at a segment boundary
``suppress_ack``         ACK of the previous landing lost (run drops
                         before converting the landing, so the already
                         committed prefix stays consistent)
``plan_expiry``          a committed plan is cancelled strictly before
                         its first timeslot (reservation corruption)
``router_stalled``       a router's *local* arbiter freezes; the PRA
                         arbiter keeps draining committed reservations
``link_stalled``         one output link stops transmitting (data side)
``link_window_blocked``  the same stall, consulted at reservation time
                         so the control network refuses slots that would
                         land on a dead link
``blackout_at``          control multi-drop media down at a node
====================== ==================================================

All decisions are pure functions of the schedule (see
:mod:`repro.faults.schedule`), so runs replay exactly.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.faults.schedule import (
    FaultSchedule,
    SITE_ACK,
    SITE_CONTROL_INJECT,
    SITE_CONTROL_SEGMENT,
    SITE_EXPIRY,
    mix01,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.topology import Direction


class NullFaultInjector:
    """Fault injection off: one attribute check on every hot path."""

    __slots__ = ()
    enabled = False

    def __repr__(self) -> str:
        return "NULL_FAULTS"


#: Shared do-nothing injector; networks start with this attached.
NULL_FAULTS = NullFaultInjector()


class FaultInjector:
    """Applies a :class:`FaultSchedule`; counts everything it does."""

    enabled = True

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        #: What actually happened, by fault kind (sites call ``record``
        #: at the moment they act on a decision).
        self.counts: Counter = Counter()
        # Index the windows for O(windows at node) queries.
        self._router_windows: Dict[int, List[Tuple[int, int]]] = {}
        for w in schedule.router_stalls:
            self._router_windows.setdefault(w.node, []).append(
                (w.start, w.end)
            )
        self._link_windows: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for ls in schedule.link_stalls:
            key = (ls.node, int(ls.direction))
            self._link_windows.setdefault(key, []).append(
                (ls.start, ls.end)
            )
        self._blackouts = schedule.blackouts

    # -- bookkeeping ------------------------------------------------------

    def record(self, kind: str, n: int = 1) -> None:
        self.counts[kind] += n

    def summary(self) -> Dict[str, int]:
        """Configured windows plus the acted-on decision counts."""
        out = {
            "router_stall_windows": len(self.schedule.router_stalls),
            "link_stall_windows": len(self.schedule.link_stalls),
            "blackout_windows": len(self.schedule.blackouts),
        }
        out.update(sorted(self.counts.items()))
        return out

    # -- probabilistic control-network faults -----------------------------

    def drop_control_inject(self, node: int, pid: int, cycle: int) -> bool:
        p = self.schedule.control_drop_prob
        return p > 0.0 and mix01(
            self.schedule.seed, SITE_CONTROL_INJECT, node, pid, cycle
        ) < p

    def drop_control_segment(self, node: int, pid: int, cycle: int) -> bool:
        p = self.schedule.segment_drop_prob
        return p > 0.0 and mix01(
            self.schedule.seed, SITE_CONTROL_SEGMENT, node, pid, cycle
        ) < p

    def suppress_ack(self, node: int, pid: int, cycle: int) -> bool:
        p = self.schedule.ack_loss_prob
        return p > 0.0 and mix01(
            self.schedule.seed, SITE_ACK, node, pid, cycle
        ) < p

    def plan_expiry(self, pid: int, now: int,
                    start_slot: int) -> Optional[int]:
        """Cycle at which to cancel a freshly committed plan, or None.

        The expiry always lands strictly before ``start_slot``: once a
        plan starts executing, cancelling it would strand flits in
        latches (latches drain only through plan execution), which is a
        simulator-integrity violation rather than a hardware fault.
        """
        p = self.schedule.plan_expiry_prob
        if p <= 0.0 or start_slot - now < 2:
            return None
        if mix01(self.schedule.seed, SITE_EXPIRY, pid) >= p:
            return None
        span = start_slot - 1 - now  # expiry in [now+1, start_slot-1]
        offset = 1 + int(
            mix01(self.schedule.seed, SITE_EXPIRY, pid, 1) * span
        )
        return now + min(offset, span)

    # -- stall windows ----------------------------------------------------

    def router_stalled(self, node: int, cycle: int) -> bool:
        windows = self._router_windows.get(node)
        if not windows:
            return False
        return any(start <= cycle < end for start, end in windows)

    def link_stalled(self, node: int, direction: Direction,
                     cycle: int) -> bool:
        windows = self._link_windows.get((node, int(direction)))
        if not windows:
            return False
        return any(start <= cycle < end for start, end in windows)

    def link_window_blocked(self, node: int, direction: Direction,
                            first_slot: int, count: int) -> bool:
        """Would any of ``count`` slots from ``first_slot`` hit a stall?

        The control network consults this before committing timeslots,
        so pre-allocated traversals are never scheduled onto a link that
        the schedule says will be down — the reservation simply fails
        and the packet degrades to hop-by-hop allocation.
        """
        windows = self._link_windows.get((node, int(direction)))
        if not windows:
            return False
        last = first_slot + count
        return any(start < last and first_slot < end
                   for start, end in windows)

    # -- blackouts ---------------------------------------------------------

    def blackout_at(self, node: int, cycle: int) -> bool:
        return any(b.covers(node, cycle) for b in self._blackouts)

    def __repr__(self) -> str:
        return f"FaultInjector({self.schedule!r})"
