"""Worker-process backend for sharded simulation.

One process per shard, each owning a :class:`ShardDomain`; the parent
coordinates supersteps over ``multiprocessing`` pipes and routes flush
messages between adjacent shards.  All protocol logic lives in the
domain — this module is only plumbing, which is what keeps the inline
and process backends digest-identical by construction.

Workers start their pid counters a billion apart so packets minted in
different processes never collide when a merged checkpoint stitches
the registries back together.  (Pids are never part of the statistics
digest; uniqueness is all that matters.)
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Tuple

from repro.noc.topology import MeshTopology
from repro.shard.domain import ShardDomain
from repro.shard.merge import merge_snapshots
from repro.shard.spec import ShardError, SyntheticSpec

#: Pid-space stride between workers; far beyond any packet count a
#: single run can mint.
_PID_STRIDE = 1_000_000_000


def _worker_main(conn, spec: SyntheticSpec, index: int, count: int,
                 observers: str) -> None:
    try:
        from repro.noc.packet import set_next_pid

        set_next_pid(index * _PID_STRIDE)
        dom = ShardDomain(spec, index, count, observers=observers)
        while True:
            message = conn.recv()
            command = message[0]
            if command == "round":
                _, inbox, hard_stop = message
                for side, flush in inbox:
                    dom.receive_flush(side, flush)
                dom.advance(hard_stop=hard_stop)
                conn.send(("state", dom.net.cycle,
                           dom.net.stats.in_flight,
                           dom.make_flush("prev"),
                           dom.make_flush("next")))
            elif command == "barrier":
                from repro.checkpoint.snapshot import snapshot_network

                dom.barrier_drain(message[1])
                conn.send(("snapshot",
                           snapshot_network(dom.net, dom.traffic)))
            elif command == "stats":
                conn.send(("stats", dom.net.stats.state_dict(),
                           dom.net.cycles_skipped, dom.traffic.offered,
                           dom.net.cycle))
            elif command == "stop":
                conn.close()
                return
            else:
                raise ShardError(f"unknown command {command!r}")
    except Exception as exc:  # surface worker tracebacks in the parent
        import traceback

        try:
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        except Exception:
            pass


class ProcessPool:
    """Parent-side coordinator over one pipe per shard worker."""

    def __init__(self, spec: SyntheticSpec, count: int, observers: str):
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        self.spec = spec
        self.count = count
        self.conns: list = []
        self.procs: list = []
        self.pending: List[list] = [[] for _ in range(count)]
        self.final_clocks = [0] * count
        for index in range(count):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, spec, index, count, observers),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def _recv(self, conn):
        try:
            reply = conn.recv()
        except EOFError:
            raise ShardError("shard worker died without a reply") from None
        if reply[0] == "error":
            raise ShardError(f"shard worker failed:\n{reply[1]}")
        return reply

    def round(self, hard_stop: Optional[int]
              ) -> Tuple[List[int], List[int], int]:
        for i, conn in enumerate(self.conns):
            conn.send(("round", self.pending[i], hard_stop))
            self.pending[i] = []
        clocks: List[int] = []
        flights: List[int] = []
        produced = 0
        for i, conn in enumerate(self.conns):
            _, clock, flight, out_prev, out_next = self._recv(conn)
            clocks.append(clock)
            flights.append(flight)
            if out_prev is not None:
                produced += 1
                self.pending[i - 1].append(("next", out_prev))
            if out_next is not None:
                produced += 1
                self.pending[i + 1].append(("prev", out_next))
        self.final_clocks = clocks
        return clocks, flights, produced

    def barrier_checkpoint(self, barrier: int) -> dict:
        for conn in self.conns:
            conn.send(("barrier", barrier))
        snapshots = [self._recv(conn)[1] for conn in self.conns]
        topo = MeshTopology(self.spec.width, self.spec.height)
        return merge_snapshots(snapshots, topo.row_domains(self.count),
                               barrier)

    def stats(self) -> List[Tuple[dict, int, int]]:
        for conn in self.conns:
            conn.send(("stats",))
        out = []
        for i, conn in enumerate(self.conns):
            _, state, skipped, offered, clock = self._recv(conn)
            out.append((state, skipped, offered))
            self.final_clocks[i] = clock
        return out

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("stop",))
                conn.close()
            except Exception:
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
