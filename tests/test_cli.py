"""Tests for the command-line interface."""

import json

from repro.cli import main


def test_params_command(capsys):
    assert main(["params"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "32 nm" in out


def test_area_command(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "Mesh+PRA" in out
    assert "4.9" in out


def test_simulate_command(capsys):
    rc = main(["simulate", "Web Search", "--noc", "mesh",
               "--warmup", "100", "--measure", "400"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "aggregate IPC" in out


def test_simulate_pra_diagnostics(capsys):
    rc = main(["simulate", "MapReduce", "--noc", "mesh+pra",
               "--warmup", "100", "--measure", "600"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "control/data packets" in out


def test_sweep_command(capsys):
    rc = main(["sweep", "--noc", "mesh", "--rates", "0.005",
               "--cycles", "300"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rate" in out and "mesh" in out


def test_figures_unknown_name(capsys):
    assert main(["figures", "--only", "nonsense"]) == 2


def test_figures_json_dump(tmp_path, capsys):
    path = tmp_path / "out.json"
    rc = main(["figures", "--only", "table1,fig8", "--json", str(path)])
    assert rc == 0
    data = json.loads(path.read_text())
    assert set(data) == {"table1", "fig8"}
    assert data["fig8"]["headers"][0] == "Organization"


def test_unknown_workload_is_a_clean_cli_error(capsys):
    rc = main(["simulate", "NoSuchWorkload", "--measure", "100"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "unknown workload 'NoSuchWorkload'" in err
    assert "Web Search" in err  # the error names the valid choices


def test_unknown_workload_in_trace_command(capsys):
    rc = main(["trace", "--workload", "NoSuchWorkload"])
    assert rc == 2
    assert "unknown workload" in capsys.readouterr().err
