"""The baseline mesh organization (Table I, "Mesh").

An 8x8 grid of 1-stage speculative routers, 3 VCs per port (request,
coherence, response), 5 flits per VC, 2 cycles per hop at zero load.
"""

from __future__ import annotations

from repro.noc.interface import NetworkInterface
from repro.noc.network import Network
from repro.noc.router import MeshRouter
from repro.noc.topology import CARDINALS, Direction
from repro.params import NocParams


class MeshNetwork(Network):
    """Baseline mesh: wiring of routers and network interfaces."""

    router_class = MeshRouter
    interface_class = NetworkInterface

    def __init__(self, params: NocParams):
        super().__init__(params)
        self.routers = [
            self.router_class(node, self) for node in range(self.topology.num_nodes)
        ]
        self._wire_links()
        self.interfaces = [
            self.interface_class(node, self, self.routers[node])
            for node in range(self.topology.num_nodes)
        ]
        self._wire_ejection()

    def _wire_links(self) -> None:
        for router in self.routers:
            for direction in CARDINALS:
                port = router.output_ports.get(direction)
                if port is None:
                    continue
                neighbor = self.topology.neighbor(router.node, direction)
                port.connect(self.routers[neighbor], direction.opposite)

    def _wire_ejection(self) -> None:
        for router, ni in zip(self.routers, self.interfaces):
            router.output_ports[Direction.LOCAL].connect_sink(ni)
