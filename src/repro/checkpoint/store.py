"""Content-addressed on-disk store for finished evaluation-grid cells.

Each cell (one ``(scale, workload, noc kind, seed)`` sample) is keyed by
the sha256 of its canonical-JSON key payload — which includes the
parameter hash and the code version, so stale results never resurface
after a behavior change.  Writes are atomic (tmp file + ``os.replace``),
so concurrent sweep processes can share one store directory; a corrupt
or truncated cell reads as a miss and is simply recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Optional

#: Environment variable naming the default store directory.  Unset (the
#: default) means no persistence — tests and one-off runs stay clean.
STORE_ENV = "REPRO_CELL_STORE"


def cell_key(payload: Any) -> str:
    """Content-addressed key: sha256 of the canonical JSON form."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


class CellStore:
    """Filesystem-backed map from cell key to JSON payload."""

    def __init__(self, root: str):
        self.root = str(root)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None on a miss (including a corrupt
        or half-written file)."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``."""
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for _dirpath, _dirnames, filenames in os.walk(self.root):
            count += sum(1 for name in filenames if name.endswith(".json"))
        return count


def default_store() -> Optional[CellStore]:
    """The store named by ``REPRO_CELL_STORE``, or None when unset."""
    root = os.environ.get(STORE_ENV)
    if not root:
        return None
    return CellStore(root)
