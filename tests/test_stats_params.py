"""Tests for statistics aggregation and the Table I parameter model."""

import pytest

from repro.noc.packet import Packet
from repro.noc.stats import NetworkStats
from repro.params import (
    ChipParams,
    MessageClass,
    NocKind,
    PACKET_FLITS,
    default_chip,
)


class TestNetworkStats:
    def _delivered_packet(self, injected=10, ejected=25,
                          mc=MessageClass.REQUEST):
        pkt = Packet(src=0, dst=5, msg_class=mc, created=8)
        pkt.injected = injected
        pkt.ejected = ejected
        pkt.hops_taken = 4
        return pkt

    def test_latency_accounting(self):
        stats = NetworkStats()
        pkt = self._delivered_packet()
        stats.record_injection(pkt)
        stats.record_ejection(pkt)
        assert stats.avg_network_latency == 15
        assert stats.avg_total_latency == 17
        assert stats.avg_hops == 4
        assert stats.in_flight == 0

    def test_per_class_latency(self):
        stats = NetworkStats()
        a = self._delivered_packet(mc=MessageClass.REQUEST)
        b = self._delivered_packet(injected=10, ejected=40,
                                   mc=MessageClass.RESPONSE)
        for pkt in (a, b):
            stats.record_injection(pkt)
            stats.record_ejection(pkt)
        assert stats.avg_class_latency(MessageClass.REQUEST) == 15
        assert stats.avg_class_latency(MessageClass.RESPONSE) == 30

    def test_lag_distribution_normalizes(self):
        stats = NetworkStats()
        stats.control_lag_at_drop[0] = 6
        stats.control_lag_at_drop[1] = 3
        stats.control_lag_at_drop[2] = 1
        dist = stats.lag_distribution()
        assert dist[0] == 0.6
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_empty_stats_are_zero(self):
        stats = NetworkStats()
        assert stats.avg_network_latency == 0.0
        assert stats.lag_distribution() == {}
        assert stats.pra_blocked_fraction() == 0.0
        assert stats.control_packets_per_data_packet == 0.0


class TestParams:
    def test_table1_defaults(self):
        chip = ChipParams()
        assert chip.num_tiles == 64
        assert chip.llc_slice_mb == pytest.approx(0.125)
        assert chip.technology.frequency_ghz == 2.0
        assert chip.memory.num_channels == 4
        assert chip.noc.router.vcs_per_port == 3
        assert chip.noc.router.flits_per_vc == 5

    def test_packet_sizes(self):
        assert PACKET_FLITS[MessageClass.REQUEST] == 1
        assert PACKET_FLITS[MessageClass.COHERENCE] == 1
        assert PACKET_FLITS[MessageClass.RESPONSE] == 5

    def test_with_noc_kind_is_pure(self):
        base = default_chip(NocKind.MESH)
        pra = base.with_noc_kind(NocKind.MESH_PRA)
        assert base.noc.kind is NocKind.MESH
        assert pra.noc.kind is NocKind.MESH_PRA
        assert pra.core == base.core

    def test_tile_geometry(self):
        chip = ChipParams()
        assert 1.0 < chip.tile_side_mm < 3.0
        assert chip.tile_area_mm2 == pytest.approx(
            chip.core.area_mm2 + 0.125 * chip.cache.area_mm2_per_mb
        )

    def test_invalid_mesh_rejected(self):
        from repro.noc.topology import MeshTopology

        with pytest.raises(ValueError):
            MeshTopology(0, 4)

    def test_pra_defaults_match_paper(self):
        chip = ChipParams()
        assert chip.noc.pra.max_lag == 4
        assert chip.noc.pra.hops_per_cycle == 2
        assert chip.noc.pra.control_link_width_bits == 15
        assert chip.cache.tag_lookup_cycles == 1
        assert chip.cache.data_lookup_cycles == 4
