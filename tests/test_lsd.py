"""Focused tests for the Long Stall Detection unit."""

from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind, NocParams, PraParams
from repro.noc.network import build_network
from tests.helpers import assert_quiescent


def make_pra(**pra_kwargs):
    return build_network(
        NocParams(kind=NocKind.MESH_PRA, mesh_width=8, mesh_height=8,
                  pra=PraParams(use_llc_trigger=False, **pra_kwargs))
    )


def build_stall(net, blocker_delay=3):
    """A 5-flit response streams through node 1's east port while a
    request injected at node 1 wants the same port."""
    blocker = Packet(src=0, dst=7, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
    net.send(blocker)
    net.run(blocker_delay)
    stalled = Packet(src=1, dst=7, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
    net.send(stalled)
    return blocker, stalled


class TestLsdFiring:
    def test_fires_once_per_stall(self):
        net = make_pra()
        blocker, stalled = build_stall(net)
        net.drain(max_cycles=500)
        # Deduplication: one control packet for the stalled request.
        assert net.stats.control_packets_injected == 1
        assert net.stats.pra_planned_packets == 1
        assert_quiescent(net)

    def test_stalled_packet_faster_with_lsd(self):
        with_lsd = make_pra(use_lsd_trigger=True)
        without = make_pra(use_lsd_trigger=False)
        results = {}
        for name, net in (("with", with_lsd), ("without", without)):
            _, stalled = build_stall(net)
            net.drain(max_cycles=500)
            results[name] = stalled.network_latency()
        assert results["with"] < results["without"]

    def test_no_trigger_without_stall(self):
        net = make_pra()
        pkt = Packet(src=0, dst=7, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=300)
        assert net.stats.control_packets_injected == 0

    def test_single_flit_holder_does_not_trigger(self):
        """LSD watches multi-flit transmissions only (a single-flit
        holder frees the port the same cycle)."""
        net = make_pra()
        for i in range(6):
            net.send(Packet(src=0, dst=7, msg_class=MessageClass.REQUEST,
                            created=net.cycle))
        net.drain(max_cycles=500)
        assert net.stats.control_packets_injected == 0

    def test_lag_window_respected(self):
        """A stall longer than max_lag fires only once the remaining
        drain time fits the window."""
        net = make_pra(max_lag=2, reservation_horizon=10)
        blocker, stalled = build_stall(net)
        net.drain(max_cycles=500)
        # Still fires (the window shrinks as the blocker drains) and the
        # resulting plan respects the smaller lag.
        assert net.stats.control_packets_injected <= 1
        for lag in net.stats.control_lag_at_drop:
            assert lag <= 2
        assert_quiescent(net)


class TestLsdPlanContent:
    def test_plan_starts_at_stall_router(self):
        net = make_pra()
        blocker, stalled = build_stall(net)
        plans = []
        orig = net.control._append_step

        def record(run, step):
            orig(run, step)
            plans.append((run.packet.pid, step))

        net.control._append_step = record
        net.drain(max_cycles=500)
        assert plans, "LSD never built a plan"
        pid, first_step = plans[0]
        assert pid == stalled.pid
        assert first_step.driver_node == 1
        assert first_step.source_kind == "vc"
