"""Background (Section II-B): why tiled meshes replaced rings.

The paper: "While appropriate for a modest number of cores, the ring
interconnect stands as a major obstacle for scaling up the core count,
as its delay has linear dependence on the number of interconnected
components."  This bench measures zero-ish-load average latency of a
bidirectional ring vs. a mesh as the tile count grows: the ring's
average distance grows ~N/4 while the mesh's grows ~2*sqrt(N)/3.
"""

import random

from repro.harness.reporting import format_table
from repro.noc.network import build_network
from repro.noc.packet import Packet
from repro.noc.ring import build_ring
from repro.params import MessageClass, NocKind, NocParams

SIZES = ((16, 4, 4), (36, 6, 6), (64, 8, 8))


def _uniform_latency(net, nodes, packets=80, seed=3):
    rng = random.Random(seed)
    for _ in range(packets):
        src = rng.randrange(nodes)
        dst = (src + rng.randrange(1, nodes)) % nodes
        net.send(Packet(src=src, dst=dst, msg_class=MessageClass.REQUEST,
                        created=net.cycle))
        net.run(4)
    net.drain(max_cycles=50000)
    return net.stats.avg_network_latency


def test_background_ring_scaling(benchmark, save_result):
    def run_all():
        rows = []
        for nodes, w, h in SIZES:
            ring = _uniform_latency(build_ring(nodes), nodes)
            mesh = _uniform_latency(
                build_network(NocParams(kind=NocKind.MESH, mesh_width=w,
                                        mesh_height=h)),
                nodes,
            )
            rows.append([nodes, ring, mesh, ring / mesh])
        return rows

    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    save_result(
        "background_ring_scaling",
        format_table(["Tiles", "Ring latency", "Mesh latency", "Ring/Mesh"],
                     rows, "Section II-B: ring vs mesh latency scaling"),
    )
    by_nodes = {r[0]: r for r in rows}
    # The ring's disadvantage grows with the tile count.
    assert by_nodes[36][3] > by_nodes[16][3]
    assert by_nodes[64][3] > by_nodes[36][3]
    # At 64 tiles the ring is clearly worse than the mesh.
    assert by_nodes[64][3] > 1.5
