"""Checkpoint round-trips: golden digests, adversarial snapshots, and
the resumable evaluation grid.

The strongest form of each test is *bit-for-bit continuation*: snapshot
a run mid-flight, push the snapshot through a real serialization
boundary (``json.dumps`` or an actual file), restore into freshly built
objects, continue, and require the exact digest a straight run
produces.  Snapshot points are chosen adversarially — mid
multi-flit packet, mid reservation window, under an active fault
schedule, and on the ring topology that ``ALL_KINDS`` excludes.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import (
    CellStore,
    read_snapshot,
    restore_network,
    restore_system,
    run_digest,
    snapshot_network,
    snapshot_system,
    write_snapshot,
)
from repro.faults import FaultInjector, FaultSchedule
from repro.noc.network import build_network
from repro.noc.packet import reset_packet_ids
from repro.noc.ring import build_ring
from repro.params import NocKind, NocParams
from repro.perf.system import PerfSample, SystemSimulator
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

from tests.test_golden_determinism import (
    ALL_KINDS,
    GOLDEN_NETWORK,
    GOLDEN_SYSTEM,
    _digest,
)

#: The golden network scenario (must match test_golden_determinism).
_RATE, _SEED, _CYCLES, _DRAIN = 0.02, 7, 800, 20000


def _json_round_trip(snap: dict) -> dict:
    """The serialization boundary every in-process test crosses."""
    return json.loads(json.dumps(snap))


def _build_golden(kind: NocKind):
    reset_packet_ids()
    net = build_network(NocParams(kind=kind, mesh_width=8, mesh_height=8))
    traffic = SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM, _RATE,
                               seed=_SEED)
    return net, traffic


# -- golden digests through a snapshot boundary ----------------------------


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_network_restore_reproduces_golden_digest(kind):
    net, traffic = _build_golden(kind)
    traffic.run(_CYCLES // 2)
    snap = _json_round_trip(snapshot_network(net, traffic))
    net2, traffic2 = restore_network(snap)
    assert net2 is not net
    traffic2.run(_CYCLES - _CYCLES // 2)
    net2.drain(max_cycles=_DRAIN)
    assert _digest(net2.stats.summary()) == GOLDEN_NETWORK[kind]


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda k: k.value)
def test_system_restore_reproduces_golden_digest(kind, tmp_path):
    reset_packet_ids()
    sim = SystemSimulator("Web Search", kind, seed=5)
    sim.start()
    sim.chip.run(200)
    sim.begin_interval()
    sim.chip.run(300)
    path = str(tmp_path / "mid-measure.json")
    write_snapshot(snapshot_system(sim), path)
    sim2 = restore_system(read_snapshot(path))
    sim2.chip.run(500)
    sample = sim2.end_interval()
    digest = _digest({
        "sample": sample.to_dict(),
        "stats": sim2.chip.network.stats.summary(),
    })
    assert digest == GOLDEN_SYSTEM[kind]
    assert digest == run_digest(sample, sim2.chip.network.stats.summary())


# -- adversarial snapshot points -------------------------------------------


def _continue_and_digest(net, traffic, remaining: int) -> str:
    traffic.run(remaining)
    net.drain(max_cycles=_DRAIN)
    return _digest(net.stats.summary())


def _snapshot_when(kind: NocKind, predicate, limit: int = _CYCLES):
    """Step the golden scenario until ``predicate(net)`` holds, then
    return (json-round-tripped snapshot, cycles remaining)."""
    net, traffic = _build_golden(kind)
    for cycle in range(limit):
        traffic.step()
        if predicate(net):
            snap = _json_round_trip(snapshot_network(net, traffic))
            return snap, limit - (cycle + 1)
    raise AssertionError("snapshot predicate never became true")


def _mid_multi_flit(net) -> bool:
    """Some output port is partway through forwarding a multi-flit
    packet (its winner-holding state and per-packet send count are
    exactly what a naive snapshot would lose)."""
    for router in net.routers:
        for port in router.output_ports.values():
            pkt = port.held_by
            if pkt is not None and pkt.size > 1 and \
                    0 < port.holder_sent < pkt.size:
                return True
    return False


def _mid_reservation(net) -> bool:
    """Some PRA output port has a live reservation window."""
    return any(
        len(port.reservations) > 0
        for router in net.routers
        for port in router.output_ports.values()
        if hasattr(port, "reservations")
    )


def test_snapshot_mid_multi_flit_packet():
    snap, remaining = _snapshot_when(NocKind.MESH, _mid_multi_flit)
    net2, traffic2 = restore_network(snap)
    assert _mid_multi_flit(net2)  # restored into the same awkward spot
    digest = _continue_and_digest(net2, traffic2, remaining)
    assert digest == GOLDEN_NETWORK[NocKind.MESH]


def test_snapshot_mid_reservation_window():
    snap, remaining = _snapshot_when(NocKind.MESH_PRA, _mid_reservation)
    net2, traffic2 = restore_network(snap)
    assert _mid_reservation(net2)
    digest = _continue_and_digest(net2, traffic2, remaining)
    assert digest == GOLDEN_NETWORK[NocKind.MESH_PRA]


def _chaos_run(snapshot_at: int):
    """The chaos scenario: mesh+PRA with an active random fault
    schedule.  Returns the straight-run digest and, when
    ``snapshot_at`` is reached, a snapshot taken mid-run."""
    reset_packet_ids()
    cycles = 400
    net = build_network(NocParams(kind=NocKind.MESH_PRA,
                                  mesh_width=4, mesh_height=4))
    schedule = FaultSchedule.random(11, net.topology.num_nodes, cycles)
    net.attach(faults=FaultInjector(schedule))
    traffic = SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM, 0.03,
                               seed=3)
    traffic.run(snapshot_at)
    snap = _json_round_trip(snapshot_network(net, traffic))
    traffic.run(cycles - snapshot_at)
    net.drain(max_cycles=_DRAIN)
    return _digest(net.stats.summary()), snap, schedule, cycles - snapshot_at


def test_snapshot_with_fault_schedule_attached():
    straight, snap, schedule, remaining = _chaos_run(snapshot_at=150)
    net2, traffic2 = restore_network(snap)
    # Observers are not part of the snapshot; restore re-attaches them
    # through the same single code path every caller uses.  Injection
    # decisions are pure functions of (schedule, site, cycle), so a
    # fresh injector continues the schedule exactly.
    net2.attach(faults=FaultInjector(schedule))
    assert _continue_and_digest(net2, traffic2, remaining) == straight


def test_snapshot_on_ring_topology():
    reset_packet_ids()
    cycles, half = 600, 300
    net = build_ring(16)
    traffic = SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM, 0.05,
                               seed=9)
    traffic.run(cycles)
    net.drain(max_cycles=_DRAIN)
    straight = _digest(net.stats.summary())

    reset_packet_ids()
    net = build_ring(16)
    traffic = SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM, 0.05,
                               seed=9)
    traffic.run(half)
    snap = _json_round_trip(snapshot_network(net, traffic))
    assert snap["network_class"] == "mesh@ring"
    net2, traffic2 = restore_network(snap)
    assert _continue_and_digest(net2, traffic2, cycles - half) == straight


# -- snapshot file formats -------------------------------------------------


@pytest.mark.parametrize("name", ["snap.json", "snap.json.gz", "snap.npz"])
def test_snapshot_file_formats_round_trip(name, tmp_path):
    if name.endswith(".npz"):
        pytest.importorskip("numpy")
    net, traffic = _build_golden(NocKind.SMART)
    traffic.run(200)
    snap = snapshot_network(net, traffic)
    path = str(tmp_path / name)
    write_snapshot(snap, path)
    assert read_snapshot(path) == _json_round_trip(snap)


def test_reading_a_non_checkpoint_file_fails_loudly(tmp_path):
    path = str(tmp_path / "nope.json")
    with open(path, "w") as fh:
        json.dump({"format": "something-else"}, fh)
    with pytest.raises(ValueError, match="not a repro checkpoint"):
        restore_network(read_snapshot(path))


# -- the resumable evaluation grid -----------------------------------------


def _tiny_scale():
    from repro.harness.runner import EvaluationScale

    return EvaluationScale("ckpt-test", warmup=50, measure=150, num_seeds=1)


def test_grid_resumes_from_cell_store(tmp_path):
    from repro.harness.runner import (
        clear_grid_cache,
        evaluation_grid,
        grid_stats,
    )

    store = CellStore(str(tmp_path))
    scale = _tiny_scale()
    kinds = (NocKind.MESH, NocKind.IDEAL)
    clear_grid_cache()
    hits0 = grid_stats.grid_cache_hits
    misses0 = grid_stats.grid_cache_misses

    # "Interrupted" first sweep: only one of the two cells finishes.
    evaluation_grid(("Web Search",), (NocKind.MESH,), scale, store=store)
    assert grid_stats.grid_cache_misses - misses0 == 1
    assert len(store) == 1

    # The re-run covers the full grid: the finished cell is served from
    # the store, only the missing one is recomputed.
    clear_grid_cache()
    grid = evaluation_grid(("Web Search",), kinds, scale, store=store)
    assert grid_stats.grid_cache_hits - hits0 == 1
    assert grid_stats.grid_cache_misses - misses0 == 2
    assert len(store) == 2

    # A third pass recomputes nothing at all.
    clear_grid_cache()
    resumed = evaluation_grid(("Web Search",), kinds, scale, store=store)
    assert grid_stats.grid_cache_hits - hits0 == 3
    assert grid_stats.grid_cache_misses - misses0 == 2
    for key, sample in grid.items():
        assert resumed[key].to_state() == sample.to_state()

    # The counters are observable through the stats summary.
    summary = grid_stats.summary()
    assert summary["grid_cache_hits"] == grid_stats.grid_cache_hits
    assert summary["grid_cache_misses"] == grid_stats.grid_cache_misses
    clear_grid_cache()


def test_grid_in_memory_key_includes_params_and_seeds():
    """Same scale name, different seed list -> different cache entry."""
    from repro.harness import runner

    scale_a = runner.EvaluationScale("ckpt-key", warmup=40, measure=80,
                                     num_seeds=1)
    scale_b = runner.EvaluationScale("ckpt-key", warmup=40, measure=80,
                                     num_seeds=2)
    runner.clear_grid_cache()
    grid_a = runner.evaluation_grid(("Web Search",), (NocKind.IDEAL,),
                                    scale_a, store=None)
    grid_b = runner.evaluation_grid(("Web Search",), (NocKind.IDEAL,),
                                    scale_b, store=None)
    key = ("Web Search", NocKind.IDEAL)
    # Two seeds were merged in grid_b, so the cells must differ.
    assert grid_b[key].cycles == 2 * grid_a[key].cycles
    runner.clear_grid_cache()


def test_corrupt_store_cell_reads_as_miss(tmp_path):
    store = CellStore(str(tmp_path))
    store.put("ab" * 32, {"sample": {"x": 1}})
    path = store._path("ab" * 32)
    with open(path, "w") as fh:
        fh.write('{"sample": trunca')
    assert store.get("ab" * 32) is None
    assert ("ab" * 32) in store  # the file exists, but reads as a miss


def test_perf_sample_state_round_trip():
    sample = PerfSample(
        workload="Web Search", noc_kind=NocKind.MESH_PRA,
        instructions=1234, cycles=800, packets=77,
        avg_network_latency=9.5, avg_transaction_latency=30.25,
        control_packets=40, control_per_data=0.52,
        lag_distribution={0: 0.5, 2: 0.5}, pra_blocked_fraction=0.01,
        flits_delivered=300, total_hops=900, packets_unfinished=3,
    )
    clone = PerfSample.from_state(
        json.loads(json.dumps(sample.to_state()))
    )
    assert clone == sample


# -- the CLI driver --------------------------------------------------------


def test_cli_checkpoint_restore_digest(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.chdir(tmp_path)
    args = ["simulate", "web", "--noc", "smart",
            "--warmup", "80", "--measure", "120", "--digest"]
    assert main(args) == 0
    straight = capsys.readouterr().out

    tpl = str(tmp_path / "ck-{cycle}.json")
    assert main(args + ["--checkpoint-every", "50",
                        "--checkpoint", tpl]) == 0
    checkpointed = capsys.readouterr().out
    assert "checkpoint: cycle 50" in checkpointed
    assert "checkpoint: cycle 150" in checkpointed
    # 200 is a multiple of 50 but is the run's end: strictly before.
    assert "cycle 200" not in checkpointed

    for cycle in (50, 150):  # mid-warmup and mid-measure
        rc = main(["simulate", "--restore", str(tmp_path / f"ck-{cycle}.json"),
                   "--warmup", "80", "--measure", "120", "--digest"])
        assert rc == 0
        resumed = capsys.readouterr().out
        assert _digest_line(resumed) == _digest_line(straight)


def _digest_line(out: str) -> str:
    lines = [line for line in out.splitlines() if line.startswith("digest:")]
    assert len(lines) == 1
    return lines[0]
