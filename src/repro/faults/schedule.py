"""Fault schedules: what goes wrong, where, and when.

A :class:`FaultSchedule` is a frozen value object, so the same schedule
replayed against the same network and traffic seed reproduces the same
run bit for bit.  Probabilistic faults (control drops, ACK loss, plan
expiry) do not consume a shared random stream — each decision hashes its
site coordinates (site id, node, packet id, cycle) with the schedule
seed, which makes the outcome independent of the order in which sites
happen to be queried.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass
from typing import FrozenSet, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    # Deferred: repro.noc imports repro.faults (the network holds the
    # injector), so a module-level import here would be circular.
    from repro.noc.topology import Direction

_MASK = (1 << 64) - 1

#: Site ids mixed into the per-decision hash so different fault classes
#: at the same (node, pid, cycle) draw independent values.
SITE_CONTROL_INJECT = 1
SITE_CONTROL_SEGMENT = 2
SITE_ACK = 3
SITE_EXPIRY = 4


def mix01(seed: int, *values: int) -> float:
    """Deterministic hash of ``(seed, *values)`` to a float in [0, 1).

    splitmix64-style finalizer; stable across processes and insensitive
    to ``PYTHONHASHSEED``, so fault decisions replay exactly.
    """
    x = (seed ^ 0x9E3779B97F4A7C15) & _MASK
    for v in values:
        x = (x ^ ((v & _MASK) * 0xBF58476D1CE4E5B9)) & _MASK
        x = (x * 0x94D049BB133111EB + 0x9E3779B97F4A7C15) & _MASK
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK
    x ^= x >> 31
    return x / 2.0 ** 64


@dataclass(frozen=True)
class StallWindow:
    """A router's local arbiter is frozen for ``[start, start+duration)``.

    Only the *local* arbiter stalls: the PRA arbiter keeps executing
    committed reservations (the paper's Figure 4 splits the two), so a
    stall can never strand flits mid-plan in a latch.
    """

    node: int
    start: int
    duration: int

    def __post_init__(self):
        if self.duration < 1:
            raise ValueError("stall duration must be positive")

    @property
    def end(self) -> int:
        return self.start + self.duration

    def covers(self, cycle: int) -> bool:
        return self.start <= cycle < self.end


@dataclass(frozen=True)
class LinkStall:
    """One output link refuses to transmit for ``[start, start+duration)``."""

    node: int
    direction: "Direction"
    start: int
    duration: int

    def __post_init__(self):
        if self.duration < 1:
            raise ValueError("stall duration must be positive")

    @property
    def end(self) -> int:
        return self.start + self.duration

    def covers(self, cycle: int) -> bool:
        return self.start <= cycle < self.end


@dataclass(frozen=True)
class SegmentBlackout:
    """Control-network multi-drop media at ``nodes`` drop every control
    packet during ``[start, start+duration)``.  Data links are
    unaffected — the blackout models the dedicated control wires dying,
    which must degrade PRA to baseline allocation, nothing worse."""

    nodes: FrozenSet[int]
    start: int
    duration: int

    def __post_init__(self):
        if self.duration < 1:
            raise ValueError("blackout duration must be positive")

    @property
    def end(self) -> int:
        return self.start + self.duration

    def covers(self, node: int, cycle: int) -> bool:
        return node in self.nodes and self.start <= cycle < self.end


@dataclass(frozen=True)
class FaultSchedule:
    """A reproducible description of everything that will go wrong."""

    seed: int = 0
    #: Probability a control packet is dropped at its injection latch.
    control_drop_prob: float = 0.0
    #: Probability a control packet is dropped at a segment boundary.
    segment_drop_prob: float = 0.0
    #: Probability the ACK converting a landing is suppressed (the
    #: control run sees the conversion fail and drops there).
    ack_loss_prob: float = 0.0
    #: Probability a committed plan expires (is cancelled) before its
    #: first timeslot — models corrupted/expired reservation state.
    plan_expiry_prob: float = 0.0
    router_stalls: Tuple[StallWindow, ...] = ()
    link_stalls: Tuple[LinkStall, ...] = ()
    blackouts: Tuple[SegmentBlackout, ...] = ()

    def __post_init__(self):
        for name in ("control_drop_prob", "segment_drop_prob",
                     "ack_loss_prob", "plan_expiry_prob"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be a probability, got {p}")

    @property
    def is_empty(self) -> bool:
        return (
            self.control_drop_prob == 0.0
            and self.segment_drop_prob == 0.0
            and self.ack_loss_prob == 0.0
            and self.plan_expiry_prob == 0.0
            and not self.router_stalls
            and not self.link_stalls
            and not self.blackouts
        )

    @classmethod
    def random(
        cls,
        seed: int,
        num_nodes: int,
        horizon: int,
        intensity: float = 1.0,
    ) -> "FaultSchedule":
        """A reproducible mixed-fault schedule for chaos sweeps.

        ``horizon`` is the length (in cycles) of the run being stressed;
        stall and blackout windows land inside it.  ``intensity`` scales
        both probabilities and window counts (1.0 is the default sweep
        level; 0 disables everything).
        """
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if horizon < 10:
            raise ValueError("horizon too short for a fault schedule")
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        from repro.noc.topology import CARDINALS

        rng = _random.Random(seed)

        def clamp(p: float) -> float:
            return min(1.0, max(0.0, p))

        def window_start() -> int:
            return rng.randrange(max(1, horizon // 10),
                                 max(2, (horizon * 4) // 5))

        n_stalls = max(1, round(num_nodes * intensity / 8)) if intensity else 0
        router_stalls = tuple(
            StallWindow(node=rng.randrange(num_nodes), start=window_start(),
                        duration=rng.randrange(8, 40))
            for _ in range(n_stalls)
        )
        link_stalls = tuple(
            LinkStall(node=rng.randrange(num_nodes),
                      direction=rng.choice(CARDINALS),
                      start=window_start(),
                      duration=rng.randrange(8, 40))
            for _ in range(n_stalls)
        )
        blackouts = ()
        if intensity:
            nodes = frozenset(
                rng.randrange(num_nodes)
                for _ in range(max(2, num_nodes // 8))
            )
            blackouts = (
                SegmentBlackout(nodes=nodes, start=window_start(),
                                duration=rng.randrange(16, 60)),
            )
        return cls(
            seed=seed,
            control_drop_prob=clamp(0.03 * intensity),
            segment_drop_prob=clamp(0.03 * intensity),
            ack_loss_prob=clamp(0.05 * intensity),
            plan_expiry_prob=clamp(0.10 * intensity),
            router_stalls=router_stalls,
            link_stalls=link_stalls,
            blackouts=blackouts,
        )
