"""Reproduction of every table and figure in the paper's evaluation.

Each function returns a dict with ``title``, ``headers``, ``rows`` (for
rendering) plus figure-specific structured data, and is backed by the
cached simulation grid (:mod:`repro.harness.runner`).  EXPERIMENTS.md
records paper-vs-measured for each.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.params import ChipParams, NocKind, PACKET_FLITS, MessageClass
from repro.perf.metrics import geomean
from repro.harness.runner import (
    ALL_KINDS,
    EvaluationScale,
    evaluation_grid,
)
from repro.physical.area import noc_area
from repro.physical.density import chip_area_mm2
from repro.physical.power import chip_power, noc_power
from repro.workloads.profiles import WORKLOAD_NAMES

#: Figure 2 uses the two representative workloads of the motivation.
FIGURE2_WORKLOADS = ("Media Streaming", "Web Search")

_KIND_LABEL = {
    NocKind.MESH: "Mesh",
    NocKind.SMART: "SMART",
    NocKind.MESH_PRA: "Mesh+PRA",
    NocKind.IDEAL: "Ideal",
}


def _normalized_performance(
    workloads: Iterable[str],
    kinds: Iterable[NocKind],
    scale: Optional[EvaluationScale],
) -> Dict[str, Dict[NocKind, float]]:
    grid = evaluation_grid(tuple(workloads), tuple(kinds), scale)
    out: Dict[str, Dict[NocKind, float]] = {}
    for workload in workloads:
        baseline = grid.get((workload, NocKind.MESH))
        if baseline is None or not baseline.ipc:
            # A quarantined (or zero-IPC) mesh cell leaves nothing to
            # normalize against; a KeyError/ZeroDivisionError here
            # would surface far from the cause.
            raise RuntimeError(
                f"cannot normalize {workload!r} to the mesh baseline: "
                f"the (workload={workload!r}, kind=mesh) grid cell is "
                + ("missing (quarantined after repeated failures — see "
                   "the run report on stderr)" if baseline is None
                   else "present but reports zero IPC")
                + "; re-run the sweep or drop the workload from the "
                  "figure"
            )
        out[workload] = {
            kind: grid[(workload, kind)].ipc / baseline.ipc
            for kind in kinds
        }
    return out


def _perf_figure(
    title: str,
    workloads: Iterable[str],
    kinds: Iterable[NocKind],
    scale: Optional[EvaluationScale],
) -> Dict:
    workloads = tuple(workloads)
    kinds = tuple(kinds)
    normalized = _normalized_performance(workloads, kinds, scale)
    rows: List[List[object]] = [
        [wl] + [normalized[wl][k] for k in kinds] for wl in workloads
    ]
    gmeans = {
        k: geomean([normalized[wl][k] for wl in workloads]) for k in kinds
    }
    rows.append(["GMean"] + [gmeans[k] for k in kinds])
    return {
        "title": title,
        "headers": ["Workload"] + [_KIND_LABEL[k] for k in kinds],
        "rows": rows,
        "normalized": normalized,
        "gmeans": gmeans,
    }


def figure2(scale: Optional[EvaluationScale] = None) -> Dict:
    """Figure 2: SMART and ideal NOCs vs. mesh (motivation)."""
    return _perf_figure(
        "Figure 2: performance of SMART and ideal NOCs, normalized to mesh",
        FIGURE2_WORKLOADS,
        (NocKind.MESH, NocKind.SMART, NocKind.IDEAL),
        scale,
    )


def figure6(scale: Optional[EvaluationScale] = None) -> Dict:
    """Figure 6: full-system performance, normalized to mesh."""
    return _perf_figure(
        "Figure 6: system performance, normalized to a mesh-based design",
        WORKLOAD_NAMES,
        ALL_KINDS,
        scale,
    )


def figure7(scale: Optional[EvaluationScale] = None) -> Dict:
    """Figure 7: distribution of control packets' lags when dropped."""
    grid = evaluation_grid(WORKLOAD_NAMES, ALL_KINDS, scale)
    rows = []
    distributions = {}
    for workload in WORKLOAD_NAMES:
        dist = grid[(workload, NocKind.MESH_PRA)].lag_distribution
        distributions[workload] = dist
        lag0 = dist.get(0, 0.0)
        lag1 = dist.get(1, 0.0)
        lag2 = dist.get(2, 0.0)
        others = max(0.0, 1.0 - lag0 - lag1 - lag2)
        rows.append([workload, lag0, lag1, lag2, others])
    avg = [
        sum(r[i] for r in rows) / len(rows) for i in range(1, 5)
    ]
    rows.append(["Average"] + avg)
    return {
        "title": "Figure 7: distribution of control packets' lags at drop",
        "headers": ["Workload", "Lag0", "Lag1", "Lag2", "Others"],
        "rows": rows,
        "distributions": distributions,
    }


def section5b_stats(scale: Optional[EvaluationScale] = None) -> Dict:
    """Section V-B: control packets per data packet; blocked time."""
    grid = evaluation_grid(WORKLOAD_NAMES, ALL_KINDS, scale)
    rows = []
    per_workload = {}
    for workload in WORKLOAD_NAMES:
        sample = grid[(workload, NocKind.MESH_PRA)]
        per_workload[workload] = {
            "control_per_data": sample.control_per_data,
            "blocked_fraction": sample.pra_blocked_fraction,
        }
        rows.append([
            workload,
            sample.control_per_data,
            sample.pra_blocked_fraction,
        ])
    return {
        "title": (
            "Section V-B: control packets per data packet and the "
            "fraction of network time spent blocked behind proactive "
            "allocations"
        ),
        "headers": ["Workload", "Ctrl/Data", "BlockedFrac"],
        "rows": rows,
        "per_workload": per_workload,
    }


def figure8(chip: Optional[ChipParams] = None) -> Dict:
    """Figure 8: NOC area breakdown (links, buffers, crossbars)."""
    chip = chip or ChipParams()
    kinds = (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA)
    rows = []
    areas = {}
    for kind in kinds:
        area = noc_area(chip, kind)
        areas[kind] = area
        rows.append([
            _KIND_LABEL[kind],
            area.links_mm2,
            area.buffers_mm2,
            area.crossbar_mm2,
            area.total_mm2,
        ])
    return {
        "title": "Figure 8: NOC area breakdown (mm^2)",
        "headers": ["Organization", "Links", "Buffers", "Crossbar", "Total"],
        "rows": rows,
        "areas": areas,
    }


def figure9(scale: Optional[EvaluationScale] = None,
            chip: Optional[ChipParams] = None) -> Dict:
    """Figure 9: performance density, normalized to mesh."""
    chip = chip or ChipParams()
    grid = evaluation_grid(WORKLOAD_NAMES, ALL_KINDS, scale)
    area = {kind: chip_area_mm2(chip, kind) for kind in ALL_KINDS}
    normalized = {}
    rows = []
    for workload in WORKLOAD_NAMES:
        base = grid[(workload, NocKind.MESH)].ipc / area[NocKind.MESH]
        normalized[workload] = {
            kind: (grid[(workload, kind)].ipc / area[kind]) / base
            for kind in ALL_KINDS
        }
        rows.append([workload] + [normalized[workload][k] for k in ALL_KINDS])
    gmeans = {
        k: geomean([normalized[wl][k] for wl in WORKLOAD_NAMES])
        for k in ALL_KINDS
    }
    rows.append(["GMean"] + [gmeans[k] for k in ALL_KINDS])
    return {
        "title": (
            "Figure 9: performance per mm^2, normalized to a mesh-based "
            "design"
        ),
        "headers": ["Workload"] + [_KIND_LABEL[k] for k in ALL_KINDS],
        "rows": rows,
        "normalized": normalized,
        "gmeans": gmeans,
    }


def power_analysis(scale: Optional[EvaluationScale] = None,
                   chip: Optional[ChipParams] = None) -> Dict:
    """Section V-E: NOC power vs. cores across organizations."""
    chip = chip or ChipParams()
    grid = evaluation_grid(WORKLOAD_NAMES, ALL_KINDS, scale)
    rows = []
    powers = {}
    for kind in ALL_KINDS:
        # Worst-case workload activity for this organization.
        worst = None
        for workload in WORKLOAD_NAMES:
            sample = grid[(workload, kind)]
            avg_flits = (
                sample.flits_delivered / sample.packets
                if sample.packets else 1.0
            )
            flit_hops = int(sample.total_hops * avg_flits)
            p = noc_power(
                chip,
                flit_hops=flit_hops,
                cycles=sample.cycles,
                kind=kind,
                control_packets=sample.control_packets,
            )
            if worst is None or p.total_w > worst.total_w:
                worst = p
        powers[kind] = worst
        cp = chip_power(chip, worst)
        rows.append([
            _KIND_LABEL[kind], worst.total_w, cp.cores_w, cp.llc_w,
        ])
    return {
        "title": "Section V-E: worst-case NOC power vs. cores and LLC (W)",
        "headers": ["Organization", "NOC", "Cores", "LLC"],
        "rows": rows,
        "powers": powers,
    }


def zero_load_table(max_hops: int = 7) -> Dict:
    """Extra validation artifact: zero-load packet latency by distance.

    Exercises each organization's timing rules (Table I's pipeline
    depths) on an otherwise idle 8x8 mesh, for a single-flit request
    over 1..max_hops straight hops — the numbers behind the paper's
    "2 cycles/hop vs 3 cycles/hop vs 2 hops/cycle" argument.  Mesh+PRA
    is measured with an announced (pre-allocated) 5-flit response, its
    intended beneficiary.
    """
    from repro.noc.network import build_network
    from repro.noc.packet import Packet
    from repro.params import NocParams

    rows = []
    for hops in range(1, max_hops + 1):
        row: List[object] = [hops]
        for kind in ALL_KINDS:
            net = build_network(NocParams(kind=kind))
            msg = (
                MessageClass.RESPONSE
                if kind is NocKind.MESH_PRA
                else MessageClass.REQUEST
            )
            pkt = Packet(src=0, dst=hops, msg_class=msg, created=net.cycle)
            if kind is NocKind.MESH_PRA:
                net.announce(pkt, ready_in=4)
                net.run(4)
            net.send(pkt)
            net.drain(max_cycles=300)
            row.append(float(pkt.network_latency()))
        rows.append(row)
    return {
        "title": "Zero-load latency by hop count (cycles; Mesh+PRA row "
                 "is an announced 5-flit response)",
        "headers": ["Hops"] + [_KIND_LABEL[k] for k in ALL_KINDS],
        "rows": rows,
    }


#: Chiplet specs the chiplet figure evaluates against the flat mesh.
CHIPLET_FIGURE_SPECS = ("mesh", "chiplet:2x2x4x4", "chiplet:2x2x4x4:star")


def _modeled_pra_interposer(topology: str) -> float:
    """Modeled announced-response latency over a chiplet hierarchy.

    PRA is simulated only on the flat mesh; this projects its announced
    law onto hierarchical routes as an ablation axis: pre-allocation
    compresses each maximal straight intra-chiplet run to 2 tiles/cycle
    (the mesh law's ``ceil(run/2)`` segments, turns break runs), while
    interposer crossings stay wire-limited at their configured link
    latency — pre-allocation removes router delay, not substrate wire
    delay.  The constant 7-cycle envelope matches the mesh law.
    """
    from math import ceil

    from repro.noc.topology import (Direction, parse_topology_spec,
                                    topology_from_spec)

    spec = parse_topology_spec(topology)
    topo = topology_from_spec(spec, 8, 8)
    limit = topo.num_endpoints
    total = 0.0
    pairs = 0
    for src in range(limit):
        for dst in range(limit):
            if dst == src:
                continue
            lat = 0.0
            run = 0
            run_dir = None
            for node, port in topo.route(src, dst)[:-1]:
                if isinstance(port, Direction):
                    if port is run_dir:
                        run += 1
                    else:
                        lat += ceil(run / 2)
                        run, run_dir = 1, port
                else:
                    lat += ceil(run / 2) + topo.link_latency(node, port)
                    run, run_dir = 0, None
            lat += ceil(run / 2)
            total += lat + 7.0
            pairs += 1
    return total / pairs


def chiplet_comparison(scale: Optional[EvaluationScale] = None) -> Dict:
    """Chiplet hierarchies vs the flat mesh (``figures --only chiplet``).

    Simulates the baseline and ideal organizations over each topology
    at a deep-unsaturated rate, sets the analytic model's predictions
    beside them, and adds two modeled ablation columns: the announced
    PRA-over-interposer law (:func:`_modeled_pra_interposer`) and the
    capacity bound of the bottleneck link (the gateway concentration
    penalty made visible).
    """
    from repro.analytic.queueing import (predict_network, saturation_rate,
                                         synthetic_mix)
    from repro.noc.network import build_network
    from repro.params import NocParams
    from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

    rate = 0.005
    cycles = 2000
    mix = synthetic_mix(TrafficPattern.UNIFORM_RANDOM)
    rows: List[List[object]] = []
    for topology in CHIPLET_FIGURE_SPECS:
        row: List[object] = [topology]
        for kind in (NocKind.MESH, NocKind.IDEAL):
            params = NocParams(kind=kind, topology=topology)
            net = build_network(params)
            SyntheticTraffic(
                net, TrafficPattern.UNIFORM_RANDOM, rate, seed=5
            ).run(cycles)
            net.drain()
            row.append(net.stats.summary()["avg_network_latency"])
            row.append(predict_network(kind, rate, mix,
                                       params=params).latency)
        row.append(_modeled_pra_interposer(topology))
        row.append(saturation_rate(
            NocKind.MESH, mix, params=NocParams(topology=topology)
        ))
        rows.append(row)
    return {
        "title": (
            "Chiplet topologies vs the flat mesh: simulated and modeled "
            f"latency at rate {rate:g} (uniform random), the modeled "
            "announced PRA-over-interposer law, and the capacity bound"
        ),
        "headers": [
            "Topology", "SimMesh", "ModelMesh", "SimIdeal", "ModelIdeal",
            "PRA0(model)", "SatRate",
        ],
        "rows": rows,
    }


def analytic_validation(scale: Optional[EvaluationScale] = None) -> Dict:
    """Model-vs-simulation error per grid cell (the pruning contract).

    Runs the cycle-accurate grid with pruning forced off and compares
    every cell against :func:`repro.analytic.predict_cell`.  Not in the
    default ``figures`` set (it forces a full simulated grid even under
    ``REPRO_ANALYTIC=prune``); ``--only analytic`` or ``python -m repro
    analytic --validate`` requests it explicitly.
    """
    from repro.analytic import (LATENCY_ERROR_MARGIN, validate_chiplet,
                                validate_grid)

    report = validate_grid(scale)
    rows: List[List[object]] = [
        [
            entry.workload,
            _KIND_LABEL[entry.kind],
            entry.simulated_latency,
            entry.predicted_latency,
            entry.latency_error,
            entry.ipc_error,
        ]
        for entry in report.entries
    ]
    # Chiplet topologies have no full-system grid cells; the
    # hierarchical zero-load laws are validated on low-rate synthetic
    # traffic against the same latency margin.
    chiplet_entries = validate_chiplet()
    for entry in chiplet_entries:
        rows.append([
            f"synthetic {entry.topology}",
            _KIND_LABEL[entry.kind],
            entry.simulated_latency,
            entry.predicted_latency,
            entry.latency_error,
            0.0,
        ])
    chiplet_ok = all(
        e.latency_error <= LATENCY_ERROR_MARGIN for e in chiplet_entries
    )
    rows.append([
        "Max", "", "", "",
        report.max_latency_error, report.max_ipc_error,
    ])
    verdict = "PASS" if report.ok and chiplet_ok else "FAIL"
    return {
        "title": (
            "Analytic model validation: per-cell relative error vs. the "
            f"cycle-accurate grid (margins {report.margin:.0%} latency / "
            f"{report.ipc_margin:.0%} IPC — {verdict})"
        ),
        "headers": [
            "Workload", "Organization", "SimLat", "ModelLat",
            "LatErr", "IPCErr",
        ],
        "rows": rows,
        "report": report,
        "chiplet_entries": chiplet_entries,
        "ok": report.ok and chiplet_ok,
    }


def table1(chip: Optional[ChipParams] = None) -> Dict:
    """Table I: evaluation parameters (consistency echo)."""
    chip = chip or ChipParams()
    tech = chip.technology
    rows = [
        ["Technology", f"{tech.node_nm} nm, {tech.vdd} V, "
                       f"{tech.frequency_ghz} GHz"],
        ["Cores", f"{chip.num_tiles}"],
        ["LLC", f"{chip.cache.llc_total_mb} MB NUCA, "
                f"{chip.llc_slice_mb * 1024:.0f} KB/slice"],
        ["LLC lookup", f"tag {chip.cache.tag_lookup_cycles} cycle + data "
                       f"{chip.cache.data_lookup_cycles} cycles (serial)"],
        ["Memory", f"{chip.memory.num_channels} DDR3-1600 channels"],
        ["Core", f"{chip.core.decode_width}-way OoO, "
                 f"{chip.core.rob_entries}-entry ROB, "
                 f"{chip.core.lsq_entries}-entry LSQ, "
                 f"{chip.core.area_mm2} mm^2, {chip.core.power_w} W"],
        ["Router", f"{chip.noc.router.num_ports} ports, "
                   f"{chip.noc.router.vcs_per_port} VCs/port, "
                   f"{chip.noc.router.flits_per_vc} flits/VC"],
        ["Link", f"{chip.noc.router.link_width_bits} bits"],
        ["Packet sizes", ", ".join(
            f"{mc.name.lower()}={PACKET_FLITS[mc]}f" for mc in MessageClass
        )],
        ["PRA", f"max lag {chip.noc.pra.max_lag}, "
                f"{chip.noc.pra.hops_per_cycle} tiles/cycle, "
                f"{chip.noc.pra.control_link_width_bits}-bit control links"],
    ]
    return {
        "title": "Table I: evaluation parameters",
        "headers": ["Parameter", "Value"],
        "rows": rows,
    }
