"""Crossbar area/energy: a matrix crossbar in the wire-dominated regime.

Area scales with (ports x width)² at the wire pitch; energy per
traversal scales with the bits moved across the switch span.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import ChipParams

#: Matrix-crossbar area coefficient (wire pitch squared with layout
#: overhead), mm² per (port·bit)² at 200 nm pitch.
XBAR_AREA_COEFF = 3.4e-8

#: Dynamic energy per bit crossing the switch.
XBAR_ENERGY_FJ_PER_BIT = 22.0


@dataclass(frozen=True)
class CrossbarModel:
    """One router's switch fabric."""

    ports: int
    width_bits: int
    #: Extra input legs for bypass paths (SMART pass-through, PRA's
    #: bypass and latch inputs) widen the switch.
    extra_input_fraction: float = 0.0

    @property
    def area_mm2(self) -> float:
        eff_ports = self.ports * (1.0 + self.extra_input_fraction)
        return XBAR_AREA_COEFF * (eff_ports * self.width_bits) ** 2 / self.ports

    def traversal_energy_j(self, bits: int) -> float:
        return bits * XBAR_ENERGY_FJ_PER_BIT * 1e-15


def data_crossbar(chip: ChipParams, extra_input_fraction: float = 0.0) -> CrossbarModel:
    r = chip.noc.router
    return CrossbarModel(
        ports=r.num_ports,
        width_bits=r.link_width_bits,
        extra_input_fraction=extra_input_fraction,
    )
