"""Section V-B: why PRA is effective — control-packet statistics.

Paper: 1.60-1.89 control packets per data packet; output-port time lost
to proactive allocations is ~0.01% of end-to-end latency.  Our dedup of
duplicate LSD injections keeps the control count lower (see
EXPERIMENTS.md); the blocked fraction stays small.
"""

from repro.harness import section5b_stats, render_figure


def test_sec5b_control_stats(benchmark, save_result, scale):
    result = benchmark.pedantic(
        lambda: section5b_stats(scale), iterations=1, rounds=1
    )
    save_result("sec5b_control_stats", render_figure(result))
    for workload, stats in result["per_workload"].items():
        # Control packets flow for a substantial share of data packets.
        assert stats["control_per_data"] > 0.25, workload
        # Resource underutilization stays a small fraction of latency.
        assert stats["blocked_fraction"] < 0.08, workload
