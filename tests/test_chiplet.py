"""Chiplet topologies end to end: graph invariants, routing, chaos,
checkpoints, sharding fallbacks, and pinned golden digests.

The topology-graph contract (docs/simulator_internals.md) is pinned
here against every concrete :class:`~repro.noc.topology.Topology`:
entry ports must be link-symmetric, routes must terminate at the
destination in exactly ``hop_distance`` hops, and per-instance route
memos must never leak between topology instances.  The chiplet network
itself then gets the same treatment as every other organization —
chaos sweeps with the invariant suite raising, bit-for-bit checkpoint
continuation, and a golden determinism digest.
"""

from __future__ import annotations

import pytest

from repro.analytic import validate_chiplet
from repro.analytic.validate import LATENCY_ERROR_MARGIN
from repro.checkpoint import restore_network, snapshot_network
from repro.cli import main
from repro.noc.chiplet import build_chiplet
from repro.noc.packet import reset_packet_ids
from repro.noc.topology import (
    CHIPLET_VC_LAYERS,
    FIRST_INTERPOSER_PORT,
    Direction,
    MeshTopology,
    parse_topology_spec,
    port_name,
    topology_from_spec,
)
from repro.params import NocKind, NocParams
from repro.shard import SyntheticSpec, plan_shards
from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

from tests.helpers import assert_quiescent
from tests.test_chaos import chaos_run
from tests.test_checkpoint import _json_round_trip
from tests.test_golden_determinism import _digest

#: Deterministic chiplet scenario (mirrors the golden network scenario).
_RATE, _SEED, _CYCLES, _DRAIN = 0.02, 7, 800, 20000

#: Pinned golden digests; an intentional behavior change must update
#: these alongside the mesh/smart/pra/ideal pins.
GOLDEN_CHIPLET = {
    "chiplet:2x2x4x4":
        "8811e97cd2a8035a7f328bb3b44d9863590e12c4c89c29bd174e62ad53e6457c",
    "chiplet:2x2x4x4:star":
        "bce472da2820b9f7685506581f838996b8d1bfdcea52aae6fa998e217c18cdcc",
}


def _topology(spec: str):
    return topology_from_spec(parse_topology_spec(spec), 4, 4)


ALL_TOPOLOGIES = [
    "mesh", "ring", "chiplet:2x2x3x3", "chiplet:2x2x3x3:star",
    "chiplet:2x2x3x3:ilat=6",
]


def _chiplet_run(spec: str):
    reset_packet_ids()
    net = build_chiplet(spec)
    traffic = SyntheticTraffic(net, TrafficPattern.UNIFORM_RANDOM, _RATE,
                               seed=_SEED)
    return net, traffic


# -- the topology-graph contract -------------------------------------------


@pytest.mark.parametrize("spec", ALL_TOPOLOGIES)
def test_entry_ports_are_link_symmetric(spec):
    """Arriving through ``entry_port`` must land on a port whose
    neighbor is the sender — wiring depends on this."""
    topo = _topology(spec)
    for node in range(topo.num_nodes):
        for port, nbr in topo.neighbors(node):
            entry = topo.entry_port(node, port)
            back = dict(topo.neighbors(nbr))
            assert back[entry] == node, (
                f"{spec}: {node} -{port_name(port)}-> {nbr} enters at "
                f"{port_name(entry)}, which is not the reverse link"
            )
            assert topo.link_latency(node, port) >= 1


@pytest.mark.parametrize("spec", ALL_TOPOLOGIES)
def test_routes_terminate_at_destination(spec):
    topo = _topology(spec)
    for src in range(topo.num_endpoints):
        for dst in range(topo.num_endpoints):
            route = topo.route(src, dst)
            assert route[-1] == (dst, Direction.LOCAL)
            assert len(route) - 1 == topo.hop_distance(src, dst)
            node = src
            for hop, port in route[:-1]:
                assert hop == node
                node = topo.neighbor(node, port)
            assert node == dst


def test_route_memo_is_per_instance():
    """Satellite 1: two instances must never share cached routes, even
    when node ids overlap."""
    a = MeshTopology(4, 4)
    b = _topology("chiplet:2x2x3x3")
    assert a._route_cache is not b._route_cache
    assert a._dense_rows is not b._dense_rows
    # Same (node, dst) key, different answers; each table stays correct.
    assert a.route_port(0, 4) == Direction.SOUTH  # 4x4 mesh: 4 is (0, 1)
    assert b.route_port(0, 4) == Direction.EAST   # 3x3 sub-mesh: (1, 1)
    assert a.route_port(0, 4) == Direction.SOUTH
    # A second identical-shape instance builds its own rows from cold.
    c = MeshTopology(4, 4)
    assert not any(c._dense_rows)
    assert c.route_port(0, 4) == Direction.SOUTH
    assert c._dense_rows[0] is not None


def test_chiplet_link_latencies():
    topo = _topology("chiplet:2x2x3x3:ilat=6")
    seen_interposer = 0
    for node in range(topo.num_nodes):
        for port, _ in topo.neighbors(node):
            latency = topo.link_latency(node, port)
            if int(port) >= FIRST_INTERPOSER_PORT:
                assert latency == 6
                seen_interposer += 1
            else:
                assert latency == 2
    assert seen_interposer > 0


def test_chiplet_gateways_and_star_hub():
    mesh_ip = _topology("chiplet:2x2x3x3")
    star = _topology("chiplet:2x2x3x3:star")
    assert mesh_ip.num_nodes == mesh_ip.num_endpoints == 36
    assert star.num_nodes == 37 and star.num_endpoints == 36  # +1 hub
    for topo in (mesh_ip, star):
        gateways = [n for n in range(36) if topo.is_gateway(n)]
        assert len(gateways) == 4
        assert gateways == [topo.gateway(c) for c in range(4)]


def test_parse_topology_spec_rejects_junk():
    for junk in ("chiplet", "chiplet:2x2", "chiplet:axbxcxd", "torus",
                 "chiplet:2x2x3x3:ilat=0", "chiplet:2x2x3x3:frob"):
        with pytest.raises(ValueError):
            parse_topology_spec(junk)


def test_params_derive_mesh_dims_from_chiplet_spec():
    params = NocParams(kind=NocKind.MESH, topology="chiplet:2x3x4x2")
    assert (params.mesh_width, params.mesh_height) == (8, 6)
    assert params.num_nodes == 48


# -- chaos + invariants (satellite 3) --------------------------------------


@pytest.mark.parametrize("spec", ["chiplet:2x2x3x3", "chiplet:2x2x3x3:star"])
def test_chaos_sweep_chiplet(spec):
    chaos_run(build_chiplet(spec), fault_seed=3)


def test_chiplet_vcs_cover_escape_layers():
    net = build_chiplet("chiplet:2x2x3x3")
    assert net.params.router.vcs_per_port >= 3 * CHIPLET_VC_LAYERS


# -- checkpoint round-trip (bit-for-bit) -----------------------------------


@pytest.mark.parametrize("spec", ["chiplet:2x2x4x4", "chiplet:2x2x4x4:star"])
def test_snapshot_on_chiplet_topology(spec):
    net, traffic = _chiplet_run(spec)
    traffic.run(_CYCLES)
    net.drain(max_cycles=_DRAIN)
    straight = _digest(net.stats.summary())
    assert straight == GOLDEN_CHIPLET[spec]

    net, traffic = _chiplet_run(spec)
    traffic.run(_CYCLES // 2)
    snap = _json_round_trip(snapshot_network(net, traffic))
    assert snap["network_class"] == "mesh@chiplet"
    net2, traffic2 = restore_network(snap)
    assert net2 is not net
    traffic2.run(_CYCLES - _CYCLES // 2)
    net2.drain(max_cycles=_DRAIN)
    assert _digest(net2.stats.summary()) == straight
    assert_quiescent(net2)


# -- analytic model coverage -----------------------------------------------


def test_analytic_matches_chiplet_simulation():
    entries = validate_chiplet(specs=("chiplet:2x2x3x3",), rate=0.005,
                               cycles=1500, seed=5)
    assert {e.kind for e in entries} == {NocKind.MESH, NocKind.IDEAL}
    for entry in entries:
        assert entry.latency_error <= LATENCY_ERROR_MARGIN, (
            f"{entry.topology}/{entry.kind.value}: model "
            f"{entry.predicted_latency:.2f} vs sim "
            f"{entry.simulated_latency:.2f}"
        )


# -- shard planning fallbacks (satellite 6) --------------------------------


def test_plan_shards_chiplet_reason_is_structured():
    params = SyntheticSpec(topology="chiplet:2x2x4x4").params()
    effective, reason = plan_shards(params, 4)
    assert effective == 1
    assert reason.startswith("[topology=chiplet]")


def test_plan_shards_ring_reason_is_structured():
    effective, reason = plan_shards(SyntheticSpec(topology="ring").params(), 4)
    assert effective == 1
    assert reason.startswith("[topology=ring]")


def test_plan_shards_kind_and_clamp_reasons_are_structured():
    effective, reason = plan_shards(
        SyntheticSpec(kind=NocKind.SMART).params(), 4)
    assert (effective, reason.split("]")[0]) == (1, "[kind=smart")
    effective, reason = plan_shards(SyntheticSpec().params(), 99)
    assert effective == 8
    assert reason.startswith("[clamp=8]")


# -- CLI -------------------------------------------------------------------


def test_sweep_rejects_junk_topology_spec(capsys):
    rc = main(["sweep", "--topology", "chiplet:bogus",
               "--rates", "0.005", "--cycles", "100"])
    assert rc == 2
    assert "chiplet dimensions" in capsys.readouterr().err


def test_sweep_chiplet_smoke(capsys):
    rc = main(["sweep", "--topology", "chiplet:2x2x2x2",
               "--rates", "0.01", "--cycles", "300"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "ideal" in out


def test_chaos_cli_chiplet(capsys):
    rc = main(["chaos", "--noc", "mesh", "--topology", "chiplet:2x2x2x2",
               "--cycles", "300", "--rate", "0.02", "--fault-seed", "5"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "all packets delivered, all invariants held" in out
