"""Reference codec for checkpoint save/restore.

The ``state_dict``/``load_state`` methods across the simulator exchange
*references* instead of nested object dumps whenever an object is shared
(packets appear in VC buffers, event queues, reservation tables, and
plans all at once).  A :class:`SaveContext` assigns every live object a
stable reference and serializes each exactly once, in registries keyed
by id; a :class:`RestoreContext` materializes the registries first and
then resolves references while the component tree loads.

Reference encodings (JSON-safe tagged lists):

========================  ================================================
``["v", x]``              plain scalar (int/float/str/bool/None)
``["dir", d]``            :class:`~repro.noc.topology.Direction`
``["mc", v]``             :class:`~repro.params.MessageClass`
``["pkt", pid]``          :class:`~repro.noc.packet.Packet`
``["flit", pid, idx]``    :class:`~repro.noc.flit.Flit` (flit ``idx`` of
                          packet ``pid`` — flits are a pure function of
                          their packet, so they rematerialize on demand)
``["txn", tid]``          :class:`~repro.tile.llc.Transaction`
``["plan", plid]``        :class:`~repro.core.plan.PraPlan`
``["run", rid]``          :class:`~repro.core.control_network.ControlRun`
``["rp", node, d]``       a router's :class:`~repro.noc.ports.OutputPort`
``["nip", node]``         an NI's injection port
``["cb", key, name]``     bound method ``name`` of the owner registered
                          under ``key`` (e.g. ``["slice", 3]``)
========================  ================================================
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.control_network import ControlRun
from repro.core.plan import PraPlan
from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.ports import OutputPort
from repro.noc.topology import Direction, as_port
from repro.params import MessageClass
from repro.tile.llc import Transaction

#: Bumped whenever a change invalidates previously written snapshots or
#: persisted evaluation-grid cells.
CODE_VERSION = "2"

_SCALARS = (bool, int, float, str)


def rng_state(rng: random.Random) -> list:
    """``random.Random`` state as a JSON-safe list."""
    state = rng.getstate()
    return [state[0], list(state[1]), state[2]]


def set_rng_state(rng: random.Random, state: list) -> None:
    rng.setstate((state[0], tuple(state[1]), state[2]))


class SaveContext:
    """Reference assignment + registry serialization for one snapshot."""

    def __init__(self) -> None:
        self._packets: Dict[int, Packet] = {}
        self._txns: Dict[int, Transaction] = {}
        #: Plans and runs have no intrinsic id; they get sequential ones
        #: at first reference (keyed by object identity).
        self._plan_ids: Dict[int, int] = {}
        self._plans: Dict[int, PraPlan] = {}
        self._run_ids: Dict[int, int] = {}
        self._runs: Dict[int, ControlRun] = {}
        self._owner_keys: Dict[int, Tuple] = {}

    # -- typed references -------------------------------------------------

    def packet_ref(self, packet: Optional[Packet]) -> Optional[list]:
        if packet is None:
            return None
        self._packets[packet.pid] = packet
        return ["pkt", packet.pid]

    def flit_ref(self, flit: Optional[Flit]) -> Optional[list]:
        if flit is None:
            return None
        self._packets[flit.packet.pid] = flit.packet
        return ["flit", flit.packet.pid, flit.index]

    def txn_ref(self, txn: Optional[Transaction]) -> Optional[list]:
        if txn is None:
            return None
        self._txns[txn.tid] = txn
        return ["txn", txn.tid]

    def plan_ref(self, plan: Optional[PraPlan]) -> Optional[list]:
        if plan is None:
            return None
        plid = self._plan_ids.get(id(plan))
        if plid is None:
            plid = len(self._plan_ids)
            self._plan_ids[id(plan)] = plid
            self._plans[plid] = plan
        return ["plan", plid]

    def run_ref(self, run: ControlRun) -> list:
        rid = self._run_ids.get(id(run))
        if rid is None:
            rid = len(self._run_ids)
            self._run_ids[id(run)] = rid
            self._runs[rid] = run
        return ["run", rid]

    def port_ref(self, port: OutputPort) -> list:
        if port.router is None:
            return ["nip", port.node]
        return ["rp", port.router.node, int(port.direction)]

    def register_owner(self, key: Tuple, obj: Any) -> None:
        """Register a callback owner under a stable key (both sides of a
        snapshot must register the same owners)."""
        self._owner_keys[id(obj)] = key

    def callback_ref(self, fn: Callable) -> list:
        owner = getattr(fn, "__self__", None)
        if owner is None:
            raise TypeError(
                f"only bound methods are checkpointable, got {fn!r}"
            )
        key = self._owner_keys.get(id(owner))
        if key is None:
            raise TypeError(
                f"callback owner {type(owner).__name__} is not registered"
            )
        return ["cb", list(key), fn.__name__]

    # -- generic encode ---------------------------------------------------

    def ref(self, value: Any) -> Any:
        """Encode an arbitrary supported value (event/call arguments)."""
        # Enums first: IntEnum instances would pass the int check below.
        if isinstance(value, Direction):
            return ["dir", int(value)]
        if isinstance(value, MessageClass):
            return ["mc", value.value]
        if isinstance(value, Enum):
            raise TypeError(f"unsupported enum type {type(value).__name__}")
        if value is None or isinstance(value, _SCALARS):
            return ["v", value]
        if isinstance(value, Packet):
            return self.packet_ref(value)
        if isinstance(value, Flit):
            return self.flit_ref(value)
        if isinstance(value, Transaction):
            return self.txn_ref(value)
        if isinstance(value, PraPlan):
            return self.plan_ref(value)
        if isinstance(value, ControlRun):
            return self.run_ref(value)
        if isinstance(value, OutputPort):
            return self.port_ref(value)
        raise TypeError(
            f"cannot checkpoint value of type {type(value).__name__}"
        )

    # -- registry output --------------------------------------------------

    def finalize(self) -> dict:
        """Serialize every registered object (fixpoint: serializing one
        object may register more — a plan references its packet, a run
        its plan)."""
        packets: Dict[int, dict] = {}
        plans: Dict[int, dict] = {}
        runs: Dict[int, dict] = {}
        txns: Dict[int, dict] = {}
        progress = True
        while progress:
            progress = False
            for pid in list(self._packets):
                if pid not in packets:
                    packets[pid] = self._packets[pid].state_dict(self)
                    progress = True
            for plid in list(self._plans):
                if plid not in plans:
                    plans[plid] = self._plans[plid].state_dict(self)
                    progress = True
            for rid in list(self._runs):
                if rid not in runs:
                    runs[rid] = self._runs[rid].state_dict(self)
                    progress = True
            for tid in list(self._txns):
                if tid not in txns:
                    txns[tid] = self._txns[tid].to_state()
                    progress = True
        return {
            "packets": [[pid, packets[pid]] for pid in sorted(packets)],
            "plans": [[plid, plans[plid]] for plid in sorted(plans)],
            "runs": [[rid, runs[rid]] for rid in sorted(runs)],
            "txns": [[tid, txns[tid]] for tid in sorted(txns)],
        }


class RestoreContext:
    """Registry materialization + reference resolution for one restore."""

    def __init__(self, network, registries: dict) -> None:
        #: The freshly built network the state is being loaded into;
        #: ``from_state`` implementations resolve node-indexed structure
        #: (interfaces, routers) through it.
        self.network = network
        self._registries = registries
        self._packets: Dict[int, Packet] = {}
        self._plans: Dict[int, PraPlan] = {}
        self._runs: Dict[int, ControlRun] = {}
        self._txns: Dict[int, Transaction] = {}
        self._owners: Dict[Tuple, Any] = {}

    def register_owner(self, key: Tuple, obj: Any) -> None:
        self._owners[key] = obj

    def materialize(self) -> None:
        """Build registry objects in dependency order, then wire the
        cross-references that ``from_state`` shells left out."""
        reg = self._registries
        for tid, state in reg.get("txns", []):
            self._txns[tid] = Transaction.from_state(state)
        packet_states: List[Tuple[Packet, dict]] = []
        for pid, state in reg.get("packets", []):
            packet = Packet.from_state(state)
            self._packets[pid] = packet
            packet_states.append((packet, state))
        for plid, state in reg.get("plans", []):
            self._plans[plid] = PraPlan.from_state(state, self)
        for rid, state in reg.get("runs", []):
            self._runs[rid] = ControlRun.from_state(state, self)
        # Packet shells reference payloads/plans that now all exist.
        for packet, state in packet_states:
            packet.payload = self.deref(state["payload"])
            packet.pra_plan = self.plan(state["pra_plan"])

    # -- typed resolution -------------------------------------------------

    def packet(self, ref: Optional[list]) -> Optional[Packet]:
        if ref is None:
            return None
        return self._packets[ref[1]]

    def flit(self, ref: Optional[list]) -> Optional[Flit]:
        if ref is None:
            return None
        return self._packets[ref[1]].flits[ref[2]]

    def txn(self, ref: Optional[list]) -> Optional[Transaction]:
        if ref is None:
            return None
        return self._txns[ref[1]]

    def plan(self, ref: Optional[list]) -> Optional[PraPlan]:
        if ref is None:
            return None
        return self._plans[ref[1]]

    def run(self, ref: list) -> ControlRun:
        return self._runs[ref[1]]

    def port(self, ref: list) -> OutputPort:
        if ref[0] == "nip":
            return self.network.interfaces[ref[1]].port
        return self.network.routers[ref[1]].output_ports[as_port(ref[2])]

    def callback(self, ref: list) -> Callable:
        _, key, name = ref
        owner = self._owners.get(tuple(key))
        if owner is None:
            raise KeyError(f"callback owner {key!r} is not registered")
        return getattr(owner, name)

    # -- generic decode ---------------------------------------------------

    def deref(self, value: Any) -> Any:
        if value is None:
            return None
        tag = value[0]
        if tag == "v":
            return value[1]
        if tag == "dir":
            return as_port(value[1])
        if tag == "mc":
            return MessageClass(value[1])
        if tag == "pkt":
            return self.packet(value)
        if tag == "flit":
            return self.flit(value)
        if tag == "txn":
            return self.txn(value)
        if tag == "plan":
            return self.plan(value)
        if tag == "run":
            return self.run(value)
        if tag in ("rp", "nip"):
            return self.port(value)
        if tag == "cb":
            return self.callback(value)
        raise ValueError(f"unknown reference tag {tag!r}")
