"""A bidirectional ring interconnect (paper Section II-B).

The paper motivates tiled meshes by noting that the ring interconnect of
contemporary server parts (Intel Xeon E5) "stands as a major obstacle
for scaling up the core count, as its delay has linear dependence on the
number of interconnected components."  This module implements that
baseline so the claim can be reproduced as an experiment
(`benchmarks/test_background_ring_scaling.py`).

Structure: N ring stops, each with a clockwise port, a counter-clockwise
port, and the local NI port.  Packets take the shorter direction.
Deadlock freedom on the wrap-around cycle uses the classic *dateline*
scheme: each message class gets two VC layers; a packet starts in layer
0 and switches to layer 1 when it crosses the dateline link (stop N-1 →
stop 0 clockwise, or stop 0 → stop N-1 counter-clockwise), breaking the
cyclic channel dependency.  Router timing matches the mesh's 1-stage
speculative pipeline (2 cycles/hop at zero load).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.noc.interface import NetworkInterface
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.ports import OutputPort
from repro.noc.router import MeshRouter
from repro.noc.topology import Direction
from repro.noc.vc import VirtualChannel
from repro.params import NocParams, NUM_MESSAGE_CLASSES

#: Ring directions reuse the mesh port ids: EAST = clockwise,
#: WEST = counter-clockwise.
CLOCKWISE = Direction.EAST
COUNTER_CLOCKWISE = Direction.WEST

#: VC layers per message class for dateline deadlock avoidance.
RING_VC_LAYERS = 2


class RingRouter(MeshRouter):
    """One ring stop: clockwise, counter-clockwise, and local ports."""

    def __init__(self, node: int, network: "RingNetwork"):
        # BaseRouter consults the mesh topology for port existence; the
        # ring network passes a 1-row mesh and we rewire the wrap-around
        # links afterwards, adding the missing edge ports.
        super().__init__(node, network)
        self.ring_size = network.params.num_nodes
        from repro.noc.vc import InputUnit

        for direction in (CLOCKWISE, COUNTER_CLOCKWISE):
            if direction not in self.input_units:
                self.input_units[direction] = InputUnit(
                    direction, self.num_vcs, self.vc_depth
                )
                self.output_ports[direction] = self._make_output_port(
                    direction
                )
        self._unit_list = list(self.input_units.values())
        self._rebuild_port_cache()

    # -- routing -----------------------------------------------------------

    def route_of(self, packet: Packet) -> Direction:
        if packet.dst == self.node:
            return Direction.LOCAL
        forward = (packet.dst - self.node) % self.ring_size
        backward = (self.node - packet.dst) % self.ring_size
        return CLOCKWISE if forward <= backward else COUNTER_CLOCKWISE

    # -- dateline VC selection ------------------------------------------------

    def _dst_vc_for(self, packet: Packet, direction: Direction) -> int:
        """Downstream VC: class layer 0 before the dateline, 1 after."""
        layer = packet.ring_layer
        if self._crosses_dateline(direction):
            layer = 1
        return packet.msg_class.value * RING_VC_LAYERS + layer

    def _crosses_dateline(self, direction: Direction) -> bool:
        if direction is CLOCKWISE:
            return self.node == self.ring_size - 1
        if direction is COUNTER_CLOCKWISE:
            return self.node == 0
        return False

    # -- grant override (layered VCs) -------------------------------------------

    def _may_grant(self, port: OutputPort, packet: Packet, now: int) -> bool:
        if port.is_ejection:
            return True
        return port.can_allocate_vc(
            packet, self._dst_vc_for(packet, port.direction)
        )

    def _grant(
        self,
        port: OutputPort,
        vc: VirtualChannel,
        packet: Packet,
        now: int,
        used_inputs: Set[Direction],
    ) -> None:
        dst_vc: Optional[int] = None
        if not port.is_ejection:
            dst_vc = self._dst_vc_for(packet, port.direction)
            port.downstream_vc(dst_vc).allocated_to = packet
            if self._crosses_dateline(port.direction):
                packet.ring_layer = 1
        port.hold(packet, source_vc=vc, dst_vc=dst_vc)
        used_inputs.add(vc.unit.direction)
        flit = self._pop_and_send(port, vc, now)
        if flit.is_tail:
            port.release()


class RingInterface(NetworkInterface):
    """NI whose injection targets the layered ring VCs."""

    def _start_injection(self, packet: Packet, now: int) -> None:
        port = self.port
        packet.ring_layer = 0
        dst_vc = packet.msg_class.value * RING_VC_LAYERS
        port.downstream_vc(dst_vc).allocated_to = packet
        port.hold(packet, source_vc=None, dst_vc=dst_vc)
        packet.injected = now
        self._holder_next_flit = 0
        self._continue_holder(now)

    def _arbitrate(self, now: int) -> None:
        from repro.params import NUM_MESSAGE_CLASSES

        port = self.port
        for offset in range(NUM_MESSAGE_CLASSES):
            idx = (self._rr + offset) % NUM_MESSAGE_CLASSES
            queue = self.queues[idx]
            if not queue:
                continue
            packet = queue[0]
            dst_vc = packet.msg_class.value * RING_VC_LAYERS
            if not port.can_allocate_vc(packet, dst_vc):
                continue
            self._rr = (idx + 1) % NUM_MESSAGE_CLASSES
            self._start_injection(packet, now)
            return


class RingNetwork(Network):
    """A bidirectional ring of ``num_stops`` tiles."""

    def __init__(self, params: NocParams):
        if params.router.vcs_per_port < NUM_MESSAGE_CLASSES * RING_VC_LAYERS:
            from dataclasses import replace

            params = replace(
                params,
                router=replace(
                    params.router,
                    vcs_per_port=NUM_MESSAGE_CLASSES * RING_VC_LAYERS,
                ),
            )
        super().__init__(params)
        num = params.num_nodes
        self.routers = [RingRouter(node, self) for node in range(num)]
        for node, router in enumerate(self.routers):
            cw = self.routers[(node + 1) % num]
            ccw = self.routers[(node - 1) % num]
            router.output_ports[CLOCKWISE].connect(cw, COUNTER_CLOCKWISE)
            router.output_ports[COUNTER_CLOCKWISE].connect(ccw, CLOCKWISE)
        self.interfaces = [
            RingInterface(node, self, self.routers[node])
            for node in range(num)
        ]
        for router, ni in zip(self.routers, self.interfaces):
            router.output_ports[Direction.LOCAL].connect_sink(ni)


def build_ring(num_stops: int, flits_per_vc: int = 5) -> RingNetwork:
    """Convenience constructor: a ring of ``num_stops`` tiles."""
    from dataclasses import replace

    params = NocParams(mesh_width=num_stops, mesh_height=1)
    params = replace(
        params,
        router=replace(
            params.router,
            vcs_per_port=NUM_MESSAGE_CLASSES * RING_VC_LAYERS,
            flits_per_vc=flits_per_vc,
        ),
    )
    return RingNetwork(params)
