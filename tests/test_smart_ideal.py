"""Tests for the SMART and Ideal network organizations."""

import random

from repro.noc.network import build_network
from repro.noc.packet import Packet
from repro.params import MessageClass, NocKind, NocParams


def make_net(kind, width=4, height=4):
    return build_network(NocParams(kind=kind, mesh_width=width, mesh_height=height))


class TestSmart:
    def test_single_packet_delivery(self):
        net = make_net(NocKind.SMART)
        pkt = Packet(src=0, dst=15, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=300)
        assert pkt.ejected is not None
        assert pkt.hops_taken == 6

    def test_zero_load_straight_line_uses_bypass(self):
        """0 -> 3 on a 4x4 is 3 straight hops: SMART stops at routers 0
        and 2 (bypassing 1), each stop costing 3 cycles."""
        net = make_net(NocKind.SMART)
        pkt = Packet(src=0, dst=3, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=100)
        # injection visible at router0 at t+2; grant t+2; traverse t+4
        # (2 tiles) visible at router2 at t+5; grant t+5; traverse t+7,
        # visible at router3 at t+8; eject grant t+8, NI at t+11.
        mesh = make_net(NocKind.MESH)
        pkt_m = Packet(src=0, dst=3, msg_class=MessageClass.REQUEST,
                       created=mesh.cycle)
        mesh.send(pkt_m)
        mesh.drain(max_cycles=100)
        # SMART should not be slower than mesh by more than the extra
        # pipeline stages, and must traverse fewer router stops.
        assert pkt.network_latency() <= pkt_m.network_latency() + 2

    def test_turn_stops_bypass(self):
        net = make_net(NocKind.SMART)
        # 0 -> 5: one hop east, one hop south; no straight pair exists.
        pkt = Packet(src=0, dst=5, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=100)
        assert pkt.hops_taken == 2

    def test_multi_flit_intact_under_bypass(self):
        net = make_net(NocKind.SMART)
        pkt = Packet(src=0, dst=3, msg_class=MessageClass.RESPONSE,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=200)
        assert net.stats.flits_ejected == 5

    def test_many_random_packets_all_delivered(self):
        rng = random.Random(11)
        net = make_net(NocKind.SMART)
        for _ in range(150):
            src = rng.randrange(16)
            dst = (src + rng.randrange(1, 16)) % 16
            mc = rng.choice(list(MessageClass))
            net.send(Packet(src=src, dst=dst, msg_class=mc, created=net.cycle))
            net.step()
        net.drain(max_cycles=10000)
        assert net.stats.packets_ejected == 150


class TestIdeal:
    def test_single_packet_two_hops_per_cycle(self):
        net = make_net(NocKind.IDEAL)
        pkt = Packet(src=0, dst=3, msg_class=MessageClass.REQUEST,
                     created=net.cycle)
        net.send(pkt)
        net.drain(max_cycles=50)
        # injected when visible at the source node; two move cycles
        # (2 hops then 1 hop) land the head at the destination, ejection
        # to the NI takes one more cycle: latency = 3.
        assert pkt.network_latency() == 3
        assert pkt.hops_taken == 3

    def test_ideal_faster_than_mesh(self):
        results = {}
        for kind in (NocKind.MESH, NocKind.IDEAL):
            net = make_net(kind, width=8, height=8)
            pkt = Packet(src=0, dst=63, msg_class=MessageClass.RESPONSE,
                         created=net.cycle)
            net.send(pkt)
            net.drain(max_cycles=300)
            results[kind] = pkt.network_latency()
        assert results[NocKind.IDEAL] < results[NocKind.MESH] / 2

    def test_contention_serializes_shared_link(self):
        net = make_net(NocKind.IDEAL)
        # Two 5-flit packets over the same links 0 -> 3.
        p1 = Packet(src=0, dst=3, msg_class=MessageClass.RESPONSE,
                    created=net.cycle)
        p2 = Packet(src=0, dst=3, msg_class=MessageClass.RESPONSE,
                    created=net.cycle)
        net.send(p1)
        net.send(p2)
        net.drain(max_cycles=100)
        lat = sorted([p1.network_latency(), p2.network_latency()])
        assert lat[1] >= lat[0] + 5  # second waits for the flit window

    def test_many_random_packets_all_delivered(self):
        rng = random.Random(13)
        net = make_net(NocKind.IDEAL)
        for _ in range(200):
            src = rng.randrange(16)
            dst = (src + rng.randrange(1, 16)) % 16
            mc = rng.choice(list(MessageClass))
            net.send(Packet(src=src, dst=dst, msg_class=mc, created=net.cycle))
            net.step()
        net.drain(max_cycles=10000)
        assert net.stats.packets_ejected == 200
