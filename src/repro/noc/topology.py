"""Two-dimensional mesh topology: node coordinates, ports, neighbors.

Nodes are numbered row-major: node ``id = y * width + x`` with ``x``
increasing eastward and ``y`` increasing southward.  Each router has five
ports (Table I): the local (NI) port plus one per cardinal direction.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterator, List, Optional, Tuple


class Direction(IntEnum):
    """Router port indices.  ``LOCAL`` is the injection/ejection port."""

    LOCAL = 0
    NORTH = 1
    EAST = 2
    SOUTH = 3
    WEST = 4

    @property
    def opposite(self) -> "Direction":
        """The port on the neighboring router that faces this one."""
        return _OPPOSITE[self]


#: Opposite-direction table indexed by port number (LOCAL maps to itself).
_OPPOSITE = (
    Direction.LOCAL,
    Direction.SOUTH,
    Direction.WEST,
    Direction.NORTH,
    Direction.EAST,
)

#: The four non-local directions in a fixed arbitration order.
CARDINALS = (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)

#: Per-direction coordinate deltas (dx, dy).
_DELTAS = {
    Direction.NORTH: (0, -1),
    Direction.SOUTH: (0, 1),
    Direction.EAST: (1, 0),
    Direction.WEST: (-1, 0),
}


class MeshTopology:
    """Geometry of a ``width``-by-``height`` mesh."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height
        self.num_nodes = width * height
        #: Lookahead-route memos keyed by ``node * num_nodes + dst``,
        #: filled lazily by :mod:`repro.noc.routing`.  XY routes are a
        #: pure function of the geometry, so one computation per
        #: (src, dst) pair serves the whole run.
        self._xy_dir_cache: dict = {}
        self._xy_route_cache: dict = {}
        #: Precomputed neighbor table: ``_neighbor_table[node][direction]``
        #: (None at mesh edges and for LOCAL).
        self._neighbor_table: List[List[Optional[int]]] = []
        for node in range(self.num_nodes):
            x, y = node % width, node // width
            row: List[Optional[int]] = [None] * 5
            for direction, (dx, dy) in _DELTAS.items():
                nx, ny = x + dx, y + dy
                if 0 <= nx < width and 0 <= ny < height:
                    row[direction] = ny * width + nx
            self._neighbor_table.append(row)

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``node``."""
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside mesh")
        return y * self.width + x

    def neighbor(self, node: int, direction: Direction) -> Optional[int]:
        """Adjacent node in ``direction``, or None at a mesh edge."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")
        return self._neighbor_table[node][direction]

    def neighbors(self, node: int) -> Iterator[Tuple[Direction, int]]:
        """All (direction, neighbor) pairs that exist for ``node``."""
        for direction in CARDINALS:
            other = self.neighbor(node, direction)
            if other is not None:
                yield direction, other

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def walk(self, node: int, direction: Direction, hops: int) -> Optional[int]:
        """Node reached after ``hops`` steps in ``direction`` (None if the
        walk leaves the mesh).  Used by multi-drop control segments."""
        current: Optional[int] = node
        for _ in range(hops):
            if current is None:
                return None
            current = self.neighbor(current, direction)
        return current

    def row_domains(self, count: int) -> List[Tuple[int, int]]:
        """Partition the mesh into ``count`` contiguous row stripes.

        Returns per-domain ``(first_node, last_node)`` inclusive node-id
        ranges (row-major numbering keeps each stripe a contiguous id
        range).  Rows split as evenly as possible: the first
        ``height % count`` stripes take one extra row.  Used by the
        sharded simulation engine, whose boundary protocol exchanges
        traffic only across the horizontal cuts between stripes.
        """
        if not 1 <= count <= self.height:
            raise ValueError(
                f"cannot cut {self.height} rows into {count} row domains"
            )
        base, extra = divmod(self.height, count)
        domains: List[Tuple[int, int]] = []
        row = 0
        for index in range(count):
            rows = base + (1 if index < extra else 0)
            first = row * self.width
            last = (row + rows) * self.width - 1
            domains.append((first, last))
            row += rows
        return domains

    def bidirectional_links(self) -> List[Tuple[int, int]]:
        """Each physical adjacent pair once; for area/power accounting."""
        links = []
        for node in range(self.num_nodes):
            for direction in (Direction.EAST, Direction.SOUTH):
                other = self.neighbor(node, direction)
                if other is not None:
                    links.append((node, other))
        return links

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(f"node {node} outside mesh of {self.num_nodes}")

    def __repr__(self) -> str:
        return f"MeshTopology({self.width}x{self.height})"
