"""Checkpointable simulator state (see docs/simulator_internals.md).

Every stateful component implements ``state_dict()``/``load_state()``;
this package supplies the reference codec that ties the per-component
states together, the versioned snapshot file format, and the on-disk
cell store that makes the evaluation grid resumable.
"""

from repro.checkpoint.codec import (
    CODE_VERSION,
    RestoreContext,
    SaveContext,
    rng_state,
    set_rng_state,
)
from repro.checkpoint.snapshot import (
    FORMAT,
    FORMAT_VERSION,
    params_from_state,
    params_state,
    read_snapshot,
    restore_network,
    restore_system,
    run_digest,
    snapshot_network,
    snapshot_system,
    write_snapshot,
)
from repro.checkpoint.store import STORE_ENV, CellStore, cell_key, default_store

__all__ = [
    "CODE_VERSION",
    "FORMAT",
    "FORMAT_VERSION",
    "CellStore",
    "RestoreContext",
    "SaveContext",
    "STORE_ENV",
    "cell_key",
    "default_store",
    "params_from_state",
    "params_state",
    "read_snapshot",
    "restore_network",
    "restore_system",
    "rng_state",
    "run_digest",
    "set_rng_state",
    "snapshot_network",
    "snapshot_system",
    "write_snapshot",
]
