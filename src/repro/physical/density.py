"""Performance density (Figure 9): performance per square millimeter.

Only cores, caches, and interconnect count (the paper disregards memory
channels and IO).  The ideal network is idealistically charged the
mesh's area.
"""

from __future__ import annotations

from typing import Dict

from repro.params import ChipParams, NocKind
from repro.physical.area import noc_area


def chip_area_mm2(chip: ChipParams, kind: NocKind = None) -> float:
    """Cores + LLC + NOC area for one organization."""
    kind = kind or chip.noc.kind
    cores = chip.num_tiles * chip.core.area_mm2
    llc = chip.cache.llc_total_mb * chip.cache.area_mm2_per_mb
    return cores + llc + noc_area(chip, kind).total_mm2


def performance_density(
    chip: ChipParams, performance_by_kind: Dict[NocKind, float]
) -> Dict[NocKind, float]:
    """Performance / mm² per organization, from absolute performance."""
    return {
        kind: perf / chip_area_mm2(chip, kind)
        for kind, perf in performance_by_kind.items()
    }
