"""Dimension-ordered (XY) routing.

XY routing is deadlock-free on a mesh and is what the paper's networks
use; the control network additionally relies on the route being known at
the source ("we know the whole path to the destination"), which XY
provides.  Packets travel fully in X (east/west) first, then in Y.
"""

from __future__ import annotations

from typing import Tuple

from repro.noc.topology import Direction, MeshTopology


def xy_next_direction(topo: MeshTopology, node: int, dst: int) -> Direction:
    """Output direction a packet at ``node`` takes toward ``dst``.

    Returns ``Direction.LOCAL`` when the packet has arrived.  Results
    are memoized on the topology (this is the single hottest routing
    query — every head-candidate scan calls it).
    """
    key = node * topo.num_nodes + dst
    cache = topo._xy_dir_cache
    hit = cache.get(key)
    if hit is not None:
        return hit
    x, y = topo.coords(node)
    dx, dy = topo.coords(dst)
    if x < dx:
        direction = Direction.EAST
    elif x > dx:
        direction = Direction.WEST
    elif y < dy:
        direction = Direction.SOUTH
    elif y > dy:
        direction = Direction.NORTH
    else:
        direction = Direction.LOCAL
    cache[key] = direction
    return direction


def xy_route(
    topo: MeshTopology, src: int, dst: int
) -> Tuple[Tuple[int, Direction], ...]:
    """The full XY path as ``((node, out_direction), ...)``.

    The final element is ``(dst, Direction.LOCAL)`` (the ejection hop).
    This is the information a PRA control packet carries as its
    look-ahead routing field.  Routes are memoized per (src, dst) pair
    and returned as shared immutable tuples.
    """
    key = src * topo.num_nodes + dst
    cache = topo._xy_route_cache
    hit = cache.get(key)
    if hit is not None:
        return hit
    path = []
    node = src
    guard = topo.num_nodes + 1
    for _ in range(guard):
        direction = xy_next_direction(topo, node, dst)
        path.append((node, direction))
        if direction is Direction.LOCAL:
            route = tuple(path)
            cache[key] = route
            return route
        nxt = topo.neighbor(node, direction)
        if nxt is None:  # pragma: no cover - XY never walks off the mesh
            raise RuntimeError("XY route left the mesh")
        node = nxt
    raise RuntimeError("XY route failed to terminate")  # pragma: no cover


def turn_node(topo: MeshTopology, src: int, dst: int) -> int:
    """The node where the XY route turns from X to Y travel.

    Equals ``dst`` for routes with no Y component and ``src`` for routes
    with no X component.  PRA's multi-drop segments cannot cross this
    node in a single segment (turns are not allowed in multi-drop
    segments), so pre-allocated 2-hop traversals break here.
    """
    _sx, sy = topo.coords(src)
    dx, _dy = topo.coords(dst)
    # After X travel the packet sits at column dx in the source row.
    return topo.node_at(dx, sy)
