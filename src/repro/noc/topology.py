"""Composable topology graphs: meshes, rings, and chiplet hierarchies.

Every network organization consults one :class:`Topology` object for its
structure.  The contract (see docs/simulator_internals.md, "The topology
graph contract"):

* nodes are integers ``0 .. num_nodes-1``;
* each node exposes an ordered **port set** (:meth:`Topology.ports`) of
  non-local ports; ports ``0..4`` are the classic :class:`Direction`
  values, ports ``>= 5`` are plain ints used by hierarchical topologies
  (interposer / IO-die links);
* every listed port has a neighbor (:meth:`Topology.neighbor`) and a
  matching **entry port** on that neighbor (:meth:`Topology.entry_port`)
  such that ``neighbor(neighbor(n, p), entry_port(n, p)) == n``;
* each directed edge carries a **link latency**
  (:meth:`Topology.link_latency`), cycles from switch grant to
  downstream allocation eligibility (2 for on-die hops);
* :meth:`Topology.next_port` is the pure deterministic routing law;
  :meth:`Topology.route_port` reads it through dense per-node tables
  (:meth:`Topology.route_row`) and :meth:`Topology.route` through a
  bounded memo.  Tables live **on the topology instance**, so two live
  topologies can never serve each other's cached routes.

Concrete graphs:

* :class:`MeshTopology` — the flat ``width x height`` mesh (node
  ``id = y * width + x``), XY-routed;
* :class:`RingTopology` — a bidirectional ring (shortest direction,
  clockwise on ties), the paper's Xeon-style baseline;
* :class:`ChipletTopology` — per-chiplet sub-meshes joined through one
  gateway router each, either over an **interposer mesh** of the
  gateways or through a **central IO die** (Zen3-style star), with a
  distinct inter-chiplet link latency.  Routing is hierarchical source
  routing: intra-chiplet XY to the gateway, interposer XY (or the star
  hop), then XY to the destination; deadlock freedom uses a VC escape
  layer (see :data:`CHIPLET_VC_LAYERS`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Iterator, List, Optional, Tuple, Union


class Direction(IntEnum):
    """Classic router port indices.  ``LOCAL`` is injection/ejection."""

    LOCAL = 0
    NORTH = 1
    EAST = 2
    SOUTH = 3
    WEST = 4

    @property
    def opposite(self) -> "Direction":
        """The port on the neighboring router that faces this one."""
        return _OPPOSITE[self]


#: Opposite-direction table indexed by port number (LOCAL maps to itself).
_OPPOSITE = (
    Direction.LOCAL,
    Direction.SOUTH,
    Direction.WEST,
    Direction.NORTH,
    Direction.EAST,
)

#: The four non-local directions in a fixed arbitration order.
CARDINALS = (Direction.NORTH, Direction.EAST, Direction.SOUTH, Direction.WEST)

#: Per-direction coordinate deltas (dx, dy).
_DELTAS = {
    Direction.NORTH: (0, -1),
    Direction.SOUTH: (0, 1),
    Direction.EAST: (1, 0),
    Direction.WEST: (-1, 0),
}

#: A router port: a :class:`Direction` for the classic five, a plain int
#: for extended (inter-chiplet) ports.  ``Direction`` is an IntEnum, so
#: mixed dict keys hash and compare consistently.
Port = Union[Direction, int]

#: First extended port id; any port >= this crosses a chiplet boundary.
FIRST_INTERPOSER_PORT = 5

#: Gateway ports onto the interposer mesh (one per interposer cardinal).
INT_NORTH, INT_EAST, INT_SOUTH, INT_WEST = 5, 6, 7, 8

#: Star variant: the gateway's uplink to the IO die, and the IO die's
#: per-chiplet downlinks (``IO_DOWN_BASE + chiplet_index``).
IO_UP = 5
IO_DOWN_BASE = 6

#: Bound on the full-route memo (``Topology.route``); past it the memo
#: is dropped wholesale and rebuilt on demand from the dense rows.
_ROUTE_CACHE_CAP = 4096

_INT_OPPOSITE = {INT_NORTH: INT_SOUTH, INT_SOUTH: INT_NORTH,
                 INT_EAST: INT_WEST, INT_WEST: INT_EAST}
_INT_DELTAS = {INT_NORTH: (0, -1), INT_SOUTH: (0, 1),
               INT_EAST: (1, 0), INT_WEST: (-1, 0)}

#: VC layers per message class on a chiplet topology: a packet starts in
#: layer 0 and moves to layer 1 when it first crosses an inter-chiplet
#: link.  Each layer's channel graph is acyclic (XY within a phase, and
#: the phase order source-chiplet -> interposer -> destination-chiplet
#: never revisits a phase), so the layered VC dependency graph is
#: acyclic — the same escape-channel argument as the ring's dateline.
CHIPLET_VC_LAYERS = 2

_PORT_NAMES = {INT_NORTH: "INT_NORTH", INT_EAST: "INT_EAST",
               INT_SOUTH: "INT_SOUTH", INT_WEST: "INT_WEST"}


def as_port(value: int) -> Port:
    """Decode a serialized port id (Direction for 0..4, int beyond)."""
    return Direction(value) if 0 <= value <= 4 else int(value)


def port_name(port: Port) -> str:
    """Human-readable port label for traces and invariant reports."""
    if isinstance(port, Direction):
        return port.name
    return _PORT_NAMES.get(port, f"P{int(port)}")


class Topology:
    """Base class: per-instance route memos + generic graph queries.

    Subclasses implement :meth:`ports`, :meth:`neighbor`,
    :meth:`entry_port`, and :meth:`next_port`; everything else has a
    generic (overridable) implementation on top of those.
    """

    #: Spec kind string ("mesh", "ring", "chiplet").
    kind = "abstract"

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("topology must have at least one node")
        self.num_nodes = num_nodes
        #: Dense next-port tables, one row per source node, built lazily
        #: from :meth:`next_port` (the pure routing law, which stays the
        #: reference oracle — ``tests/test_fastpath.py`` asserts every
        #: row entry against it).  ``row[dst]`` replaces the old
        #: ``node * num_nodes + dst`` dict memo: routers hold their row
        #: and route with one list index instead of a hash lookup.
        #: Instance-owned by construction, so two live topologies can
        #: never serve each other's routes.
        self._dense_rows: List[Optional[List[Port]]] = [None] * num_nodes
        #: Full-route memo (``route()``), bounded: route tuples are only
        #: resolved outside the hot path (control packets, zero-load
        #: laws), so on overflow the whole memo is dropped and rebuilt
        #: from the dense rows instead of growing O(num_nodes^2).
        self._route_cache: dict = {}

    # -- the graph protocol (subclass responsibility) ----------------------

    def ports(self, node: int) -> Tuple[Port, ...]:
        """Ordered non-local ports of ``node``; every listed port has a
        neighbor.  The order is the router's port processing order."""
        raise NotImplementedError

    def neighbor(self, node: int, port: Port) -> Optional[int]:
        """Adjacent node reached through ``port`` (None if absent)."""
        raise NotImplementedError

    def entry_port(self, node: int, port: Port) -> Port:
        """The port on ``neighbor(node, port)`` that faces back here."""
        raise NotImplementedError

    def next_port(self, node: int, dst: int) -> Port:
        """Pure routing law: the output port a packet at ``node`` takes
        toward ``dst`` (``Direction.LOCAL`` on arrival)."""
        raise NotImplementedError

    def link_latency(self, node: int, port: Port) -> int:
        """Cycles from switch grant to downstream eligibility (2 for
        on-die mesh hops; hierarchies stretch inter-chiplet edges)."""
        return 2

    # -- generic queries ----------------------------------------------------

    @property
    def num_endpoints(self) -> int:
        """Nodes that carry traffic endpoints (NIs with workloads).
        Equals ``num_nodes`` except on topologies with pure transit
        routers (the chiplet star's IO die)."""
        return self.num_nodes

    def neighbors(self, node: int) -> Iterator[Tuple[Port, int]]:
        """All (port, neighbor) pairs that exist for ``node``."""
        for port in self.ports(node):
            other = self.neighbor(node, port)
            if other is not None:
                yield port, other

    def route_row(self, node: int) -> List[Port]:
        """Dense next-port row for ``node``: ``row[dst]`` is
        :meth:`next_port`\\ ``(node, dst)`` for every destination
        (``Direction.LOCAL`` at ``dst == node``).  Built once per node
        and shared — routers alias their row, so the hottest routing
        query is a single list index."""
        self._check(node)
        row = self._dense_rows[node]
        if row is None:
            next_port = self.next_port
            row = [next_port(node, dst) for dst in range(self.num_nodes)]
            self._dense_rows[node] = row
        return row

    def route_port(self, node: int, dst: int) -> Port:
        """Dense-table :meth:`next_port` (the hottest routing query)."""
        row = self._dense_rows[node]
        if row is None:
            row = self.route_row(node)
        return row[dst]

    def route(self, src: int, dst: int) -> Tuple[Tuple[int, Port], ...]:
        """The full source route as ``((node, out_port), ...)``, ending
        with ``(dst, Direction.LOCAL)`` (the ejection hop).  Memoized
        per (src, dst) pair as shared immutable tuples; the memo is
        bounded (dropped wholesale past ``_ROUTE_CACHE_CAP`` entries)."""
        key = src * self.num_nodes + dst
        cache = self._route_cache
        hit = cache.get(key)
        if hit is not None:
            return hit
        if len(cache) >= _ROUTE_CACHE_CAP:
            cache.clear()
        path = []
        node = src
        for _ in range(self.num_nodes + 1):
            port = self.route_port(node, dst)
            path.append((node, port))
            if port is Direction.LOCAL or port == 0:
                result = tuple(path)
                cache[key] = result
                return result
            nxt = self.neighbor(node, port)
            if nxt is None:  # pragma: no cover - routing law is total
                raise RuntimeError(
                    f"route left the topology at node {node} "
                    f"port {port_name(port)}"
                )
            node = nxt
        raise RuntimeError(  # pragma: no cover - routing law terminates
            f"route {src}->{dst} failed to terminate"
        )

    def hop_distance(self, src: int, dst: int) -> int:
        """Router-to-router hops along the routing law's path."""
        return len(self.route(src, dst)) - 1

    def route_latency(self, src: int, dst: int) -> int:
        """Sum of link latencies along the route (0 for src == dst)."""
        return sum(
            self.link_latency(node, port)
            for node, port in self.route(src, dst)
            if port is not Direction.LOCAL
        )

    def bidirectional_links(self) -> List[Tuple[int, int]]:
        """Each physical adjacent pair once; for area/power accounting
        and link-count normalization."""
        links = []
        for node in range(self.num_nodes):
            for port in self.ports(node):
                other = self.neighbor(node, port)
                if other is not None and other > node:
                    links.append((node, other))
        return links

    def row_domains(self, count: int) -> List[Tuple[int, int]]:
        """Contiguous shard domains (mesh-only; see the override)."""
        if count == 1:
            return [(0, self.num_nodes - 1)]
        raise ValueError(
            f"{self.kind} topology has no row-stripe domains"
        )

    def _check(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise ValueError(
                f"node {node} outside topology of {self.num_nodes}"
            )


class MeshTopology(Topology):
    """Geometry of a ``width``-by-``height`` XY-routed mesh."""

    kind = "mesh"

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        super().__init__(width * height)
        self.width = width
        self.height = height
        #: Precomputed neighbor table: ``_neighbor_table[node][direction]``
        #: (None at mesh edges and for LOCAL).
        self._neighbor_table: List[List[Optional[int]]] = []
        self._ports: List[Tuple[Direction, ...]] = []
        for node in range(self.num_nodes):
            x, y = node % width, node // width
            row: List[Optional[int]] = [None] * 5
            for direction, (dx, dy) in _DELTAS.items():
                nx, ny = x + dx, y + dy
                if 0 <= nx < width and 0 <= ny < height:
                    row[direction] = ny * width + nx
            self._neighbor_table.append(row)
            self._ports.append(tuple(
                d for d in CARDINALS if row[d] is not None
            ))

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``node``."""
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside mesh")
        return y * self.width + x

    def ports(self, node: int) -> Tuple[Direction, ...]:
        return self._ports[node]

    def neighbor(self, node: int, port: Port) -> Optional[int]:
        """Adjacent node in ``port``'s direction, or None at an edge."""
        self._check(node)
        return self._neighbor_table[node][port]

    def entry_port(self, node: int, port: Port) -> Direction:
        return _OPPOSITE[port]

    def next_port(self, node: int, dst: int) -> Direction:
        """Dimension-ordered (XY) routing: X fully first, then Y."""
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        if x < dx:
            return Direction.EAST
        if x > dx:
            return Direction.WEST
        if y < dy:
            return Direction.SOUTH
        if y > dy:
            return Direction.NORTH
        return Direction.LOCAL

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def walk(self, node: int, direction: Direction, hops: int) -> Optional[int]:
        """Node reached after ``hops`` steps in ``direction`` (None if the
        walk leaves the mesh).  Used by multi-drop control segments."""
        current: Optional[int] = node
        for _ in range(hops):
            if current is None:
                return None
            current = self.neighbor(current, direction)
        return current

    def row_domains(self, count: int) -> List[Tuple[int, int]]:
        """Partition the mesh into ``count`` contiguous row stripes.

        Returns per-domain ``(first_node, last_node)`` inclusive node-id
        ranges (row-major numbering keeps each stripe a contiguous id
        range).  Rows split as evenly as possible: the first
        ``height % count`` stripes take one extra row.  Used by the
        sharded simulation engine, whose boundary protocol exchanges
        traffic only across the horizontal cuts between stripes.
        """
        if not 1 <= count <= self.height:
            raise ValueError(
                f"cannot cut {self.height} rows into {count} row domains"
            )
        base, extra = divmod(self.height, count)
        domains: List[Tuple[int, int]] = []
        row = 0
        for index in range(count):
            rows = base + (1 if index < extra else 0)
            first = row * self.width
            last = (row + rows) * self.width - 1
            domains.append((first, last))
            row += rows
        return domains

    def __repr__(self) -> str:
        return f"MeshTopology({self.width}x{self.height})"


class RingTopology(Topology):
    """A bidirectional ring of ``num_stops`` nodes.

    Shortest-direction routing, clockwise (EAST) on ties — the exact
    law the ring router has always applied.  Deadlock freedom over the
    wrap-around cycle is the router's dateline VC scheme
    (:mod:`repro.noc.ring`), not a topology property.
    """

    kind = "ring"

    def __init__(self, num_stops: int):
        super().__init__(num_stops)
        # Mesh-shaped views (1 row) for traffic patterns and stats.
        self.width = num_stops
        self.height = 1

    def coords(self, node: int) -> Tuple[int, int]:
        self._check(node)
        return node, 0

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and y == 0):
            raise ValueError(f"coordinates ({x}, {y}) outside ring")
        return x

    def ports(self, node: int) -> Tuple[Direction, ...]:
        return (Direction.EAST, Direction.WEST)

    def neighbor(self, node: int, port: Port) -> Optional[int]:
        self._check(node)
        if port is Direction.EAST:
            return (node + 1) % self.num_nodes
        if port is Direction.WEST:
            return (node - 1) % self.num_nodes
        return None

    def entry_port(self, node: int, port: Port) -> Direction:
        return _OPPOSITE[port]

    def next_port(self, node: int, dst: int) -> Direction:
        self._check(node)
        self._check(dst)
        if node == dst:
            return Direction.LOCAL
        forward = (dst - node) % self.num_nodes
        backward = (node - dst) % self.num_nodes
        return Direction.EAST if forward <= backward else Direction.WEST

    def hop_distance(self, src: int, dst: int) -> int:
        forward = (dst - src) % self.num_nodes
        return min(forward, self.num_nodes - forward)

    def __repr__(self) -> str:
        return f"RingTopology({self.num_nodes})"


class ChipletTopology(Topology):
    """Per-chiplet sub-meshes composed over an interposer.

    ``chiplets_x x chiplets_y`` chiplets, each a ``chip_width x
    chip_height`` XY mesh with one **gateway** router at its center
    tile.  Two interposer variants:

    * ``"mesh"`` — the gateways form a ``chiplets_x x chiplets_y``
      interposer mesh (concentration factor = tiles per chiplet), XY
      routed over chiplet coordinates through the ``INT_*`` ports;
    * ``"star"`` — a central IO die (one extra transit router, the last
      node id) with a dedicated link per gateway, AMD-Zen3-style.

    Inter-chiplet links carry ``interposer_latency`` cycles per hop
    (on-die hops keep the usual 2).  Node ids place chiplet ``c``'s
    tiles at ``c * tiles_per_chiplet + local``, so every core keeps a
    global ``(x, y)`` grid coordinate and mesh-shaped traffic patterns
    (transpose, hotspot) apply unchanged; the IO die sits off-grid.
    """

    kind = "chiplet"

    def __init__(self, chiplets_x: int, chiplets_y: int,
                 chip_width: int, chip_height: int,
                 variant: str = "mesh", interposer_latency: int = 4):
        if chiplets_x < 1 or chiplets_y < 1:
            raise ValueError("chiplet grid dimensions must be positive")
        if chip_width < 1 or chip_height < 1:
            raise ValueError("chiplet mesh dimensions must be positive")
        if chiplets_x * chiplets_y < 2:
            raise ValueError("a chiplet topology needs at least 2 chiplets")
        if variant not in ("mesh", "star"):
            raise ValueError(
                f"unknown interposer variant {variant!r} "
                f"(expected 'mesh' or 'star')"
            )
        if interposer_latency < 1:
            raise ValueError("interposer latency must be positive")
        self.chiplets_x = chiplets_x
        self.chiplets_y = chiplets_y
        self.chip_width = chip_width
        self.chip_height = chip_height
        self.variant = variant
        self.interposer_latency = interposer_latency
        self.num_chiplets = chiplets_x * chiplets_y
        self.tiles_per_chiplet = chip_width * chip_height
        self.num_cores = self.num_chiplets * self.tiles_per_chiplet
        #: The IO die (star variant only): one transit router, last id.
        self.hub: Optional[int] = (
            self.num_cores if variant == "star" else None
        )
        super().__init__(self.num_cores + (1 if self.hub is not None else 0))
        # Global grid view over the cores (the hub sits off-grid).
        self.width = chiplets_x * chip_width
        self.height = chiplets_y * chip_height
        #: Local gateway tile (center of each chiplet's sub-mesh).
        self._gw_local = ((chip_height - 1) // 2) * chip_width \
            + (chip_width - 1) // 2
        self._ports_cache: Dict[int, Tuple[Port, ...]] = {}

    # -- coordinate helpers -------------------------------------------------

    def chiplet_of(self, node: int) -> int:
        """Chiplet index of a core node (the hub belongs to none)."""
        self._check(node)
        if node == self.hub:
            raise ValueError("the IO die belongs to no chiplet")
        return node // self.tiles_per_chiplet

    def gateway(self, chiplet: int) -> int:
        """The gateway router of ``chiplet``."""
        if not 0 <= chiplet < self.num_chiplets:
            raise ValueError(f"no chiplet {chiplet}")
        return chiplet * self.tiles_per_chiplet + self._gw_local

    def is_gateway(self, node: int) -> bool:
        return node != self.hub \
            and node % self.tiles_per_chiplet == self._gw_local

    def _local(self, node: int) -> Tuple[int, int]:
        l = node % self.tiles_per_chiplet
        return l % self.chip_width, l // self.chip_width

    def _chiplet_coords(self, chiplet: int) -> Tuple[int, int]:
        return chiplet % self.chiplets_x, chiplet // self.chiplets_x

    def coords(self, node: int) -> Tuple[int, int]:
        """Global (x, y) of a core; the hub reports an off-grid point."""
        self._check(node)
        if node == self.hub:
            return self.width, self.height
        cx, cy = self._chiplet_coords(self.chiplet_of(node))
        lx, ly = self._local(node)
        return cx * self.chip_width + lx, cy * self.chip_height + ly

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"coordinates ({x}, {y}) outside chiplet grid")
        cx, lx = divmod(x, self.chip_width)
        cy, ly = divmod(y, self.chip_height)
        chiplet = cy * self.chiplets_x + cx
        return chiplet * self.tiles_per_chiplet + ly * self.chip_width + lx

    @property
    def num_endpoints(self) -> int:
        return self.num_cores

    # -- the graph protocol -------------------------------------------------

    def ports(self, node: int) -> Tuple[Port, ...]:
        cached = self._ports_cache.get(node)
        if cached is not None:
            return cached
        self._check(node)
        result: List[Port]
        if node == self.hub:
            result = [IO_DOWN_BASE + c for c in range(self.num_chiplets)]
        else:
            lx, ly = self._local(node)
            result = []
            for d in CARDINALS:
                dx, dy = _DELTAS[d]
                if 0 <= lx + dx < self.chip_width \
                        and 0 <= ly + dy < self.chip_height:
                    result.append(d)
            if self.is_gateway(node):
                if self.variant == "star":
                    result.append(IO_UP)
                else:
                    cx, cy = self._chiplet_coords(self.chiplet_of(node))
                    for p in (INT_NORTH, INT_EAST, INT_SOUTH, INT_WEST):
                        dx, dy = _INT_DELTAS[p]
                        if 0 <= cx + dx < self.chiplets_x \
                                and 0 <= cy + dy < self.chiplets_y:
                            result.append(p)
        ports = tuple(result)
        self._ports_cache[node] = ports
        return ports

    def neighbor(self, node: int, port: Port) -> Optional[int]:
        self._check(node)
        if node == self.hub:
            index = int(port) - IO_DOWN_BASE
            if 0 <= index < self.num_chiplets:
                return self.gateway(index)
            return None
        if port in _DELTAS:
            lx, ly = self._local(node)
            dx, dy = _DELTAS[port]
            nx, ny = lx + dx, ly + dy
            if 0 <= nx < self.chip_width and 0 <= ny < self.chip_height:
                chiplet = self.chiplet_of(node)
                return chiplet * self.tiles_per_chiplet \
                    + ny * self.chip_width + nx
            return None
        if not self.is_gateway(node):
            return None
        if self.variant == "star":
            return self.hub if port == IO_UP else None
        delta = _INT_DELTAS.get(port)
        if delta is None:
            return None
        cx, cy = self._chiplet_coords(self.chiplet_of(node))
        nx, ny = cx + delta[0], cy + delta[1]
        if 0 <= nx < self.chiplets_x and 0 <= ny < self.chiplets_y:
            return self.gateway(ny * self.chiplets_x + nx)
        return None

    def entry_port(self, node: int, port: Port) -> Port:
        if isinstance(port, Direction):
            return _OPPOSITE[port]
        if self.variant == "star":
            if node == self.hub:
                return IO_UP
            return IO_DOWN_BASE + self.chiplet_of(node)
        return _INT_OPPOSITE[port]

    def next_port(self, node: int, dst: int) -> Port:
        """Hierarchical source routing: XY to the gateway, across the
        interposer (XY over chiplet coordinates, or the star hop), then
        XY to the destination tile."""
        self._check(node)
        self._check(dst)
        if node == dst:
            return Direction.LOCAL
        if node == self.hub:
            return IO_DOWN_BASE + self.chiplet_of(dst)
        if dst == self.hub:
            # Transit-only node as a destination: route to the gateway,
            # then take the uplink (NEIGHBOR-style traffic never asks
            # for this, but the law stays total).
            target = self.gateway(self.chiplet_of(node))
            if node == target:
                return IO_UP
            return self._intra_port(node, target)
        chiplet = self.chiplet_of(node)
        dst_chiplet = self.chiplet_of(dst)
        if chiplet == dst_chiplet:
            return self._intra_port(node, dst)
        gateway = self.gateway(chiplet)
        if node != gateway:
            return self._intra_port(node, gateway)
        if self.variant == "star":
            return IO_UP
        cx, cy = self._chiplet_coords(chiplet)
        dx, dy = self._chiplet_coords(dst_chiplet)
        if cx < dx:
            return INT_EAST
        if cx > dx:
            return INT_WEST
        if cy < dy:
            return INT_SOUTH
        return INT_NORTH

    def _intra_port(self, node: int, dst: int) -> Direction:
        """XY within one chiplet's sub-mesh (local coordinates)."""
        x, y = self._local(node)
        dx, dy = self._local(dst)
        if x < dx:
            return Direction.EAST
        if x > dx:
            return Direction.WEST
        if y < dy:
            return Direction.SOUTH
        if y > dy:
            return Direction.NORTH
        return Direction.LOCAL

    def link_latency(self, node: int, port: Port) -> int:
        if not isinstance(port, Direction) \
                and int(port) >= FIRST_INTERPOSER_PORT:
            return self.interposer_latency
        return 2

    def hop_distance(self, src: int, dst: int) -> int:
        """Route length: intra hops + interposer hops + intra hops."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        if src == self.hub or dst == self.hub:
            return len(self.route(src, dst)) - 1
        sc, dc = self.chiplet_of(src), self.chiplet_of(dst)
        sx, sy = self._local(src)
        dx, dy = self._local(dst)
        if sc == dc:
            return abs(sx - dx) + abs(sy - dy)
        gx, gy = self._local(self.gateway(0))
        intra = abs(sx - gx) + abs(sy - gy) \
            + abs(gx - dx) + abs(gy - dy)
        if self.variant == "star":
            return intra + 2
        scx, scy = self._chiplet_coords(sc)
        dcx, dcy = self._chiplet_coords(dc)
        return intra + abs(scx - dcx) + abs(scy - dcy)

    def __repr__(self) -> str:
        tail = ":star" if self.variant == "star" else ""
        return (f"ChipletTopology({self.chiplets_x}x{self.chiplets_y}x"
                f"{self.chip_width}x{self.chip_height}{tail}"
                f":ilat={self.interposer_latency})")


# -- topology specs ---------------------------------------------------------

@dataclass(frozen=True)
class TopologySpec:
    """Parsed form of a ``--topology`` spec string."""

    kind: str = "mesh"
    chiplets_x: int = 0
    chiplets_y: int = 0
    chip_width: int = 0
    chip_height: int = 0
    variant: str = "mesh"
    interposer_latency: int = 4

    @property
    def num_cores(self) -> int:
        return (self.chiplets_x * self.chiplets_y
                * self.chip_width * self.chip_height)


def parse_topology_spec(spec: str) -> TopologySpec:
    """Parse a topology spec string, raising ``ValueError`` on junk.

    Grammar::

        mesh
        ring
        chiplet:<CX>x<CY>x<W>x<H>[:star][:ilat=<N>]
    """
    if not isinstance(spec, str) or not spec:
        raise ValueError(f"topology spec must be a non-empty string, "
                         f"got {spec!r}")
    tokens = spec.split(":")
    kind = tokens[0]
    if kind in ("mesh", "ring"):
        if len(tokens) > 1:
            raise ValueError(
                f"topology {kind!r} takes no arguments, got {spec!r}"
            )
        return TopologySpec(kind=kind)
    if kind != "chiplet":
        raise ValueError(
            f"unknown topology {kind!r} (expected mesh, ring, or "
            f"chiplet:CXxCYxWxH[:star][:ilat=N])"
        )
    if len(tokens) < 2:
        raise ValueError(
            f"chiplet spec needs dimensions: chiplet:CXxCYxWxH, "
            f"got {spec!r}"
        )
    dims = tokens[1].split("x")
    if len(dims) != 4:
        raise ValueError(
            f"chiplet dimensions must be CXxCYxWxH (four values), "
            f"got {tokens[1]!r}"
        )
    try:
        cx, cy, w, h = (int(d) for d in dims)
    except ValueError:
        raise ValueError(
            f"chiplet dimensions must be integers, got {tokens[1]!r}"
        ) from None
    if min(cx, cy, w, h) < 1:
        raise ValueError(
            f"chiplet dimensions must be positive, got {tokens[1]!r}"
        )
    variant = "mesh"
    ilat = 4
    for token in tokens[2:]:
        if token == "star":
            variant = "star"
        elif token.startswith("ilat="):
            try:
                ilat = int(token[5:])
            except ValueError:
                raise ValueError(
                    f"bad interposer latency {token!r}"
                ) from None
            if ilat < 1:
                raise ValueError(
                    f"interposer latency must be positive, got {ilat}"
                )
        else:
            raise ValueError(
                f"unknown chiplet option {token!r} "
                f"(expected 'star' or 'ilat=N')"
            )
    if cx * cy < 2:
        raise ValueError(
            f"a chiplet topology needs at least 2 chiplets, got "
            f"{cx}x{cy}"
        )
    return TopologySpec(kind="chiplet", chiplets_x=cx, chiplets_y=cy,
                        chip_width=w, chip_height=h, variant=variant,
                        interposer_latency=ilat)


def topology_from_spec(spec: TopologySpec, width: int,
                       height: int) -> Topology:
    """Instantiate the topology a parsed spec describes.

    ``width``/``height`` are the params' mesh dimensions; mesh and ring
    take their size from them (chiplet specs carry their own)."""
    if spec.kind == "mesh":
        return MeshTopology(width, height)
    if spec.kind == "ring":
        return RingTopology(width * height)
    return ChipletTopology(
        spec.chiplets_x, spec.chiplets_y,
        spec.chip_width, spec.chip_height,
        variant=spec.variant,
        interposer_latency=spec.interposer_latency,
    )


def build_topology(params) -> Topology:
    """The topology described by a :class:`repro.params.NocParams`."""
    spec = parse_topology_spec(getattr(params, "topology", "mesh"))
    return topology_from_spec(spec, params.mesh_width, params.mesh_height)
