"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so editable
installs must use setuptools' legacy ``develop`` path
(``pip install -e . --no-build-isolation``); this file enables it.
Package metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
