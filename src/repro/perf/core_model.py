"""Event-driven core model: a 3-way OoO proxy with limited MLP.

The model captures the two properties the paper's argument rests on:

* **instruction misses serialize** — a fetch miss empties the pipeline
  front end; the 64-entry ROB cannot hide an LLC round trip, so the core
  stalls for the full latency (server workloads' dominant stall [1],[2]);
* **data misses overlap up to MLP** — the LSQ sustains a small number of
  outstanding misses; beyond it the core stalls until one returns.

Execution between misses is charged at the workload's base CPI.  Every
miss becomes a :class:`~repro.tile.llc.Transaction` issued to the chip,
so the latency the core observes is produced by the actual
cycle-accurate network + LLC + memory simulation.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.tile.llc import Transaction
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.tracegen import AccessTraceGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.tile.chip import Chip


class CoreModel:
    """One core executing one workload's service threads."""

    def __init__(
        self,
        node: int,
        chip: "Chip",
        profile: WorkloadProfile,
        seed: int = 0,
    ):
        self.node = node
        self.chip = chip
        self.profile = profile
        self.trace = AccessTraceGenerator(profile, core_id=node, seed=seed)
        self.instructions_retired = 0
        self.outstanding_data = 0
        self.waiting_instruction = False
        self.stalled_on_mlp = False
        self.stall_cycles = 0
        self._stall_started: Optional[int] = None
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin execution (schedules the first inter-miss window)."""
        if self._started:
            raise RuntimeError("core already started")
        self._started = True
        self._schedule_window(self.chip.cycle)

    def _schedule_window(self, now: int) -> None:
        gap = self.trace.next_gap()
        exec_cycles = max(1, round(gap * self.profile.base_cpi))
        self.chip.schedule(now + exec_cycles, self._window_done, gap)

    def _window_done(self, gap: int) -> None:
        """Executed ``gap`` instructions; the next one misses the L1."""
        self.instructions_retired += gap
        now = self.chip.cycle
        access = self.trace.next_access()
        txn = Transaction(
            core_node=self.node,
            addr=access.addr,
            is_instruction=access.is_instruction,
            is_write=access.is_write,
            issued_at=now,
        )
        self.chip.issue(txn)
        if access.is_instruction:
            self.waiting_instruction = True
            self._begin_stall(now)
            return
        self.outstanding_data += 1
        if self.outstanding_data >= self._mlp_limit():
            self.stalled_on_mlp = True
            self._begin_stall(now)
        else:
            self._schedule_window(now)

    def on_complete(self, txn: Transaction, now: int) -> None:
        """A response reached this core."""
        if txn.is_instruction:
            self.waiting_instruction = False
            self._end_stall(now)
            self._schedule_window(now)
            return
        self.outstanding_data -= 1
        if self.stalled_on_mlp:
            self.stalled_on_mlp = False
            self._end_stall(now)
            self._schedule_window(now)

    # -- MLP --------------------------------------------------------------------

    def _mlp_limit(self) -> int:
        """Sampled per miss so fractional MLP values take effect."""
        mlp = self.profile.mlp
        base = int(mlp)
        frac = mlp - base
        limit = base + (1 if self.chip.rng.random() < frac else 0)
        return max(1, limit)

    # -- stall accounting ----------------------------------------------------------

    def _begin_stall(self, now: int) -> None:
        if self._stall_started is None:
            self._stall_started = now

    def _end_stall(self, now: int) -> None:
        if self._stall_started is not None:
            self.stall_cycles += now - self._stall_started
            self._stall_started = None

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "trace": self.trace.state_dict(),
            "instructions_retired": self.instructions_retired,
            "outstanding_data": self.outstanding_data,
            "waiting_instruction": self.waiting_instruction,
            "stalled_on_mlp": self.stalled_on_mlp,
            "stall_cycles": self.stall_cycles,
            "stall_started": self._stall_started,
            "started": self._started,
        }

    def load_state(self, state: dict) -> None:
        # Flags are written directly: ``start()`` raises on a restarted
        # core, and the first execution window is already in the event
        # queue of the restored network.
        self.trace.load_state(state["trace"])
        self.instructions_retired = state["instructions_retired"]
        self.outstanding_data = state["outstanding_data"]
        self.waiting_instruction = state["waiting_instruction"]
        self.stalled_on_mlp = state["stalled_on_mlp"]
        self.stall_cycles = state["stall_cycles"]
        self._stall_started = state["stall_started"]
        self._started = state["started"]

    def __repr__(self) -> str:
        return (
            f"CoreModel(node={self.node}, retired={self.instructions_retired})"
        )
