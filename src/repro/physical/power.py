"""Power models (Section V-E): NOC vs. cores vs. caches.

The paper's finding: the NOC draws under 2 W in every organization while
cores alone exceed 60 W — server workloads' low ILP/MLP keep network
activity modest.  We compute NOC dynamic power from the simulation's
measured activity (link traversals, buffer accesses, crossbar crossings)
plus flip-flop leakage, and chip power from Table I's per-core and
per-MB figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import ChipParams, NocKind
from repro.physical.buffers import (
    BUFFER_ENERGY_FJ_PER_BIT,
    BufferModel,
    pra_extra_buffer_bits,
    router_vc_buffer_bits,
)
from repro.physical.crossbar import XBAR_ENERGY_FJ_PER_BIT
from repro.physical.wires import control_link, data_link

#: Switching activity on random data.
ACTIVITY_FACTOR = 0.5


@dataclass(frozen=True)
class NocPower:
    """NOC power for one measured interval."""

    kind: NocKind
    link_w: float
    buffer_w: float
    crossbar_w: float
    leakage_w: float

    @property
    def total_w(self) -> float:
        return self.link_w + self.buffer_w + self.crossbar_w + self.leakage_w


def noc_power(
    chip: ChipParams,
    flit_hops: int,
    cycles: int,
    kind: NocKind = None,
    control_packets: int = 0,
) -> NocPower:
    """NOC power from measured activity.

    ``flit_hops`` is the number of flit-link-traversals in the interval
    (each also costs one buffer write+read and one crossbar crossing);
    ``control_packets`` adds control-network traversals for Mesh+PRA.
    """
    kind = kind or chip.noc.kind
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    tech = chip.technology
    width = chip.noc.router.link_width_bits
    bits = flit_hops * width * ACTIVITY_FACTOR
    seconds = cycles / (tech.frequency_ghz * 1e9)

    link_j = data_link(chip).traversal_energy_j(int(bits), tech)
    buffer_j = 2 * bits * BUFFER_ENERGY_FJ_PER_BIT * 1e-15  # write + read
    xbar_j = bits * XBAR_ENERGY_FJ_PER_BIT * 1e-15
    if kind is NocKind.MESH_PRA and control_packets:
        # One-flit control packets over ~3 multi-drop segments each.
        ctrl_bits = (
            control_packets
            * 3
            * chip.noc.pra.control_link_width_bits
            * ACTIVITY_FACTOR
        )
        link_j += control_link(chip).traversal_energy_j(int(ctrl_bits), tech)

    buffer_bits = router_vc_buffer_bits(chip)
    if kind is NocKind.MESH_PRA:
        buffer_bits += pra_extra_buffer_bits(chip)
    leakage = chip.num_tiles * BufferModel(buffer_bits).leakage_w

    return NocPower(
        kind=kind,
        link_w=link_j / seconds,
        buffer_w=buffer_j / seconds,
        crossbar_w=xbar_j / seconds,
        leakage_w=leakage,
    )


@dataclass(frozen=True)
class ChipPower:
    cores_w: float
    llc_w: float
    noc_w: float

    @property
    def total_w(self) -> float:
        return self.cores_w + self.llc_w + self.noc_w


def chip_power(chip: ChipParams, noc: NocPower) -> ChipPower:
    """Chip-level power from Table I constants plus the measured NOC."""
    return ChipPower(
        cores_w=chip.num_tiles * chip.core.power_w,
        llc_w=chip.cache.llc_total_mb * chip.cache.power_w_per_mb,
        noc_w=noc.total_w,
    )
