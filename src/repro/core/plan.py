"""Pre-allocated paths: the product of a successful control-packet run.

A :class:`PraPlan` records, slot by slot, how a data packet will cross a
stretch of the network once proactive resource allocation has succeeded:
a sequence of :class:`PlanStep`\\ s, each one single-cycle traversal of
one or two hops.  The data-network routers execute the plan through
their reservation tables (:mod:`repro.core.reservation`); the plan
object itself mainly tracks the resources claimed on the packet's behalf
so they can be refunded if the packet misses its window.

Terminology mapping to the paper (Figures 3-5):

* a 2-hop step's middle router is *bypassed* — its mux/demux are set so
  the flit goes link → crossbar → link combinationally ("bypass VC");
* each step's landing router stores the flit for one cycle in the
  *latch* when the chain continues there, or in a standard VC (with
  full-packet buffer space claimed) when the chain ends there;
* the upstream conversion of a standard-VC landing into a latch landing
  when the next reservation succeeds models the ACK signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.noc.packet import Packet
from repro.noc.topology import Direction

if TYPE_CHECKING:  # pragma: no cover
    from repro.noc.ports import OutputPort

#: Landing kinds.
LAND_VC = "vc"
LAND_LATCH = "latch"
LAND_NI = "ni"

#: Source kinds at a step's driver router.
SRC_VC = "vc"
SRC_LATCH = "latch"


@dataclass
class PlanStep:
    """One single-cycle traversal (1 or 2 hops) of a pre-allocated path."""

    #: Router where the flit starts this cycle.
    driver_node: int
    #: Output direction at the driver (and at the bypassed router).
    out_dir: Direction
    #: Cycle the step's first (head) flit traverses.
    slot: int
    #: 1 or 2 hops this cycle.
    hops: int
    #: Where the flit is read from at the driver.
    source_kind: str
    source_dir: Direction = Direction.LOCAL
    source_vc: int = 0
    #: Bypassed router (only for 2-hop steps).
    via_node: Optional[int] = None
    #: Router (or NI) the flit lands in at the end of the cycle.
    landing_node: int = 0
    #: One of LAND_VC / LAND_LATCH / LAND_NI; VC landings are converted
    #: to latch landings by the ACK when the chain extends.
    landing_kind: str = LAND_VC
    #: Entry direction at the landing router (for latch/VC addressing).
    landing_entry: Direction = Direction.LOCAL

    def state_dict(self) -> dict:
        return {
            "driver_node": self.driver_node,
            "out_dir": int(self.out_dir),
            "slot": self.slot,
            "hops": self.hops,
            "source_kind": self.source_kind,
            "source_dir": int(self.source_dir),
            "source_vc": self.source_vc,
            "via_node": self.via_node,
            "landing_node": self.landing_node,
            "landing_kind": self.landing_kind,
            "landing_entry": int(self.landing_entry),
        }

    @classmethod
    def from_state(cls, state: dict) -> "PlanStep":
        return cls(
            driver_node=state["driver_node"],
            out_dir=Direction(state["out_dir"]),
            slot=state["slot"],
            hops=state["hops"],
            source_kind=state["source_kind"],
            source_dir=Direction(state["source_dir"]),
            source_vc=state["source_vc"],
            via_node=state["via_node"],
            landing_node=state["landing_node"],
            landing_kind=state["landing_kind"],
            landing_entry=Direction(state["landing_entry"]),
        )


class PraPlan:
    """A data packet's active pre-allocated path and its claims."""

    def __init__(self, packet: Packet, start_slot: int):
        self.packet = packet
        self.start_slot = start_slot
        self.steps: List[PlanStep] = []
        self.cancelled = False
        #: True once the last step's tail flit has been driven; finished
        #: plans keep their (already consumed) claims until the periodic
        #: purge, which the leak checkers must not flag.
        self.finished = False
        self.completed_steps = 0
        #: Current standard-VC claim at the chain's tail:
        #: (port feeding the landing router, vc index, credits claimed).
        self.vc_claim: Optional[Tuple["OutputPort", int, int]] = None
        #: Latch claims: (router, (entry_dir, slot)) keys to release.
        self.latch_claims: List[Tuple[object, Tuple[Direction, int]]] = []
        #: Reservation-table entries placed for this plan, for refunds.
        self.table_entries: List[Tuple[object, int]] = []
        #: Input-port usage claims: (router, (direction, slot)).
        self.input_claims: List[Tuple[object, Tuple[Direction, int]]] = []
        #: True when the source NI's local VC was claimed (or chained)
        #: for this packet and the injection slot pinned.
        self.injection_claim = False
        #: The source NI, for releasing a pin on cancellation.
        self.source_interface = None

    @property
    def size(self) -> int:
        return self.packet.size

    @property
    def last_step(self) -> Optional[PlanStep]:
        return self.steps[-1] if self.steps else None

    # -- claims -----------------------------------------------------------

    def claim_landing_vc(self, port: "OutputPort", vc_index: int) -> None:
        assert self.vc_claim is None, "only one VC claim may be active"
        vc = port.downstream_vc(vc_index)
        vc.allocated_to = self.packet
        port.claim_buffer(vc_index, self.size)
        self.vc_claim = (port, vc_index, self.size)

    def release_landing_vc(self) -> None:
        """Undo the current VC claim (ACK received or plan cancelled)."""
        if self.vc_claim is None:
            return
        port, vc_index, remaining = self.vc_claim
        vc = port.downstream_vc(vc_index)
        if vc.allocated_to is self.packet and vc.is_empty:
            vc.allocated_to = None
        port.refund_buffer(vc_index, remaining)
        self.vc_claim = None

    def consume_landing_credit(self) -> None:
        """One proactively delivered flit occupied its promised slot."""
        assert self.vc_claim is not None
        port, vc_index, remaining = self.vc_claim
        port.consume_claim(vc_index)
        if remaining - 1 == 0:
            self.vc_claim = None
        else:
            self.vc_claim = (port, vc_index, remaining - 1)

    # -- lifecycle ---------------------------------------------------------

    def cancel(self) -> None:
        """Release every outstanding claim; the packet proceeds normally.

        Called when the data packet misses its first slot (it was delayed
        by events the control packet could not foresee) or when a run
        aborts after partial construction failure.
        """
        if self.cancelled:
            return
        self.cancelled = True
        self.packet.pra_plan = None
        self.packet.pra_pending = False
        self.release_landing_vc()
        for router, key in self.latch_claims:
            router.release_latch_claim(key, self)
        for router, key in self.input_claims:
            router.release_input_claim(key, self)
        # Void reservation-table entries eagerly so the tables' pending
        # counters stay exact; the tables also skip any entry whose plan
        # is cancelled, so a missed void degrades gracefully.
        for table, slot in self.table_entries:
            table.void(slot, self)
        if self.source_interface is not None:
            if self.injection_claim:
                vc = self.source_interface.port.downstream_vc(
                    self.packet.vc_index
                )
                if vc.next_claim is self.packet:
                    vc.next_claim = None
                elif vc.allocated_to is self.packet and vc.is_empty:
                    # Promote a chained claim immediately: the VC is
                    # free, so the successor owns it from now on.
                    vc.allocated_to = vc.next_claim
                    vc.next_claim = None
            self.source_interface.release_pin(self.packet)

    # -- checkpointing ---------------------------------------------------

    def state_dict(self, ctx) -> dict:
        """Scalar plan state plus the VC claim by port locator.

        The ``latch_claims`` / ``table_entries`` / ``input_claims``
        back-reference lists are *not* serialized: the routers rebuild
        them on restore by re-registering their claims through the same
        ``claim_latch`` / ``claim_input`` / ``reserve`` calls that built
        them originally.
        """
        vc_claim = None
        if self.vc_claim is not None:
            port, vc_index, remaining = self.vc_claim
            vc_claim = [ctx.port_ref(port), vc_index, remaining]
        return {
            "packet": ctx.packet_ref(self.packet),
            "start_slot": self.start_slot,
            "steps": [step.state_dict() for step in self.steps],
            "cancelled": self.cancelled,
            "finished": self.finished,
            "completed_steps": self.completed_steps,
            "vc_claim": vc_claim,
            "injection_claim": self.injection_claim,
            "source_interface": (
                self.source_interface.node
                if self.source_interface is not None else None
            ),
        }

    @classmethod
    def from_state(cls, state: dict, ctx) -> "PraPlan":
        plan = cls(ctx.packet(state["packet"]), state["start_slot"])
        plan.steps = [PlanStep.from_state(s) for s in state["steps"]]
        plan.cancelled = state["cancelled"]
        plan.finished = state["finished"]
        plan.completed_steps = state["completed_steps"]
        if state["vc_claim"] is not None:
            port_ref, vc_index, remaining = state["vc_claim"]
            plan.vc_claim = (ctx.port(port_ref), vc_index, remaining)
        plan.injection_claim = state["injection_claim"]
        if state["source_interface"] is not None:
            plan.source_interface = ctx.network.interfaces[
                state["source_interface"]
            ]
        return plan

    def __repr__(self) -> str:
        return (
            f"PraPlan(pkt={self.packet.pid}, start={self.start_slot}, "
            f"steps={len(self.steps)}, cancelled={self.cancelled})"
        )
