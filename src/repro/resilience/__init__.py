"""Supervised execution: crash recovery, retries, graceful degradation.

The simulator's parallel shapes — the sharded mesh
(:mod:`repro.shard`) and the evaluation grid
(:mod:`repro.harness.runner`) — both run real worker processes, and
real worker processes die.  This package supplies the supervision
layer that keeps a run alive through those deaths:

* :class:`RetryPolicy` — the knobs (retries, heartbeat, quarantine
  threshold, backoff, recovery-point interval), each with a validated
  ``REPRO_*`` environment variable;
* :func:`run_supervised` — the sharded-run supervisor (recovery-point
  barriers, pool respawn + restore, bounded backoff, serial
  degradation), digest-identical to an unfaulted run;
* :class:`ProcessFaultPlan` / :class:`ProcFault` — deterministic
  process-level fault injection (kill / hang / garbage / error) so
  every recovery path is testable;
* :class:`RunReport` / :class:`FailureRecord` — the structured flight
  record the CLI prints on nonzero exit and the bench harness embeds
  in reports; :func:`last_run_report` fetches the most recent one.
"""

from repro.resilience.faults import (
    KILL_EXIT_CODE,
    ProcessFaultError,
    ProcessFaultPlan,
    ProcFault,
    ShardFaultDriver,
)
from repro.resilience.policy import RetryPolicy
from repro.resilience.report import (
    FailureRecord,
    RunReport,
    clear_last_report,
    last_run_report,
    publish,
)
from repro.resilience.supervisor import run_supervised

__all__ = [
    "KILL_EXIT_CODE",
    "FailureRecord",
    "ProcFault",
    "ProcessFaultError",
    "ProcessFaultPlan",
    "RetryPolicy",
    "RunReport",
    "ShardFaultDriver",
    "clear_last_report",
    "last_run_report",
    "publish",
    "run_supervised",
]
