"""Reproduction of "Near-Ideal Networks-on-Chip for Servers" (HPCA 2017).

Lotfi-Kamran, Modarressi, and Sarbazi-Azad propose Proactive Resource
Allocation (PRA): eliminating per-hop resource-allocation time in a
server processor's NoC by reserving output-port timeslots and
full-packet buffers ahead of data packets, during the LLC's serial
tag-to-data lookup window and during deterministic in-network blocking.

Subpackage map (see DESIGN.md for the full inventory):

* :mod:`repro.params` — the paper's Table I configuration;
* :mod:`repro.noc` — cycle-accurate substrate: Mesh, SMART, Ideal, Ring;
* :mod:`repro.core` — the contribution: Mesh+PRA;
* :mod:`repro.tile` — LLC slices, directory, memory channels, the chip;
* :mod:`repro.workloads` — CloudSuite profiles and synthetic traffic;
* :mod:`repro.perf` — cores, system co-simulation, sampling, probes;
* :mod:`repro.physical` — area, power, and density models;
* :mod:`repro.harness` — every table and figure of the evaluation.

Quick start::

    from repro.params import NocKind
    from repro.perf import simulate

    mesh = simulate("Web Search", NocKind.MESH)
    pra = simulate("Web Search", NocKind.MESH_PRA)
    print(pra.ipc / mesh.ipc)
"""

__version__ = "1.0.0"

from repro.params import ChipParams, MessageClass, NocKind, default_chip

__all__ = [
    "__version__",
    "ChipParams",
    "MessageClass",
    "NocKind",
    "default_chip",
]
