"""Tracers: the null object (tracing off) and the ring-buffer collector.

Every :class:`~repro.noc.network.Network` carries a ``tracer``
attribute, initialized to the module-level :data:`NULL_TRACER`.
Emission sites in the hot path are all guarded by a single attribute
check::

    tracer = self.network.tracer
    if tracer.enabled:
        tracer.emit(now, EV_LINK, pid=..., node=..., ...)

so a simulation with tracing off pays one attribute load and one branch
per site and never constructs an event object.

:class:`RingTracer` keeps the newest ``capacity`` events in a bounded
ring buffer (old events fall off the back), optionally restricted to a
packet-id set and/or a cycle window at emission time, and fans each
accepted event out to subscribers (the latency-attribution probe in
:mod:`repro.perf.instrumentation` is one).
"""

from __future__ import annotations

from collections import Counter, deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.trace.events import TraceEvent, write_jsonl

#: Default ring capacity: plenty for hundreds of cycles of a 64-tile
#: chip while bounding memory for arbitrarily long runs.
DEFAULT_CAPACITY = 1 << 17


class NullTracer:
    """Tracing disabled: emission sites skip after one attribute check."""

    __slots__ = ()
    enabled = False

    def emit(self, cycle: int, kind: str, **_fields: Any) -> None:
        """Never reached from guarded sites; a no-op regardless."""


#: The shared do-nothing tracer (stateless, safe to share globally).
NULL_TRACER = NullTracer()


class RingTracer:
    """Bounded in-memory event collector with optional filters."""

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        pids: Optional[Iterable[int]] = None,
        cycle_window: Optional[Tuple[int, int]] = None,
    ):
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self._pids: Optional[Set[int]] = set(pids) if pids is not None else None
        #: Half-open [start, end) cycle window, or None for all cycles.
        self._window = cycle_window
        self._seq = 0
        self._subscribers: List[Callable[[TraceEvent], None]] = []
        #: Total accepted emissions (including those the ring dropped).
        self.emitted = 0

    # -- emission (hot path when enabled) ---------------------------------

    def emit(
        self,
        cycle: int,
        kind: str,
        pid: Optional[int] = None,
        node: Optional[int] = None,
        **data: Any,
    ) -> None:
        if self._window is not None and not (
            self._window[0] <= cycle < self._window[1]
        ):
            return
        if self._pids is not None and pid not in self._pids:
            return
        event = TraceEvent(cycle, kind, pid=pid, node=node, data=data,
                           seq=self._seq)
        self._seq += 1
        self.emitted += 1
        self._ring.append(event)
        for subscriber in self._subscribers:
            subscriber(event)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> None:
        """Receive every accepted event as it is emitted (even ones the
        ring later evicts)."""
        self._subscribers.append(callback)

    # -- retrieval ---------------------------------------------------------

    def events(
        self,
        pid: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> List[TraceEvent]:
        """Buffered events, oldest first, optionally filtered."""
        kind_set = set(kinds) if kinds is not None else None
        return [
            e for e in self._ring
            if (pid is None or e.pid == pid)
            and (kind_set is None or e.kind in kind_set)
        ]

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Accepted events evicted by the ring bound."""
        return self.emitted - len(self._ring)

    def kind_counts(self) -> Dict[str, int]:
        counts: Counter = Counter(e.kind for e in self._ring)
        return dict(counts)

    def write_jsonl(self, path: str) -> int:
        """Export the buffered events; returns how many were written."""
        return write_jsonl(self._ring, path)

    def clear(self) -> None:
        self._ring.clear()
