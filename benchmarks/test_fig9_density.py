"""Figure 9: performance density (performance per mm2).

Paper: Mesh+PRA is the most area-efficient realistic organization —
its performance gain dwarfs its ~0.7% chip-area overhead.
"""

from repro.harness import figure9, render_figure
from repro.params import NocKind


def test_fig9_density(benchmark, save_result, scale):
    result = benchmark.pedantic(
        lambda: figure9(scale), iterations=1, rounds=1
    )
    save_result("fig9_density", render_figure(result))
    gmeans = result["gmeans"]
    assert gmeans[NocKind.MESH_PRA] > gmeans[NocKind.MESH]
    assert gmeans[NocKind.MESH_PRA] > gmeans[NocKind.SMART]
    # The ideal network (charged mesh area) bounds everything.
    assert gmeans[NocKind.IDEAL] > gmeans[NocKind.MESH_PRA]
