"""NOC area by organization (Figure 8): links, buffers, crossbars.

The mesh total is anchored at the paper's 3.5 mm² through the buffer
cell calibration; SMART and Mesh+PRA then differ *structurally*:

* **SMART** re-sizes link repeaters for single-cycle two-tile traversal
  and adds the SSR multi-drop wires plus bypass muxing — the paper
  reports 4.5 mm² (+31% over mesh).
* **Mesh+PRA** also needs two-tile repeaters on the data links (packets
  cross two tiles per cycle on pre-allocated paths), adds the 15-bit
  bufferless control network of 2-hop multi-drop segments, one latch per
  input port, the reservation bit vectors, and bypass muxing — the paper
  reports 4.9 mm² (+40% over mesh).
* **Ideal** is hypothetical; the paper idealistically charges it the
  mesh's area for the density comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import ChipParams, NocKind
from repro.physical.buffers import (
    BufferModel,
    pra_extra_buffer_bits,
    router_vc_buffer_bits,
)
from repro.physical.crossbar import data_crossbar
from repro.physical.wires import (
    control_link,
    data_link,
    num_unidirectional_links,
)

#: SSR broadcast wires per direction for HPC_max = 2 (a few bits to two
#: neighbors, cf. SMART), expressed in wire-bits per data link.
SMART_SSR_BITS = 12

#: Fraction of extra crossbar input legs for bypass paths.
SMART_XBAR_EXTRA = 0.15
PRA_XBAR_EXTRA = 0.20


@dataclass(frozen=True)
class NocArea:
    """Figure 8's three bars for one organization."""

    kind: NocKind
    links_mm2: float
    buffers_mm2: float
    crossbar_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.links_mm2 + self.buffers_mm2 + self.crossbar_mm2

    def breakdown(self) -> dict:
        return {
            "links": self.links_mm2,
            "buffers": self.buffers_mm2,
            "crossbar": self.crossbar_mm2,
            "total": self.total_mm2,
        }


def noc_area(chip: ChipParams, kind: NocKind = None) -> NocArea:
    """Compute the NOC area breakdown for one organization."""
    kind = kind or chip.noc.kind
    n_routers = chip.num_tiles
    n_links = num_unidirectional_links(chip)

    if kind is NocKind.MESH or kind is NocKind.IDEAL:
        # The ideal network is charged the mesh's area (paper Section V-D).
        links = n_links * data_link(chip, two_tile=False).repeater_area_mm2
        buffers = n_routers * BufferModel(router_vc_buffer_bits(chip)).area_mm2
        xbar = n_routers * data_crossbar(chip).area_mm2
        return NocArea(kind, links, buffers, xbar)

    if kind is NocKind.SMART:
        data = n_links * data_link(chip, two_tile=True).repeater_area_mm2
        ssr_fraction = SMART_SSR_BITS / chip.noc.router.link_width_bits
        ssr = n_links * data_link(chip, two_tile=True).repeater_area_mm2 * (
            ssr_fraction * 2.0  # multi-drop reach of two tiles
        )
        buffers = n_routers * BufferModel(router_vc_buffer_bits(chip)).area_mm2
        xbar = n_routers * data_crossbar(chip, SMART_XBAR_EXTRA).area_mm2
        return NocArea(kind, data + ssr, buffers, xbar)

    if kind is NocKind.MESH_PRA:
        data = n_links * data_link(chip, two_tile=True).repeater_area_mm2
        control = n_links * control_link(chip).repeater_area_mm2
        bits = router_vc_buffer_bits(chip) + pra_extra_buffer_bits(chip)
        buffers = n_routers * BufferModel(bits).area_mm2
        xbar = n_routers * data_crossbar(chip, PRA_XBAR_EXTRA).area_mm2
        return NocArea(kind, data + control, buffers, xbar)

    raise ValueError(f"unknown organization {kind}")
