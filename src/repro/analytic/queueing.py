"""The queueing layer: zero-load laws + per-link contention.

Two ingredients, per Mandal et al.'s decomposition (PAPERS.md):

1. **Zero-load latency** — each organization's traversal law, exact per
   (dx, dy, packet size).  These are calibrated against (and tested
   bit-for-bit against) the cycle-accurate simulator on an idle mesh:

   * mesh: 2 cycles/hop (link + router) + 3 cycles of NI/ejection
     overhead + (size-1) serialization;
   * SMART: 3 cycles per straight segment of <= HPC_max tiles (bypass
     setup + traversal), XY turns break segments;
   * ideal: ceil(hops/2) wire-limited cycles + 1 + serialization;
   * mesh+PRA announced responses: the pre-allocated path advances 2
     tiles/cycle, overlapping serialization with traversal — a constant
     7-cycle envelope over the segment count, plus a 2-cycles/hop
     penalty for hops beyond the reservation horizon (long routes
     outrun the table and fall back to cycle-by-cycle allocation).

2. **Waiting time** — an M/G/1 approximation per directed link, driven
   by the exact link-crossing probabilities from
   :mod:`repro.analytic.geometry`.  A packet arriving at a link with
   packet rate λ_l and service moments E[S], E[S^2] waits
   ``λ_l E[S^2] / 2(1 - ρ_l)``; summing over the links a route crosses
   (weighted by crossing probability) gives the expected queueing delay
   per packet.  Wormhole flow control with per-class VCs blocks *less*
   than a single FIFO, so the sum is scaled by a per-organization
   calibration factor fit once against low-load simulator runs (the
   validation harness keeps the fit honest).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, inf
from typing import Dict, Optional, Tuple

from repro.analytic.geometry import TrafficGeometry, geometry_for
from repro.params import NocKind, NocParams
from repro.workloads.synthetic import TrafficPattern

#: (label, weight, flits) components of a traffic mix.
TrafficMix = Tuple[Tuple[str, float, int], ...]

#: The full-system mix: every LLC transaction is one 1-flit request and
#: one 5-flit response (coherence is negligible in the measured
#: windows, matching the simulator's per-class counts).
FULL_SYSTEM_MIX: TrafficMix = (("request", 0.5, 1), ("response", 0.5, 5))

#: VC/wormhole correction to the single-FIFO M/G/1 waiting time, fit
#: against cycle-accurate evaluation-grid runs (see
#: docs/performance.md).  Wormhole routers with per-class VCs block
#: less than one shared FIFO, so the base factor is < 1 for the mesh
#: variants; the ideal fabric only contends at injection/ejection.
_WAIT_CALIBRATION = {
    NocKind.MESH: 0.75,
    NocKind.SMART: 0.95,
    NocKind.MESH_PRA: 1.35,
    NocKind.IDEAL: 0.50,
}

#: Fraction of PRA responses that begin traversal with a live plan
#: (the simulator reports ~0.9 across workloads; dropped plans fall
#: back to mesh timing).
PRA_PLANNED_FRACTION = 0.90

#: Planned packets pre-allocated end-to-end still absorb a share of the
#: congestion (injection conflicts, reservation lag); requests on the
#: PRA data network queue slightly *longer* than plain mesh because
#: they yield to reserved slots.
_PRA_PLANNED_WAIT_SHARE = 0.30
_PRA_REQUEST_WAIT_SCALE = 1.30


def synthetic_mix(pattern: TrafficPattern,
                  response_size: int = 5) -> TrafficMix:
    """The class mix :class:`SyntheticTraffic` injects for ``pattern``."""
    if pattern is TrafficPattern.REQUEST_REPLY:
        return (("request", 0.5, 1), ("response", 0.5, response_size))
    return (
        ("request", 0.55, 1),
        ("response", 0.40, 5),
        ("coherence", 0.05, 1),
    )


def _mix_moments(mix: TrafficMix) -> Tuple[float, float]:
    """(E[S], E[S^2]) of the packet-size distribution, in flits."""
    e_s = sum(weight * size for _, weight, size in mix)
    e_s2 = sum(weight * size * size for _, weight, size in mix)
    return e_s, e_s2


def zero_load_latency(
    kind: NocKind,
    dx: int,
    dy: int,
    size: int = 1,
    params: Optional[NocParams] = None,
    announced: bool = False,
) -> float:
    """Exact idle-network latency for a (|dx|, |dy|) displacement.

    Matches the simulator cycle-for-cycle on an idle 8x8 mesh for every
    organization (``tests/test_analytic.py`` pins this against
    ``zero_load_table``); the PRA ``announced`` law is exact up to the
    reservation horizon and a mild overestimate beyond it.
    """
    params = params or NocParams(kind=kind)
    dx, dy = abs(dx), abs(dy)
    hops = dx + dy
    if hops == 0:
        return 0.0
    if kind is NocKind.IDEAL:
        return ceil(hops / params.ideal_hops_per_cycle) + 1 + (size - 1)
    if kind is NocKind.SMART:
        hpc = params.smart.hops_per_cycle
        segments = ceil(dx / hpc) + ceil(dy / hpc)
        return 3 * segments + 4 + (size - 1)
    if kind is NocKind.MESH_PRA and announced:
        hpc = params.pra.hops_per_cycle
        segments = ceil(dx / hpc) + ceil(dy / hpc)
        horizon = params.pra.reservation_horizon - params.pra.max_lag
        return segments + 7.0 + 2 * max(0, hops - horizon)
    # Mesh, and mesh+PRA packets without a plan.
    return 2 * hops + 3 + (size - 1)


def _zero_load_mean(
    kind: NocKind, geom: TrafficGeometry, size: int,
    params: NocParams, announced: bool = False,
) -> float:
    """E over the pair distribution of :func:`zero_load_latency`."""
    if kind is NocKind.IDEAL:
        return geom.e_ceil_half_hops + 1 + (size - 1)
    if kind is NocKind.SMART:
        return 3 * geom.e_segments + 4 + (size - 1)
    if kind is NocKind.MESH_PRA and announced:
        return geom.e_pra_hops + 7.0
    # Mesh law, generalized: each hop costs its link latency (2 on the
    # mesh — identical to the historical 2*e_hops — and the configured
    # interposer latency on chiplet crossings).
    return geom.e_lat_hops + 3 + (size - 1)


@dataclass(frozen=True)
class NetworkPoint:
    """Model output at one (organization, injection rate) point."""

    kind: NocKind
    #: Packets injected per node per cycle (post dst==src drop).
    node_rate: float
    #: Expected packet latency by mix component label (cycles).
    per_class: Dict[str, float]
    #: Mix-weighted mean packet latency (cycles; ``inf`` past
    #: saturation).
    latency: float
    #: Expected queueing delay per packet (cycles).
    mean_wait: float
    #: Flit utilization of the most loaded link (>= 1 means the offered
    #: load exceeds the bottleneck link's capacity).
    max_util: float
    saturated: bool


def predict_network(
    kind: NocKind,
    node_rate: float,
    mix: TrafficMix = FULL_SYSTEM_MIX,
    params: Optional[NocParams] = None,
    pattern: TrafficPattern = TrafficPattern.UNIFORM_RANDOM,
    hotspot_nodes: Optional[Tuple[int, ...]] = None,
) -> NetworkPoint:
    """Predicted latency at ``node_rate`` packets per node per cycle."""
    if node_rate < 0.0:
        raise ValueError(f"node_rate must be >= 0, got {node_rate}")
    params = params or NocParams(kind=kind)
    geom = geometry_for(params, pattern, hotspot_nodes)
    e_s, e_s2 = _mix_moments(mix)
    lam_sys = node_rate * params.num_nodes
    max_util = lam_sys * geom.max_link_coeff * e_s
    saturated = max_util >= 1.0
    if saturated:
        wait = inf
    else:
        wait = 0.0
        for q in geom.link_coeffs:
            lam_l = lam_sys * q
            rho_l = lam_l * e_s
            wait += q * (lam_l * e_s2 / (2.0 * (1.0 - rho_l)))
        wait *= _WAIT_CALIBRATION[kind]
    per_class: Dict[str, float] = {}
    for label, _, size in mix:
        zero = _zero_load_mean(kind, geom, size, params)
        if saturated:
            per_class[label] = inf
        elif kind is NocKind.MESH_PRA and label == "response":
            planned = (
                _zero_load_mean(kind, geom, size, params, announced=True)
                + _PRA_PLANNED_WAIT_SHARE * wait
            )
            per_class[label] = (
                PRA_PLANNED_FRACTION * planned
                + (1.0 - PRA_PLANNED_FRACTION) * (zero + wait)
            )
        elif kind is NocKind.MESH_PRA and label == "request":
            per_class[label] = zero + _PRA_REQUEST_WAIT_SCALE * wait
        else:
            per_class[label] = zero + wait
    latency = (
        inf if saturated
        else sum(w * per_class[label] for label, w, _ in mix)
    )
    return NetworkPoint(
        kind=kind,
        node_rate=node_rate,
        per_class=per_class,
        latency=latency,
        mean_wait=wait,
        max_util=max_util,
        saturated=saturated,
    )


def saturation_rate(
    kind: NocKind,
    mix: TrafficMix = FULL_SYSTEM_MIX,
    params: Optional[NocParams] = None,
    pattern: TrafficPattern = TrafficPattern.UNIFORM_RANDOM,
    hotspot_nodes: Optional[Tuple[int, ...]] = None,
) -> float:
    """Packets per node per cycle at which the bottleneck link's flit
    utilization reaches 1.0 (the organization-independent capacity
    bound; router inefficiencies make the measured knee land somewhat
    below it, which is what the bisection search refines)."""
    params = params or NocParams(kind=kind)
    geom = geometry_for(params, pattern, hotspot_nodes)
    e_s, _ = _mix_moments(mix)
    return 1.0 / (params.num_nodes * geom.max_link_coeff * e_s)
