"""Worker-process backend for sharded simulation.

One process per shard, each owning a :class:`ShardDomain`; the parent
coordinates supersteps over ``multiprocessing`` pipes and routes flush
messages between adjacent shards.  All protocol logic lives in the
domain — this module is only plumbing, which is what keeps the inline
and process backends digest-identical by construction.

The plumbing is supervised: every receive polls with a timeout instead
of blocking forever, so a dead worker (exit code and pid in hand), a
hung worker (silent past the heartbeat), and a babbling worker
(malformed reply) each surface as a structured
:class:`~repro.shard.spec.WorkerFailure` that
:func:`repro.resilience.supervisor.run_supervised` can recover from.
Workers optionally carry a :class:`~repro.resilience.faults.ShardFaultDriver`
so every one of those failure modes is deterministically injectable,
and can start from a recovery-point snapshot instead of cycle 0.

Workers start their pid counters a billion apart so packets minted in
different processes never collide when a merged checkpoint stitches
the registries back together.  (Pids are never part of the statistics
digest; uniqueness is all that matters.)
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional, Tuple

from repro.noc.topology import MeshTopology
from repro.shard.domain import ShardDomain
from repro.shard.merge import merge_snapshots
from repro.shard.spec import ShardError, SyntheticSpec, WorkerFailure

#: Pid-space stride between workers; far beyond any packet count a
#: single run can mint.
_PID_STRIDE = 1_000_000_000

#: Seconds between liveness checks while waiting on a worker reply.
_POLL_TICK = 0.05


def _worker_main(conn, spec: SyntheticSpec, index: int, count: int,
                 observers: str, faults=None, incarnation: int = 0,
                 restore=None) -> None:
    try:
        from repro.noc.packet import set_next_pid
        from repro.resilience.faults import ShardFaultDriver

        # Stride first; a recovery restore overrides the counter with
        # the snapshotted value (which already includes the stride base).
        set_next_pid(index * _PID_STRIDE)
        driver = ShardFaultDriver(faults, index, incarnation)
        dom = ShardDomain(spec, index, count, observers=observers,
                          restore_from=restore)
        while True:
            message = conn.recv()
            command = message[0]
            if command == "round":
                action = driver.poll(dom.net.cycle)
                if action == "kill":
                    ShardFaultDriver.execute_kill()
                elif action == "hang":
                    ShardFaultDriver.execute_hang()
                elif action == "garbage":
                    conn.send(("garbage-injected", 0xDEAD))
                    continue
                _, inbox, hard_stop = message
                for side, flush in inbox:
                    dom.receive_flush(side, flush)
                dom.advance(hard_stop=hard_stop)
                conn.send(("state", dom.net.cycle,
                           dom.net.stats.in_flight,
                           dom.make_flush("prev"),
                           dom.make_flush("next")))
            elif command == "barrier":
                from repro.checkpoint.snapshot import snapshot_network

                dom.barrier_drain(message[1])
                conn.send(("snapshot",
                           snapshot_network(dom.net, dom.traffic),
                           {"entered": dom.entered,
                            "exited": dom.exited}))
            elif command == "stats":
                conn.send(("stats", dom.net.stats.state_dict(),
                           dom.net.cycles_skipped, dom.traffic.offered,
                           dom.net.cycle))
            elif command == "stop":
                return
            else:
                raise ShardError(f"unknown command {command!r}")
    except BaseException as exc:  # incl. SystemExit/KeyboardInterrupt:
        # always attempt the structured error report so the parent sees
        # a diagnosis instead of a bare EOFError.
        import traceback

        try:
            conn.send(("error", f"{exc!r}\n{traceback.format_exc()}"))
        except Exception:
            pass
        if not isinstance(exc, Exception):
            raise
    finally:
        try:
            conn.close()
        except Exception:
            pass


class ProcessPool:
    """Parent-side coordinator over one pipe per shard worker.

    ``heartbeat`` bounds how long any single reply may take before the
    worker is declared hung; ``faults`` ships a
    :class:`~repro.resilience.faults.ProcessFaultPlan` into the workers;
    ``incarnation``/``restore`` let a respawned pool resume from a
    recovery-point barrier (``restore[i]`` is shard ``i``'s
    ``(snapshot, aux)`` pair from :meth:`barrier`).
    """

    def __init__(self, spec: SyntheticSpec, count: int, observers: str,
                 faults=None, heartbeat: Optional[float] = None,
                 incarnation: int = 0, restore=None):
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else methods[0]
        )
        self.spec = spec
        self.count = count
        self.heartbeat = heartbeat
        self.conns: list = []
        self.procs: list = []
        self.pending: List[list] = [[] for _ in range(count)]
        self.final_clocks = [0] * count
        for index in range(count):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, spec, index, count, observers, faults,
                      incarnation,
                      None if restore is None else restore[index]),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    # -- supervised receive ------------------------------------------------

    def _died(self, shard: int) -> WorkerFailure:
        proc = self.procs[shard]
        # A broken pipe/EOF can surface before the child is reaped, in
        # which case exitcode is still None; a brief join fills it in.
        if proc.exitcode is None:
            proc.join(timeout=1.0)
        return WorkerFailure(shard, "died", exitcode=proc.exitcode,
                             pid=proc.pid)

    def _recv(self, shard: int, expect: str):
        """Receive one reply from ``shard``, diagnosing every way the
        worker can fail to produce it."""
        conn = self.conns[shard]
        proc = self.procs[shard]
        deadline = (None if self.heartbeat is None
                    else time.monotonic() + self.heartbeat)
        while not conn.poll(_POLL_TICK):
            if not proc.is_alive() and not conn.poll(0):
                raise self._died(shard)
            if deadline is not None and time.monotonic() > deadline:
                raise WorkerFailure(
                    shard, "hung", pid=proc.pid,
                    detail=f"no reply within {self.heartbeat}s "
                           f"heartbeat timeout",
                )
        try:
            reply = conn.recv()
        except (EOFError, OSError):
            raise self._died(shard) from None
        if not isinstance(reply, tuple) or not reply:
            raise WorkerFailure(shard, "garbage", pid=proc.pid,
                                detail=repr(reply)[:200])
        if reply[0] == "error":
            raise WorkerFailure(shard, "crashed", pid=proc.pid,
                                detail=str(reply[1]))
        if reply[0] != expect:
            raise WorkerFailure(
                shard, "garbage", pid=proc.pid,
                detail=f"expected {expect!r} reply, "
                       f"got {repr(reply)[:200]}",
            )
        return reply

    def _send(self, shard: int, message: tuple) -> None:
        try:
            self.conns[shard].send(message)
        except (BrokenPipeError, OSError):
            raise self._died(shard) from None

    # -- the three-call backend surface ------------------------------------

    def round(self, hard_stop: Optional[int]
              ) -> Tuple[List[int], List[int], int]:
        for i in range(self.count):
            self._send(i, ("round", self.pending[i], hard_stop))
            self.pending[i] = []
        clocks: List[int] = []
        flights: List[int] = []
        produced = 0
        for i in range(self.count):
            _, clock, flight, out_prev, out_next = self._recv(i, "state")
            clocks.append(clock)
            flights.append(flight)
            if out_prev is not None:
                produced += 1
                self.pending[i - 1].append(("next", out_prev))
            if out_next is not None:
                produced += 1
                self.pending[i + 1].append(("prev", out_next))
        self.final_clocks = clocks
        return clocks, flights, produced

    def barrier(self, barrier: int) -> List[Tuple[dict, dict]]:
        """Collect each shard's raw ``(snapshot, aux)`` recovery pair."""
        for i in range(self.count):
            self._send(i, ("barrier", barrier))
        return [tuple(self._recv(i, "snapshot")[1:])
                for i in range(self.count)]

    def barrier_checkpoint(self, barrier: int) -> dict:
        pairs = self.barrier(barrier)
        topo = MeshTopology(self.spec.width, self.spec.height)
        return merge_snapshots([snap for snap, _ in pairs],
                               topo.row_domains(self.count), barrier)

    def stats(self) -> List[Tuple[dict, int, int]]:
        for i in range(self.count):
            self._send(i, ("stats",))
        out = []
        for i in range(self.count):
            _, state, skipped, offered, clock = self._recv(i, "stats")
            out.append((state, skipped, offered))
            self.final_clocks[i] = clock
        return out

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("stop",))
                conn.close()
            except Exception:
                pass
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()

    def kill(self) -> None:
        """Hard-stop every worker (recovery: no goodbye, no waiting)."""
        for proc in self.procs:
            try:
                if proc.is_alive():
                    proc.terminate()
            except Exception:
                pass
        for proc in self.procs:
            try:
                proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.kill()
                    proc.join(timeout=5)
            except Exception:
                pass
        for conn in self.conns:
            try:
                conn.close()
            except Exception:
                pass
