"""Shared evaluation machinery: scales and the resumable simulation grid.

Every performance figure (2, 6, 7, 9, the Section V-B statistics, and
the power analysis) derives from one grid of full-system simulations:
{workload} x {NoC organization} x {seed}.  Finished cells are cached at
two levels:

* **in process** — the grid is computed once per (scale, workloads,
  kinds, seeds, parameter hash) and reused for the process lifetime;
* **on disk** — with a :class:`~repro.checkpoint.store.CellStore`
  attached (the ``REPRO_CELL_STORE`` env var or an explicit ``store=``
  argument), every finished cell is persisted under a content-addressed
  key, so an interrupted sweep resumes from the cells already done —
  across processes and machines sharing the directory.

Cache behavior is observable: hits and misses are counted on the
module-wide ``grid_stats`` object and appear in
``grid_stats.summary()``.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.checkpoint.codec import CODE_VERSION
from repro.checkpoint.snapshot import params_state
from repro.checkpoint.store import STORE_ENV, cell_key, default_store
from repro.noc.stats import NetworkStats
from repro.params import NocKind, default_chip
from repro.perf.system import PerfSample, simulate
from repro.workloads.profiles import WORKLOAD_NAMES

#: All four organizations, in the paper's presentation order.
ALL_KINDS = (NocKind.MESH, NocKind.SMART, NocKind.MESH_PRA, NocKind.IDEAL)

#: Module-wide cache counters (``grid_cache_hits``/``grid_cache_misses``
#: show up in ``grid_stats.summary()`` once the grid has run).
grid_stats = NetworkStats()

#: Sentinel distinguishing "use the default store" from "no store".
_UNSET = object()


@dataclass(frozen=True)
class EvaluationScale:
    """Simulation lengths for one quality preset."""

    name: str
    warmup: int
    measure: int
    num_seeds: int


_SCALES = {
    "smoke": EvaluationScale("smoke", warmup=300, measure=1500, num_seeds=1),
    "default": EvaluationScale("default", warmup=1000, measure=5000,
                               num_seeds=1),
    "full": EvaluationScale("full", warmup=2000, measure=10000, num_seeds=3),
}


def get_scale(name: Optional[str] = None) -> EvaluationScale:
    """Resolve a scale by name or the ``REPRO_SCALE`` env variable."""
    name = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None


GridKey = Tuple[str, NocKind]
#: One simulation cell: (workload, kind, warmup, measure, seed).
Cell = Tuple[str, NocKind, int, int, int]
_grid_cache: Dict[tuple, Dict[GridKey, PerfSample]] = {}

_params_hash_cache: Optional[str] = None


def _params_hash() -> str:
    """Digest of the default chip parameters the grid simulates with
    (part of every cell key, so a parameter change invalidates persisted
    cells instead of silently reusing them)."""
    global _params_hash_cache
    if _params_hash_cache is None:
        payload = {
            kind.value: params_state(default_chip(kind)) for kind in ALL_KINDS
        }
        _params_hash_cache = cell_key(payload)[:16]
    return _params_hash_cache


def _cell_payload(cell: Cell) -> dict:
    workload, kind, warmup, measure, seed = cell
    return {
        "workload": workload,
        "kind": kind.value,
        "warmup": warmup,
        "measure": measure,
        "seed": seed,
        "params": _params_hash(),
        "code_version": CODE_VERSION,
    }


def _wall_limit() -> Optional[float]:
    """Per-cell wall-clock budget (seconds) from REPRO_WALL_LIMIT.

    Invalid values raise a clear :class:`ValueError` (CLI exit 2)
    instead of silently dropping the budget."""
    raw = os.environ.get("REPRO_WALL_LIMIT")
    if not raw:
        return None
    try:
        limit = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_WALL_LIMIT must be a positive number of seconds, "
            f"got {raw!r}"
        ) from None
    if limit <= 0:
        raise ValueError(
            f"REPRO_WALL_LIMIT must be a positive number of seconds, "
            f"got {raw!r}"
        )
    return limit


#: Wall-clock budget installed by :func:`_init_worker`.  ``_UNSET`` in
#: the parent process, where ``_simulate_cell`` reads the env directly.
_worker_wall_limit = _UNSET


def _worker_settings() -> tuple:
    """Snapshot of the knobs a worker needs, captured once in the
    parent.  Spawn-start workers re-import everything in a fresh
    process, so env-derived state the parent changed after import
    (``set_time_skip``, ``--cell-store``) would otherwise be lost —
    and fork-start workers would re-read the environment per cell."""
    from repro.noc.network import fastpath_enabled, time_skip_enabled

    return (time_skip_enabled(), fastpath_enabled(),
            os.environ.get(STORE_ENV), _wall_limit())


#: Fault plan shipped into grid workers by :func:`_init_worker`
#: (``None`` outside injected-fault test runs).
_worker_faults = None

#: True only in a pool worker: an injected "kill" fault exits the
#: process there but downgrades to a raised error in the parent
#: (killing the parent would take the supervisor down with it).
_in_worker = False


def _init_worker(time_skip: bool, fastpath: bool, store_path: Optional[str],
                 wall_limit: Optional[float], faults=None,
                 in_worker: bool = True) -> None:
    """Pool initializer: apply the parent's settings once per worker."""
    from repro.noc.network import set_fastpath, set_time_skip

    set_time_skip(time_skip)
    set_fastpath(fastpath)
    if store_path is None:
        os.environ.pop(STORE_ENV, None)
    else:
        os.environ[STORE_ENV] = store_path
    global _worker_wall_limit, _worker_faults, _in_worker
    _worker_wall_limit = wall_limit
    _worker_faults = faults
    _in_worker = in_worker


def _cell_wall_limit() -> Optional[float]:
    """Effective per-cell wall-clock budget.

    Workers receive the parent's budget through :func:`_init_worker`.
    A process that never ran the initializer (the parent itself, or a
    worker created outside :func:`_run_cells` — e.g. a nested pool or a
    spawn-start context that skipped the initargs) still sees
    ``_UNSET`` and falls back to reading ``REPRO_WALL_LIMIT`` from its
    own environment.  That fallback is deliberate and observable: a
    ``--wall-limit`` value installed only via the initializer is NOT
    recovered here, which is why every pool in this repository passes
    ``initializer=_init_worker`` explicitly (covered by
    ``tests/test_worker_plumbing.py``).
    """
    if _worker_wall_limit is _UNSET:
        return _wall_limit()
    return _worker_wall_limit


def _simulate_cell(cell: Cell) -> PerfSample:
    """Worker entry point (top-level so it pickles for multiprocessing)."""
    workload, kind, warmup, measure, seed = cell
    sample = simulate(workload, kind, warmup=warmup, measure=measure,
                      seed=seed, wall_limit=_cell_wall_limit())
    if sample.timed_out:
        print(
            f"warning: {workload}/{kind.value} seed {seed} hit the "
            f"REPRO_WALL_LIMIT wall-clock budget after {sample.cycles} "
            f"measured cycles; reporting the partial interval",
            file=sys.stderr,
        )
    return sample


def parse_worker_count(raw: str, source: str) -> int:
    """Validate a worker/shard count the way ``NocParams`` validates CLI
    input: a clear :class:`ValueError` naming the knob instead of a raw
    traceback from deep inside pool setup.

    ``0`` means "one per CPU"; any positive integer is taken literally.
    Shared by ``REPRO_JOBS``, ``REPRO_SHARDS``, and ``--shards``.
    """
    try:
        count = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a non-negative integer "
            f"(0 = one per CPU), got {raw!r}"
        ) from None
    if count < 0:
        raise ValueError(
            f"{source} must be a non-negative integer "
            f"(0 = one per CPU), got {raw!r}"
        )
    if count == 0:
        return os.cpu_count() or 1
    return count


def _num_jobs() -> int:
    """Worker-process count from REPRO_JOBS.

    ``1`` (the default) runs in-process, ``0`` means one worker per
    CPU, anything else is taken literally.  Invalid values raise a
    :class:`ValueError` that the CLI turns into a clean exit 2.
    """
    return parse_worker_count(os.environ.get("REPRO_JOBS", "1"),
                              "REPRO_JOBS")


def _simulate_indexed(item: Tuple[int, Cell, int]):
    """Pool entry point carrying the cell index and attempt number
    (results arrive in completion order; the attempt number keys
    injected-fault lookup)."""
    index, cell, attempt = item
    if _worker_faults is not None:
        action = _worker_faults.cell_action(index, attempt)
        if action == "kill":
            if _in_worker:
                import os as _os

                _os._exit(13)
            from repro.resilience.faults import ProcessFaultError

            raise ProcessFaultError(
                f"injected kill for cell {index} (downgraded to an "
                f"error outside a pool worker)"
            )
        if action == "error":
            from repro.resilience.faults import ProcessFaultError

            raise ProcessFaultError(
                f"injected failure for cell {index} attempt {attempt}"
            )
    return index, _simulate_cell(cell)


def _cell_label(cell: Cell) -> str:
    workload, kind, _, _, seed = cell
    return f"{workload}/{kind.value} seed {seed}"


def _run_cells(cells: List[Cell], pending: List[int],
               results: List[Optional[PerfSample]],
               store=None, keys: Optional[List[Optional[str]]] = None,
               faults=None, policy=None):
    """Simulate ``cells[i]`` for every i in ``pending``, in place,
    under supervision; returns the :class:`RunReport`.

    Supervision means: each cell retries with exponential backoff and
    is quarantined (result left ``None``, sweep continues) after
    ``policy.quarantine_after`` failures; a crashed worker pool is
    rebuilt and the outstanding cells resubmitted, degrading to serial
    in-parent execution when rebuilds exhaust ``policy.max_retries``;
    and every finished cell streams into ``store`` immediately, so a
    crash mid-sweep keeps all work already done.
    """
    import time
    from collections import deque

    from repro.resilience.policy import RetryPolicy
    from repro.resilience.report import FailureRecord, RunReport

    if policy is None:
        policy = RetryPolicy.from_env()
    report = RunReport(backend="grid")
    counts: Dict[int, int] = {}

    def record_success(index: int, sample: PerfSample) -> None:
        results[index] = sample
        # Timed-out cells are partial measurements; persisting them
        # would freeze the truncation into every future sweep.
        # Analytic samples are model output, not ground truth, and must
        # never masquerade as cached simulation results.
        if store is not None and keys is not None \
                and sample is not None and not sample.timed_out \
                and not sample.analytic:
            store.put(keys[index], {"sample": sample.to_state()})

    def record_error(index: int, detail: str) -> Optional[int]:
        """Count one failure of ``index``; returns the next attempt
        number, or None once the cell is quarantined."""
        counts[index] = counts.get(index, 0) + 1
        record = FailureRecord(scope="cell", target=_cell_label(cells[index]),
                               kind="error", attempts=counts[index],
                               detail=detail)
        report.record_failure(record)
        if counts[index] >= policy.quarantine_after:
            report.quarantined.append(record)
            return None
        report.retries += 1
        backoff = policy.backoff(counts[index])
        if backoff:
            time.sleep(backoff)
        return counts[index]

    def run_serial(queue) -> None:
        # In-parent execution still honors the fault plan (with kills
        # downgraded to errors), so poison cells quarantine identically
        # whether the sweep runs serial, parallel, or degraded.
        global _worker_faults, _in_worker
        saved = (_worker_faults, _in_worker)
        _worker_faults, _in_worker = faults, False
        try:
            while queue:
                index, attempt = queue.popleft()
                try:
                    _, sample = _simulate_indexed(
                        (index, cells[index], attempt)
                    )
                except Exception as exc:
                    next_attempt = record_error(index, repr(exc))
                    if next_attempt is not None:
                        queue.append((index, next_attempt))
                    continue
                record_success(index, sample)
        finally:
            _worker_faults, _in_worker = saved

    jobs = _num_jobs()
    queue = deque((index, 0) for index in pending)
    if jobs <= 1 or len(pending) <= 1:
        run_serial(queue)
        return report

    from concurrent.futures import ProcessPoolExecutor, as_completed
    from concurrent.futures.process import BrokenProcessPool

    # ProcessPoolExecutor rather than multiprocessing.Pool: a worker
    # dying mid-cell surfaces as BrokenProcessPool here, where Pool
    # (on this Python) simply hangs waiting for the lost result.
    workers = min(jobs, len(pending))
    rebuilds = 0
    while queue:
        broken = False
        futures = {}
        try:
            with ProcessPoolExecutor(
                max_workers=workers, initializer=_init_worker,
                initargs=_worker_settings() + (faults, True),
            ) as pool:
                while queue:
                    index, attempt = queue.popleft()
                    futures[pool.submit(
                        _simulate_indexed, (index, cells[index], attempt)
                    )] = (index, attempt)
                for future in as_completed(futures):
                    index, attempt = futures[future]
                    try:
                        _, sample = future.result()
                    except BrokenProcessPool:
                        # Collateral damage, not this cell's fault: no
                        # failure count.  The attempt still advances so
                        # an attempt-keyed injected kill does not
                        # re-fire forever on resubmission.
                        broken = True
                        queue.append((index, attempt + 1))
                        continue
                    except Exception as exc:
                        next_attempt = record_error(index, repr(exc))
                        if next_attempt is not None:
                            queue.append((index, next_attempt))
                        continue
                    record_success(index, sample)
        except BrokenProcessPool:  # pragma: no cover - raised at exit
            broken = True
        if broken:
            rebuilds += 1
            report.pool_rebuilds += 1
            report.record_failure(FailureRecord(
                scope="pool", target=f"{workers}-worker grid pool",
                kind="died", attempts=rebuilds,
                detail="worker pool crashed; rebuilding and "
                       "resubmitting outstanding cells",
            ))
            if rebuilds > policy.max_retries:
                report.degraded = (
                    "serial completion in the parent process after "
                    f"{rebuilds} worker-pool crashes"
                )
                run_serial(queue)
                return report
            backoff = policy.backoff(rebuilds)
            if backoff:
                time.sleep(backoff)
    return report


def evaluation_grid(
    workloads: Iterable[str] = WORKLOAD_NAMES,
    kinds: Iterable[NocKind] = ALL_KINDS,
    scale: Optional[EvaluationScale] = None,
    store=_UNSET,
    faults=None,
    policy=None,
    analytic: Optional[str] = None,
) -> Dict[GridKey, PerfSample]:
    """Run (or fetch) the {workload} x {organization} simulation grid.

    ``store`` is a :class:`~repro.checkpoint.store.CellStore` persisting
    finished cells; by default it comes from the ``REPRO_CELL_STORE``
    env variable (unset means no persistence), and ``store=None``
    disables persistence explicitly.  Store reads happen in the parent
    process, so with ``REPRO_JOBS > 1`` only the cells actually missing
    are dispatched to the worker pool, and every finished cell is
    persisted as soon as it completes (a crash mid-sweep keeps all
    cells already computed).  Multi-seed scales merge per-seed samples
    by summing instructions and cycles into one sample per cell.

    ``analytic`` selects the queueing-model fast path: ``"prune"``
    serves high-confidence cells from :mod:`repro.analytic` instead of
    simulating them (marked ``PerfSample.analytic``, counted on
    ``grid_stats.analytic_cells``, never persisted to ``store``);
    ``"warm"`` and ``"off"`` simulate everything.  ``None`` defers to
    the ``REPRO_ANALYTIC`` env variable.

    The sweep runs supervised (see :mod:`repro.resilience`): failing
    cells retry with backoff under ``policy`` and are quarantined after
    repeated failures (their grid entries are dropped rather than
    killing the sweep), crashed worker pools are rebuilt, and the
    resulting :class:`RunReport` is available afterwards via
    :func:`repro.resilience.last_run_report`.  ``faults`` injects a
    deterministic :class:`~repro.resilience.faults.ProcessFaultPlan`
    for testing; fault-injected sweeps bypass the in-process grid cache
    so injected failures cannot poison cached results.
    """
    from repro.analytic.screen import prune_max_util, resolve_mode
    from repro.resilience.report import publish

    scale = scale or get_scale()
    workloads = tuple(workloads)
    kinds = tuple(kinds)
    seeds = tuple(seed + 1 for seed in range(scale.num_seeds))
    mode = resolve_mode(analytic)
    if store is _UNSET:
        store = default_store()
    # The cache key carries everything that changes the result: the
    # attached store (two sweeps against different stores must not
    # alias) and the pruning policy (mode + effective utilization
    # bound) alongside the cell coordinates.
    cache_key = (
        scale.name, workloads, kinds, seeds, _params_hash(),
        store.root if store is not None else None,
        mode, prune_max_util() if mode == "prune" else None,
    )
    if faults is None and cache_key in _grid_cache:
        grid_stats.grid_cache_hits += 1
        return _grid_cache[cache_key]
    pruned: Dict[GridKey, PerfSample] = {}
    if mode == "prune":
        from repro.analytic.screen import screen_cell

        for workload in workloads:
            for kind in kinds:
                decision = screen_cell(workload, kind)
                if decision.prune:
                    pruned[(workload, kind)] = decision.sample(
                        scale.measure
                    )
        grid_stats.analytic_cells += len(pruned)
        grid_stats.simulated_cells += (
            len(workloads) * len(kinds) - len(pruned)
        )
    cells: List[Cell] = [
        (workload, kind, scale.warmup, scale.measure, seed)
        for workload in workloads
        for kind in kinds
        for seed in seeds
    ]
    results: List[Optional[PerfSample]] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    simulated = [
        index for index, (workload, kind, *_) in enumerate(cells)
        if (workload, kind) not in pruned
    ]
    if store is not None:
        pending: List[int] = []
        for index in simulated:
            cell = cells[index]
            key = cell_key(_cell_payload(cell))
            keys[index] = key
            cached = store.get(key)
            if cached is not None:
                results[index] = PerfSample.from_state(cached["sample"])
                grid_stats.grid_cache_hits += 1
            else:
                pending.append(index)
                grid_stats.grid_cache_misses += 1
    else:
        pending = simulated
    if pruned:
        # Analytic cells never touch the store (keys stay None) and
        # never enter the worker pool; each seed slot gets the same
        # deterministic model sample so _merge treats the cell exactly
        # like a simulated one.
        for index, (workload, kind, *_) in enumerate(cells):
            sample = pruned.get((workload, kind))
            if sample is not None:
                results[index] = sample
    report = _run_cells(cells, pending, results, store=store, keys=keys,
                        faults=faults, policy=policy)
    publish(report)
    by_key: Dict[GridKey, list] = {}
    for (workload, kind, *_), sample in zip(cells, results):
        by_key.setdefault((workload, kind), []).append(sample)
    grid = {}
    for key, samples in by_key.items():
        # Quarantined cells leave None holes; a key with every seed
        # quarantined is dropped from the grid (visible in the report)
        # rather than poisoning downstream figures with zeros.
        kept = [sample for sample in samples if sample is not None]
        if kept:
            grid[key] = _merge(kept)
    if faults is None:
        _grid_cache[cache_key] = grid
    return grid


def _merge(samples) -> PerfSample:
    """Combine per-seed samples into one, weighting every latency and
    distribution statistic by its own sample count.

    Averages of averages are only correct when each seed contributed
    the same number of observations — which unequal drain behavior
    makes false in practice.  Latencies weight by delivered packets
    (the transaction-latency denominator tracks packet count), the
    lag-at-drop distribution by each seed's control-packet count, and
    the blocked fraction by each seed's total in-network time.
    """
    if len(samples) == 1:
        return samples[0]
    first = samples[0]
    total_pkts = sum(s.packets for s in samples)
    total_control = sum(s.control_packets for s in samples)
    # Per-seed total network time reconstructs each fraction's true
    # denominator: blocked_fraction = blocked_cycles / net_time.
    net_times = [s.avg_network_latency * s.packets for s in samples]
    total_net_time = sum(net_times)
    lag: Dict[int, float] = {}
    for s in samples:
        weight = (s.control_packets / total_control) if total_control else 0.0
        for k, v in s.lag_distribution.items():
            lag[k] = lag.get(k, 0.0) + v * weight
    return PerfSample(
        workload=first.workload,
        noc_kind=first.noc_kind,
        instructions=sum(s.instructions for s in samples),
        cycles=sum(s.cycles for s in samples),
        packets=total_pkts,
        avg_network_latency=sum(
            s.avg_network_latency * s.packets for s in samples
        ) / max(1, total_pkts),
        avg_transaction_latency=sum(
            s.avg_transaction_latency * s.packets for s in samples
        ) / max(1, total_pkts),
        control_packets=total_control,
        control_per_data=total_control / max(1, total_pkts),
        lag_distribution=dict(sorted(lag.items())),
        pra_blocked_fraction=(
            sum(f * t for f, t in
                zip((s.pra_blocked_fraction for s in samples), net_times))
            / total_net_time if total_net_time else 0.0
        ),
        flits_delivered=sum(s.flits_delivered for s in samples),
        total_hops=sum(s.total_hops for s in samples),
        packets_unfinished=sum(s.packets_unfinished for s in samples),
        timed_out=any(s.timed_out for s in samples),
        analytic=all(s.analytic for s in samples),
    )


def clear_grid_cache() -> None:
    """Forget in-process cached grids (tests use this for isolation).

    The ``grid_stats`` counters survive, so callers can observe hit and
    miss totals across a clear (e.g. a resumed sweep's second pass).
    """
    _grid_cache.clear()
