"""Model-vs-simulation validation: the honesty check behind pruning.

``python -m repro analytic --validate`` (and the CI ``analytic-smoke``
job) runs the cycle-accurate evaluation grid with pruning forced off,
asks the model for the same cells, and reports the per-cell relative
latency and IPC error.  :data:`LATENCY_ERROR_MARGIN` is the committed
bound: validation fails (CI goes red) the moment a model change or a
simulator change pushes any cell past it, so ``REPRO_ANALYTIC=prune``
can never silently serve answers worse than the documented margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.analytic.system import predict_cell
from repro.params import NocKind

#: Committed relative-error bound on per-cell mean packet latency (and
#: aggregate IPC) in the deep-unsaturated regime the pruning policy
#: admits.  Measured at smoke and default scales across all 24 cells;
#: see docs/performance.md for the fit and the re-validation policy.
LATENCY_ERROR_MARGIN = 0.12

#: IPC tracks latency through the closed loop but is additionally
#: damped by compute cycles, so its bound is tighter.
IPC_ERROR_MARGIN = 0.08


@dataclass(frozen=True)
class CellValidation:
    """One grid cell's model-vs-sim comparison."""

    workload: str
    kind: NocKind
    simulated_latency: float
    predicted_latency: float
    simulated_ipc: float
    predicted_ipc: float

    @property
    def latency_error(self) -> float:
        if not self.simulated_latency:
            return 0.0
        return abs(self.predicted_latency - self.simulated_latency) \
            / self.simulated_latency

    @property
    def ipc_error(self) -> float:
        if not self.simulated_ipc:
            return 0.0
        return abs(self.predicted_ipc - self.simulated_ipc) \
            / self.simulated_ipc


@dataclass(frozen=True)
class ValidationReport:
    """All cells' comparisons plus the pass/fail verdict."""

    entries: Tuple[CellValidation, ...]
    margin: float = LATENCY_ERROR_MARGIN
    ipc_margin: float = IPC_ERROR_MARGIN

    @property
    def max_latency_error(self) -> float:
        return max((e.latency_error for e in self.entries), default=0.0)

    @property
    def max_ipc_error(self) -> float:
        return max((e.ipc_error for e in self.entries), default=0.0)

    @property
    def worst(self) -> Optional[CellValidation]:
        return max(self.entries, key=lambda e: e.latency_error,
                   default=None)

    @property
    def ok(self) -> bool:
        return (self.max_latency_error <= self.margin
                and self.max_ipc_error <= self.ipc_margin)


@dataclass(frozen=True)
class ChipletValidation:
    """One chiplet topology/kind cell: model vs a synthetic sim."""

    topology: str
    kind: NocKind
    simulated_latency: float
    predicted_latency: float

    @property
    def latency_error(self) -> float:
        if not self.simulated_latency:
            return 0.0
        return abs(self.predicted_latency - self.simulated_latency) \
            / self.simulated_latency


def validate_chiplet(
    specs: Tuple[str, ...] = ("chiplet:2x2x4x4", "chiplet:2x2x4x4:star"),
    rate: float = 0.005,
    cycles: int = 2000,
    seed: int = 5,
) -> Tuple[ChipletValidation, ...]:
    """Check the hierarchical zero-load laws against the simulator.

    Runs each chiplet spec at a deep-unsaturated rate under the mesh
    and ideal organizations and compares mean network latency against
    :func:`repro.analytic.queueing.predict_network` on the
    route-enumerated chiplet geometry.  Entries are judged against
    :data:`LATENCY_ERROR_MARGIN` like the grid cells.
    """
    from repro.analytic.queueing import predict_network, synthetic_mix
    from repro.noc.network import build_network
    from repro.params import NocParams
    from repro.workloads.synthetic import SyntheticTraffic, TrafficPattern

    entries = []
    for spec in specs:
        for kind in (NocKind.MESH, NocKind.IDEAL):
            params = NocParams(kind=kind, topology=spec)
            net = build_network(params)
            traffic = SyntheticTraffic(
                net, TrafficPattern.UNIFORM_RANDOM, rate, seed=seed
            )
            traffic.run(cycles)
            net.drain()
            sim = net.stats.summary()["avg_network_latency"]
            pred = predict_network(
                kind, rate, synthetic_mix(TrafficPattern.UNIFORM_RANDOM),
                params=params,
            ).latency
            entries.append(ChipletValidation(
                topology=spec, kind=kind,
                simulated_latency=sim, predicted_latency=pred,
            ))
    return tuple(entries)


def validate_grid(
    scale=None,
    workloads: Optional[Iterable[str]] = None,
    kinds: Optional[Iterable[NocKind]] = None,
) -> ValidationReport:
    """Compare the model against a (pruning-disabled) simulated grid.

    Honors the usual grid machinery — scales, the cell store, worker
    pools — but forces ``analytic="off"`` so the reference numbers are
    always cycle-accurate even under ``REPRO_ANALYTIC=prune``.
    """
    from repro.harness.runner import ALL_KINDS, evaluation_grid
    from repro.workloads.profiles import WORKLOAD_NAMES

    workloads = tuple(workloads) if workloads is not None else WORKLOAD_NAMES
    kinds = tuple(kinds) if kinds is not None else ALL_KINDS
    grid = evaluation_grid(workloads, kinds, scale, analytic="off")
    entries = []
    for workload in workloads:
        for kind in kinds:
            sample = grid.get((workload, kind))
            if sample is None:  # quarantined cell; nothing to compare
                continue
            prediction = predict_cell(workload, kind)
            entries.append(CellValidation(
                workload=workload,
                kind=kind,
                simulated_latency=sample.avg_network_latency,
                predicted_latency=prediction.avg_network_latency,
                simulated_ipc=sample.ipc,
                predicted_ipc=prediction.ipc,
            ))
    return ValidationReport(entries=tuple(entries))
