"""Physical address mapping: NUCA slice interleaving, memory channels.

Blocks are interleaved across LLC slices at cache-block granularity —
the standard NUCA arrangement the paper's tiled processor uses — so
consecutive blocks have consecutive home tiles and uniformly random
addresses spread uniformly over the 64 slices.  Memory channels are
interleaved the same way one level up.
"""

from __future__ import annotations

#: Cache block size in bytes (Table I: 64-byte blocks).
BLOCK_BYTES = 64
_BLOCK_SHIFT = BLOCK_BYTES.bit_length() - 1


def block_of(addr: int) -> int:
    """Block number containing byte address ``addr``."""
    if addr < 0:
        raise ValueError("addresses are non-negative")
    return addr >> _BLOCK_SHIFT


def home_slice(addr: int, num_slices: int) -> int:
    """Home LLC slice (tile id) of the block containing ``addr``."""
    return block_of(addr) % num_slices


def memory_channel(addr: int, num_channels: int) -> int:
    """Memory channel servicing the block containing ``addr``."""
    return block_of(addr) % num_channels
