"""Network statistics: latency, throughput, hop counts, PRA counters.

The system-level performance model reads packet latencies directly; the
aggregated statistics here back the network-level experiments (load vs.
latency) and the Section V-B control-packet analysis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from repro.noc.packet import Packet
from repro.params import MessageClass


def _mean(values: List[int]) -> float:
    return sum(values) / len(values) if values else 0.0


def _percentile(values: List[int], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for empty input)."""
    if not values:
        return 0.0
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("percentile fraction must be in [0, 1]")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return float(ordered[rank])


@dataclass
class NetworkStats:
    """Counters collected by a network over a simulation run."""

    packets_injected: int = 0
    packets_ejected: int = 0
    flits_ejected: int = 0
    total_hops: int = 0
    network_latencies: List[int] = field(default_factory=list)
    total_latencies: List[int] = field(default_factory=list)
    per_class_latency: Dict[MessageClass, List[int]] = field(
        default_factory=lambda: {mc: [] for mc in MessageClass}
    )
    #: Cycles packets spent blocked behind resources proactively
    #: allocated to *other* packets (Section V-B underutilization stat).
    pra_blocked_cycles: int = 0
    #: PRA control-network counters (zero for non-PRA organizations).
    control_packets_injected: int = 0
    #: Control packets dropped at the injection latch (never entered).
    control_injection_conflicts: int = 0
    control_lag_at_drop: Counter = field(default_factory=Counter)
    control_drop_reasons: Counter = field(default_factory=Counter)
    #: Data packets that began traversal with a pre-allocated path.
    pra_planned_packets: int = 0
    #: Evaluation-grid cache observability (counted on the module-wide
    #: ``repro.harness.runner.grid_stats`` instance, not per network).
    grid_cache_hits: int = 0
    grid_cache_misses: int = 0
    #: Supervised-execution observability (also counted on the
    #: module-wide ``grid_stats`` instance via
    #: ``repro.resilience.report.publish`` — never on the stats object
    #: of a supervised run itself, so recovery leaves the pinned golden
    #: digests untouched).
    worker_retries: int = 0
    worker_respawns: int = 0
    pool_rebuilds: int = 0
    cells_quarantined: int = 0
    #: Analytic fast-path observability (also only ever counted on the
    #: module-wide ``grid_stats`` instance): grid cells served by the
    #: queueing model under ``REPRO_ANALYTIC=prune`` vs. cells that
    #: still went through the cycle-accurate simulator.
    analytic_cells: int = 0
    simulated_cells: int = 0

    def record_injection(self, packet: Packet) -> None:
        self.packets_injected += 1

    def record_ejection(self, packet: Packet) -> None:
        self.packets_ejected += 1
        self.flits_ejected += packet.size
        self.total_hops += packet.hops_taken
        net = packet.network_latency()
        tot = packet.total_latency()
        if net is not None:
            self.network_latencies.append(net)
            self.per_class_latency[packet.msg_class].append(net)
        if tot is not None:
            self.total_latencies.append(tot)
        self.pra_blocked_cycles += packet.pra_blocked_cycles

    # -- summaries -------------------------------------------------------

    @property
    def avg_network_latency(self) -> float:
        return _mean(self.network_latencies)

    @property
    def avg_total_latency(self) -> float:
        return _mean(self.total_latencies)

    @property
    def avg_hops(self) -> float:
        if not self.packets_ejected:
            return 0.0
        return self.total_hops / self.packets_ejected

    def avg_class_latency(self, mc: MessageClass) -> float:
        return _mean(self.per_class_latency[mc])

    def latency_percentile(self, fraction: float) -> float:
        """Network-latency percentile (e.g. 0.99 for the p99 tail)."""
        return _percentile(self.network_latencies, fraction)

    def latency_histogram(self, bucket: int = 4) -> Dict[int, int]:
        """Latencies bucketed into ``bucket``-cycle bins (lower edge)."""
        if bucket < 1:
            raise ValueError("bucket width must be positive")
        hist: Dict[int, int] = {}
        for latency in self.network_latencies:
            edge = (latency // bucket) * bucket
            hist[edge] = hist.get(edge, 0) + 1
        return dict(sorted(hist.items()))

    @property
    def in_flight(self) -> int:
        return self.packets_injected - self.packets_ejected

    @property
    def control_packets_per_data_packet(self) -> float:
        if not self.packets_injected:
            return 0.0
        return self.control_packets_injected / self.packets_injected

    def lag_distribution(self) -> Dict[int, float]:
        """Fraction of control packets dropped at each lag (Figure 7)."""
        total = sum(self.control_lag_at_drop.values())
        if not total:
            return {}
        return {
            lag: count / total
            for lag, count in sorted(self.control_lag_at_drop.items())
        }

    def pra_blocked_fraction(self) -> float:
        """Blocked-behind-reservation time over total network time."""
        total_time = sum(self.network_latencies)
        if not total_time:
            return 0.0
        return self.pra_blocked_cycles / total_time

    def summary(self, include_pools: bool = False) -> Dict[str, float]:
        out = {
            "packets_injected": self.packets_injected,
            "packets_ejected": self.packets_ejected,
            "packets_unfinished": self.in_flight,
            "avg_network_latency": self.avg_network_latency,
            "avg_total_latency": self.avg_total_latency,
            "avg_hops": self.avg_hops,
            "control_packets_per_data_packet": self.control_packets_per_data_packet,
        }
        # Grid-cache counters appear only when a cache was actually in
        # play; unconditional keys would shift the pinned golden digests
        # in tests/test_golden_determinism.py.
        if self.grid_cache_hits or self.grid_cache_misses:
            out["grid_cache_hits"] = self.grid_cache_hits
            out["grid_cache_misses"] = self.grid_cache_misses
        # Same deal for the supervision counters: they only ever tick on
        # the module-wide grid_stats object, and only when something
        # actually failed, so unfaulted summaries stay digest-stable.
        if self.worker_retries or self.worker_respawns \
                or self.pool_rebuilds or self.cells_quarantined:
            out["worker_retries"] = self.worker_retries
            out["worker_respawns"] = self.worker_respawns
            out["pool_rebuilds"] = self.pool_rebuilds
            out["cells_quarantined"] = self.cells_quarantined
        # And the analytic-screening counters: they only tick when a
        # sweep ran with REPRO_ANALYTIC=prune, never during a plain
        # simulation, so golden summaries are unaffected.
        if self.analytic_cells or self.simulated_cells:
            out["analytic_cells"] = self.analytic_cells
            out["simulated_cells"] = self.simulated_cells
        # Allocator counters are process-wide (not per network) and vary
        # with unrelated runs in the same process, so they are opt-in to
        # keep the default key set digest-stable.
        if include_pools:
            from repro.noc.packet import pool_summary

            out.update(pool_summary())
        return out

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "packets_injected": self.packets_injected,
            "packets_ejected": self.packets_ejected,
            "flits_ejected": self.flits_ejected,
            "total_hops": self.total_hops,
            "network_latencies": list(self.network_latencies),
            "total_latencies": list(self.total_latencies),
            "per_class_latency": [
                [mc.value, list(values)]
                for mc, values in self.per_class_latency.items()
            ],
            "pra_blocked_cycles": self.pra_blocked_cycles,
            "control_packets_injected": self.control_packets_injected,
            "control_injection_conflicts": self.control_injection_conflicts,
            "control_lag_at_drop": [
                [lag, count]
                for lag, count in sorted(self.control_lag_at_drop.items())
            ],
            "control_drop_reasons": [
                [reason, count]
                for reason, count in sorted(self.control_drop_reasons.items())
            ],
            "pra_planned_packets": self.pra_planned_packets,
            "grid_cache_hits": self.grid_cache_hits,
            "grid_cache_misses": self.grid_cache_misses,
            "worker_retries": self.worker_retries,
            "worker_respawns": self.worker_respawns,
            "pool_rebuilds": self.pool_rebuilds,
            "cells_quarantined": self.cells_quarantined,
            "analytic_cells": self.analytic_cells,
            "simulated_cells": self.simulated_cells,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore **in place**: the control network, chip, and slices
        all hold aliases of their network's stats object."""
        self.packets_injected = state["packets_injected"]
        self.packets_ejected = state["packets_ejected"]
        self.flits_ejected = state["flits_ejected"]
        self.total_hops = state["total_hops"]
        self.network_latencies = list(state["network_latencies"])
        self.total_latencies = list(state["total_latencies"])
        restored = {
            MessageClass(value): list(values)
            for value, values in state["per_class_latency"]
        }
        self.per_class_latency = {
            mc: restored.get(mc, []) for mc in MessageClass
        }
        self.pra_blocked_cycles = state["pra_blocked_cycles"]
        self.control_packets_injected = state["control_packets_injected"]
        self.control_injection_conflicts = state["control_injection_conflicts"]
        self.control_lag_at_drop = Counter(
            {lag: count for lag, count in state["control_lag_at_drop"]}
        )
        self.control_drop_reasons = Counter(
            {reason: count for reason, count in state["control_drop_reasons"]}
        )
        self.pra_planned_packets = state["pra_planned_packets"]
        self.grid_cache_hits = state["grid_cache_hits"]
        self.grid_cache_misses = state["grid_cache_misses"]
        # Absent in snapshots written before supervised execution.
        self.worker_retries = state.get("worker_retries", 0)
        self.worker_respawns = state.get("worker_respawns", 0)
        self.pool_rebuilds = state.get("pool_rebuilds", 0)
        self.cells_quarantined = state.get("cells_quarantined", 0)
        # Absent in snapshots written before the analytic fast path.
        self.analytic_cells = state.get("analytic_cells", 0)
        self.simulated_cells = state.get("simulated_cells", 0)
